package repro_test

// One benchmark per table/figure of the paper's evaluation, driving the
// same harness as cmd/annbench at reduced scale so `go test -bench=.`
// exercises every experiment. Tables print through b.Log only under
// -v; the benchmark timings themselves measure one full experiment
// execution.

import (
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/exp"
	"repro/internal/hnsw"
	"repro/internal/vec"
)

func benchOpts() exp.Options {
	return exp.Options{
		Points:  12_000,
		Queries: 200,
		K:       10,
		Seed:    1,
		Out:     io.Discard,
		Quick:   true,
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := exp.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3a regenerates Figure 3(a): strong scaling on the MDCGen
// synthetic datasets.
func BenchmarkFig3a(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3b regenerates Figure 3(b): strong scaling on the
// SIFT/DEEP descriptor stand-ins.
func BenchmarkFig3b(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkTable2 regenerates Table II: distributed construction times.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig4a regenerates Figure 4(a): query time vs replication.
func BenchmarkFig4a(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4(b): query distribution vs
// replication factor.
func BenchmarkFig4b(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkTable3 regenerates Table III: ours vs the distributed KD
// tree baseline.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5 regenerates Figure 5: search time breakdown.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: recall vs query time across HNSW
// M values.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkOwners reproduces the Section IV master-worker vs
// multiple-owner comparison.
func BenchmarkOwners(b *testing.B) { runExperiment(b, "owners") }

// BenchmarkAblateRMA runs the one-sided vs two-sided ablation.
func BenchmarkAblateRMA(b *testing.B) { runExperiment(b, "ablate-rma") }

// BenchmarkAblateRouting runs the VP-vs-flat-pivot routing ablation.
func BenchmarkAblateRouting(b *testing.B) { runExperiment(b, "ablate-routing") }

// BenchmarkAblateSelect isolates HNSW's diversity-based neighbor
// selection (Algorithm 4 of Malkov & Yashunin) against naive closest-M:
// it measures build+search cost; the recall difference is asserted in
// the hnsw package tests.
func BenchmarkAblateSelect(b *testing.B) {
	ds, err := dataset.Named("sift", 8000, 3)
	if err != nil {
		b.Fatal(err)
	}
	qs := dataset.PerturbedQueries(ds, 100, 4, 4)
	for _, heuristic := range []bool{true, false} {
		name := "heuristic"
		if !heuristic {
			name = "closestM"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := hnsw.DefaultConfig(vec.L2)
				cfg.Heuristic = heuristic
				g, _, err := hnsw.Build(ds, cfg, 4)
				if err != nil {
					b.Fatal(err)
				}
				for qi := 0; qi < qs.Len(); qi++ {
					if _, _, err := g.Search(qs.At(qi), 10); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
