// Recommender: the batched-throughput scenario from the paper's
// introduction — "queries need not be answered in real time and can be
// batched together like in recommender systems".
//
// Items are embedding vectors; each user has a taste vector; the nightly
// job batches all users and retrieves each user's top-k candidate items.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

const (
	nItems = 80_000
	nUsers = 5_000
	dim    = 96 // DEEP-like embedding width
	topK   = 10
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	// Item embeddings: unit vectors in latent "genre" clusters.
	genres := make([][]float32, 40)
	for g := range genres {
		genres[g] = randUnit(rng, dim)
	}
	items := vec.NewDataset(dim, nItems)
	v := make([]float32, dim)
	for i := 0; i < nItems; i++ {
		g := genres[rng.Intn(len(genres))]
		for j := range v {
			v[j] = g[j] + float32(rng.NormFloat64()*0.3)
		}
		vec.Normalize(v)
		items.Append(v, int64(i))
	}

	// The engine indexes the catalogue once.
	cfg := core.DefaultConfig(24)
	cfg.NProbe = 4
	t0 := time.Now()
	engine, err := core.NewEngine(items, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d items (%d-d) into %d partitions in %v\n",
		nItems, dim, engine.Partitions(), time.Since(t0).Round(time.Millisecond))

	// User taste vectors: mixtures of a few genres.
	users := vec.NewDataset(dim, nUsers)
	for u := 0; u < nUsers; u++ {
		for j := range v {
			v[j] = 0
		}
		for m := 0; m < 3; m++ {
			g := genres[rng.Intn(len(genres))]
			w := float32(rng.Float64())
			for j := range v {
				v[j] += w * g[j]
			}
		}
		vec.Normalize(v)
		users.Append(v, int64(u))
	}

	// The nightly batch.
	t1 := time.Now()
	recs, err := engine.SearchBatch(users, topK, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t1)
	fmt.Printf("recommended top-%d items for %d users in %v (%.0f users/s)\n",
		topK, nUsers, elapsed.Round(time.Millisecond), float64(nUsers)/elapsed.Seconds())

	fmt.Println("sample recommendations:")
	for u := 0; u < 3; u++ {
		fmt.Printf("  user %d:", u)
		for _, r := range recs[u][:5] {
			fmt.Printf(" item%d", r.ID)
		}
		fmt.Println()
	}
}

func randUnit(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return vec.Normalize(v)
}
