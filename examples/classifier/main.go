// Classifier: k-NN as a classification method (one of the paper's
// motivating applications). Labelled training points are indexed; test
// points are classified by majority vote over their k nearest
// neighbors, and the approximate engine's accuracy is compared to the
// exact classifier.
//
//	go run ./examples/classifier
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/topk"
	"repro/internal/vec"
)

const k = 15

func main() {
	log.SetFlags(0)

	// Training set: 12 labelled Gaussian classes in 32 dimensions.
	gen, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: 60_000, Dim: 32, Clusters: 12, Outliers: 0, Seed: 3, Spread: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := gen.Data
	labels := gen.Labels

	// Test set: fresh draws from the same clusters.
	testGen, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: 2_000, Dim: 32, Clusters: 12, Outliers: 0, Seed: 4, Spread: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Same seed for centroids? No — different seed gives different
	// centroids, so classify against the training centroid geometry by
	// reusing the training generator's centroids for the test queries.
	test, err := gen.Queries(dataset.QueryConfig{N: 2000, Cluster: -1, Compactness: 0.06, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	_ = testGen

	engine, err := core.NewEngine(train.Clone(), func() core.Config {
		c := core.DefaultConfig(12)
		c.NProbe = 3
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}

	// classify with the approximate engine
	t0 := time.Now()
	approx, err := engine.SearchBatch(test, k, 0)
	if err != nil {
		log.Fatal(err)
	}
	approxT := time.Since(t0)

	// classify exactly
	t1 := time.Now()
	exact := bruteforce.SearchBatch(train, test, k, vec.L2)
	exactT := time.Since(t1)

	agree := 0
	for i := range approx {
		if vote(approx[i], labels) == vote(exact[i], labels) {
			agree++
		}
	}
	fmt.Printf("classified %d test points with %d-NN majority vote\n", test.Len(), k)
	fmt.Printf("approximate engine: %v   exact scan: %v   (%.1fx faster)\n",
		approxT.Round(time.Millisecond), exactT.Round(time.Millisecond),
		float64(exactT)/float64(approxT))
	fmt.Printf("label agreement with the exact classifier: %.2f%%\n",
		100*float64(agree)/float64(len(approx)))
}

// vote returns the majority label among the neighbors.
func vote(neighbors []topk.Result, labels []int) int {
	counts := map[int]int{}
	best, bestN := -1, 0
	for _, r := range neighbors {
		l := labels[r.ID]
		counts[l]++
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return best
}
