// TCP cluster: the same distributed engine over real sockets. This
// example spawns a master and three workers as goroutines, each joined
// to the cluster through its own loopback TCP endpoint — byte-for-byte
// the deployment path of cmd/annmaster and cmd/annworker, runnable on
// one machine.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	const workers = 3

	ds, err := dataset.Named("deep", 20_000, 21)
	if err != nil {
		log.Fatal(err)
	}
	queries := dataset.PerturbedQueries(ds, 300, 0.05, 22)
	truth := bruteforce.GroundTruth(ds, queries, 10, vec.L2)

	// Reserve loopback ports for every rank.
	addrs := make([]string, workers+1)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	fmt.Printf("cluster endpoints: %v\n", addrs)

	cfg := core.DefaultConfig(workers)
	cfg.NProbe = 2
	cfg.ThreadsPerWorker = 2

	var wg sync.WaitGroup
	errs := make([]error, workers+1)
	for rank := 0; rank <= workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, comm, err := cluster.JoinTCP(rank, addrs, 10*time.Second)
			if err != nil {
				errs[rank] = err
				return
			}
			defer node.Close()
			if rank == 0 {
				errs[rank] = core.RunCluster(comm, ds, cfg, func(m *core.Master) error {
					res, err := m.Search(queries)
					if err != nil {
						return err
					}
					fmt.Printf("master: %d queries answered over TCP in %v\n",
						queries.Len(), res.Elapsed.Round(time.Millisecond))
					fmt.Printf("recall@10 = %.3f\n", metrics.MeanRecall(res.Results, truth))
					fmt.Printf("traffic at master: %d msgs, %.1f KB\n",
						node.Stats().Messages(), float64(node.Stats().Bytes())/1024)
					return nil
				})
			} else {
				errs[rank] = core.RunCluster(comm, nil, cfg, nil)
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
	}
	fmt.Println("all ranks shut down cleanly")
}
