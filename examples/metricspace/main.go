// Metric space: VP trees are metric-agnostic (Yianilos; Section III-B
// of the paper: "VP trees are metric-agnostic, whereas KD trees perform
// poorly for metrics other than L2 and Linf"). This example runs the
// same exact VP tree under L2, L1 and cosine dissimilarity, checks each
// against brute force, and shows the pruning a KD tree cannot offer off
// L2.
//
//	go run ./examples/metricspace
package main

import (
	"fmt"
	"log"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/vec"
	"repro/internal/vptree"
)

func main() {
	log.SetFlags(0)
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: 20_000, Dim: 24, Clusters: 6, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds := g.Data
	queries := dataset.PerturbedQueries(ds, 200, 0.1, 14)

	fmt.Println("true metrics (triangle inequality holds -> pruning is exact):")
	for _, metric := range []vec.Metric{vec.L2, vec.L1, vec.Cosine} {
		if metric == vec.Cosine {
			fmt.Println("non-metric dissimilarity (no triangle inequality -> pruning unsound,")
			fmt.Println("results become approximate; embed-and-normalise to get exact L2 instead):")
		}
		tree := vptree.NewTree(ds, vptree.TreeConfig{Metric: metric, Seed: 1})
		var dists int64
		exact := 0
		for i := 0; i < queries.Len(); i++ {
			q := queries.At(i)
			got, st := tree.Search(q, 5)
			dists += st.DistComps
			want := bruteforce.Search(ds, q, 5, metric)
			ok := len(got) == len(want)
			for j := 0; ok && j < len(got); j++ {
				ok = got[j].Dist == want[j].Dist
			}
			if ok {
				exact++
			}
		}
		fmt.Printf("metric %-7v exact results %d/%d, mean distance computations %6.0f/%d (%.1f%% pruned)\n",
			metric, exact, queries.Len(),
			float64(dists)/float64(queries.Len()), ds.Len(),
			100*(1-float64(dists)/float64(queries.Len())/float64(ds.Len())))
	}
	fmt.Println("\nthe same tree and search code served every distance; only the function")
	fmt.Println("changed — the metric-agnosticism the paper exploits (Section VI: \"general")
	fmt.Println("metric spaces\"). Exactness holds precisely when the triangle inequality does.")
}
