// Distributed: the full message-passing engine end to end in one
// process — rank 0 is the master, eight worker ranks cooperatively build
// the VP tree (Algorithms 1-2), index their partitions with HNSW, and
// answer a batch through the master-worker protocol with one-sided
// result accumulation and replication-based load balancing (Algorithms
// 3-5).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	const workers = 8

	ds, err := dataset.Named("sift", 40_000, 9)
	if err != nil {
		log.Fatal(err)
	}
	queries := dataset.PerturbedQueries(ds, 500, 4, 10)
	truth := bruteforce.GroundTruth(ds, queries, 10, vec.L2)
	fmt.Printf("SIFT-like dataset: %d x %d, %d queries, %d workers + 1 master\n",
		ds.Len(), ds.Dim, queries.Len(), workers)

	cfg := core.DefaultConfig(workers)
	cfg.NProbe = 3
	cfg.Replication = 2      // workgroups of 2 (Section IV-C2)
	cfg.ThreadsPerWorker = 2 // the "OpenMP threads"
	cfg.OneSided = true      // MPI_Get_accumulate-style results (IV-C1)

	world := cluster.NewWorld(workers + 1)
	err = world.Run(func(c *cluster.Comm) error {
		return core.RunCluster(c, ds, cfg, func(m *core.Master) error {
			cs := m.ConstructionStats()
			fmt.Printf("distributed construction: vptree=%v hnsw=%v replicate=%v\n",
				cs.VPTree.Round(time.Millisecond), cs.HNSW.Round(time.Millisecond),
				cs.Replicate.Round(time.Millisecond))

			res, err := m.Search(queries)
			if err != nil {
				return err
			}
			fmt.Printf("search: %d queries in %v, %d tasks dispatched\n",
				queries.Len(), res.Elapsed.Round(time.Millisecond), res.Dispatched)
			fmt.Printf("recall@10 = %.3f\n", metrics.MeanRecall(res.Results, truth))

			h := metrics.NewHistogram(res.PerWorkerQueries)
			mn, _, med, _, mx := h.Quartiles()
			fmt.Printf("tasks/worker: min=%.0f median=%.0f max=%.0f (replication r=%d)\n",
				mn, med, mx, cfg.Replication)
			fmt.Printf("world traffic: %d messages, %.1f KB\n",
				world.Stats().Messages(), float64(world.Stats().Bytes())/1024)
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}
}
