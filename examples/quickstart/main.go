// Quickstart: build the paper's engine over a synthetic dataset and
// answer a few k-NN queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)

	// 1. A 64-dimensional clustered dataset (50k points, 8 clusters).
	gen, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: 50_000, Dim: 64, Clusters: 8, Outliers: 500, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.Data
	fmt.Printf("dataset: %d points, %d dimensions\n", ds.Len(), ds.Dim)

	// 2. Build the engine: VP-tree partitioning + one HNSW index per
	// partition (Sections III-IV of the paper).
	cfg := core.DefaultConfig(16) // 16 partitions
	cfg.NProbe = 3                // search the 3 most promising partitions
	t0 := time.Now()
	engine, err := core.NewEngine(ds.Clone(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d partitions in %v\n", engine.Partitions(), time.Since(t0).Round(time.Millisecond))

	// 3. Single query.
	q := ds.At(123)
	results, err := engine.Search(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5-NN of point 123 (itself first):")
	for _, r := range results {
		fmt.Printf("  id=%-6d distance=%.4f\n", r.ID, r.Dist)
	}

	// 4. Batched throughput + recall vs exact search.
	queries := dataset.PerturbedQueries(ds, 1000, 0.1, 7)
	t1 := time.Now()
	batch, err := engine.SearchBatch(queries, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t1)
	truth := bruteforce.GroundTruth(ds, queries, 10, vec.L2)
	fmt.Printf("batch: %d queries in %v (%.0f q/s), recall@10 = %.3f\n",
		queries.Len(), elapsed.Round(time.Millisecond),
		float64(queries.Len())/elapsed.Seconds(),
		metrics.MeanRecall(batch, truth))
}
