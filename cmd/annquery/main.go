// annquery answers a query batch against an index built with annbuild,
// optionally scoring recall against ivecs ground truth:
//
//	annquery -index sift.ann -queries sift_query.fvecs -gt sift_gt.ivecs -k 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annquery: ")
	var (
		index   = flag.String("index", "", "index file from annbuild (required)")
		queries = flag.String("queries", "", "query fvecs file (required)")
		gt      = flag.String("gt", "", "optional ground-truth ivecs file for recall")
		k       = flag.Int("k", 10, "neighbors per query")
		nprobe  = flag.Int("nprobe", 0, "override partitions searched per query")
		ef      = flag.Int("ef", 0, "override HNSW efSearch")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		show    = flag.Int("show", 3, "print the first N query results")
		latency = flag.Bool("latency", false, "also measure per-query latency percentiles (serial pass)")
		tune    = flag.Float64("tune", 0, "tune nprobe/efSearch to this recall target before querying (needs -gt)")
	)
	flag.Parse()
	if *index == "" || *queries == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.LoadEngine(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *nprobe > 0 {
		e.SetNProbe(*nprobe)
	}
	if *ef > 0 {
		e.SetEfSearch(*ef)
	}
	qs, err := dataset.LoadFvecsFile(*queries, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d points, %d partitions; queries: %d x %d\n",
		e.Len(), e.Partitions(), qs.Len(), qs.Dim)

	if *tune > 0 {
		if *gt == "" {
			log.Fatal("-tune requires -gt ground truth")
		}
		gf, err := os.Open(*gt)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := dataset.ReadIvecs(gf, qs.Len())
		gf.Close()
		if err != nil {
			log.Fatal(err)
		}
		for i := range truth {
			if len(truth[i]) > *k {
				truth[i] = truth[i][:*k]
			}
		}
		// tune on a held-out prefix to keep the timing pass honest
		n := qs.Len() / 4
		if n < 10 {
			n = qs.Len()
		}
		res, err := e.Tune(qs.Slice(0, n), truth[:n], *k, *tune)
		if res != nil {
			fmt.Printf("tuned: nprobe=%d efSearch=%d recall=%.3f (%d points evaluated)\n",
				res.NProbe, res.EfSearch, res.Recall, len(res.Evaluated))
		}
		if err != nil {
			log.Printf("tuning: %v", err)
		}
	}

	t0 := time.Now()
	res, err := e.SearchBatch(qs, *k, *threads)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	fmt.Printf("answered %d queries in %v (%.0f queries/s)\n",
		qs.Len(), elapsed.Round(time.Microsecond), float64(qs.Len())/elapsed.Seconds())

	if *latency {
		lats := make([]float64, qs.Len())
		for i := 0; i < qs.Len(); i++ {
			q0 := time.Now()
			if _, err := e.Search(qs.At(i), *k); err != nil {
				log.Fatal(err)
			}
			lats[i] = float64(time.Since(q0).Microseconds())
		}
		fmt.Printf("per-query latency (µs): %s\n", metrics.Summarize(lats))
	}

	for i := 0; i < *show && i < len(res); i++ {
		fmt.Printf("q%d:", i)
		for _, r := range res[i] {
			fmt.Printf(" %d(%.3f)", r.ID, r.Dist)
		}
		fmt.Println()
	}

	if *gt != "" {
		gf, err := os.Open(*gt)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := dataset.ReadIvecs(gf, qs.Len())
		gf.Close()
		if err != nil {
			log.Fatal(err)
		}
		for i := range truth {
			if len(truth[i]) > *k {
				truth[i] = truth[i][:*k]
			}
		}
		fmt.Printf("recall@%d = %.4f\n", *k, metrics.MeanRecall(res, truth))
	}
}
