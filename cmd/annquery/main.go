// annquery answers a query batch against an index built with annbuild,
// optionally scoring recall against ivecs ground truth:
//
//	annquery -index sift.ann -queries sift_query.fvecs -gt sift_gt.ivecs -k 10
//
// With -json the run emits one machine-readable JSON object on stdout
// (same fields the annserve gateway's loadgen and scripts consume)
// instead of the human-readable log lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// report is the -json output shape.
type report struct {
	Index struct {
		Points     int `json:"points"`
		Partitions int `json:"partitions"`
		Dim        int `json:"dim"`
	} `json:"index"`
	Queries   int     `json:"queries"`
	K         int     `json:"k"`
	ElapsedUS int64   `json:"elapsed_us"`
	QPS       float64 `json:"qps"`

	Tuned *struct {
		NProbe   int     `json:"nprobe"`
		EfSearch int     `json:"ef_search"`
		Recall   float64 `json:"recall"`
	} `json:"tuned,omitempty"`

	LatencyUS *metrics.Summary `json:"latency_us,omitempty"`
	Recall    *float64         `json:"recall,omitempty"`

	// Results holds the first -show result rows (-show -1 = all).
	Results []resultRow `json:"results,omitempty"`
}

type resultRow struct {
	IDs   []int64   `json:"ids"`
	Dists []float32 `json:"dists"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("annquery: ")
	var (
		index   = flag.String("index", "", "index file from annbuild (required)")
		queries = flag.String("queries", "", "query fvecs file (required)")
		gt      = flag.String("gt", "", "optional ground-truth ivecs file for recall")
		k       = flag.Int("k", 10, "neighbors per query")
		nprobe  = flag.Int("nprobe", 0, "override partitions searched per query")
		ef      = flag.Int("ef", 0, "override HNSW efSearch")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		show    = flag.Int("show", 3, "print the first N query results (-1 = all)")
		latency = flag.Bool("latency", false, "also measure per-query latency percentiles (serial pass)")
		tune    = flag.Float64("tune", 0, "tune nprobe/efSearch to this recall target before querying (needs -gt)")
		jsonOut = flag.Bool("json", false, "emit one machine-readable JSON object on stdout instead of text")
	)
	flag.Parse()
	if *index == "" || *queries == "" {
		flag.Usage()
		os.Exit(2)
	}
	// In -json mode nothing but the final object may reach stdout.
	human := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}
	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.LoadEngine(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *nprobe > 0 {
		e.SetNProbe(*nprobe)
	}
	if *ef > 0 {
		e.SetEfSearch(*ef)
	}
	qs, err := dataset.LoadFvecsFile(*queries, 0)
	if err != nil {
		log.Fatal(err)
	}
	var rep report
	rep.Index.Points = e.Len()
	rep.Index.Partitions = e.Partitions()
	rep.Index.Dim = e.Dim()
	rep.Queries = qs.Len()
	rep.K = *k
	human("index: %d points, %d partitions; queries: %d x %d\n",
		e.Len(), e.Partitions(), qs.Len(), qs.Dim)

	loadTruth := func() [][]int32 {
		gf, err := os.Open(*gt)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := dataset.ReadIvecs(gf, qs.Len())
		gf.Close()
		if err != nil {
			log.Fatal(err)
		}
		for i := range truth {
			if len(truth[i]) > *k {
				truth[i] = truth[i][:*k]
			}
		}
		return truth
	}

	if *tune > 0 {
		if *gt == "" {
			log.Fatal("-tune requires -gt ground truth")
		}
		truth := loadTruth()
		// tune on a held-out prefix to keep the timing pass honest
		n := qs.Len() / 4
		if n < 10 {
			n = qs.Len()
		}
		res, err := e.Tune(qs.Slice(0, n), truth[:n], *k, *tune)
		if res != nil {
			human("tuned: nprobe=%d efSearch=%d recall=%.3f (%d points evaluated)\n",
				res.NProbe, res.EfSearch, res.Recall, len(res.Evaluated))
			rep.Tuned = &struct {
				NProbe   int     `json:"nprobe"`
				EfSearch int     `json:"ef_search"`
				Recall   float64 `json:"recall"`
			}{res.NProbe, res.EfSearch, res.Recall}
		}
		if err != nil {
			log.Printf("tuning: %v", err)
		}
	}

	t0 := time.Now()
	res, err := e.SearchBatch(qs, *k, *threads)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	rep.ElapsedUS = elapsed.Microseconds()
	rep.QPS = float64(qs.Len()) / elapsed.Seconds()
	human("answered %d queries in %v (%.0f queries/s)\n",
		qs.Len(), elapsed.Round(time.Microsecond), rep.QPS)

	if *latency {
		lats := make([]float64, qs.Len())
		for i := 0; i < qs.Len(); i++ {
			q0 := time.Now()
			if _, err := e.Search(qs.At(i), *k); err != nil {
				log.Fatal(err)
			}
			lats[i] = float64(time.Since(q0).Microseconds())
		}
		sum := metrics.Summarize(lats)
		rep.LatencyUS = &sum
		human("per-query latency (µs): %s\n", sum)
	}

	nshow := *show
	if nshow < 0 || nshow > len(res) {
		nshow = len(res)
	}
	for i := 0; i < nshow; i++ {
		rep.Results = append(rep.Results, toRow(res[i]))
		if !*jsonOut {
			fmt.Printf("q%d:", i)
			for _, r := range res[i] {
				fmt.Printf(" %d(%.3f)", r.ID, r.Dist)
			}
			fmt.Println()
		}
	}

	if *gt != "" {
		truth := loadTruth()
		recall := metrics.MeanRecall(res, truth)
		rep.Recall = &recall
		human("recall@%d = %.4f\n", *k, recall)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}

func toRow(rs []topk.Result) resultRow {
	row := resultRow{IDs: make([]int64, len(rs)), Dists: make([]float32, len(rs))}
	for i, r := range rs {
		row.IDs[i] = r.ID
		row.Dists[i] = r.Dist
	}
	return row
}
