// annmaster runs the master rank of a real TCP deployment of the
// distributed engine. Start one master (rank 0) and P workers:
//
//	annmaster -addrs host0:7000,host1:7000,host2:7000 -data sift.fvecs \
//	          -queries sift_query.fvecs -k 10
//	annworker -rank 1 -addrs host0:7000,host1:7000,host2:7000
//	annworker -rank 2 -addrs host0:7000,host1:7000,host2:7000
//
// The master scatters the dataset, drives the distributed VP-tree +
// HNSW construction (Algorithms 1-2), answers the query batch with the
// master-worker protocol (Algorithms 3-5) and prints results/recall.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annmaster: ")
	var (
		addrs   = flag.String("addrs", "", "comma-separated rank addresses; this process is rank 0 (required)")
		data    = flag.String("data", "", "dataset fvecs file (required)")
		queries = flag.String("queries", "", "query fvecs file (required)")
		gt      = flag.String("gt", "", "optional ground-truth ivecs for recall")
		limit   = flag.Int("limit", 0, "load at most this many points")
		k       = flag.Int("k", 10, "neighbors per query")
		nprobe  = flag.Int("nprobe", 2, "partitions searched per query")
		repl    = flag.Int("replication", 1, "replication factor for load balancing")
		threads = flag.Int("threads", 4, "searcher threads per worker")
		seed    = flag.Int64("seed", 1, "construction seed")
		wait    = flag.Duration("wait", 60*time.Second, "worker dial timeout")
		ckpt    = flag.String("checkpoint", "", "save the built index under this directory")
		resume  = flag.String("resume", "", "serve from a checkpoint directory instead of building")
		traceTo = flag.String("trace", "", "write a master-side event timeline to this file")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second,
			"per-round collection deadline; 0 disables fault-tolerant serving")
		retries      = flag.Int("retries", 2, "retry rounds for tasks lost to worker failures")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff between retry rounds (doubles per round)")
		hbInterval   = flag.Duration("hb-interval", time.Second, "TCP heartbeat period (negative disables)")
		hbTimeout    = flag.Duration("hb-timeout", 5*time.Second, "declare a silent peer dead after this long")
	)
	flag.Parse()
	list := strings.Split(*addrs, ",")
	if *addrs == "" || len(list) < 2 || *data == "" || *queries == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadFvecsFile(*data, *limit)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := dataset.LoadFvecsFile(*queries, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %d x %d, %d queries, %d workers\n", ds.Len(), ds.Dim, qs.Len(), len(list)-1)

	node, comm, err := cluster.JoinTCPOpts(0, list, cluster.TCPOptions{
		DialTimeout:       *wait,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	cfg := core.DefaultConfig(len(list) - 1)
	cfg.K = *k
	cfg.NProbe = *nprobe
	cfg.Replication = *repl
	cfg.ThreadsPerWorker = *threads
	cfg.Seed = *seed
	cfg.CheckpointDir = *ckpt
	cfg.QueryTimeout = *queryTimeout
	cfg.MaxRetries = *retries
	cfg.RetryBackoff = *retryBackoff
	var rec *trace.Recorder
	if *traceTo != "" {
		rec = trace.New(1 << 16)
		cfg.Trace = rec
	}

	driver := func(m *core.Master) error {
		cs := m.ConstructionStats()
		if *resume == "" {
			fmt.Printf("construction: vptree=%v hnsw=%v replicate=%v\n",
				cs.VPTree.Round(time.Millisecond), cs.HNSW.Round(time.Millisecond),
				cs.Replicate.Round(time.Millisecond))
		}
		res, err := m.Search(qs)
		if err != nil {
			return err
		}
		fmt.Printf("answered %d queries in %v (%.0f q/s), dispatched %d tasks\n",
			qs.Len(), res.Elapsed.Round(time.Microsecond),
			float64(qs.Len())/res.Elapsed.Seconds(), res.Dispatched)
		if res.Failovers > 0 || res.Retries > 0 {
			fmt.Printf("fault tolerance: %d failovers over %d retry rounds\n", res.Failovers, res.Retries)
		}
		if res.Degraded {
			fmt.Printf("WARNING: degraded batch — partitions %v unavailable (no live replica)\n", res.FailedPartitions)
		}
		if *gt != "" {
			gf, err := os.Open(*gt)
			if err != nil {
				return err
			}
			truth, err := dataset.ReadIvecs(gf, qs.Len())
			gf.Close()
			if err != nil {
				return err
			}
			for i := range truth {
				if len(truth[i]) > *k {
					truth[i] = truth[i][:*k]
				}
			}
			fmt.Printf("recall@%d = %.4f\n", *k, metrics.MeanRecall(res.Results, truth))
		}
		return nil
	}
	if *resume != "" {
		err = core.RunClusterFromCheckpoint(comm, *resume, cfg, driver)
	} else {
		err = core.RunCluster(comm, ds, cfg, driver)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		tf, err := os.Create(*traceTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.Summary(tf); err == nil {
			err = rec.Timeline(tf)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceTo)
	}
}
