// annwal inspects and replays a durable store directory written by
// annserve -wal (see internal/store).
//
// Summary (default): manifest, segment list, record counts.
//
//	annwal /var/lib/ann/store
//
// Dump every WAL record; upsert-tagged records show their tag count and
// upsert-text records show the text length plus a short preview:
//
//	annwal -dump /var/lib/ann/store
//
// Verify: scan all segments checking framing and CRCs; exit non-zero
// on corruption anywhere but a torn final record (which recovery
// repairs by truncation).
//
//	annwal -verify /var/lib/ann/store
//
// Replay: run full recovery (snapshot + WAL tail, repairing a torn
// tail) and report the recovered engine, exactly as annserve would at
// startup.
//
//	annwal -replay /var/lib/ann/store
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annwal: ")
	var (
		dump   = flag.Bool("dump", false, "print every WAL record")
		verify = flag.Bool("verify", false, "check framing and CRCs of every segment")
		replay = flag.Bool("replay", false, "run full recovery and report the engine state")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: annwal [-dump|-verify|-replay] <store-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	switch {
	case *replay:
		doReplay(dir)
	case *verify:
		doVerify(dir)
	case *dump:
		doScan(dir, true)
	default:
		doScan(dir, false)
	}
}

func doScan(dir string, dump bool) {
	if gens, err := store.Manifest(dir); err == nil {
		for i, g := range gens {
			role := "current"
			if i > 0 {
				role = "previous"
			}
			fmt.Printf("manifest: %s snapshot %s, watermark %d, crc32c %08x, %d bytes\n",
				role, g.Snapshot, g.Watermark, g.CRC, g.Bytes)
		}
	} else {
		fmt.Printf("manifest: %v\n", err)
	}
	var (
		total, upserts, tagged, texted, deletes int
		first, last                             uint64
		byPart                                  = map[int]int{}
	)
	err := store.ScanWAL(dir, func(r store.Record) error {
		if total == 0 {
			first = r.Seq
		}
		last = r.Seq
		total++
		switch r.Type {
		case store.RecordUpsert:
			upserts++
			byPart[r.Part]++
		case store.RecordUpsertTagged:
			tagged++
			byPart[r.Part]++
		case store.RecordUpsertText:
			texted++
			byPart[r.Part]++
		case store.RecordDelete:
			deletes++
		}
		if dump {
			switch r.Type {
			case store.RecordUpsert:
				fmt.Printf("%8d  upsert  id=%-12d part=%d level=%d dim=%d\n", r.Seq, r.ID, r.Part, r.Level, len(r.Vec))
			case store.RecordUpsertTagged:
				fmt.Printf("%8d  %s  id=%-12d part=%d level=%d dim=%d tags=%d\n",
					r.Seq, r.Type, r.ID, r.Part, r.Level, len(r.Vec), len(r.Tags))
			case store.RecordUpsertText:
				fmt.Printf("%8d  %s  id=%-12d part=%d level=%d dim=%d text=%dB %q\n",
					r.Seq, r.Type, r.ID, r.Part, r.Level, len(r.Vec), len(r.Text), textPreview(r.Text))
			default:
				fmt.Printf("%8d  %-6s  id=%d\n", r.Seq, r.Type, r.ID)
			}
		}
		return nil
	})
	if err != nil {
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			log.Fatalf("WAL corrupt: %v (a torn final record is repaired on open; run -replay)", ce)
		}
		log.Fatal(err)
	}
	fmt.Printf("wal: %d records (seq %d..%d): %d upserts, %d tagged, %d text, %d deletes\n",
		total, first, last, upserts, tagged, texted, deletes)
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		fmt.Printf("  partition %d: %d inserts\n", p, byPart[p])
	}
}

// doVerify checks every checksummed artifact of the store — manifest
// envelope, snapshot generations, WAL frames — and reports the first
// corruption per artifact as a machine-checkable line:
//
//	BAD kind=<wal|manifest|snapshot> file=<path> offset=<n> want_crc=<hex> got_crc=<hex> reason=<...>
//
// Exit status 1 on any BAD line, 0 with a summary line otherwise.
func doVerify(dir string) {
	crcTab := crc32.MakeTable(crc32.Castagnoli)
	bad := 0
	badf := func(kind, file string, offset int64, want, got uint32, reason string) {
		bad++
		fmt.Printf("BAD kind=%s file=%s offset=%d want_crc=%08x got_crc=%08x reason=%q\n",
			kind, file, offset, want, got, reason)
	}

	gens, err := store.Manifest(dir)
	var ce *store.CorruptError
	switch {
	case err == nil:
		for _, g := range gens {
			path := filepath.Join(dir, g.Snapshot)
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				badf("snapshot", path, 0, g.CRC, 0, rerr.Error())
				continue
			}
			if g.CRC != 0 {
				if got := crc32.Checksum(b, crcTab); got != g.CRC {
					badf("snapshot", path, 0, g.CRC, got, "snapshot CRC mismatch")
				}
			}
		}
	case errors.As(err, &ce):
		badf("manifest", ce.Path, ce.Offset, ce.WantCRC, ce.GotCRC, ce.Reason)
	default:
		log.Fatal(err)
	}

	n := 0
	if err := store.ScanWAL(dir, func(store.Record) error { n++; return nil }); err != nil {
		ce = nil
		if errors.As(err, &ce) {
			badf("wal", ce.Path, ce.Offset, ce.WantCRC, ce.GotCRC, ce.Reason)
		} else {
			log.Fatal(err)
		}
	}
	if bad > 0 {
		log.Fatalf("FAIL: %d corrupt artifacts (%d good WAL records before the first bad one)", bad, n)
	}
	fmt.Printf("OK: %d generations, %d WAL records, all frames and CRCs valid\n", len(gens), n)
}

// textPreview truncates document text to one short printable line for
// -dump output.
func textPreview(s string) string {
	const max = 32
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

func doReplay(dir string) {
	d, err := store.Open(dir, store.Options{CompactRatio: -1, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	st := d.Stats()
	e := d.Engine()
	fmt.Printf("recovered: replayed %d records to seq %d (watermark %d)\n", st.Replayed, st.LastSeq, st.Watermark)
	fmt.Printf("engine: %d points, %d partitions, dim %d, %d tombstones\n",
		e.Len(), e.Partitions(), e.Dim(), e.Tombstones())
	fmt.Printf("wal: %d segments, %d bytes on disk\n", st.WALSegments, st.WALDiskBytes)
}
