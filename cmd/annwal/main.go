// annwal inspects and replays a durable store directory written by
// annserve -wal (see internal/store).
//
// Summary (default): manifest, segment list, record counts.
//
//	annwal /var/lib/ann/store
//
// Dump every WAL record:
//
//	annwal -dump /var/lib/ann/store
//
// Verify: scan all segments checking framing and CRCs; exit non-zero
// on corruption anywhere but a torn final record (which recovery
// repairs by truncation).
//
//	annwal -verify /var/lib/ann/store
//
// Replay: run full recovery (snapshot + WAL tail, repairing a torn
// tail) and report the recovered engine, exactly as annserve would at
// startup.
//
//	annwal -replay /var/lib/ann/store
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annwal: ")
	var (
		dump   = flag.Bool("dump", false, "print every WAL record")
		verify = flag.Bool("verify", false, "check framing and CRCs of every segment")
		replay = flag.Bool("replay", false, "run full recovery and report the engine state")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: annwal [-dump|-verify|-replay] <store-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	switch {
	case *replay:
		doReplay(dir)
	case *verify:
		doVerify(dir)
	case *dump:
		doScan(dir, true)
	default:
		doScan(dir, false)
	}
}

// manifestInfo mirrors the store's MANIFEST file.
type manifestInfo struct {
	Snapshot  string `json:"snapshot"`
	Watermark uint64 `json:"watermark"`
}

func doScan(dir string, dump bool) {
	if b, err := os.ReadFile(filepath.Join(dir, "MANIFEST")); err == nil {
		var m manifestInfo
		if json.Unmarshal(b, &m) == nil {
			fmt.Printf("manifest: snapshot %s, watermark %d\n", m.Snapshot, m.Watermark)
		}
	} else {
		fmt.Println("manifest: missing")
	}
	var (
		total, upserts, deletes int
		first, last             uint64
		byPart                  = map[int]int{}
	)
	err := store.ScanWAL(dir, func(r store.Record) error {
		if total == 0 {
			first = r.Seq
		}
		last = r.Seq
		total++
		switch r.Type {
		case store.RecordUpsert:
			upserts++
			byPart[r.Part]++
		case store.RecordDelete:
			deletes++
		}
		if dump {
			switch r.Type {
			case store.RecordUpsert:
				fmt.Printf("%8d  upsert  id=%-12d part=%d level=%d dim=%d\n", r.Seq, r.ID, r.Part, r.Level, len(r.Vec))
			default:
				fmt.Printf("%8d  %-6s  id=%d\n", r.Seq, r.Type, r.ID)
			}
		}
		return nil
	})
	if err != nil {
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			log.Fatalf("WAL corrupt: %v (a torn final record is repaired on open; run -replay)", ce)
		}
		log.Fatal(err)
	}
	fmt.Printf("wal: %d records (seq %d..%d): %d upserts, %d deletes\n", total, first, last, upserts, deletes)
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		fmt.Printf("  partition %d: %d inserts\n", p, byPart[p])
	}
}

func doVerify(dir string) {
	n := 0
	err := store.ScanWAL(dir, func(store.Record) error { n++; return nil })
	if err != nil {
		log.Fatalf("FAIL after %d good records: %v", n, err)
	}
	fmt.Printf("OK: %d records, all frames and CRCs valid\n", n)
}

func doReplay(dir string) {
	d, err := store.Open(dir, store.Options{CompactRatio: -1, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	st := d.Stats()
	e := d.Engine()
	fmt.Printf("recovered: replayed %d records to seq %d (watermark %d)\n", st.Replayed, st.LastSeq, st.Watermark)
	fmt.Printf("engine: %d points, %d partitions, dim %d, %d tombstones\n",
		e.Len(), e.Partitions(), e.Dim(), e.Tombstones())
	fmt.Printf("wal: %d segments, %d bytes on disk\n", st.WALSegments, st.WALDiskBytes)
}
