// annserve is the online serving gateway: a long-lived HTTP JSON query
// service over an index built with annbuild (single-process mode) or
// over a live worker cluster (distributed mode, master rank).
//
// Single process:
//
//	annserve -index sift.ann -addr :8080 -max-batch 64 -max-wait 2ms
//
// Single process with durable ingestion (write-ahead log + snapshots +
// background compaction; POST /v1/upsert and /v1/delete go live):
//
//	annserve -index sift.ann -wal /var/lib/ann/store -addr :8080
//
// On the first run the store directory is seeded from -index; later
// runs recover from the newest snapshot plus the WAL tail, and -index
// may be omitted.
//
// Add -lexical to either single-process form for hybrid retrieval:
// upsert points may carry "text" (tokenized into a BM25 inverted index,
// durable through the WAL and text sidecar when -wal is set) and
// POST /v1/hybrid fuses the keyword and vector rankings (RRF or
// weighted min-max):
//
//	annserve -index sift.ann -wal /var/lib/ann/store -lexical -addr :8080
//
// In multi-tenant mode hybrid retrieval is per-collection instead:
// create the collection with "lexical": true (optionally "bm25_k1",
// "bm25_b", "stopwords") and use /v1/collections/{name}/hybrid.
//
// Multi-tenant (named collections, each with its own dim, metric,
// WAL and quota; create/drop at runtime over HTTP):
//
//	annserve -collections /var/lib/ann/collections -addr :8080 \
//	         -collections-init collections.json
//
// Collection routes: POST /v1/collections ({"name":..,"dim":..}),
// GET /v1/collections, DELETE /v1/collections/{name}, and per-collection
// search/upsert/delete under /v1/collections/{name}/. Search bodies
// accept "filter" ('tag=v', 'tag in {a,b}', conjunctions with 'and'),
// pushed down into the graph traversal; upsert points accept "tags".
// The legacy un-prefixed routes alias the collection named "default".
//
// Distributed (this process is rank 0; start annworker ranks 1..P):
//
//	annserve -cluster host0:7000,host1:7000,host2:7000 \
//	         -data sift.fvecs -addr :8080
//
// Sharded (stateless router over annworker -serve shards; groups are
// ';'-separated, replicas within a group ','-separated):
//
//	annserve -shards host1:7100,host1b:7100;host2:7100;host3:7100 \
//	         -addr :8080
//
// The router scatter-gathers every query batch over one replica per
// shard, hedges slow shards, fails over inside each replica group, and
// answers with partial Degraded results (failed_partitions in the JSON
// body, counters on /varz) when a whole group is down.
//
// Endpoints:
//
//	POST /v1/search   {"query":[...]} or {"queries":[[...],...]},
//	                  optional "k" and "timeout_ms"
//	GET  /healthz     liveness (503 while draining); add ?ready=1 for
//	                  readiness, which also fails once the write path
//	                  has tripped the circuit breaker
//	GET  /varz        served-traffic counters + runtime snapshot (JSON)
//
// Storage chaos drills: -chaos 'sync:fail-after@100/wal' routes every
// store I/O call through a deterministic fault injector (internal/fsx)
// so operators can rehearse disk failure: the WAL poisons itself,
// mutations 503, searches keep serving.
//
// Concurrent requests are coalesced into batched search rounds; a full
// admission queue sheds load with 429 + Retry-After; SIGTERM/SIGINT
// drains gracefully (in-flight requests finish, new ones are refused).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fsx"
	"repro/internal/hnsw"
	"repro/internal/lexical"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annserve: ")
	var (
		addr  = flag.String("addr", ":8080", "HTTP listen address")
		index = flag.String("index", "", "index file from annbuild (single-process mode)")

		colRoot = flag.String("collections", "", "multi-tenant mode: root directory holding named collections (each with its own WAL, snapshots, dim, metric); serves /v1/collections/{name}/*")
		colInit = flag.String("collections-init", "", "with -collections: JSON file of collections to create if absent ([{\"name\":\"docs\",\"dim\":128,\"metric\":\"cosine\",...},...])")

		walDir       = flag.String("wal", "", "durable store directory: WAL + snapshots + compaction (single-process mode)")
		walSyncEvery = flag.Int("wal-sync-every", 64, "fsync after this many WAL records (1 = every record)")
		walSyncInt   = flag.Duration("wal-sync-interval", 50*time.Millisecond, "group-commit fsync interval (0 = default, negative disables the ticker)")
		compactRatio = flag.Float64("compact-ratio", 0.25, "tombstone/live ratio that triggers partition compaction (negative disables)")
		chaosSpec    = flag.String("chaos", "", "DRILLS ONLY: inject storage faults, comma-separated op:kind[@nth][~rate][/pathsub] clauses (e.g. 'sync:fail-after@100/wal', 'write:enospc~0.001'); see internal/fsx")
		chaosSeed    = flag.Int64("chaos-seed", 1, "deterministic seed for -chaos rate-based rules")

		shardSpec    = flag.String("shards", "", "shard map for router mode: groups ';'-separated, replica addresses ','-separated (e.g. 'h1:7100,h1b:7100;h2:7100')")
		hedge        = flag.Duration("hedge", 50*time.Millisecond, "hedge a shard to its next replica after this long (router mode; negative disables)")
		shardDial    = flag.Duration("shard-dial", 5*time.Second, "shard connect+handshake timeout (router mode)")
		shardSearch  = flag.Duration("shard-timeout", 10*time.Second, "scatter deadline when a request has no timeout_ms (router mode)")
		probeCooloff = flag.Duration("probe-cooloff", 500*time.Millisecond, "leave a down replica unprobed this long (router mode)")

		clusterAddrs = flag.String("cluster", "", "comma-separated rank addresses for distributed mode; this process is rank 0")
		data         = flag.String("data", "", "dataset fvecs file (distributed mode, unless -resume)")
		resume       = flag.String("resume", "", "serve a checkpoint directory instead of building (distributed mode)")
		limit        = flag.Int("limit", 0, "load at most this many points")
		workerWait   = flag.Duration("worker-wait", 60*time.Second, "worker dial timeout (distributed mode)")
		clusterK     = flag.Int("cluster-k", 10, "neighbors per query the cluster serves (distributed mode)")
		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "per-round failover deadline; 0 disables fault tolerance (distributed mode)")
		repl         = flag.Int("replication", 1, "replication factor (distributed mode)")
		wthreads     = flag.Int("worker-threads", 4, "searcher threads per worker (distributed mode)")

		nprobe  = flag.Int("nprobe", 0, "override partitions searched per query")
		ef      = flag.Int("ef", 0, "override HNSW efSearch (single-process mode)")
		threads = flag.Int("threads", 0, "search threads per batch round (0 = GOMAXPROCS)")

		lexOn   = flag.Bool("lexical", false, "single-process mode: enable hybrid retrieval — upsert points may carry \"text\" (BM25-indexed, WAL-durable with -wal) and POST /v1/hybrid fuses keyword and vector rankings")
		frozen  = flag.Bool("frozen", false, "serve from flat frozen layouts: contiguous arena + CSR adjacency, re-frozen across compactions (single-process mode)")
		sq8     = flag.Bool("sq8", false, "with -frozen: SQ8 quantized first pass + exact re-rank (L2-family metrics)")
		rerankK = flag.Int("rerank-k", 0, "with -sq8: candidates re-ranked at full precision (>0 fixed, 0 = 4*k per query, <0 = exact scoring)")

		maxBatch = flag.Int("max-batch", 64, "max queries coalesced into one search round")
		maxWait  = flag.Duration("max-wait", 2*time.Millisecond, "max time a request waits to be batched")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x max-batch); beyond it requests shed with 429")
		cache    = flag.Int("cache", 4096, "LRU result-cache entries (0 disables)")
		deadline = flag.Duration("deadline", 0, "default per-request deadline when the client sends no timeout_ms (0 = none)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max time to finish queued work on shutdown")
	)
	flag.Parse()

	single := *index != "" || *walDir != ""
	distributed := *clusterAddrs != ""
	sharded := *shardSpec != ""
	multiTenant := *colRoot != ""
	modes := 0
	for _, on := range []bool{single, distributed, sharded, multiTenant} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		log.Print("exactly one of -index/-wal, -collections, -cluster, or -shards is required")
		flag.Usage()
		os.Exit(2)
	}

	srvCfg := serve.ServerConfig{
		Batcher: serve.BatcherConfig{
			MaxBatch:   *maxBatch,
			MaxWait:    *maxWait,
			QueueDepth: *queue,
		},
		CacheSize:      *cache,
		DefaultTimeout: *deadline,
		Threads:        *threads,
	}

	if multiTenant {
		opts := collection.Options{
			Store: store.Options{
				SyncEvery:    *walSyncEvery,
				SyncInterval: *walSyncInt,
				CompactRatio: *compactRatio,
			},
			Logf: log.Printf,
		}
		if *chaosSpec != "" {
			rules, cerr := fsx.ParseFaults(*chaosSpec)
			if cerr != nil {
				log.Fatal(cerr)
			}
			opts.Store.FS = fsx.NewFaulty(fsx.OS{}, *chaosSeed, rules...)
			log.Printf("CHAOS: injecting storage faults %q (seed %d) — drill mode, not for production", *chaosSpec, *chaosSeed)
		}
		reg, err := collection.Open(*colRoot, opts)
		if err != nil {
			log.Fatal(err)
		}
		if *colInit != "" {
			if err := initCollections(reg, *colInit); err != nil {
				log.Fatal(err)
			}
		}
		names := reg.Names()
		log.Printf("collections root %s: %d collections %v", *colRoot, len(names), names)
		gw, err := serve.NewCollectionServer(reg, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := runGateway(*addr, gw, *drainFor); err != nil {
			log.Fatal(err)
		}
		// Checkpoint each collection on clean shutdown so the next start
		// replays no WAL, then drain and close the registry.
		for _, name := range reg.Names() {
			if c, err := reg.Get(name); err == nil {
				if err := c.Checkpoint(); err != nil {
					log.Printf("checkpoint %s: %v", name, err)
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := reg.Close(ctx); err != nil {
			log.Printf("registry close: %v", err)
		}
		return
	}

	if single {
		loadIndex := func() (*core.Engine, error) {
			if *index == "" {
				return nil, fmt.Errorf("store %q is uninitialised; the first run needs -index to seed it", *walDir)
			}
			f, err := os.Open(*index)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return core.LoadEngine(f)
		}
		var (
			e   *core.Engine
			d   *store.Durable
			err error
		)
		if *walDir != "" {
			opts := store.Options{
				SyncEvery:    *walSyncEvery,
				SyncInterval: *walSyncInt,
				CompactRatio: *compactRatio,
				Logf:         log.Printf,
			}
			if *lexOn {
				// Default BM25 parameters; the text sidecar and upsert-text
				// WAL records make the lexical index crash-durable.
				opts.Lexical = &lexical.Config{}
			}
			if *chaosSpec != "" {
				rules, cerr := fsx.ParseFaults(*chaosSpec)
				if cerr != nil {
					log.Fatal(cerr)
				}
				// Chaos drills: every store I/O call goes through the fault
				// injector. A tripped fault poisons the WAL and opens the
				// gateway's write breaker exactly as a real disk would.
				opts.FS = fsx.NewFaulty(fsx.OS{}, *chaosSeed, rules...)
				log.Printf("CHAOS: injecting storage faults %q (seed %d) — drill mode, not for production", *chaosSpec, *chaosSeed)
			}
			d, err = store.OpenOrCreate(*walDir, loadIndex, opts)
			if err != nil {
				log.Fatal(err)
			}
			e = d.Engine()
			st := d.Stats()
			log.Printf("store %s: seq %d (snapshot watermark %d, replayed %d), %d WAL segments (%d bytes)",
				*walDir, st.LastSeq, st.Watermark, st.Replayed, st.WALSegments, st.WALDiskBytes)
		} else {
			if e, err = loadIndex(); err != nil {
				log.Fatal(err)
			}
		}
		if *nprobe > 0 {
			e.SetNProbe(*nprobe)
		}
		if *ef > 0 {
			e.SetEfSearch(*ef)
		}
		if *sq8 && !*frozen {
			log.Fatal("-sq8 requires -frozen")
		}
		if *frozen {
			if err := e.Freeze(hnsw.FreezeOptions{SQ8: *sq8, RerankK: *rerankK}); err != nil {
				log.Fatal(err)
			}
			if fi, ok := e.FrozenInfo(); ok {
				log.Printf("frozen: %d partitions, %d points flat, %.1f MiB arena, sq8=%v rerank-k=%d",
					fi.Partitions, fi.FrozenLen, float64(fi.ArenaBytes)/(1<<20), fi.Quantized, *rerankK)
			}
		}
		log.Printf("index: %d points, %d partitions, dim %d", e.Len(), e.Partitions(), e.Dim())
		if *lexOn {
			log.Printf("lexical: hybrid retrieval enabled (%d documents indexed)", e.TextCount())
		}
		backend := &serve.EngineBackend{Engine: e, Threads: *threads, Store: d, Lexical: *lexOn}
		if err := serveHTTP(*addr, backend, srvCfg, *drainFor); err != nil {
			log.Fatal(err)
		}
		if d != nil {
			// Checkpoint on clean shutdown so the next start replays no WAL.
			if err := d.Checkpoint(); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
			st := d.Stats()
			log.Printf("store: %d upserts, %d deletes, %d fsyncs, %d compactions (%d tombstones folded)",
				st.Upserts, st.Deletes, st.WALFsyncs, st.Compactions, st.Folded)
			if err := d.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}
		return
	}

	if sharded {
		// Router mode: stateless scatter-gather gateway over annworker
		// -serve shards. No data is loaded here; the shards hold it.
		m, err := serve.ParseShardMap(*shardSpec)
		if err != nil {
			log.Fatal(err)
		}
		router, err := serve.NewRouter(m, serve.RouterConfig{
			DialTimeout:   *shardDial,
			SearchTimeout: *shardSearch,
			HedgeDelay:    *hedge,
			ProbeCooloff:  *probeCooloff,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer router.Close()
		log.Printf("routing %d shards, dim %d", router.Shards(), router.Dim())
		if err := serveHTTP(*addr, router, srvCfg, *drainFor); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Distributed: join the cluster as rank 0, build (or resume), then
	// serve HTTP as the master driver until a shutdown signal.
	list := strings.Split(*clusterAddrs, ",")
	if len(list) < 2 {
		log.Fatal("-cluster needs at least a master and one worker address")
	}
	if *data == "" && *resume == "" {
		log.Fatal("distributed mode needs -data or -resume")
	}
	cfg := core.DefaultConfig(len(list) - 1)
	cfg.K = *clusterK
	cfg.NProbe = *nprobe
	cfg.Replication = *repl
	cfg.ThreadsPerWorker = *wthreads
	cfg.QueryTimeout = *queryTimeout
	if *nprobe <= 0 {
		cfg.NProbe = 2
	}
	node, comm, err := cluster.JoinTCPOpts(0, list, cluster.TCPOptions{DialTimeout: *workerWait})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	driver := func(m *core.Master) error {
		log.Printf("cluster up: %d workers, dim %d, k=%d", len(list)-1, m.Dim(), m.K())
		return serveHTTP(*addr, &serve.MasterBackend{Master: m}, srvCfg, *drainFor)
	}
	if *resume != "" {
		err = core.RunClusterFromCheckpoint(comm, *resume, cfg, driver)
	} else {
		ds, lerr := dataset.LoadFvecsFile(*data, *limit)
		if lerr != nil {
			log.Fatal(lerr)
		}
		err = core.RunCluster(comm, ds, cfg, driver)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// initCollections creates any collection listed in the init file that
// does not exist yet; existing ones are left untouched (their on-disk
// config wins, so an edited init file cannot silently reconfigure a
// collection holding data).
func initCollections(reg *collection.Registry, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var specs []struct {
		Name string `json:"name"`
		collection.Config
	}
	if err := json.Unmarshal(b, &specs); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	for _, sp := range specs {
		_, err := reg.Create(sp.Name, sp.Config)
		switch {
		case err == nil:
			log.Printf("created collection %q (dim %d)", sp.Name, sp.Dim)
		case errors.Is(err, collection.ErrExists):
			// already there: recovered from disk by Open
		default:
			return fmt.Errorf("creating collection %q: %w", sp.Name, err)
		}
	}
	return nil
}

// serveHTTP runs a single-backend gateway until SIGTERM/SIGINT, then
// drains: stop accepting connections, finish queued searches, exit.
func serveHTTP(addr string, backend serve.Backend, cfg serve.ServerConfig, drainFor time.Duration) error {
	return runGateway(addr, serve.NewServer(backend, cfg), drainFor)
}

// runGateway runs an already-wired gateway with signal-driven drain.
func runGateway(addr string, gw *serve.Server, drainFor time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: gw.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("%v: draining (up to %v)", sig, drainFor)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	// Stop accepting and let in-flight handlers deliver their
	// submissions, then drain the batcher's queue.
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := gw.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snap := gw.Stats().Snapshot()
	log.Printf("drained: served %d queries in %d batches (mean batch %.1f), shed %d, cache hits %d",
		snap.Queries, snap.Batches, snap.MeanBatchSize, snap.Shed, snap.CacheHits)
	return <-errCh
}
