// anngen generates the synthetic datasets of the paper's evaluation
// (Table I stand-ins) plus query sets and exact ground truth, in the
// TEXMEX fvecs/ivecs formats:
//
//	anngen -dataset sift -n 100000 -queries 1000 -out data/
//
// writes data/sift.fvecs, data/sift_query.fvecs, data/sift_gt.ivecs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anngen: ")
	var (
		name    = flag.String("dataset", "sift", "dataset: sift, deep, gist, syn1m, syn10m")
		n       = flag.Int("n", 100_000, "number of points")
		queries = flag.Int("queries", 1000, "number of queries (0 to skip)")
		k       = flag.Int("k", 10, "ground-truth neighbors per query (0 to skip)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	ds, err := dataset.Named(*name, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	base := filepath.Join(*out, *name)
	if err := dataset.SaveFvecsFile(base+".fvecs", ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.fvecs (%d x %d)\n", base, ds.Len(), ds.Dim)

	if *queries <= 0 {
		return
	}
	qs := dataset.PerturbedQueries(ds, *queries, perturb(*name), *seed+1)
	if err := dataset.SaveFvecsFile(base+"_query.fvecs", qs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s_query.fvecs (%d x %d)\n", base, qs.Len(), qs.Dim)

	if *k <= 0 {
		return
	}
	gt := bruteforce.GroundTruth(ds, qs, *k, vec.L2)
	f, err := os.Create(base + "_gt.ivecs")
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteIvecs(f, gt); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s_gt.ivecs (%d x %d)\n", base, len(gt), *k)
}

func perturb(name string) float64 {
	switch name {
	case "sift":
		return 4
	case "deep":
		return 0.05
	case "gist":
		return 0.01
	}
	return 0.5
}
