// annbench regenerates the paper's tables and figures. Each experiment
// executes the full distributed protocol in-process and, where the
// paper's core counts exceed the machine, prices measured work with the
// calibrated cost model (see DESIGN.md and EXPERIMENTS.md).
//
//	annbench -experiment table3
//	annbench -experiment all -points 50000 -queries 1000
//
// The serving benchmark also emits a machine-readable result file for
// regression tracking: the same workload is driven through the three
// single-process serving variants — scalar (dynamic HNSW), frozen (flat
// layout) and frozen_sq8 (flat layout + SQ8 quantized first pass with
// exact re-rank) — over one engine build, and the JSON is keyed by
// variant:
//
//	annbench -json BENCH_results.json
//
// The -json run also sweeps the filtered-search selectivity tiers
// (filter matches 100%, 10% and 1% of the corpus), comparing pushdown
// (predicate inside the graph traversal) against the naive post-filter
// baseline; the entries land under "filtered_1.00", "filtered_0.10"
// and "filtered_0.01". It then runs the hybrid-retrieval benchmark — a
// keyword-skewed workload (one query in five is answerable only via a
// rare planted token) scored against exact fused ground truth — under
// "hybrid_rrf" and "hybrid_weighted", each carrying both the fused
// recall and the vector-only baseline recall against the same truth.
//
// With -shards N it additionally runs a sharded deployment (N worker
// engines behind real loopback TCP, merged by the gateway's
// scatter-gather router) under the "sharded" key:
//
//	annbench -json BENCH_results.json -shards 3
//
// -gate turns the run into a CI regression check: it exits non-zero if
// the frozen_sq8 recall drops more than one point below scalar, if the
// 1%-selectivity filtered recall falls below 0.95, or if hybrid RRF
// recall falls below the vector-only baseline on the keyword-skewed
// workload (this is what `make bench-smoke` runs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbench: ")
	var (
		name    = flag.String("experiment", "all", "experiment name or 'all' / 'list'")
		points  = flag.Int("points", 100_000, "points in each dataset stand-in")
		queries = flag.Int("queries", 2000, "queries per batch")
		k       = flag.Int("k", 10, "neighbors per query")
		seed    = flag.Int64("seed", 1, "workload seed")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		jsonOut = flag.String("json", "", "run the serving benchmark variants (scalar, frozen, frozen_sq8) and write their results (recall, QPS, p50/p99) to this file as JSON")
		shards  = flag.Int("shards", 0, "with -json: also benchmark a sharded deployment over this many TCP worker shards")
		gate    = flag.Bool("gate", false, "with -json: exit non-zero if frozen_sq8 recall drops more than 0.01 below scalar")
	)
	flag.Parse()

	if *name == "list" {
		for _, e := range exp.All() {
			fmt.Printf("  %-15s %s\n", e.Name, e.Paper)
		}
		return
	}
	opts := exp.Options{
		Points:  *points,
		Queries: *queries,
		K:       *k,
		Seed:    *seed,
		Out:     os.Stdout,
		Quick:   *quick,
	}
	if *jsonOut != "" {
		doc, err := exp.ServingBenchVariants(opts)
		if err != nil {
			log.Fatalf("serving bench: %v", err)
		}
		filtered, err := exp.ServingBenchFiltered(opts)
		if err != nil {
			log.Fatalf("filtered serving bench: %v", err)
		}
		for k, v := range filtered {
			doc[k] = v
		}
		hybrid, err := exp.ServingBenchHybrid(opts)
		if err != nil {
			log.Fatalf("hybrid serving bench: %v", err)
		}
		for k, v := range hybrid {
			doc[k] = v
		}
		if *shards > 0 {
			sharded, err := exp.ServingBenchSharded(opts, *shards)
			if err != nil {
				log.Fatalf("sharded serving bench: %v", err)
			}
			doc["sharded"] = sharded
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
		if *gate {
			scalar, sq8 := doc["scalar"], doc["frozen_sq8"]
			const slack = 0.01
			if sq8.Recall < scalar.Recall-slack {
				log.Fatalf("RECALL GATE FAILED: frozen_sq8 recall %.4f < scalar %.4f - %.2f",
					sq8.Recall, scalar.Recall, slack)
			}
			log.Printf("recall gate ok: frozen_sq8 %.4f vs scalar %.4f (slack %.2f)",
				sq8.Recall, scalar.Recall, slack)
			narrow := doc["filtered_0.01"]
			const minFilteredRecall = 0.95
			if narrow.Recall < minFilteredRecall {
				log.Fatalf("FILTERED RECALL GATE FAILED: 1%% selectivity pushdown recall %.4f < %.2f (post-filter baseline %.4f)",
					narrow.Recall, minFilteredRecall, narrow.PostFilterRecall)
			}
			log.Printf("filtered recall gate ok: 1%% selectivity pushdown %.4f (post-filter baseline %.4f)",
				narrow.Recall, narrow.PostFilterRecall)
			hy := doc["hybrid_rrf"]
			if hy.Recall < hy.VectorOnlyRecall {
				log.Fatalf("HYBRID RECALL GATE FAILED: fused recall %.4f < vector-only %.4f on the keyword-skewed workload",
					hy.Recall, hy.VectorOnlyRecall)
			}
			log.Printf("hybrid recall gate ok: fused %.4f vs vector-only %.4f (%d keyword queries)",
				hy.Recall, hy.VectorOnlyRecall, hy.KeywordQueries)
		}
		return
	}
	run := func(e exp.Experiment) {
		t0 := time.Now()
		if err := e.Run(opts); err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Printf("[%s done in %v]\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}
	if *name == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e, err := exp.Find(*name)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}
