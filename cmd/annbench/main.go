// annbench regenerates the paper's tables and figures. Each experiment
// executes the full distributed protocol in-process and, where the
// paper's core counts exceed the machine, prices measured work with the
// calibrated cost model (see DESIGN.md and EXPERIMENTS.md).
//
//	annbench -experiment table3
//	annbench -experiment all -points 50000 -queries 1000
//
// The serving benchmark also emits a machine-readable result file for
// regression tracking (recall, QPS, latency percentiles):
//
//	annbench -json BENCH_results.json
//
// With -shards N it additionally runs the same workload through a
// sharded deployment (N worker engines behind real loopback TCP, merged
// by the gateway's scatter-gather router) and the JSON becomes
// {"single": {...}, "sharded": {...}} so both paths are tracked side by
// side:
//
//	annbench -json BENCH_results.json -shards 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbench: ")
	var (
		name    = flag.String("experiment", "all", "experiment name or 'all' / 'list'")
		points  = flag.Int("points", 100_000, "points in each dataset stand-in")
		queries = flag.Int("queries", 2000, "queries per batch")
		k       = flag.Int("k", 10, "neighbors per query")
		seed    = flag.Int64("seed", 1, "workload seed")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		jsonOut = flag.String("json", "", "run the serving benchmark and write its results (recall, QPS, p50/p99) to this file as JSON")
		shards  = flag.Int("shards", 0, "with -json: also benchmark a sharded deployment over this many TCP worker shards")
	)
	flag.Parse()

	if *name == "list" {
		for _, e := range exp.All() {
			fmt.Printf("  %-15s %s\n", e.Name, e.Paper)
		}
		return
	}
	opts := exp.Options{
		Points:  *points,
		Queries: *queries,
		K:       *k,
		Seed:    *seed,
		Out:     os.Stdout,
		Quick:   *quick,
	}
	if *jsonOut != "" {
		res, err := exp.ServingBench(opts)
		if err != nil {
			log.Fatalf("serving bench: %v", err)
		}
		var doc any = res
		if *shards > 0 {
			sharded, err := exp.ServingBenchSharded(opts, *shards)
			if err != nil {
				log.Fatalf("sharded serving bench: %v", err)
			}
			doc = map[string]*exp.ServingResult{"single": res, "sharded": sharded}
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
		return
	}
	run := func(e exp.Experiment) {
		t0 := time.Now()
		if err := e.Run(opts); err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Printf("[%s done in %v]\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}
	if *name == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e, err := exp.Find(*name)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}
