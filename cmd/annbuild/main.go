// annbuild builds a partitioned VP+HNSW index (the paper's engine in its
// single-node form) from an fvecs file and saves it:
//
//	annbuild -data sift.fvecs -partitions 16 -m 16 -out sift.ann
//
// -skip/-limit carve one shard out of a larger corpus while keeping
// global IDs (row i of the file keeps ID i), so per-shard indexes for a
// sharded deployment (annworker -serve + annserve -shards) merge
// correctly at the gateway:
//
//	annbuild -data sift.fvecs -skip 0      -limit 500000 -out shard0.ann
//	annbuild -data sift.fvecs -skip 500000 -limit 500000 -out shard1.ann
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbuild: ")
	var (
		data   = flag.String("data", "", "input fvecs file (required)")
		limit  = flag.Int("limit", 0, "load at most this many points (0 = all)")
		skip   = flag.Int("skip", 0, "skip this many leading points; loaded rows keep their global IDs (sharded builds)")
		parts  = flag.Int("partitions", 16, "number of VP-tree partitions")
		m      = flag.Int("m", 16, "HNSW M parameter")
		efc    = flag.Int("efc", 200, "HNSW efConstruction")
		nprobe = flag.Int("nprobe", 2, "partitions searched per query (stored as default)")
		seed   = flag.Int64("seed", 1, "construction seed")
		out    = flag.String("out", "index.ann", "output index file")

		frozenReport = flag.Bool("frozen-report", false, "after building, freeze with SQ8 and report the flat-layout footprint plus sampled quantized recall vs the scalar path (the index file is unaffected)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	loadN := *limit
	if *skip > 0 && loadN > 0 {
		loadN += *skip
	}
	ds, err := dataset.LoadFvecsFile(*data, loadN)
	if err != nil {
		log.Fatal(err)
	}
	if *skip > 0 {
		if *skip >= ds.Len() {
			log.Fatalf("-skip %d leaves no points (file has %d)", *skip, ds.Len())
		}
		// Slice keeps the parallel ID slice, so row i of the file stays
		// ID i in the shard index — the invariant gateway merging needs.
		ds = ds.Slice(*skip, ds.Len())
	}
	fmt.Printf("loaded %d x %d from %s (skip %d)\n", ds.Len(), ds.Dim, *data, *skip)

	cfg := core.DefaultConfig(*parts)
	cfg.NProbe = *nprobe
	cfg.Seed = *seed
	cfg.HNSW = hnsw.DefaultConfig(vec.L2)
	cfg.HNSW.M = *m
	cfg.HNSW.EfConstruction = *efc

	t0 := time.Now()
	e, err := core.NewEngine(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d partitions in %v\n", e.Partitions(), time.Since(t0).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(st.Size())/(1<<20))

	if *frozenReport {
		reportFrozen(e, ds)
	}
}

// reportFrozen freezes the just-built engine with SQ8 on and prints what
// serving it frozen would cost and return: arena footprint and recall@10
// of the quantized path against the scalar path over sampled rows.
func reportFrozen(e *core.Engine, ds *vec.Dataset) {
	const k, samples = 10, 100
	step := ds.Len() / samples
	if step < 1 {
		step = 1
	}
	queries := make([][]float32, 0, samples)
	for i := 0; i < ds.Len() && len(queries) < samples; i += step {
		queries = append(queries, ds.At(i))
	}
	baseline := make([]map[int64]bool, len(queries))
	for i, q := range queries {
		rs, err := e.Search(q, k)
		if err != nil {
			log.Fatal(err)
		}
		baseline[i] = make(map[int64]bool, len(rs))
		for _, r := range rs {
			baseline[i][r.ID] = true
		}
	}
	t0 := time.Now()
	if err := e.Freeze(hnsw.FreezeOptions{SQ8: true}); err != nil {
		log.Fatal(err)
	}
	froze := time.Since(t0)
	hits, want := 0, 0
	for i, q := range queries {
		rs, err := e.Search(q, k)
		if err != nil {
			log.Fatal(err)
		}
		want += len(baseline[i])
		for _, r := range rs {
			if baseline[i][r.ID] {
				hits++
			}
		}
	}
	fi, _ := e.FrozenInfo()
	fmt.Printf("frozen report: froze %d partitions in %v, %.1f MiB arena (sq8)\n",
		fi.Partitions, froze.Round(time.Millisecond), float64(fi.ArenaBytes)/(1<<20))
	if want > 0 {
		fmt.Printf("frozen report: sq8 recall@%d vs scalar = %.4f over %d sampled queries (rerank ratio %.2f)\n",
			k, float64(hits)/float64(want), len(queries), fi.RerankRatio())
	}
}
