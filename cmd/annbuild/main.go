// annbuild builds a partitioned VP+HNSW index (the paper's engine in its
// single-node form) from an fvecs file and saves it:
//
//	annbuild -data sift.fvecs -partitions 16 -m 16 -out sift.ann
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbuild: ")
	var (
		data   = flag.String("data", "", "input fvecs file (required)")
		limit  = flag.Int("limit", 0, "load at most this many points (0 = all)")
		parts  = flag.Int("partitions", 16, "number of VP-tree partitions")
		m      = flag.Int("m", 16, "HNSW M parameter")
		efc    = flag.Int("efc", 200, "HNSW efConstruction")
		nprobe = flag.Int("nprobe", 2, "partitions searched per query (stored as default)")
		seed   = flag.Int64("seed", 1, "construction seed")
		out    = flag.String("out", "index.ann", "output index file")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadFvecsFile(*data, *limit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d x %d from %s\n", ds.Len(), ds.Dim, *data)

	cfg := core.DefaultConfig(*parts)
	cfg.NProbe = *nprobe
	cfg.Seed = *seed
	cfg.HNSW = hnsw.DefaultConfig(vec.L2)
	cfg.HNSW.M = *m
	cfg.HNSW.EfConstruction = *efc

	t0 := time.Now()
	e, err := core.NewEngine(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d partitions in %v\n", e.Partitions(), time.Since(t0).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(st.Size())/(1<<20))
}
