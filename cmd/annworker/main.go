// annworker runs one worker rank of a TCP deployment; see annmaster for
// the full invocation. The worker receives its shard from the master,
// participates in the distributed VP-tree construction, builds its local
// HNSW index, and serves query batches until the master shuts the
// cluster down.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	var (
		rank    = flag.Int("rank", 0, "this worker's rank (1..P; required)")
		addrs   = flag.String("addrs", "", "comma-separated rank addresses (required)")
		k       = flag.Int("k", 10, "neighbors per query (must match the master)")
		nprobe  = flag.Int("nprobe", 2, "must match the master")
		repl    = flag.Int("replication", 1, "must match the master")
		threads = flag.Int("threads", 4, "searcher threads")
		seed    = flag.Int64("seed", 1, "must match the master")
		wait    = flag.Duration("wait", 60*time.Second, "peer dial timeout")
		ckpt    = flag.String("checkpoint", "", "save the built index under this directory")
		resume  = flag.String("resume", "", "serve from a checkpoint directory instead of building")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "must match the master")
		hbInterval   = flag.Duration("hb-interval", time.Second, "TCP heartbeat period (negative disables)")
		hbTimeout    = flag.Duration("hb-timeout", 5*time.Second, "declare a silent peer dead after this long")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("annworker[%d]: ", *rank))
	list := strings.Split(*addrs, ",")
	if *addrs == "" || *rank <= 0 || *rank >= len(list) {
		flag.Usage()
		os.Exit(2)
	}
	node, comm, err := cluster.JoinTCPOpts(*rank, list, cluster.TCPOptions{
		DialTimeout:       *wait,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	cfg := core.DefaultConfig(len(list) - 1)
	cfg.K = *k
	cfg.NProbe = *nprobe
	cfg.Replication = *repl
	cfg.ThreadsPerWorker = *threads
	cfg.Seed = *seed

	cfg.CheckpointDir = *ckpt
	cfg.QueryTimeout = *queryTimeout
	log.Printf("joined cluster of %d ranks, serving", len(list))
	var err2 error
	if *resume != "" {
		err2 = core.RunClusterFromCheckpoint(comm, *resume, cfg, nil)
	} else {
		err2 = core.RunCluster(comm, nil, cfg, nil)
	}
	if err2 != nil {
		log.Fatal(err2)
	}
	log.Printf("shut down cleanly")
}
