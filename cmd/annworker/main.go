// annworker runs one worker of a TCP deployment, in one of two modes.
//
// Rank mode (the default; see annmaster for the full invocation): the
// worker receives its shard from the master, participates in the
// distributed VP-tree construction, builds its local HNSW index, and
// serves query batches until the master shuts the cluster down.
//
// Serve mode (-serve): the worker loads a prebuilt index (annbuild) as
// one shard of a sharded serving deployment and answers batched
// searches from annserve gateways over the shard RPC until SIGTERM:
//
//	annworker -serve -listen :7100 -index shard0.ann -shard 0
//
// Start one per shard (and per replica), then point a gateway at them
// with annserve -shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	var (
		rank    = flag.Int("rank", 0, "this worker's rank (1..P; required)")
		addrs   = flag.String("addrs", "", "comma-separated rank addresses (required)")
		k       = flag.Int("k", 10, "neighbors per query (must match the master)")
		nprobe  = flag.Int("nprobe", 2, "must match the master")
		repl    = flag.Int("replication", 1, "must match the master")
		threads = flag.Int("threads", 4, "searcher threads")
		seed    = flag.Int64("seed", 1, "must match the master")
		wait    = flag.Duration("wait", 60*time.Second, "peer dial timeout")
		ckpt    = flag.String("checkpoint", "", "save the built index under this directory")
		resume  = flag.String("resume", "", "serve from a checkpoint directory instead of building")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "must match the master")
		hbInterval   = flag.Duration("hb-interval", time.Second, "TCP heartbeat period (negative disables)")
		hbTimeout    = flag.Duration("hb-timeout", 5*time.Second, "declare a silent peer dead after this long")

		serveMode = flag.Bool("serve", false, "shard-serving mode: serve a prebuilt index to annserve gateways")
		listen    = flag.String("listen", ":7100", "shard RPC listen address (serve mode)")
		indexPath = flag.String("index", "", "index file from annbuild (serve mode; required)")
		shard     = flag.Int("shard", 0, "this worker's shard number in the gateway's -shards map (serve mode)")
		ef        = flag.Int("ef", 0, "override HNSW efSearch (serve mode)")
	)
	flag.Parse()
	if *serveMode {
		// -nprobe is shared with rank mode, where its default (2) is
		// meaningful; in serve mode the loaded index keeps its own
		// setting unless the flag was given explicitly.
		np := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "nprobe" {
				np = *nprobe
			}
		})
		runShardServer(*listen, *indexPath, *shard, *threads, np, *ef)
		return
	}
	log.SetPrefix(fmt.Sprintf("annworker[%d]: ", *rank))
	list := strings.Split(*addrs, ",")
	if *addrs == "" || *rank <= 0 || *rank >= len(list) {
		flag.Usage()
		os.Exit(2)
	}
	node, comm, err := cluster.JoinTCPOpts(*rank, list, cluster.TCPOptions{
		DialTimeout:       *wait,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	cfg := core.DefaultConfig(len(list) - 1)
	cfg.K = *k
	cfg.NProbe = *nprobe
	cfg.Replication = *repl
	cfg.ThreadsPerWorker = *threads
	cfg.Seed = *seed

	cfg.CheckpointDir = *ckpt
	cfg.QueryTimeout = *queryTimeout
	log.Printf("joined cluster of %d ranks, serving", len(list))
	var err2 error
	if *resume != "" {
		err2 = core.RunClusterFromCheckpoint(comm, *resume, cfg, nil)
	} else {
		err2 = core.RunCluster(comm, nil, cfg, nil)
	}
	if err2 != nil {
		log.Fatal(err2)
	}
	log.Printf("shut down cleanly")
}

// runShardServer is serve mode: load the prebuilt shard index and
// answer gateway searches over the shard RPC until SIGTERM/SIGINT.
func runShardServer(listen, indexPath string, shard, threads, nprobe, ef int) {
	log.SetPrefix(fmt.Sprintf("annworker[shard %d]: ", shard))
	if indexPath == "" {
		log.Print("serve mode needs -index")
		flag.Usage()
		os.Exit(2)
	}
	if shard < 0 {
		log.Fatalf("-shard %d: shard numbers start at 0", shard)
	}
	f, err := os.Open(indexPath)
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.LoadEngine(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if nprobe > 0 {
		e.SetNProbe(nprobe)
	}
	if ef > 0 {
		e.SetEfSearch(ef)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := cluster.NewShardServer(ln, cluster.ShardInfo{
		Shard:  shard,
		Dim:    e.Dim(),
		Points: int64(e.Len()),
	}, e.ShardHandler(threads))
	log.Printf("serving shard %d on %s: %d points, %d partitions, dim %d",
		shard, srv.Addr(), e.Len(), e.Partitions(), e.Dim())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigCh
	log.Printf("%v: shutting down", sig)
	srv.Close()
}
