GO ?= go
BIN ?= bin

.PHONY: all build bin test tier1 tier1-race tier1-cluster fast vet race bench bench-smoke fuzz-smoke clean

all: build

build:
	$(GO) build ./...

# Install every binary (anngen, annbuild, annquery, annserve,
# annmaster, annworker, annbench) into $(BIN)/.
bin:
	$(GO) build -o $(BIN)/ ./cmd/...

# Quick loop: vet plus the short test suite. Fault-injection and other
# timing-dependent integration tests honor -short and are skipped here.
fast: vet
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment-driver tests carry real compute; under the race
# detector on a small machine they outlive go test's default 10m
# per-package timeout, so give them room.
race:
	$(GO) test -race -timeout 1800s ./...

# tier1 is the gate a change must pass before merging: vet clean and the
# full suite (including the fault-injection integration tests) green
# under the race detector.
tier1: build vet race

# Focused race pass over the concurrency-heavy packages: the durable
# store (WAL appends vs group-commit ticker vs compaction swaps), the
# gateway (batcher/cache/mutations), the engine (searches vs swaps),
# the multi-tenant collection layer (filtered search vs mutation,
# drain vs admission), and the hybrid-retrieval packages (lock-free
# BM25 reads vs writes, rank fusion). Much faster than the full race
# suite; CI runs both.
tier1-race:
	$(GO) test -race -count=1 -timeout 900s ./internal/store/... ./internal/serve/... ./internal/core/... ./internal/collection/... ./internal/lexical/... ./internal/fusion/...

# End-to-end multi-node serving gate: gateway + worker shards over real
# loopback TCP (internal/serve/clustertest) plus the shard RPC layer,
# under the race detector. Kill-a-shard-mid-query, replica takeover,
# golden recall equivalence, and cache invalidation all run here.
tier1-cluster:
	$(GO) test -race -count=1 -timeout 300s ./internal/serve/clustertest/... ./internal/cluster/...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Serving-path regression gate: run the scalar / frozen / frozen_sq8
# variants, the filtered-search selectivity sweep, and the hybrid
# (BM25 + vector rank fusion) benchmark on a reduced workload; fail if
# the quantized path's recall drops more than a point below scalar,
# the 1%-selectivity filtered pushdown recall falls below 0.95, or
# hybrid RRF recall falls below the vector-only baseline on the
# keyword-skewed workload. CI runs this on every push; the committed
# BENCH_results.json is regenerated with the full default workload
# (plain `annbench -json BENCH_results.json`).
bench-smoke:
	$(GO) run ./cmd/annbench -json /tmp/bench-smoke.json -points 20000 -queries 400 -gate

# Short native-fuzzing passes: the WAL record scanner (no input may
# panic it or deliver a record whose CRC does not verify), the
# upsert-text record codec (exact-length framing, byte-stable
# re-encode), the SQ8 codec (non-finite rejection, round-trip bounds),
# the filter expression parser (no panic, canonical-form fixed point,
# reparse equivalence), and the lexical tokenizer (no panic,
# deterministic, only lowercased alphanumeric terms). CI runs this on
# every push; run without -fuzztime locally to dig deeper.
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadRecord -fuzztime=10s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzTextRecord -fuzztime=10s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzSQ8Codec -fuzztime=10s -run '^$$' ./internal/vec
	$(GO) test -fuzz=FuzzFilterParse -fuzztime=10s -run '^$$' ./internal/filter
	$(GO) test -fuzz=FuzzTokenize -fuzztime=10s -run '^$$' ./internal/lexical

clean:
	$(GO) clean ./...
