GO ?= go

.PHONY: all build test tier1 fast vet race bench clean

all: build

build:
	$(GO) build ./...

# Quick loop: vet plus the short test suite. Fault-injection and other
# timing-dependent integration tests honor -short and are skipped here.
fast: vet
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the gate a change must pass before merging: vet clean and the
# full suite (including the fault-injection integration tests) green
# under the race detector.
tier1: build vet race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

clean:
	$(GO) clean ./...
