// Package repro is a pure-Go reproduction of "Fast Scalable Approximate
// Nearest Neighbor Search for High-dimensional Data" (Bashyam &
// Vadhiyar, IEEE CLUSTER 2020): a distributed approximate k-NN engine
// that partitions the dataset with a cooperatively built vantage point
// tree, indexes each partition with HNSW, and serves query batches
// through a master-worker protocol with one-sided result accumulation
// and replication-based load balancing.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory); runnable entry points are the binaries under cmd/ and the
// programs under examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation at reduced scale;
// the annbench binary runs the full-scale versions.
package repro
