package index

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hnsw"
	"repro/internal/topk"
	"repro/internal/vec"
)

// frozenLocal serves a partition from a flat frozen layout (contiguous
// arena + CSR adjacency + optional SQ8 codes) while the dynamic HNSW
// graph underneath keeps accepting WAL-replayed inserts. Searches hit
// the frozen view lock-free; rows appended after the freeze (the
// "tail") are merged in by an exact linear scan, and when the tail
// outgrows refreezeThreshold a background re-freeze folds it into a new
// frozen view, installed with one atomic pointer swap — concurrent
// searches see either the old or the new view, never a torn one.
type frozenLocal struct {
	g    *hnsw.Graph
	opts hnsw.FreezeOptions

	frozen     atomic.Pointer[hnsw.Frozen]
	rerankK    atomic.Int64
	refreezing atomic.Bool

	searches    atomic.Int64
	quantComps  atomic.Int64
	reranked    atomic.Int64
	tailScanned atomic.Int64
	refreezes   atomic.Int64
}

// refreezeThreshold is the tail size beyond which a search triggers a
// background re-freeze: an eighth of the frozen base, floored so small
// bursts of inserts do not thrash O(n) freezes.
func refreezeThreshold(frozenLen int) int {
	t := frozenLen / 8
	if t < 256 {
		t = 256
	}
	return t
}

// Freeze wraps an HNSW-backed Local in the frozen serving layout.
// Freezing an already-frozen index re-freezes it with the new options
// (counters reset). Exact local indexes cannot be frozen.
func Freeze(l Local, opts hnsw.FreezeOptions) (Local, error) {
	g, ok := HNSWGraph(l)
	if !ok {
		return nil, fmt.Errorf("index: local index %q cannot be frozen (HNSW only)", l.Kind())
	}
	f, err := g.Freeze(opts)
	if err != nil {
		return nil, err
	}
	fl := &frozenLocal{g: g, opts: opts}
	fl.frozen.Store(f)
	fl.rerankK.Store(int64(opts.RerankK))
	return fl, nil
}

// Frozen reports whether l serves from a frozen layout.
func Frozen(l Local) bool {
	_, ok := l.(*frozenLocal)
	return ok
}

// FrozenView exposes the current frozen snapshot of a frozen Local.
func FrozenView(l Local) (*hnsw.Frozen, bool) {
	fl, ok := l.(*frozenLocal)
	if !ok {
		return nil, false
	}
	return fl.frozen.Load(), true
}

// SetRerankK adjusts the re-rank budget of a frozen Local at runtime
// (no-op otherwise). See hnsw.FreezeOptions.RerankK for the 0/negative
// conventions.
func SetRerankK(l Local, rr int) {
	if fl, ok := l.(*frozenLocal); ok {
		fl.rerankK.Store(int64(rr))
	}
}

// FrozenStats is a point-in-time counter snapshot of one frozen Local.
type FrozenStats struct {
	FrozenLen   int   // rows in the frozen view
	TailLen     int   // rows appended since the freeze
	ArenaBytes  int64 // frozen layout footprint (arena + codes + adjacency)
	Quantized   bool  // SQ8 first pass active
	Searches    int64 // searches served from the frozen path
	QuantComps  int64 // quantized distance evaluations
	Reranked    int64 // candidates re-ranked at full precision
	TailScanned int64 // tail rows scanned exactly
	Refreezes   int64 // background re-freezes folded in
}

// FrozenLocalStats snapshots a frozen Local's counters.
func FrozenLocalStats(l Local) (FrozenStats, bool) {
	fl, ok := l.(*frozenLocal)
	if !ok {
		return FrozenStats{}, false
	}
	f := fl.frozen.Load()
	tail := fl.g.Len() - f.Len()
	if tail < 0 {
		tail = 0
	}
	return FrozenStats{
		FrozenLen:   f.Len(),
		TailLen:     tail,
		ArenaBytes:  f.ArenaBytes(),
		Quantized:   f.Quantized(),
		Searches:    fl.searches.Load(),
		QuantComps:  fl.quantComps.Load(),
		Reranked:    fl.reranked.Load(),
		TailScanned: fl.tailScanned.Load(),
		Refreezes:   fl.refreezes.Load(),
	}, true
}

// Refreeze synchronously rebuilds the frozen view from the graph's
// current contents.
func (l *frozenLocal) Refreeze() error {
	f, err := l.g.Freeze(l.opts)
	if err != nil {
		return err
	}
	l.frozen.Store(f)
	l.refreezes.Add(1)
	return nil
}

func (l *frozenLocal) maybeRefreeze(tail, frozenLen int) {
	if tail <= refreezeThreshold(frozenLen) {
		return
	}
	if !l.refreezing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer l.refreezing.Store(false)
		// Best-effort: a failed freeze (e.g. NaN snuck into the tail
		// with SQ8 on) keeps serving the old view plus tail scans.
		_ = l.Refreeze()
	}()
}

func (l *frozenLocal) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	f := l.frozen.Load()
	l.searches.Add(1)

	var (
		rs  []topk.Result
		hst hnsw.Stats
		err error
	)
	if f.Len() > 0 {
		rs, hst, err = f.SearchEf(q, k, l.g.EfSearch(), int(l.rerankK.Load()))
		if err != nil {
			return nil, Stats{}, err
		}
	}
	st := Stats{
		DistComps:  hst.DistComps,
		Hops:       hst.Hops,
		QuantComps: hst.QuantComps,
		Reranked:   hst.Reranked,
	}
	l.quantComps.Add(hst.QuantComps)
	l.reranked.Add(hst.Reranked)

	// Rows appended after the freeze: exact scan, merged by distance.
	ds := l.g.DataSnapshot()
	if ds.Len() > f.Len() {
		tail := searchTail(ds, f.Len(), q, k, l.g.Config().Metric)
		st.DistComps += int64(ds.Len() - f.Len())
		l.tailScanned.Add(int64(ds.Len() - f.Len()))
		rs = topk.Merge(k, rs, tail)
		l.maybeRefreeze(ds.Len()-f.Len(), f.Len())
	}
	return rs, st, nil
}

// searchTail brute-force scans rows [from, ds.Len()) reporting
// distances in the user metric (true L2, not squared), matching the
// frozen path so the merge compares like with like.
func searchTail(ds *vec.Dataset, from int, q []float32, k int, metric vec.Metric) []topk.Result {
	dist := metric.Func()
	sqrtL := metric == vec.L2
	if sqrtL {
		dist = vec.SquaredL2Distance
	}
	col := topk.New(k)
	for i := from; i < ds.Len(); i++ {
		col.Push(ds.ID(i), dist(q, ds.At(i)))
	}
	rs := col.Results()
	if sqrtL {
		for i := range rs {
			rs[i].Dist = sqrt32(rs[i].Dist)
		}
	}
	return rs
}

func (l *frozenLocal) Len() int     { return l.g.Len() }
func (l *frozenLocal) Kind() string { return "hnsw-frozen" }

// Graph exposes the dynamic graph under the frozen view (save,
// compaction, and ingestion paths).
func (l *frozenLocal) Graph() *hnsw.Graph { return l.g }
