package index

import (
	"repro/internal/hnsw"
	"repro/internal/topk"
	"repro/internal/vec"
)

// FilteredSearcher is the optional Local capability for filter
// pushdown: return up to k nearest neighbors whose global ID satisfies
// keep, evaluating the predicate during traversal instead of truncating
// an unfiltered top-k afterwards. keep==nil must behave exactly like
// Search. Implemented by the HNSW-backed locals (dynamic and frozen)
// and by the flat scan (exactly); engines post-filter for locals
// without this capability via SearchFiltered below. Filtered hybrid
// retrieval reuses this path for its vector leg, so the same predicate
// semantics apply to both legs of a fused query.
type FilteredSearcher interface {
	SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error)
}

// SearchFiltered searches l with the predicate pushed down when the
// local index supports it, falling back to an over-fetching
// search-then-filter pass otherwise. The fallback fetches 4*k (plus
// slack) so moderate selectivities still fill k, but it cannot match
// pushdown at low selectivity — exact tree locals (vp, kd) accept that
// as the cost of staying filter-oblivious.
func SearchFiltered(l Local, q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	if keep == nil {
		return l.Search(q, k)
	}
	if fs, ok := l.(FilteredSearcher); ok {
		return fs.SearchFiltered(q, k, keep)
	}
	fetch := 4*k + 16
	if n := l.Len(); fetch > n {
		fetch = n
	}
	rs, st, err := l.Search(q, fetch)
	if err != nil {
		return nil, st, err
	}
	out := rs[:0]
	for _, r := range rs {
		if keep(r.ID) {
			out = append(out, r)
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out, st, nil
}

// --- dynamic HNSW ---

func (l *hnswLocal) SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	rs, st, err := l.g.SearchFiltered(q, k, keep)
	if err == hnsw.ErrEmpty {
		return nil, Stats{}, nil
	}
	return rs, Stats{DistComps: st.DistComps, Hops: st.Hops}, err
}

// --- frozen HNSW ---

func (l *frozenLocal) SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	f := l.frozen.Load()
	l.searches.Add(1)

	var (
		rs  []topk.Result
		hst hnsw.Stats
		err error
	)
	if f.Len() > 0 {
		rs, hst, err = f.SearchEfFiltered(q, k, l.g.EfSearch(), int(l.rerankK.Load()), keep)
		if err != nil {
			return nil, Stats{}, err
		}
	}
	st := Stats{
		DistComps:  hst.DistComps,
		Hops:       hst.Hops,
		QuantComps: hst.QuantComps,
		Reranked:   hst.Reranked,
	}
	l.quantComps.Add(hst.QuantComps)
	l.reranked.Add(hst.Reranked)

	// Post-freeze tail: exact filtered scan, merged by distance.
	ds := l.g.DataSnapshot()
	if ds.Len() > f.Len() {
		tail := searchTailFiltered(ds, f.Len(), q, k, l.g.Config().Metric, keep)
		st.DistComps += int64(ds.Len() - f.Len())
		l.tailScanned.Add(int64(ds.Len() - f.Len()))
		rs = topk.Merge(k, rs, tail)
		l.maybeRefreeze(ds.Len()-f.Len(), f.Len())
	}
	return rs, st, nil
}

// searchTailFiltered is searchTail restricted to matching IDs.
func searchTailFiltered(ds *vec.Dataset, from int, q []float32, k int, metric vec.Metric, keep func(int64) bool) []topk.Result {
	dist := metric.Func()
	sqrtL := metric == vec.L2
	if sqrtL {
		dist = vec.SquaredL2Distance
	}
	col := topk.New(k)
	for i := from; i < ds.Len(); i++ {
		if keep(ds.ID(i)) {
			col.Push(ds.ID(i), dist(q, ds.At(i)))
		}
	}
	rs := col.Results()
	if sqrtL {
		for i := range rs {
			rs[i].Dist = sqrt32(rs[i].Dist)
		}
	}
	return rs
}

// --- exact flat scan ---

// SearchFiltered on the flat local is exact brute force over matching
// rows; the engine's test suite uses it as filtered ground truth.
func (l *flatLocal) SearchFiltered(q []float32, k int, keep func(int64) bool) ([]topk.Result, Stats, error) {
	c := topk.New(k)
	for i := 0; i < l.ds.Len(); i++ {
		if keep(l.ds.ID(i)) {
			c.Push(l.ds.ID(i), l.dist(q, l.ds.At(i)))
		}
	}
	rs := c.Results()
	if l.sqrtL {
		for i := range rs {
			rs[i].Dist = sqrt32(rs[i].Dist)
		}
	}
	return rs, Stats{DistComps: int64(l.ds.Len())}, nil
}
