// Package index defines the pluggable local-index abstraction the paper
// calls out as its extensibility point: "Our approach is extensible in
// that any algorithm can be used for local indexing and searching
// instead of HNSW" (Section VI).
//
// A Local index answers k-NN queries inside one partition. Four
// implementations ship:
//
//	hnsw  - the paper's choice (approximate, fast, dimension-robust)
//	vp    - exact vantage point tree (metric-agnostic)
//	kd    - exact KD tree (the PANDA building block; L2 only)
//	flat  - exact linear scan (always correct; the small-partition
//	        fallback PANDA calls "SIMD optimised buckets")
//
// The single-process engine accepts any of them via Config.LocalIndex;
// the ablate-local experiment compares them under identical routing.
// Every engine search path — plain top-k, filter pushdown
// (FilteredSearcher), and the vector leg of hybrid retrieval
// (DESIGN §11) — goes through this abstraction, so swapping the local
// index never changes which query shapes a deployment can serve.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hnsw"
	"repro/internal/kdtree"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// Stats is the work performed by one local search.
type Stats struct {
	DistComps  int64
	Hops       int64 // graph expansions or tree nodes visited
	QuantComps int64 // quantized (SQ8) distance evaluations (frozen path)
	Reranked   int64 // candidates re-ranked at full precision (frozen path)
}

// Local is a per-partition k-NN index.
type Local interface {
	// Search returns up to k nearest neighbors of q with global IDs.
	Search(q []float32, k int) ([]topk.Result, Stats, error)
	// Len returns the number of indexed vectors.
	Len() int
	// Kind returns the registry name of the implementation.
	Kind() string
}

// Builder constructs a Local over a partition. threads hints at
// build-time parallelism (only HNSW uses it).
type Builder func(ds *vec.Dataset, metric vec.Metric, threads int) (Local, error)

// BuilderFor returns the builder registered under name. Supported:
// "hnsw" (optionally configured via NewHNSWBuilder), "vp", "kd", "flat".
func BuilderFor(name string) (Builder, error) {
	switch name {
	case "", "hnsw":
		return NewHNSWBuilder(hnsw.Config{}), nil
	case "vp":
		return buildVP, nil
	case "kd":
		return buildKD, nil
	case "flat":
		return buildFlat, nil
	}
	return nil, fmt.Errorf("index: unknown local index %q", name)
}

// Names lists the registered local index kinds.
func Names() []string {
	ns := []string{"flat", "hnsw", "kd", "vp"}
	sort.Strings(ns)
	return ns
}

// --- HNSW adapter ---

type hnswLocal struct{ g *hnsw.Graph }

// NewHNSWBuilder returns a Builder using the given HNSW configuration
// (zero value = hnsw.DefaultConfig for the metric).
func NewHNSWBuilder(cfg hnsw.Config) Builder {
	return func(ds *vec.Dataset, metric vec.Metric, threads int) (Local, error) {
		c := cfg
		if c.M == 0 {
			c = hnsw.DefaultConfig(metric)
		}
		c.Metric = metric
		g, _, err := hnsw.Build(ds, c, threads)
		if err != nil {
			return nil, err
		}
		return &hnswLocal{g: g}, nil
	}
}

func (l *hnswLocal) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	rs, st, err := l.g.Search(q, k)
	if err == hnsw.ErrEmpty {
		return nil, Stats{}, nil
	}
	return rs, Stats{DistComps: st.DistComps, Hops: st.Hops}, err
}

func (l *hnswLocal) Len() int     { return l.g.Len() }
func (l *hnswLocal) Kind() string { return "hnsw" }

// Graph exposes the wrapped HNSW graph (for serialization paths that
// remain HNSW-specific).
func (l *hnswLocal) Graph() *hnsw.Graph { return l.g }

// WrapHNSW adapts an existing HNSW graph (e.g. one deserialised from
// disk) into a Local.
func WrapHNSW(g *hnsw.Graph) Local { return &hnswLocal{g: g} }

// HNSWGraph unwraps a Local into its HNSW graph if it is one — either a
// plain HNSW index or a frozen-layout wrapper over one, so the save,
// compaction, and ingestion paths work unchanged on frozen engines.
func HNSWGraph(l Local) (*hnsw.Graph, bool) {
	switch h := l.(type) {
	case *hnswLocal:
		return h.g, true
	case *frozenLocal:
		return h.g, true
	}
	return nil, false
}

// --- exact VP adapter ---

type vpLocal struct {
	t *vptree.Tree
	n int
}

func buildVP(ds *vec.Dataset, metric vec.Metric, _ int) (Local, error) {
	if ds.Len() == 0 {
		return &vpLocal{nil, 0}, nil
	}
	return &vpLocal{vptree.NewTree(ds, vptree.TreeConfig{Metric: metric}), ds.Len()}, nil
}

func (l *vpLocal) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	if l.t == nil {
		return nil, Stats{}, nil
	}
	rs, st := l.t.Search(q, k)
	return rs, Stats{DistComps: st.DistComps, Hops: st.NodesSeen}, nil
}

func (l *vpLocal) Len() int     { return l.n }
func (l *vpLocal) Kind() string { return "vp" }

// --- exact KD adapter ---

type kdLocal struct {
	t *kdtree.Tree
	n int
}

func buildKD(ds *vec.Dataset, metric vec.Metric, _ int) (Local, error) {
	if metric != vec.L2 && metric != vec.SquaredL2 {
		return nil, fmt.Errorf("index: kd local index supports L2 only, got %v", metric)
	}
	if ds.Len() == 0 {
		return &kdLocal{nil, 0}, nil
	}
	return &kdLocal{kdtree.NewTree(ds, kdtree.TreeConfig{}), ds.Len()}, nil
}

func (l *kdLocal) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	if l.t == nil {
		return nil, Stats{}, nil
	}
	rs, st := l.t.Search(q, k)
	return rs, Stats{DistComps: st.DistComps, Hops: st.NodesSeen}, nil
}

func (l *kdLocal) Len() int     { return l.n }
func (l *kdLocal) Kind() string { return "kd" }

// --- flat scan adapter ---

type flatLocal struct {
	ds     *vec.Dataset
	metric vec.Metric
	dist   vec.DistFunc
	sqrtL  bool
}

func buildFlat(ds *vec.Dataset, metric vec.Metric, _ int) (Local, error) {
	l := &flatLocal{ds: ds, metric: metric}
	if metric == vec.L2 {
		l.dist = vec.SquaredL2Distance
		l.sqrtL = true
	} else {
		l.dist = metric.Func()
	}
	return l, nil
}

func (l *flatLocal) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	c := topk.New(k)
	for i := 0; i < l.ds.Len(); i++ {
		c.Push(l.ds.ID(i), l.dist(q, l.ds.At(i)))
	}
	rs := c.Results()
	if l.sqrtL {
		for i := range rs {
			rs[i].Dist = sqrt32(rs[i].Dist)
		}
	}
	return rs, Stats{DistComps: int64(l.ds.Len())}, nil
}

func (l *flatLocal) Len() int     { return l.ds.Len() }
func (l *flatLocal) Kind() string { return "flat" }

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}
