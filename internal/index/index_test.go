package index

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/hnsw"
	"repro/internal/vec"
)

func randDS(rng *rand.Rand, n, dim int) *vec.Dataset {
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 2)
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func TestBuilderForNames(t *testing.T) {
	for _, name := range Names() {
		if _, err := BuilderFor(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := BuilderFor(""); err != nil {
		t.Error("empty name should default to hnsw")
	}
	if _, err := BuilderFor("nope"); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestExactLocalsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randDS(rng, 800, 10)
	for _, kind := range []string{"vp", "kd", "flat"} {
		b, _ := BuilderFor(kind)
		l, err := b(ds, vec.L2, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if l.Kind() != kind || l.Len() != ds.Len() {
			t.Fatalf("%s: kind/len wrong", kind)
		}
		for trial := 0; trial < 15; trial++ {
			q := randDS(rng, 1, 10).At(0)
			got, st, err := l.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if st.DistComps == 0 {
				t.Fatalf("%s: no stats", kind)
			}
			want := bruteforce.Search(ds, q, 5, vec.L2)
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("%s trial %d rank %d: %+v vs %+v", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestHNSWLocalApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDS(rng, 1500, 12)
	b := NewHNSWBuilder(hnsw.Config{})
	l, err := b(ds, vec.L2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Kind() != "hnsw" {
		t.Fatalf("kind %q", l.Kind())
	}
	g, ok := HNSWGraph(l)
	if !ok || g.Len() != ds.Len() {
		t.Fatal("unwrap failed")
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		q := ds.At(rng.Intn(ds.Len()))
		got, _, err := l.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.Search(ds, q, 1, vec.L2)
		if len(got) > 0 && got[0].ID == want[0].ID {
			hits++
		}
	}
	if hits < 17 {
		t.Errorf("self-query top-1 hits %d/20", hits)
	}
}

func TestWrapHNSW(t *testing.T) {
	g, err := hnsw.New(4, hnsw.DefaultConfig(vec.L2))
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]float32{1, 2, 3, 4}, 7)
	l := WrapHNSW(g)
	rs, _, err := l.Search([]float32{1, 2, 3, 4}, 1)
	if err != nil || len(rs) != 1 || rs[0].ID != 7 {
		t.Fatalf("%v %v", rs, err)
	}
	if _, ok := HNSWGraph(l); !ok {
		t.Error("HNSWGraph should unwrap")
	}
}

func TestEmptyPartitions(t *testing.T) {
	empty := vec.NewDataset(4, 0)
	for _, kind := range []string{"vp", "kd", "flat"} {
		b, _ := BuilderFor(kind)
		l, err := b(empty, vec.L2, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rs, _, err := l.Search(make([]float32, 4), 3)
		if err != nil || len(rs) != 0 {
			t.Errorf("%s: empty search gave %v %v", kind, rs, err)
		}
		if l.Len() != 0 {
			t.Errorf("%s: Len %d", kind, l.Len())
		}
	}
}

func TestHNSWEmptySearchIsNotError(t *testing.T) {
	b := NewHNSWBuilder(hnsw.Config{})
	l, err := b(vec.NewDataset(4, 0), vec.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := l.Search(make([]float32, 4), 3)
	if err != nil || len(rs) != 0 {
		t.Errorf("empty hnsw search: %v %v", rs, err)
	}
}

func TestKDRejectsNonL2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randDS(rng, 50, 4)
	b, _ := BuilderFor("kd")
	if _, err := b(ds, vec.L1, 1); err == nil {
		t.Error("kd should reject L1")
	}
}

func TestFlatNonL2Metric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randDS(rng, 200, 6)
	b, _ := BuilderFor("flat")
	l, err := b(ds, vec.L1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := randDS(rng, 1, 6).At(0)
	got, _, _ := l.Search(q, 3)
	want := bruteforce.Search(ds, q, 3, vec.L1)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("L1 flat rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
