package index

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/hnsw"
	"repro/internal/vec"
)

func frozenFixture(t *testing.T, n, dim int, opts hnsw.FreezeOptions) (Local, *hnsw.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	l, err := NewHNSWBuilder(hnsw.Config{})(ds, vec.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Freeze(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := HNSWGraph(fl)
	if !ok {
		t.Fatal("frozen local lost its graph")
	}
	return fl, g
}

// TestFreezeRejectsExactIndexes: only HNSW-backed locals freeze.
func TestFreezeRejectsExactIndexes(t *testing.T) {
	ds := vec.NewDataset(2, 2)
	ds.Append([]float32{0, 0}, 0)
	ds.Append([]float32{1, 1}, 1)
	l, err := buildFlat(ds, vec.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Freeze(l, hnsw.FreezeOptions{}); err == nil {
		t.Error("froze a flat scan")
	}
}

// TestFrozenLocalTailMerge: rows added to the dynamic graph after the
// freeze must show up in search results immediately (exact tail scan),
// before any re-freeze happens.
func TestFrozenLocalTailMerge(t *testing.T) {
	fl, g := frozenFixture(t, 300, 8, hnsw.FreezeOptions{SQ8: true})
	if !Frozen(fl) {
		t.Fatal("not frozen")
	}
	// A vector far from the gaussian blob, inserted post-freeze: an
	// exact query for it must hit via the tail scan.
	probe := []float32{50, 50, 50, 50, 50, 50, 50, 50}
	if _, err := g.Add(probe, 900001); err != nil {
		t.Fatal(err)
	}
	rs, st, err := fl.Search(probe, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].ID != 900001 {
		t.Fatalf("tail row not served: %v", rs)
	}
	if rs[0].Dist != 0 {
		t.Fatalf("tail distance %v, want 0", rs[0].Dist)
	}
	if st.QuantComps == 0 {
		t.Error("frozen first pass did no quantized work")
	}
	fst, ok := FrozenLocalStats(fl)
	if !ok {
		t.Fatal("no frozen stats")
	}
	if fst.TailLen != 1 || fst.TailScanned == 0 {
		t.Errorf("tail stats: %+v", fst)
	}
	if fst.FrozenLen != 300 || !fst.Quantized || fst.ArenaBytes <= 0 {
		t.Errorf("frozen stats: %+v", fst)
	}
}

// TestFrozenLocalBackgroundRefreeze: once the tail outgrows the
// threshold, a search kicks off a background re-freeze that folds the
// tail into the flat view.
func TestFrozenLocalBackgroundRefreeze(t *testing.T) {
	fl, g := frozenFixture(t, 100, 4, hnsw.FreezeOptions{})
	// Threshold for 100 frozen rows is max(256, 100/8) = 256.
	if got := refreezeThreshold(100); got != 256 {
		t.Fatalf("refreezeThreshold(100) = %d", got)
	}
	if got := refreezeThreshold(80000); got != 10000 {
		t.Fatalf("refreezeThreshold(80000) = %d", got)
	}
	rng := rand.New(rand.NewSource(12))
	v := make([]float32, 4)
	for i := 0; i < 300; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if _, err := g.Add(v, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	q := []float32{0, 0, 0, 0}
	if _, _, err := fl.Search(q, 5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := FrozenLocalStats(fl)
		if st.Refreezes >= 1 && st.FrozenLen == 400 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-freeze never folded the tail: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// After the fold the tail is empty and searches stop tail-scanning.
	before, _ := FrozenLocalStats(fl)
	if _, _, err := fl.Search(q, 5); err != nil {
		t.Fatal(err)
	}
	after, _ := FrozenLocalStats(fl)
	if after.TailScanned != before.TailScanned {
		t.Errorf("tail scans continued after fold: %d -> %d", before.TailScanned, after.TailScanned)
	}
}

// TestFrozenLocalSetRerankK: a negative budget flips the frozen local to
// exact scoring at runtime.
func TestFrozenLocalSetRerankK(t *testing.T) {
	fl, _ := frozenFixture(t, 500, 8, hnsw.FreezeOptions{SQ8: true})
	q := make([]float32, 8)
	if _, st, err := fl.Search(q, 5); err != nil || st.QuantComps == 0 {
		t.Fatalf("quantized pass inactive: %+v, %v", st, err)
	}
	SetRerankK(fl, -1)
	if _, st, err := fl.Search(q, 5); err != nil || st.QuantComps != 0 {
		t.Fatalf("rerank-k<0 still quantized: %+v, %v", st, err)
	}
	SetRerankK(fl, 20)
	if _, st, err := fl.Search(q, 5); err != nil || st.Reranked == 0 || st.Reranked > 20 {
		t.Fatalf("fixed rerank budget not honored: %+v, %v", st, err)
	}
}
