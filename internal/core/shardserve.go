package core

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/topk"
	"repro/internal/vec"
)

// ShardHandler adapts the engine to the gateway's shard RPC: one
// annworker in -serve mode is exactly an Engine over its shard of the
// corpus answering batched searches. threads bounds the searcher pool
// per batch (<=0 uses GOMAXPROCS, matching Engine.SearchBatch).
func (e *Engine) ShardHandler(threads int) cluster.ShardHandler {
	return func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
		return e.SearchBatchContext(ctx, queries, k, threads)
	}
}
