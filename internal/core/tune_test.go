package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func TestTuneReachesTarget(t *testing.T) {
	ds := clustered(t, 3000, 16, 6, 70)
	cfg := DefaultConfig(8)
	cfg.NProbe = 1
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.PerturbedQueries(ds, 60, 0.05, 71)
	truth := truthIDs(ds, qs, 10)

	res, err := e.Tune(qs, truth, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 0.95 {
		t.Errorf("tuned recall %.3f < target", res.Recall)
	}
	if len(res.Evaluated) == 0 {
		t.Error("no evaluation trace")
	}
	// the engine must actually be at the tuned point
	if e.cfg.NProbe != res.NProbe {
		t.Errorf("engine nprobe %d != tuned %d", e.cfg.NProbe, res.NProbe)
	}
	out, err := e.SearchBatch(qs, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(out, truth); r < res.Recall-0.05 {
		t.Errorf("post-tune recall %.3f far from reported %.3f", r, res.Recall)
	}
}

func TestTuneUnreachableTarget(t *testing.T) {
	ds := clustered(t, 600, 8, 3, 72)
	e, err := NewEngine(ds.Clone(), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.PerturbedQueries(ds, 20, 0.05, 73)
	// impossible truth: IDs that do not exist
	truth := make([][]int32, qs.Len())
	for i := range truth {
		truth[i] = []int32{1 << 30}
	}
	res, err := e.Tune(qs, truth, 10, 0.99)
	if err == nil {
		t.Error("want unreachable-target error")
	}
	if res == nil || len(res.Evaluated) == 0 {
		t.Error("should still report the evaluation trace")
	}
}

func TestTuneArgErrors(t *testing.T) {
	ds := clustered(t, 300, 8, 2, 74)
	e, _ := NewEngine(ds.Clone(), DefaultConfig(2))
	qs := dataset.PerturbedQueries(ds, 5, 0.05, 75)
	if _, err := e.Tune(qs, nil, 10, 0.9); err == nil {
		t.Error("want truth-mismatch error")
	}
	truth := truthIDs(ds, qs, 10)
	if _, err := e.Tune(qs, truth, 10, 1.5); err == nil {
		t.Error("want target-range error")
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	ds := clustered(t, 1500, 12, 4, 76)
	qs := dataset.PerturbedQueries(ds, 30, 0.05, 77)
	truth := truthIDs(ds, qs, 10)
	p := 4
	dir := t.TempDir()

	// build + checkpoint
	w := cluster.NewWorld(p)
	err := w.Run(func(c *cluster.Comm) error {
		shard, err := ScatterDataset(c, 0, ds, 1)
		if err != nil {
			return err
		}
		cfg := DefaultConfig(p)
		cfg.Replication = 2
		b, err := BuildDistributed(c, shard, cfg)
		if err != nil {
			return err
		}
		return b.SaveCheckpoint(dir)
	})
	if err != nil {
		t.Fatal(err)
	}

	// serve from checkpoint in a fresh world (master + p workers)
	cfg := DefaultConfig(p)
	cfg.NProbe = 3
	cfg.Replication = 2
	w2 := cluster.NewWorld(p + 1)
	var res *BatchResult
	err = w2.Run(func(c *cluster.Comm) error {
		return RunClusterFromCheckpoint(c, dir, cfg, func(m *Master) error {
			r, err := m.Search(qs)
			res = r
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(res.Results, truth); r < 0.8 {
		t.Errorf("checkpoint-served recall %.3f", r)
	}
}

func TestCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(dir, 0); err == nil {
		t.Error("want missing-file error")
	}
	if _, err := LoadCheckpointTree(dir); err == nil {
		t.Error("want missing-tree error")
	}
	// wrong partition count
	ds := clustered(t, 600, 8, 2, 78)
	w := cluster.NewWorld(2)
	err := w.Run(func(c *cluster.Comm) error {
		shard, err := ScatterDataset(c, 0, ds, 1)
		if err != nil {
			return err
		}
		b, err := BuildDistributed(c, shard, DefaultConfig(2))
		if err != nil {
			return err
		}
		return b.SaveCheckpoint(dir)
	})
	if err != nil {
		t.Fatal(err)
	}
	w2 := cluster.NewWorld(4) // 3 workers vs 2 checkpointed partitions
	err = w2.Run(func(c *cluster.Comm) error {
		err := RunClusterFromCheckpoint(c, dir, DefaultConfig(3), func(m *Master) error { return nil })
		if c.Rank() == 0 && err == nil {
			t.Error("want partition-count mismatch at master")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
