package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// Failover integration tests: kill one worker mid-batch and check that
// the batch still completes — fully answered when Replication=2 (the
// workgroup replica takes over), degraded-but-returned when
// Replication=1 (no replica exists).
//
// The victim's result sends are delayed via the fault-injection wrapper
// so the batch is guaranteed to still be in flight when the kill lands.

// victimComm wraps a rank's comm so its results crawl out slowly.
func victimComm(c *cluster.Comm) *cluster.Comm {
	return cluster.WithFaults(c, cluster.FaultPlan{
		Seed:      7,
		DelayProb: 1,
		MaxDelay:  20 * time.Millisecond,
		Tags:      map[int]bool{tagResult: true},
	})
}

func ftConfig(p, repl int) Config {
	cfg := DefaultConfig(p)
	cfg.Replication = repl
	cfg.NProbe = 2
	cfg.ThreadsPerWorker = 2
	cfg.QueryTimeout = 3 * time.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 20 * time.Millisecond
	return cfg
}

// runKillWorld runs master + p workers on the in-process world, kills
// victim (a worker rank) killDelay after the search starts, and returns
// the master's batch result. Worker errors are expected for the victim
// and tolerated for the others only if the master still succeeded.
func runKillWorld(t *testing.T, ds, qs *vec.Dataset, cfg Config, p, victim int, killDelay time.Duration) *BatchResult {
	t.Helper()
	w := cluster.NewWorld(p + 1)
	defer w.Close()
	var res *BatchResult
	var masterErr error
	searchStarted := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r <= p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			if rank == victim {
				c = victimComm(c)
			}
			err := RunCluster(c, ds, cfg, func(m *Master) error {
				close(searchStarted)
				out, err := m.Search(qs)
				res = out
				return err
			})
			if rank == 0 {
				masterErr = err
			}
		}(r)
	}
	go func() {
		<-searchStarted
		time.Sleep(killDelay)
		w.KillRank(victim)
	}()
	wg.Wait()
	if masterErr != nil {
		t.Fatalf("master: %v", masterErr)
	}
	if res == nil {
		t.Fatal("no batch result")
	}
	return res
}

func TestFailoverInProcessReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection integration test")
	}
	const p, victim = 4, 2
	ds := clustered(t, 2000, 16, 4, 21)
	qs := dataset.PerturbedQueries(ds, 100, 0.05, 22)
	cfg := ftConfig(p, 2)
	res := runKillWorld(t, ds, qs, cfg, p, victim, 100*time.Millisecond)

	if res.Degraded {
		t.Fatalf("batch degraded with Replication=2: failed partitions %v", res.FailedPartitions)
	}
	for i, rs := range res.Results {
		if len(rs) != cfg.K {
			t.Fatalf("query %d: %d results, want %d (failover incomplete)", i, len(rs), cfg.K)
		}
	}
	truth := truthIDs(ds, qs, cfg.K)
	if r := metrics.MeanRecall(res.Results, truth); r < 0.7 {
		t.Errorf("recall after failover %v < 0.7", r)
	}
	if res.Failovers == 0 {
		t.Error("no failovers recorded; kill landed after the batch?")
	}
}

func TestFailoverInProcessDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection integration test")
	}
	const p, victim = 4, 2
	ds := clustered(t, 2000, 16, 4, 23)
	qs := dataset.PerturbedQueries(ds, 100, 0.05, 24)
	cfg := ftConfig(p, 1)
	start := time.Now()
	res := runKillWorld(t, ds, qs, cfg, p, victim, 100*time.Millisecond)
	elapsed := time.Since(start)

	if !res.Degraded {
		t.Fatal("batch not degraded with Replication=1 and a dead worker")
	}
	want := victim - 1 // CoresPerNode=1: worker rank v hosts partition v-1
	found := false
	for _, fp := range res.FailedPartitions {
		if fp == want {
			found = true
		} else {
			t.Errorf("unexpected failed partition %d (victim hosts only %d)", fp, want)
		}
	}
	if !found {
		t.Errorf("failed partitions %v do not identify the dead partition %d", res.FailedPartitions, want)
	}
	// Bounded: one round deadline plus retries and backoff, with margin.
	if limit := 4 * cfg.QueryTimeout; elapsed > limit {
		t.Errorf("degraded batch took %v, want < %v", elapsed, limit)
	}
	// Queries still get answers from the surviving partitions.
	answered := 0
	for _, rs := range res.Results {
		if len(rs) > 0 {
			answered++
		}
	}
	if answered < len(res.Results)/2 {
		t.Errorf("only %d/%d queries answered", answered, len(res.Results))
	}
}

// --- TCP variant: real sockets, worker process death = node.Close() ---

func ftFreeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runKillTCP is runKillWorld over the TCP transport: every rank gets its
// own TCPNode on a loopback socket and the victim's node is closed (the
// process-death analogue) killDelay after the search starts.
func runKillTCP(t *testing.T, ds, qs *vec.Dataset, cfg Config, p, victim int, killDelay time.Duration) *BatchResult {
	t.Helper()
	addrs := ftFreeAddrs(t, p+1)
	opts := cluster.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	var res *BatchResult
	var masterErr error
	searchStarted := make(chan struct{})
	nodes := make([]*cluster.TCPNode, p+1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r <= p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, comm, err := cluster.JoinTCPOpts(rank, addrs, opts)
			if err != nil {
				if rank == 0 {
					masterErr = err
				}
				return
			}
			mu.Lock()
			nodes[rank] = node
			mu.Unlock()
			if rank == victim {
				comm = victimComm(comm)
			}
			err = RunCluster(comm, ds, cfg, func(m *Master) error {
				close(searchStarted)
				out, serr := m.Search(qs)
				res = out
				return serr
			})
			if rank == 0 {
				masterErr = err
			}
		}(r)
	}
	go func() {
		<-searchStarted
		time.Sleep(killDelay)
		mu.Lock()
		n := nodes[victim]
		mu.Unlock()
		if n != nil {
			n.Close()
		}
	}()
	wg.Wait()
	for r, n := range nodes {
		if n != nil && r != victim {
			n.Close()
		}
	}
	if masterErr != nil {
		t.Fatalf("master: %v", masterErr)
	}
	if res == nil {
		t.Fatal("no batch result")
	}
	return res
}

func TestFailoverTCPReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection integration test over TCP")
	}
	const p, victim = 4, 2
	ds := clustered(t, 1500, 16, 4, 25)
	qs := dataset.PerturbedQueries(ds, 80, 0.05, 26)
	cfg := ftConfig(p, 2)
	res := runKillTCP(t, ds, qs, cfg, p, victim, 100*time.Millisecond)

	if res.Degraded {
		t.Fatalf("batch degraded with Replication=2: failed partitions %v", res.FailedPartitions)
	}
	for i, rs := range res.Results {
		if len(rs) != cfg.K {
			t.Fatalf("query %d: %d results, want %d", i, len(rs), cfg.K)
		}
	}
	truth := truthIDs(ds, qs, cfg.K)
	if r := metrics.MeanRecall(res.Results, truth); r < 0.7 {
		t.Errorf("recall after failover %v < 0.7", r)
	}
}

func TestFailoverTCPDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection integration test over TCP")
	}
	const p, victim = 4, 2
	ds := clustered(t, 1500, 16, 4, 27)
	qs := dataset.PerturbedQueries(ds, 80, 0.05, 28)
	cfg := ftConfig(p, 1)
	start := time.Now()
	res := runKillTCP(t, ds, qs, cfg, p, victim, 100*time.Millisecond)
	elapsed := time.Since(start)

	if !res.Degraded {
		t.Fatal("batch not degraded with Replication=1 and a dead worker")
	}
	want := victim - 1
	found := false
	for _, fp := range res.FailedPartitions {
		if fp == want {
			found = true
		}
	}
	if !found {
		t.Errorf("failed partitions %v do not identify partition %d", res.FailedPartitions, want)
	}
	if limit := 4 * cfg.QueryTimeout; elapsed > limit {
		t.Errorf("degraded batch took %v, want < %v", elapsed, limit)
	}
}

// TestFTMatchesLegacyWhenHealthy pins down that with no failures the
// fault-tolerant path returns the same answers as the legacy protocol.
func TestFTMatchesLegacyWhenHealthy(t *testing.T) {
	ds := clustered(t, 2000, 16, 4, 29)
	qs := dataset.PerturbedQueries(ds, 40, 0.05, 30)

	legacy := DefaultConfig(4)
	legacy.OneSided = false
	legacy.NProbe = 2
	legacy.Seed = 5
	a := runDistributedSearch(t, ds, qs, legacy, 4)

	ft := legacy
	ft.QueryTimeout = 5 * time.Second
	b := runDistributedSearch(t, ds, qs, ft, 4)

	if b.Degraded || b.Failovers != 0 || b.Retries != 0 {
		t.Fatalf("healthy FT batch reported faults: %+v", b)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result rows %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if len(a.Results[i]) != len(b.Results[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(a.Results[i]), len(b.Results[i]))
		}
		// Compare ID sets, not positions: equal-distance ties at the
		// k-th boundary may resolve by arrival order.
		ids := make(map[int64]bool, len(a.Results[i]))
		for _, r := range a.Results[i] {
			ids[r.ID] = true
		}
		miss := 0
		for _, r := range b.Results[i] {
			if !ids[r.ID] {
				miss++
			}
		}
		if miss > 1 {
			t.Fatalf("query %d: FT results diverge from legacy by %d IDs", i, miss)
		}
	}
	if a.Dispatched != b.Dispatched {
		t.Errorf("dispatched %d vs %d", a.Dispatched, b.Dispatched)
	}
}
