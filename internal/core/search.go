package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/hnsw"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// Distributed runs the paper's engine on a cluster.Comm with rank 0 as
// the master and ranks 1..P as workers (one partition per worker, plus
// replicas when Replication > 1).
type Distributed struct {
	comm *cluster.Comm
	cfg  Config
	dim  int

	// master state
	tree   *vptree.PartitionTree
	cons   ConstructStats // aggregated (max over workers per phase)
	builtB *Built         // worker state

	// fault-tolerant serving state (master only, driver goroutine only)
	seq     uint32       // monotonic batch-round sequence number
	lagging map[int]bool // workers that missed a round deadline and owe a Done
	ft      FaultStats
}

// nextSeq issues the next batch-round sequence number (master only).
func (d *Distributed) nextSeq() uint32 {
	d.seq++
	return d.seq
}

// RunCluster is the lifecycle entry point: every rank of c calls it.
// Rank 0 scatters ds, waits for the distributed build, then runs driver
// with a Master handle; other ranks serve as workers until the driver
// returns. ds and the driver are only consulted on rank 0.
func RunCluster(c *cluster.Comm, ds *vec.Dataset, cfg Config, driver func(*Master) error) error {
	if c.Size() < 2 {
		return fmt.Errorf("core: need at least 1 master + 1 worker, got %d ranks", c.Size())
	}
	cfg.Partitions = c.Size() - 1
	d, err := buildCluster(c, ds, cfg)
	if err != nil {
		return err
	}
	if c.Rank() == 0 {
		m := &Master{d: d}
		derr := driver(m)
		if err := m.shutdown(); err != nil && derr == nil {
			derr = err
		}
		return derr
	}
	return d.workerLoop()
}

// buildCluster distributes the dataset and builds the index structures.
func buildCluster(c *cluster.Comm, ds *vec.Dataset, cfg Config) (*Distributed, error) {
	// Broadcast dimension so workers can size things.
	var hdr []byte
	if c.Rank() == 0 {
		if ds == nil || ds.Len() < cfg.Partitions {
			return nil, fmt.Errorf("core: master needs a dataset with at least %d points", cfg.Partitions)
		}
		hdr = make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr[0:], uint32(ds.Dim))
	}
	hdr, err := c.Bcast(0, hdr)
	if err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:]))
	d := &Distributed{comm: c, cfg: cfg, dim: dim}
	if err := d.cfg.fill(dim); err != nil {
		return nil, err
	}

	// Master scatters shards to the workers (equi-partitioning).
	if c.Rank() == 0 {
		chunks := make([][]byte, c.Size())
		n := ds.Len()
		p := cfg.Partitions
		for w := 0; w < p; w++ {
			lo, hi := n*w/p, n*(w+1)/p
			var buf bytes.Buffer
			if err := ds.Slice(lo, hi).WriteBinary(&buf); err != nil {
				return nil, err
			}
			chunks[w+1] = buf.Bytes()
		}
		chunks[0] = nil
		if _, err := c.Scatterv(0, chunks); err != nil {
			return nil, err
		}
	} else {
		raw, err := c.Scatterv(0, nil)
		if err != nil {
			return nil, err
		}
		shard, err := vec.ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		// Workers build on their own sub-communicator.
		workers, err := c.Split(1, c.Rank())
		if err != nil {
			return nil, err
		}
		b, err := BuildDistributed(workers, shard, workerCfg(d.cfg))
		if err != nil {
			return nil, err
		}
		if d.cfg.CheckpointDir != "" {
			if err := b.SaveCheckpoint(d.cfg.CheckpointDir); err != nil {
				return nil, err
			}
		}
		d.builtB = b
		// Ship the routing tree and the construction stats to the master.
		if workers.Rank() == 0 {
			var buf bytes.Buffer
			if err := b.Tree.Encode(&buf); err != nil {
				return nil, err
			}
			if err := c.Send(0, tagTree, buf.Bytes()); err != nil {
				return nil, err
			}
		}
		if err := c.Send(0, tagDone, encodeConsStats(b.Stats)); err != nil {
			return nil, err
		}
		return d, nil
	}
	// master side: split too (color 0, alone), then receive tree+stats
	if _, err := c.Split(0, 0); err != nil {
		return nil, err
	}
	raw, _, err := c.Recv(1, tagTree)
	if err != nil {
		return nil, err
	}
	tree, err := vptree.ReadPartitionTree(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	d.tree = tree
	for w := 1; w < c.Size(); w++ {
		p, _, err := c.Recv(w, tagDone)
		if err != nil {
			return nil, err
		}
		st, err := decodeConsStats(p)
		if err != nil {
			return nil, err
		}
		d.cons = maxConsStats(d.cons, st)
	}
	return d, nil
}

func workerCfg(cfg Config) Config {
	wc := cfg
	wc.Partitions = cfg.Partitions
	return wc
}

func encodeConsStats(s ConstructStats) []byte {
	buf := make([]byte, 48)
	putUint64(buf[0:], uint64(s.VPTree))
	putUint64(buf[8:], uint64(s.HNSW))
	putUint64(buf[16:], uint64(s.Replicate))
	putUint64(buf[24:], uint64(s.DistComps))
	putUint64(buf[32:], uint64(s.HNSWWork.DistComps))
	putUint64(buf[40:], uint64(s.HNSWWork.Hops))
	return buf
}

func decodeConsStats(b []byte) (ConstructStats, error) {
	if len(b) != 48 {
		return ConstructStats{}, fmt.Errorf("core: malformed stats message")
	}
	return ConstructStats{
		VPTree:    time.Duration(getUint64(b[0:])),
		HNSW:      time.Duration(getUint64(b[8:])),
		Replicate: time.Duration(getUint64(b[16:])),
		DistComps: int64(getUint64(b[24:])),
		HNSWWork:  hnsw.Stats{DistComps: int64(getUint64(b[32:])), Hops: int64(getUint64(b[40:]))},
	}, nil
}

func maxConsStats(a, b ConstructStats) ConstructStats {
	out := a
	if b.VPTree > out.VPTree {
		out.VPTree = b.VPTree
	}
	if b.HNSW > out.HNSW {
		out.HNSW = b.HNSW
	}
	if b.Replicate > out.Replicate {
		out.Replicate = b.Replicate
	}
	out.DistComps += b.DistComps
	out.HNSWWork = out.HNSWWork.Add(b.HNSWWork)
	return out
}

// batch header exchanged before every search batch (master -> each
// worker individually, so retry rounds can address a subset and dead
// ranks can be skipped). Seq names the round; workers echo it in every
// result and Done so the master can tell fresh traffic from stale.
type batchHeader struct {
	Seq      uint32
	NQueries uint32
	K        uint16
	OneSided bool
	Shutdown bool
}

func encodeHeader(h batchHeader) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf[0:], h.Seq)
	binary.LittleEndian.PutUint32(buf[4:], h.NQueries)
	binary.LittleEndian.PutUint16(buf[8:], h.K)
	if h.OneSided {
		buf[10] = 1
	}
	if h.Shutdown {
		buf[11] = 1
	}
	return buf
}

func decodeHeader(b []byte) batchHeader {
	return batchHeader{
		Seq:      binary.LittleEndian.Uint32(b[0:]),
		NQueries: binary.LittleEndian.Uint32(b[4:]),
		K:        binary.LittleEndian.Uint16(b[8:]),
		OneSided: b[10] == 1,
		Shutdown: b[11] == 1,
	}
}

// Master is the rank-0 handle passed to the RunCluster driver.
type Master struct {
	d *Distributed
}

// Tree exposes the routing tree (for inspection and tests).
func (m *Master) Tree() *vptree.PartitionTree { return m.d.tree }

// Dim returns the vector dimensionality the cluster was built with.
func (m *Master) Dim() int { return m.d.dim }

// K returns the per-query neighbor count the cluster serves (fixed at
// build time by Config.K; the serving gateway trims to smaller ks).
func (m *Master) K() int { return m.d.cfg.K }

// ConstructionStats returns the aggregated build-phase timings (Table II
// reports the max across ranks per phase).
func (m *Master) ConstructionStats() ConstructStats { return m.d.cons }

// BatchResult is the outcome of one batched search.
type BatchResult struct {
	Results [][]topk.Result // per query, ascending distance
	Elapsed time.Duration
	// PerWorkerQueries is the number of (query, partition) tasks each
	// worker processed — the Figure 4(b) distribution.
	PerWorkerQueries []int64
	// PerWorkerDistComps and PerWorkerHops give each worker's search
	// work; the cost model prices them into modelled per-core busy time.
	PerWorkerDistComps []int64
	PerWorkerHops      []int64
	// Dispatched is the total number of routed (query, partition) pairs.
	Dispatched int64
	// RouteNodes is the number of VP-tree nodes the master evaluated
	// while routing (its serial compute load in the cost model).
	RouteNodes int64
	Work       WorkStats
	Breakdown  metrics.Breakdown

	// Degraded reports that some (query, partition) tasks were lost to
	// worker failures and could not be recovered from a replica within
	// the retry budget; Results are still valid but may miss neighbors
	// from the listed partitions.
	Degraded bool
	// FailedPartitions lists the partitions whose tasks were abandoned
	// (deduplicated, ascending).
	FailedPartitions []int
	// Failovers counts tasks rerouted to a replica worker this batch.
	Failovers int64
	// Retries counts the retry rounds this batch needed.
	Retries int
}

// Search answers a batch of queries with the configured routing mode.
func (m *Master) Search(queries *vec.Dataset) (*BatchResult, error) {
	if queries.Dim != m.d.dim {
		return nil, fmt.Errorf("core: query dim %d, index dim %d", queries.Dim, m.d.dim)
	}
	switch m.d.cfg.Routing {
	case RouteAdaptive:
		return m.searchAdaptive(queries)
	default:
		return m.searchBatch(queries, nil)
	}
}

// searchAdaptive runs two rounds: home partitions first, then the
// partitions intersecting the ball of the current k-th distance.
func (m *Master) searchAdaptive(queries *vec.Dataset) (*BatchResult, error) {
	t0 := time.Now()
	first, err := m.searchBatch(queries, func(q []float32) []vptree.Route {
		return []vptree.Route{{Partition: m.d.tree.Home(q), LowerBound: 0}}
	})
	if err != nil {
		return nil, err
	}
	// Round two: widen each query to the ball of its current k-th
	// distance, skipping the already-searched home partition.
	second, err := m.searchBatchIndexed(queries, func(qi int, q []float32) []vptree.Route {
		res := first.Results[qi]
		if len(res) == 0 {
			return m.d.tree.RouteAll(q)[1:] // no local results: widen fully
		}
		tau := res[len(res)-1].Dist
		home := m.d.tree.Home(q)
		routes := m.d.tree.RouteBall(q, tau)
		out := routes[:0]
		for _, r := range routes {
			if r.Partition != home {
				out = append(out, r)
			}
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	merged := make([][]topk.Result, queries.Len())
	for i := range merged {
		merged[i] = topk.Merge(m.d.cfg.K, first.Results[i], second.Results[i])
	}
	out := &BatchResult{
		Results:            merged,
		Elapsed:            time.Since(t0),
		PerWorkerQueries:   make([]int64, len(first.PerWorkerQueries)),
		PerWorkerDistComps: make([]int64, len(first.PerWorkerQueries)),
		PerWorkerHops:      make([]int64, len(first.PerWorkerQueries)),
		Dispatched:         first.Dispatched + second.Dispatched,
		Work:               first.Work.Add(second.Work),
		Breakdown:          first.Breakdown.Add(second.Breakdown),
		Degraded:           first.Degraded || second.Degraded,
		FailedPartitions:   UnionPartitions(first.FailedPartitions, second.FailedPartitions),
		Failovers:          first.Failovers + second.Failovers,
		Retries:            first.Retries + second.Retries,
	}
	for i := range out.PerWorkerQueries {
		out.PerWorkerQueries[i] = first.PerWorkerQueries[i] + second.PerWorkerQueries[i]
		out.PerWorkerDistComps[i] = first.PerWorkerDistComps[i] + second.PerWorkerDistComps[i]
		out.PerWorkerHops[i] = first.PerWorkerHops[i] + second.PerWorkerHops[i]
	}
	return out, nil
}

func (m *Master) searchBatch(queries *vec.Dataset, route func(q []float32) []vptree.Route) (*BatchResult, error) {
	if route == nil {
		np := m.d.cfg.NProbe
		var visits int64
		res, err := m.searchBatchIndexed(queries, func(_ int, q []float32) []vptree.Route {
			rs, v := m.d.tree.RouteTopStats(q, np)
			visits += int64(v)
			return rs
		})
		if res != nil {
			res.RouteNodes = visits
		}
		return res, err
	}
	return m.searchBatchIndexed(queries, func(_ int, q []float32) []vptree.Route { return route(q) })
}

// searchBatchIndexed is Algorithm 3 (and 5 when Replication > 1): route
// every query, dispatch to workers (round-robin within the workgroup),
// send End-of-Queries, then collect results two-sided or via the
// one-sided window.
func (m *Master) searchBatchIndexed(queries *vec.Dataset, route func(qi int, q []float32) []vptree.Route) (*BatchResult, error) {
	if m.d.cfg.QueryTimeout > 0 {
		return m.searchBatchFT(queries, route)
	}
	d := m.d
	c := d.comm
	nq := queries.Len()
	k := d.cfg.K
	t0 := time.Now()

	hdr := batchHeader{Seq: d.nextSeq(), NQueries: uint32(nq), K: uint16(k), OneSided: d.cfg.OneSided}
	d.cfg.Trace.Emitf(0, "batch", "start: %d queries, k=%d", nq, k)
	var commT time.Duration
	var hdrErr error
	metrics.Phase(&commT, func() {
		enc := encodeHeader(hdr)
		for w := 1; w < c.Size(); w++ {
			if err := c.Send(w, tagHeader, enc); err != nil {
				hdrErr = err
				return
			}
		}
	})
	if hdrErr != nil {
		return nil, hdrErr
	}

	var win *cluster.Window
	if d.cfg.OneSided {
		var err error
		win, err = cluster.NewWindow(c, 0, nq, mergeResultSlot(k))
		if err != nil {
			return nil, err
		}
	}

	// Workgroup round-robin state (Algorithm 5): next[i] indexes into
	// W_i = {p_i, ..., p_(i+r-1 mod P)}. Cores map onto worker ranks in
	// groups of CoresPerNode (Figure 1's compute nodes).
	r := d.cfg.Replication
	p := d.cfg.Partitions
	cpn := d.cfg.CoresPerNode
	workers := c.Size() - 1
	next := make([]int, p)

	dispatched := int64(0)
	var routeT, sendT time.Duration
	var sendErr error
	for qi := 0; qi < nq; qi++ {
		q := queries.At(qi)
		var routes []vptree.Route
		metrics.Phase(&routeT, func() { routes = route(qi, q) })
		msg := queryMsg{QueryID: uint32(qi), K: uint16(k), Vec: q}
		metrics.Phase(&sendT, func() {
			for _, rt := range routes {
				target := rt.Partition
				if r > 1 {
					target = (rt.Partition + next[rt.Partition]) % p
					next[rt.Partition] = (next[rt.Partition] + 1) % r
				}
				msg.Partition = int32(rt.Partition)
				// the node (worker rank) hosting the target core
				rank := target/cpn + 1
				if err := c.Send(rank, tagQuery, encodeQuery(msg)); err != nil {
					sendErr = err
					return
				}
				d.cfg.Trace.Emitf(0, "dispatch", "q%d -> partition %d on rank %d", qi, rt.Partition, target/cpn+1)
				dispatched++
			}
		})
		if sendErr != nil {
			return nil, sendErr
		}
	}
	for w := 1; w < c.Size(); w++ {
		if err := c.Send(w, tagEOQ, nil); err != nil {
			return nil, err
		}
	}

	// Collect.
	res := &BatchResult{
		Results:            make([][]topk.Result, nq),
		PerWorkerQueries:   make([]int64, workers),
		PerWorkerDistComps: make([]int64, workers),
		PerWorkerHops:      make([]int64, workers),
		Dispatched:         dispatched,
	}
	collectors := make([]*topk.Collector, nq)
	for i := range collectors {
		collectors[i] = topk.New(k)
	}
	// Collection loop. Workers always report Done — even after internal
	// errors — with the count of tasks they actually processed, so the
	// master terminates on (all Dones received) && (all reported results
	// received) rather than on the dispatched count; a failing worker
	// degrades results instead of wedging the batch.
	var recvT time.Duration
	var totalAcc int64
	var recvErr error
	metrics.Phase(&recvT, func() {
		dones := 0
		var resultsSeen, resultsExpected int64
		resultsExpected = -1 // unknown until all Dones arrive
		for {
			if dones == c.Size()-1 && (d.cfg.OneSided || resultsSeen == resultsExpected) {
				return
			}
			pay, st, err := c.RecvTags(cluster.Any, tagResult, tagDone)
			if err != nil {
				recvErr = err
				return
			}
			switch st.Tag {
			case tagDone:
				dn, err := decodeDone(pay)
				if err != nil || dn.Seq != hdr.Seq {
					continue // stale round (can only happen after FT batches)
				}
				res.PerWorkerQueries[st.Source-1] += dn.Processed
				res.PerWorkerDistComps[st.Source-1] += dn.DistComps
				res.PerWorkerHops[st.Source-1] += dn.Hops
				totalAcc += dn.Accumulates
				res.Work.DistComps += dn.DistComps
				res.Work.Hops += dn.Hops
				dones++
				if dones == c.Size()-1 {
					resultsExpected = 0
					for _, n := range res.PerWorkerQueries {
						resultsExpected += n
					}
					if d.cfg.OneSided {
						resultsExpected = 0
					}
				}
			case tagResult:
				rm, err := decodeResult(pay)
				if err != nil || rm.Seq != hdr.Seq {
					continue
				}
				resultsSeen++
				for _, x := range rm.Results {
					collectors[rm.QueryID].PushResult(x)
				}
			}
		}
	})
	if recvErr != nil {
		return nil, recvErr
	}
	if d.cfg.OneSided {
		metrics.Phase(&recvT, func() {
			win.WaitApplied(totalAcc)
			for qi := 0; qi < nq; qi++ {
				slot := win.Read(qi)
				if slot == nil {
					continue
				}
				rm, err := decodeResult(slot)
				if err != nil {
					continue
				}
				for _, x := range rm.Results {
					collectors[qi].PushResult(x)
				}
			}
		})
		if err := win.Free(); err != nil {
			return nil, err
		}
	}
	for i, col := range collectors {
		res.Results[i] = col.Results()
	}
	res.Elapsed = time.Since(t0)
	d.cfg.Trace.Emitf(0, "batch", "done in %v (%d tasks)", res.Elapsed, dispatched)
	res.Breakdown = metrics.Breakdown{
		Route:   routeT,
		Comm:    commT + sendT + recvT,
		Compute: 0,
		Total:   res.Elapsed,
	}
	return res, nil
}

// shutdown tells the workers to exit their loops.
func (m *Master) shutdown() error {
	return sendShutdown(m.d.comm)
}

// sendShutdown delivers the Shutdown header to every worker still alive.
// Dead workers are skipped and races with death are tolerated: a
// shutdown must never fail the run over a rank that is already gone.
func sendShutdown(c *cluster.Comm) error {
	var firstErr error
	enc := encodeHeader(batchHeader{Shutdown: true})
	for w := 1; w < c.Size(); w++ {
		if c.IsDown(w) {
			continue
		}
		if err := c.Send(w, tagHeader, enc); err != nil && !errors.Is(err, cluster.ErrPeerDown) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// workerLoop is Algorithm 4: serve batches until shutdown. The header
// receive fails fast (ErrPeerDown) if the master dies, so workers do not
// outlive a crashed master.
func (d *Distributed) workerLoop() error {
	c := d.comm
	for {
		raw, _, err := c.RecvTags(0, tagHeader)
		if err != nil {
			// Master gone while we are idle between batches: no more
			// work will ever arrive, so treat it like a shutdown. The
			// master's shutdown frame and its connection close can
			// also race on distinct conns, making this path reachable
			// even on a clean exit.
			if errors.Is(err, cluster.ErrPeerDown) {
				return nil
			}
			return err
		}
		hdr := decodeHeader(raw)
		if hdr.Shutdown {
			return nil
		}
		if err := d.serveBatch(hdr); err != nil {
			return err
		}
	}
}

// serveBatch spawns ThreadsPerWorker searcher goroutines (the OpenMP
// threads of the paper) that poll for query messages, perform local HNSW
// searches and deliver results one-sided or two-sided, terminating on
// the End-of-Queries command.
func (d *Distributed) serveBatch(hdr batchHeader) error {
	c := d.comm
	var win *cluster.Window
	if hdr.OneSided {
		var err error
		win, err = cluster.NewWindow(c, 0, int(hdr.NQueries), mergeResultSlot(int(hdr.K)))
		if err != nil {
			return err
		}
	}
	var processed, accumulates atomic.Int64
	var dc, hops atomic.Int64
	var eoqSeen atomic.Bool
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for t := 0; t < d.cfg.ThreadsPerWorker; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Wait for either a query or the End-of-Queries command.
				// Per-pair FIFO guarantees every query from the master
				// is already ahead of EOQ in the mailbox, so receiving
				// EOQ means this thread has no work left; it re-posts
				// EOQ for its sibling threads (poison-pill cascade) and
				// exits — the message-passing form of Algorithm 4's
				// shared Done flag. Watching rank 0 makes the wait fail
				// fast instead of hanging if the master dies mid-batch.
				pay, st, err := c.RecvTagsWatch(cluster.Any, 0, []int{0}, tagQuery, tagEOQ)
				if err != nil {
					fail(err)
					return
				}
				if st.Tag == tagEOQ {
					eoqSeen.Store(true)
					if err := c.Send(c.Rank(), tagEOQ, nil); err != nil {
						fail(err)
					}
					return
				}
				qm, err := decodeQuery(pay)
				if err != nil {
					fail(err)
					return
				}
				g := d.builtB.Replicas[int(qm.Partition)]
				if g == nil {
					fail(fmt.Errorf("core: worker %d asked for partition %d it does not host", c.Rank(), qm.Partition))
					return
				}
				rs, hst, err := g.Search(qm.Vec, int(qm.K))
				if err != nil {
					fail(err)
					return
				}
				d.cfg.Trace.Emitf(c.Rank(), "task", "q%d partition %d (%d dists)", qm.QueryID, qm.Partition, hst.DistComps)
				processed.Add(1)
				dc.Add(hst.DistComps)
				hops.Add(hst.Hops)
				out := encodeResult(resultMsg{
					QueryID:   qm.QueryID,
					Partition: qm.Partition,
					Seq:       hdr.Seq,
					DistComps: hst.DistComps,
					Results:   rs,
				})
				if hdr.OneSided {
					if err := win.Accumulate(int(qm.QueryID), out); err != nil {
						fail(err)
						return
					}
					accumulates.Add(1)
				} else {
					if err := c.Send(0, tagResult, out); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// Drain leftovers so the next batch starts clean. If every thread
	// died on an internal error before consuming EOQ, the master's
	// queries for this round (and its EOQ) may still be queued or in
	// flight; consume up to the EOQ (bounded, in case the master died
	// too) so stale queries cannot leak into the next batch's threads.
	if !eoqSeen.Load() && firstErr != nil &&
		!errors.Is(firstErr, cluster.ErrPeerDown) && !errors.Is(firstErr, cluster.ErrClosed) {
		for {
			_, st, err := c.RecvTagsWatch(cluster.Any, 2*time.Second, []int{0}, tagQuery, tagEOQ)
			if err != nil || st.Tag == tagEOQ {
				break
			}
		}
	}
	// The cascade leaves exactly one re-posted EOQ behind; drain any
	// queued EOQ leftovers. (The master never starts this worker on a new
	// round before our Done below, so these can only be this round's.)
	for {
		if _, _, ok, err := c.TryRecv(cluster.Any, tagEOQ); err != nil || !ok {
			break
		}
	}
	// Report Done even after an internal error: the master sizes its
	// collection on the processed counts, so a failing worker degrades
	// results instead of deadlocking the batch.
	d.cfg.Trace.Emitf(c.Rank(), "done", "%d tasks processed", processed.Load())
	if err := c.Send(0, tagDone, encodeDone(workerDone{
		Seq:         hdr.Seq,
		Processed:   processed.Load(),
		Accumulates: accumulates.Load(),
		DistComps:   dc.Load(),
		Hops:        hops.Load(),
	})); err != nil && firstErr == nil {
		firstErr = err
	}
	if hdr.OneSided {
		if err := win.Free(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
