// Package core implements the paper's system: a distributed approximate
// k-NN engine that partitions the dataset with a vantage point tree
// (built cooperatively by all ranks, Algorithms 1–2), indexes each
// partition with HNSW, and answers query batches with a master–worker
// protocol (Algorithms 3–4) optionally optimised with one-sided result
// accumulation (Section IV-C1) and replication-based load balancing
// (Section IV-C2, Algorithm 5).
//
// Three entry points:
//
//   - Engine: single-process facade — partitions, indexes and searches in
//     one address space with a worker pool. This is the library API the
//     examples use.
//   - RunDistributed: the full message-passing engine on a cluster.Comm
//     (rank 0 = master, ranks 1..P = workers), used by every scaling
//     experiment and by the TCP deployment.
//   - RunMultipleOwner: the multiple-owner variant the paper discusses in
//     Section IV.
package core

import (
	"fmt"
	"time"

	"repro/internal/hnsw"
	"repro/internal/trace"
	"repro/internal/vec"
)

// RoutingMode selects how the master computes F(q).
type RoutingMode int

const (
	// RouteTop searches the NProbe partitions with the smallest VP-tree
	// lower bounds — the throughput-oriented mode of the paper.
	RouteTop RoutingMode = iota
	// RouteAdaptive first searches the home partition, then widens to
	// every partition whose region intersects the ball of the current
	// k-th distance (two-phase; higher recall, more work).
	RouteAdaptive
)

// Strategy selects the coordination scheme.
type Strategy int

const (
	// MasterWorker is the paper's main design: one master routes all
	// queries (Algorithm 3), workers search (Algorithm 4).
	MasterWorker Strategy = iota
	// MultipleOwner shares the VP tree among all ranks; each query is
	// owned by hash (Section IV, discussed and measured as slightly
	// better at low core counts but worse at scale).
	MultipleOwner
)

// Config parameterises the engine.
type Config struct {
	// K is the number of neighbors per query (the paper uses 10).
	K int
	// Partitions is P, the number of data partitions = processing cores.
	Partitions int
	// NProbe is |F(q)| in RouteTop mode (default 2).
	NProbe int
	// Routing selects the routing mode.
	Routing RoutingMode
	// Replication is the load-balancing replication factor r (Section
	// IV-C2); 1 means no replication.
	Replication int
	// ThreadsPerWorker is the number of searcher goroutines per worker
	// rank — the OpenMP threads of the paper (default 1).
	ThreadsPerWorker int
	// CoresPerNode groups partitions into compute nodes (Figure 1 of the
	// paper: a node with cores {p1..pn} hosts partitions {D1..Dn}, all
	// reachable by any of the node's threads). Each worker rank then
	// plays one compute node serving CoresPerNode partitions; default 1
	// (one partition per rank, the flat layout). Supported by the
	// prebuilt path.
	CoresPerNode int
	// OneSided enables the MPI_Get_accumulate-style result path (default
	// set by DefaultConfig; the ablation toggles it).
	OneSided bool
	// Metric is the distance metric (the paper uses L2 everywhere).
	Metric vec.Metric
	// HNSW configures the local indexes; zero value means
	// hnsw.DefaultConfig(Metric).
	HNSW hnsw.Config
	// LocalIndex selects the per-partition index algorithm for the
	// single-process Engine: "hnsw" (default, the paper's choice), or
	// the exact alternatives "vp", "kd", "flat" — the extensibility
	// point Section VI describes. The distributed engine currently
	// always uses HNSW (its replication path ships serialized graphs).
	LocalIndex string
	// Frozen lays every partition out flat for serving after
	// construction (contiguous vector arena + CSR adjacency instead of
	// per-node allocations) and re-freezes partitions on every
	// SwapPartition. Engines restored from disk freeze via
	// Engine.Freeze instead. HNSW local indexes only.
	Frozen bool
	// SQ8 additionally scans SQ8 scalar-quantized codes during frozen
	// candidate generation and re-ranks the top RerankK candidates at
	// full precision. Requires Frozen and an L2-family metric.
	SQ8 bool
	// RerankK is the re-rank budget of the quantized frozen path: >0
	// re-ranks that many candidates, 0 defaults to 4*k per query, <0
	// disables quantized scoring (exact float32 scoring throughout).
	RerankK int
	// Seed makes partitioning and index construction reproducible.
	Seed int64
	// CheckpointDir, when non-empty, makes every worker save its built
	// partition (and rank 0 the routing tree) there after construction;
	// RunClusterFromCheckpoint restarts a cluster from the directory.
	CheckpointDir string
	// Trace, when non-nil, records master and worker events (routing,
	// dispatch, task execution, completion) for timeline inspection.
	// In-process worlds share the recorder directly; the TCP deployment
	// records per process.
	Trace *trace.Recorder
	// QueryTimeout, when positive, enables fault-tolerant serving: the
	// master bounds each collection round by this deadline, declares
	// unresponsive workers lagging, and reroutes their tasks to replicas
	// in the same workgroup (Algorithm 5's W_i doubling as failover
	// targets). Zero keeps the legacy wait-forever protocol. Enabling it
	// forces OneSided off: the one-sided window's collective setup and
	// barrier cannot survive a dead rank.
	QueryTimeout time.Duration
	// MaxRetries bounds the retry rounds per batch after the first
	// attempt (default 2 when QueryTimeout is set).
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between retry
	// rounds: round i sleeps RetryBackoff << (i-1). Default 50ms when
	// QueryTimeout is set.
	RetryBackoff time.Duration
}

// DefaultConfig returns the configuration used by the paper's headline
// experiments: k=10, L2, one-sided communication on, no replication.
func DefaultConfig(partitions int) Config {
	return Config{
		K:                10,
		Partitions:       partitions,
		NProbe:           2,
		Replication:      1,
		ThreadsPerWorker: 1,
		OneSided:         true,
		Metric:           vec.L2,
		Seed:             1,
	}
}

func (c *Config) fill(dim int) error {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Partitions <= 0 {
		return fmt.Errorf("core: need positive partition count, got %d", c.Partitions)
	}
	if c.NProbe <= 0 {
		c.NProbe = 2
	}
	if c.NProbe > c.Partitions {
		c.NProbe = c.Partitions
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.Partitions {
		c.Replication = c.Partitions
	}
	if c.ThreadsPerWorker <= 0 {
		c.ThreadsPerWorker = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 1
	}
	if c.HNSW.M == 0 {
		c.HNSW = hnsw.DefaultConfig(c.Metric)
	}
	c.HNSW.Metric = c.Metric
	if c.QueryTimeout > 0 {
		if c.MaxRetries <= 0 {
			c.MaxRetries = 2
		}
		if c.RetryBackoff <= 0 {
			c.RetryBackoff = 50 * time.Millisecond
		}
		// Windows and barriers are not failure-safe (a dead rank wedges
		// the dissemination barrier asymmetrically), so fault-tolerant
		// serving always collects two-sided.
		c.OneSided = false
	}
	_ = dim
	return nil
}

// WorkStats aggregates the work performed during a batch search; the
// cost model (internal/costmodel) prices these into modelled times for
// the large-P experiments.
type WorkStats struct {
	DistComps int64 // distance computations across all ranks
	Hops      int64 // HNSW graph expansions
	Messages  int64 // messages sent (including one-sided accumulates)
	Bytes     int64 // payload bytes moved
}

// Add combines two work stats.
func (w WorkStats) Add(o WorkStats) WorkStats {
	return WorkStats{
		DistComps: w.DistComps + o.DistComps,
		Hops:      w.Hops + o.Hops,
		Messages:  w.Messages + o.Messages,
		Bytes:     w.Bytes + o.Bytes,
	}
}
