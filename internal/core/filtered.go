package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/filter"
	"repro/internal/index"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// FilterPredicate compiles a filter expression into an ID predicate
// over the engine's tag store. A nil/empty expression compiles to nil
// (match everything), which the search paths treat as unfiltered.
// The predicate is lock-free and safe for concurrent use.
func (e *Engine) FilterPredicate(f *filter.Expr) func(int64) bool {
	if f.Empty() {
		return nil
	}
	return func(id int64) bool { return f.Matches(e.tags.get(id)) }
}

// SearchFiltered returns the approximate k nearest neighbors of q whose
// tags satisfy f, with the predicate pushed down into the per-partition
// graph traversal (see hnsw.SearchEfFiltered). Tombstones are filtered
// exactly as in Search.
func (e *Engine) SearchFiltered(q []float32, k int, f *filter.Expr) ([]topk.Result, error) {
	rs, _, err := e.SearchFilteredStats(q, k, f)
	return rs, err
}

// SearchFilteredStats is SearchFiltered plus the work performed.
func (e *Engine) SearchFilteredStats(q []float32, k int, f *filter.Expr) ([]topk.Result, index.Stats, error) {
	keep := e.FilterPredicate(f)
	if keep == nil {
		return e.SearchStats(q, k)
	}
	if len(q) != e.dim {
		return nil, index.Stats{}, fmt.Errorf("core: query dim %d, index dim %d", len(q), e.dim)
	}
	if k <= 0 {
		k = e.cfg.K
	}
	fetch := e.overfetch(k)
	tree, parts := e.view()
	if e.cfg.Routing == RouteAdaptive {
		// Home first, then widen to the ball of the current k-th matching
		// distance. The filtered k-th distance is never smaller than the
		// unfiltered one, so the ball — and hence the route set — is
		// conservative (correct, possibly wider).
		home := tree.Home(q)
		first, st0, err := index.SearchFiltered(parts[home], q, fetch, keep)
		if err != nil {
			return nil, st0, err
		}
		var rts []vptree.Route
		if len(first) > 0 {
			rts = tree.RouteBall(q, first[len(first)-1].Dist)
		} else {
			rts = tree.RouteAll(q)
		}
		lists := [][]topk.Result{first}
		total := st0
		for _, rt := range rts {
			if rt.Partition == home {
				continue
			}
			rs, st, err := index.SearchFiltered(parts[rt.Partition], q, fetch, keep)
			if err != nil {
				return nil, total, err
			}
			total = addStats(total, st)
			lists = append(lists, rs)
		}
		return e.filterDeleted(topk.Merge(fetch, lists...), k), total, nil
	}
	rts := tree.RouteTop(q, e.cfg.NProbe)
	lists := make([][]topk.Result, 0, len(rts))
	var total index.Stats
	for _, rt := range rts {
		rs, st, err := index.SearchFiltered(parts[rt.Partition], q, fetch, keep)
		if err != nil {
			return nil, total, err
		}
		total = addStats(total, st)
		lists = append(lists, rs)
	}
	return e.filterDeleted(topk.Merge(fetch, lists...), k), total, nil
}

func addStats(a, b index.Stats) index.Stats {
	return index.Stats{
		DistComps:  a.DistComps + b.DistComps,
		Hops:       a.Hops + b.Hops,
		QuantComps: a.QuantComps + b.QuantComps,
		Reranked:   a.Reranked + b.Reranked,
	}
}

// SearchBatchFiltered answers all queries under one filter using a pool
// of nThreads workers, with the same cancellation semantics as
// SearchBatchContext.
func (e *Engine) SearchBatchFiltered(ctx context.Context, queries *vec.Dataset, k int, f *filter.Expr, nThreads int) ([][]topk.Result, error) {
	if queries.Dim != e.dim {
		return nil, fmt.Errorf("core: query dim %d, index dim %d", queries.Dim, e.dim)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if nThreads <= 0 {
		nThreads = runtime.GOMAXPROCS(0)
	}
	out := make([][]topk.Result, queries.Len())
	errs := make([]error, queries.Len())
	var wg sync.WaitGroup
	work := make(chan int, nThreads*2)
	done := ctx.Done()
	for w := 0; w < nThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				select {
				case <-done:
					errs[i] = ctx.Err()
					continue // keep draining so the producer never blocks
				default:
				}
				out[i], errs[i] = e.SearchFiltered(queries.At(i), k, f)
			}
		}()
	}
	for i := 0; i < queries.Len(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
