package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/vptree"
)

// Checkpointing. The paper's distributed construction takes ~15 minutes
// at 8192 cores (Table II); a production cluster builds once, saves each
// rank's partition index plus the master's routing tree, and serves many
// batch windows from the checkpoint. These helpers write one file per
// worker plus a tree file, and restart a cluster from them.

// checkpointMagic identifies worker checkpoint files.
const checkpointMagic = "ANNC"

// SaveCheckpoint is called collectively on the workers' communicator
// after BuildDistributed: every rank writes <dir>/part-<id>.ann (its
// own index plus hosted replicas) and rank 0 writes <dir>/tree.vp.
func (b *Built) SaveCheckpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("part-%d.ann", b.PartitionID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		f.Close()
		return err
	}
	// header: own partition id + replica count, then (id, index) pairs
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.PartitionID))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Replicas)))
	if _, err := bw.Write(hdr); err != nil {
		f.Close()
		return err
	}
	for id, l := range b.Replicas {
		g, ok := index.HNSWGraph(l)
		if !ok {
			f.Close()
			return fmt.Errorf("core: checkpointing supports HNSW locals only (partition %d is %q)", id, l.Kind())
		}
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(id))
		if _, err := bw.Write(idb[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := g.WriteTo(bw); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if b.Tree != nil {
		tf, err := os.Create(filepath.Join(dir, "tree.vp"))
		if err != nil {
			return err
		}
		if err := b.Tree.Encode(tf); err != nil {
			tf.Close()
			return err
		}
		return tf.Close()
	}
	return nil
}

// LoadCheckpoint reads one rank's checkpoint file. Before touching the
// partition file it validates the directory as a whole — a missing
// tree.vp or a partition id outside the tree's leaf count fails here
// with a descriptive error instead of surfacing later as a confusing
// mid-replay failure.
func LoadCheckpoint(dir string, partition int) (*Built, error) {
	tree, err := LoadCheckpointTree(dir)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= tree.Leaves {
		return nil, fmt.Errorf("core: checkpoint %q holds %d partitions; partition %d out of range",
			dir, tree.Leaves, partition)
	}
	f, err := os.Open(filepath.Join(dir, fmt.Sprintf("part-%d.ann", partition)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("core: checkpoint %q has tree.vp but no part-%d.ann (did every rank finish SaveCheckpoint?): %w",
				dir, partition, err)
		}
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	b := &Built{
		PartitionID: int(binary.LittleEndian.Uint32(hdr[0:])),
		Replicas:    make(map[int]index.Local),
	}
	if b.PartitionID != partition {
		return nil, fmt.Errorf("core: checkpoint file part-%d.ann claims partition %d (renamed or mixed checkpoint dirs?)",
			partition, b.PartitionID)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n > tree.Leaves {
		return nil, fmt.Errorf("core: checkpoint part-%d.ann holds %d replicas but the tree has only %d partitions",
			partition, n, tree.Leaves)
	}
	for i := 0; i < n; i++ {
		var idb [4]byte
		if _, err := io.ReadFull(br, idb[:]); err != nil {
			return nil, err
		}
		id := int(binary.LittleEndian.Uint32(idb[:]))
		if id < 0 || id >= tree.Leaves {
			return nil, fmt.Errorf("core: checkpoint part-%d.ann replica id %d out of range [0,%d)",
				partition, id, tree.Leaves)
		}
		g, err := hnsw.ReadFrom(br)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint partition %d replica %d: %w", partition, id, err)
		}
		b.Replicas[id] = index.WrapHNSW(g)
	}
	if l, ok := b.Replicas[b.PartitionID]; ok {
		g, _ := index.HNSWGraph(l)
		b.Index = g
		b.Local = g.Data()
	} else {
		return nil, fmt.Errorf("core: checkpoint for partition %d lacks its own index", partition)
	}
	return b, nil
}

// LoadCheckpointTree reads the routing tree written by rank 0.
func LoadCheckpointTree(dir string) (*vptree.PartitionTree, error) {
	f, err := os.Open(filepath.Join(dir, "tree.vp"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("core: %q is not a checkpoint directory: missing tree.vp (rank 0 writes it last; was the build interrupted?): %w",
				dir, err)
		}
		return nil, err
	}
	defer f.Close()
	t, err := vptree.ReadPartitionTree(f)
	if err != nil {
		return nil, fmt.Errorf("core: decoding %s: %w", filepath.Join(dir, "tree.vp"), err)
	}
	return t, nil
}

// RunClusterFromCheckpoint serves batches from a checkpoint directory:
// rank 0 loads the tree and drives; ranks 1..P load part-(rank-1).ann.
// The replication factor is implied by the checkpoint contents and must
// match cfg.Replication.
func RunClusterFromCheckpoint(c *cluster.Comm, dir string, cfg Config, driver func(*Master) error) error {
	if c.Size() < 2 {
		return fmt.Errorf("core: need at least 1 master + 1 worker")
	}
	cfg.Partitions = c.Size() - 1
	if c.Rank() == 0 {
		// On any master-side failure, still send shutdown so workers
		// that loaded successfully do not wait forever for a batch.
		abort := func(err error) error {
			_ = sendShutdown(c)
			return err
		}
		tree, err := LoadCheckpointTree(dir)
		if err != nil {
			return abort(err)
		}
		if tree.Leaves != cfg.Partitions {
			return abort(fmt.Errorf("core: checkpoint has %d partitions, cluster has %d workers",
				tree.Leaves, cfg.Partitions))
		}
		if err := cfg.fill(tree.Dim); err != nil {
			return abort(err)
		}
		d := &Distributed{comm: c, cfg: cfg, dim: tree.Dim, tree: tree}
		m := &Master{d: d}
		derr := driver(m)
		if err := m.shutdown(); err != nil && derr == nil {
			derr = err
		}
		return derr
	}
	b, err := LoadCheckpoint(dir, c.Rank()-1)
	if err != nil {
		return err
	}
	if len(b.Replicas) < cfg.Replication {
		return fmt.Errorf("core: checkpoint replication %d < configured %d",
			len(b.Replicas), cfg.Replication)
	}
	dim := b.Index.Dim()
	if err := cfg.fill(dim); err != nil {
		return err
	}
	d := &Distributed{comm: c, cfg: cfg, dim: dim, builtB: b}
	return d.workerLoop()
}
