package core

import (
	"fmt"

	"repro/internal/hnsw"
	"repro/internal/index"
)

// Frozen serving path. Engine.Freeze lays every partition's HNSW graph
// out flat — one contiguous vector arena, CSR adjacency slabs, and
// (optionally) an SQ8 code slab scanned during candidate generation
// with exact float32 re-ranking (DESIGN.md §9). The dynamic paths keep
// working on top: WAL-replayed inserts land in the underlying graphs
// and are served by an exact tail merge until a background re-freeze
// folds them in, and compaction's SwapPartition re-freezes the
// replacement partition before installing it.

// freezeState is the engine's frozen-mode configuration, guarded by
// swapMu alongside the partition set it applies to.
type freezeState struct {
	on   bool
	opts hnsw.FreezeOptions
}

// Freeze switches the engine to the frozen serving path: every
// partition is laid out flat with the given options, and partitions
// installed later by SwapPartition are frozen the same way. It can be
// called again to re-freeze with different options. Searches may run
// concurrently; each partition flips atomically from dynamic to frozen.
func (e *Engine) Freeze(opts hnsw.FreezeOptions) error {
	_, parts := e.view()
	frozen := make([]index.Local, len(parts))
	for i, p := range parts {
		f, err := index.Freeze(p, opts)
		if err != nil {
			return fmt.Errorf("core: freezing partition %d: %w", i, err)
		}
		frozen[i] = f
	}
	e.swapMu.Lock()
	// Install against the current partition set: any partition swapped
	// while we were freezing wins (it was frozen by SwapPartition).
	parts2 := append([]index.Local(nil), e.parts...)
	for i := range parts2 {
		if i < len(frozen) && parts2[i] == parts[i] {
			parts2[i] = frozen[i]
		}
	}
	e.parts = parts2
	e.freeze = freezeState{on: true, opts: opts}
	e.cfg.Frozen, e.cfg.SQ8, e.cfg.RerankK = true, opts.SQ8, opts.RerankK
	e.swapMu.Unlock()
	return nil
}

// Unfreeze returns the engine to the dynamic serving path (the
// underlying graphs were receiving writes all along).
func (e *Engine) Unfreeze() {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	parts := append([]index.Local(nil), e.parts...)
	for i, p := range parts {
		if g, ok := index.HNSWGraph(p); ok && index.Frozen(p) {
			parts[i] = index.WrapHNSW(g)
		}
	}
	e.parts = parts
	e.freeze = freezeState{}
	e.cfg.Frozen, e.cfg.SQ8 = false, false
}

// FrozenMode reports whether the engine serves from frozen layouts and
// with which options.
func (e *Engine) FrozenMode() (hnsw.FreezeOptions, bool) {
	e.swapMu.RLock()
	defer e.swapMu.RUnlock()
	return e.freeze.opts, e.freeze.on
}

// SetRerankK adjusts the quantized path's re-rank budget on every
// frozen partition (>0 candidates; 0 = 4*k per query; <0 = exact
// scoring). No-op for dynamic partitions.
func (e *Engine) SetRerankK(rr int) {
	e.swapMu.Lock()
	e.freeze.opts.RerankK = rr
	e.cfg.RerankK = rr
	parts := e.parts
	e.swapMu.Unlock()
	for _, p := range parts {
		index.SetRerankK(p, rr)
	}
}

// FrozenInfo aggregates the frozen path's footprint and work counters
// across partitions — the numbers /varz exports.
type FrozenInfo struct {
	Partitions  int   `json:"partitions"`   // frozen partitions
	FrozenLen   int   `json:"points"`       // rows served from frozen layouts
	TailLen     int   `json:"tail_points"`  // rows pending the next re-freeze
	ArenaBytes  int64 `json:"arena_bytes"`  // total frozen footprint
	Quantized   bool  `json:"sq8"`          // SQ8 first pass active anywhere
	Searches    int64 `json:"searches"`     // frozen-path searches served
	QuantComps  int64 `json:"quant_scans"`  // quantized distance evaluations
	Reranked    int64 `json:"reranked"`     // candidates re-ranked exactly
	TailScanned int64 `json:"tail_scanned"` // tail rows scanned exactly
	Refreezes   int64 `json:"refreezes"`    // background re-freezes
}

// RerankRatio returns reranked / quantized-scans — how much of the
// first-pass work survives to full-precision scoring.
func (fi FrozenInfo) RerankRatio() float64 {
	if fi.QuantComps == 0 {
		return 0
	}
	return float64(fi.Reranked) / float64(fi.QuantComps)
}

// FrozenInfo sums frozen counters over all partitions; ok is false when
// no partition is frozen.
func (e *Engine) FrozenInfo() (FrozenInfo, bool) {
	_, parts := e.view()
	var fi FrozenInfo
	for _, p := range parts {
		st, ok := index.FrozenLocalStats(p)
		if !ok {
			continue
		}
		fi.Partitions++
		fi.FrozenLen += st.FrozenLen
		fi.TailLen += st.TailLen
		fi.ArenaBytes += st.ArenaBytes
		fi.Quantized = fi.Quantized || st.Quantized
		fi.Searches += st.Searches
		fi.QuantComps += st.QuantComps
		fi.Reranked += st.Reranked
		fi.TailScanned += st.TailScanned
		fi.Refreezes += st.Refreezes
	}
	return fi, fi.Partitions > 0
}
