package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/topk"
)

// Wire formats of the engine's messages. Queries and results are encoded
// manually (not gob) because they are the hot path: the paper's engine
// moves one query message per (query, partition) pair and one result
// record back.

func putFloat32(b []byte, x float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(x)) }
func getFloat32(b []byte) float32    { return math.Float32frombits(binary.LittleEndian.Uint32(b)) }
func putUint64(b []byte, x uint64)   { binary.LittleEndian.PutUint64(b, x) }
func getUint64(b []byte) uint64      { return binary.LittleEndian.Uint64(b) }
func putUint32(b []byte, x uint32)   { binary.LittleEndian.PutUint32(b, x) }
func getUint32(b []byte) uint32      { return binary.LittleEndian.Uint32(b) }

// Message tags.
const (
	tagQuery  = 1 // master -> worker: queryMsg
	tagEOQ    = 2 // master -> worker: end of queries (Algorithm 3/4)
	tagResult = 3 // worker -> master: resultMsg (two-sided mode)
	tagDone   = 4 // worker -> master: workerDone
	tagOwner  = 5 // owner -> host and back (multiple-owner strategy)
	tagHeader = 9 // master -> worker: batchHeader (per-worker, replaces Bcast
	// so the master can address retry rounds to a subset of workers and
	// tolerate dead ranks)
)

// queryMsg is a routed query dispatched to one partition host.
type queryMsg struct {
	QueryID   uint32
	Partition int32
	K         uint16
	Vec       []float32
}

func encodeQuery(m queryMsg) []byte {
	buf := make([]byte, 10+4*len(m.Vec))
	binary.LittleEndian.PutUint32(buf[0:], m.QueryID)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Partition))
	binary.LittleEndian.PutUint16(buf[8:], m.K)
	for i, x := range m.Vec {
		binary.LittleEndian.PutUint32(buf[10+4*i:], math.Float32bits(x))
	}
	return buf
}

func decodeQuery(b []byte) (queryMsg, error) {
	if len(b) < 10 || (len(b)-10)%4 != 0 {
		return queryMsg{}, fmt.Errorf("core: malformed query message (%d bytes)", len(b))
	}
	m := queryMsg{
		QueryID:   binary.LittleEndian.Uint32(b[0:]),
		Partition: int32(binary.LittleEndian.Uint32(b[4:])),
		K:         binary.LittleEndian.Uint16(b[8:]),
		Vec:       make([]float32, (len(b)-10)/4),
	}
	for i := range m.Vec {
		m.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[10+4*i:]))
	}
	return m, nil
}

// resultMsg carries the local k-NN of one query in one partition, plus
// the work performed (for the cost model and Figure 5). Seq is the batch
// round the result answers; the master uses it to discard results from
// rounds that have already been retried elsewhere.
type resultMsg struct {
	QueryID   uint32
	Partition int32
	Seq       uint32
	DistComps int64
	Results   []topk.Result
}

func encodeResult(m resultMsg) []byte {
	buf := make([]byte, 24+12*len(m.Results))
	binary.LittleEndian.PutUint32(buf[0:], m.QueryID)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Partition))
	binary.LittleEndian.PutUint32(buf[8:], m.Seq)
	binary.LittleEndian.PutUint64(buf[12:], uint64(m.DistComps))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(m.Results)))
	off := 24
	for _, r := range m.Results {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r.ID))
		binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(r.Dist))
		off += 12
	}
	return buf
}

func decodeResult(b []byte) (resultMsg, error) {
	if len(b) < 24 {
		return resultMsg{}, fmt.Errorf("core: malformed result message (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[20:]))
	if len(b) != 24+12*n {
		return resultMsg{}, fmt.Errorf("core: result message length %d != %d", len(b), 24+12*n)
	}
	m := resultMsg{
		QueryID:   binary.LittleEndian.Uint32(b[0:]),
		Partition: int32(binary.LittleEndian.Uint32(b[4:])),
		Seq:       binary.LittleEndian.Uint32(b[8:]),
		DistComps: int64(binary.LittleEndian.Uint64(b[12:])),
		Results:   make([]topk.Result, n),
	}
	off := 24
	for i := range m.Results {
		m.Results[i] = topk.Result{
			ID:   int64(binary.LittleEndian.Uint64(b[off:])),
			Dist: math.Float32frombits(binary.LittleEndian.Uint32(b[off+8:])),
		}
		off += 12
	}
	return m, nil
}

// workerDone reports a worker's completion along with its per-partition
// processed-query counts and issued accumulate count (one-sided mode).
// Seq identifies the batch round the Done closes; a stale Seq tells the
// master a lagging worker has finally finished an old round.
type workerDone struct {
	Seq         uint32
	Processed   int64
	Accumulates int64
	DistComps   int64
	Hops        int64
}

func encodeDone(d workerDone) []byte {
	buf := make([]byte, 40)
	binary.LittleEndian.PutUint64(buf[0:], uint64(d.Seq))
	binary.LittleEndian.PutUint64(buf[8:], uint64(d.Processed))
	binary.LittleEndian.PutUint64(buf[16:], uint64(d.Accumulates))
	binary.LittleEndian.PutUint64(buf[24:], uint64(d.DistComps))
	binary.LittleEndian.PutUint64(buf[32:], uint64(d.Hops))
	return buf
}

func decodeDone(b []byte) (workerDone, error) {
	if len(b) != 40 {
		return workerDone{}, fmt.Errorf("core: malformed done message (%d bytes)", len(b))
	}
	return workerDone{
		Seq:         uint32(binary.LittleEndian.Uint64(b[0:])),
		Processed:   int64(binary.LittleEndian.Uint64(b[8:])),
		Accumulates: int64(binary.LittleEndian.Uint64(b[16:])),
		DistComps:   int64(binary.LittleEndian.Uint64(b[24:])),
		Hops:        int64(binary.LittleEndian.Uint64(b[32:])),
	}, nil
}

// mergeResultSlot is the cluster.MergeFunc used with the one-sided
// window: each slot accumulates the best k results of one query. The
// update is an encoded resultMsg; the current value is a compact
// (k-bounded) encoded resultMsg with Partition=-1.
func mergeResultSlot(k int) func(cur, update []byte) []byte {
	return func(cur, update []byte) []byte {
		um, err := decodeResult(update)
		if err != nil {
			return cur
		}
		if cur == nil {
			if len(um.Results) > k {
				um.Results = um.Results[:k]
			}
			um.Partition = -1
			return encodeResult(um)
		}
		cm, err := decodeResult(cur)
		if err != nil {
			return update
		}
		merged := topk.Merge(k, cm.Results, um.Results)
		return encodeResult(resultMsg{
			QueryID:   um.QueryID,
			Partition: -1,
			DistComps: cm.DistComps + um.DistComps,
			Results:   merged,
		})
	}
}
