package core

import (
	"fmt"
	"io"

	"repro/internal/filter"
	"repro/internal/fusion"
	"repro/internal/lexical"
	"repro/internal/topk"
)

// Hybrid retrieval: the engine owns a BM25 inverted index
// (internal/lexical) next to its vector partitions, populated by
// SetText and queried by SearchHybrid. The vector leg runs the existing
// dynamic/frozen/filtered search paths unchanged; the lexical leg
// queries the inverted index under the same tombstone + filter
// predicates; internal/fusion merges the two rankings. The lexical
// index also retains each document's vector, so fused candidates are
// re-scored with exact float32 distances — the approximate legs decide
// WHICH candidates surface, never what distance is reported, which
// makes hybrid results reproducible across runs and across crash
// recovery.

// Fusion mode names accepted by HybridOptions.Fusion.
const (
	FusionRRF      = "rrf"
	FusionWeighted = "weighted"
)

// HybridOptions tunes SearchHybrid. The zero value selects RRF with
// K=60, equal leg weights, and a per-leg candidate depth of 4k.
type HybridOptions struct {
	// Fusion selects the rank-merging scheme: FusionRRF (default) or
	// FusionWeighted.
	Fusion string
	// RRFK is the reciprocal-rank constant (default fusion.DefaultRRFK).
	RRFK float64
	// VecWeight / LexWeight weigh the legs under FusionWeighted
	// (default 0.5 each).
	VecWeight, LexWeight float64
	// LegK is how many candidates each leg contributes before fusion
	// (default 4k, at least 10): deep enough that a document ranked well
	// by only one leg still enters the fused pool.
	LegK int
	// Filter optionally restricts both legs to matching documents.
	Filter *filter.Expr
}

func (o *HybridOptions) fill(k int) error {
	switch o.Fusion {
	case "":
		o.Fusion = FusionRRF
	case FusionRRF, FusionWeighted:
	default:
		return fmt.Errorf("core: unknown fusion mode %q (want %q or %q)", o.Fusion, FusionRRF, FusionWeighted)
	}
	if o.RRFK <= 0 {
		o.RRFK = fusion.DefaultRRFK
	}
	if o.VecWeight <= 0 && o.LexWeight <= 0 {
		o.VecWeight, o.LexWeight = 0.5, 0.5
	} else {
		if o.VecWeight < 0 {
			o.VecWeight = 0
		}
		if o.LexWeight < 0 {
			o.LexWeight = 0
		}
	}
	if o.LegK <= 0 {
		o.LegK = 4 * k
		if o.LegK < 10 {
			o.LegK = 10
		}
	}
	return nil
}

// HybridResult is one fused hit. Score is the fused score (higher =
// better); Dist is the exact float32 vector distance when the query
// carried a vector and the document's vector is known (else 0 with
// HasDist false); BM25 is the lexical score (0 when the document missed
// the lexical leg).
type HybridResult struct {
	ID      int64
	Score   float64
	Dist    float32
	HasDist bool
	BM25    float64
}

// lexIndex returns the current lexical index.
func (e *Engine) lexIndex() *lexical.Index {
	e.lexMu.RLock()
	defer e.lexMu.RUnlock()
	return e.lex
}

// SetLexicalConfig replaces the engine's (empty) lexical index with one
// configured with cfg — per-collection BM25 parameters and stopwords.
// It must be called before any document is indexed: tokenization
// happens at SetText time, so reconfiguring a populated index would
// desynchronize postings from parameters.
func (e *Engine) SetLexicalConfig(cfg lexical.Config) error {
	e.lexMu.Lock()
	defer e.lexMu.Unlock()
	if e.lex.Docs() > 0 {
		return fmt.Errorf("core: lexical index already holds %d documents; configure before indexing", e.lex.Docs())
	}
	e.lex = lexical.NewIndex(cfg)
	return nil
}

// SetText indexes text under id for hybrid retrieval, replacing any
// previous document. vec is the vector id was upserted with; the index
// retains a copy for exact re-scoring. Safe for concurrent use with
// searches. Like SetTags, this only attaches metadata — the vector
// itself is inserted through the usual Add/AddAt path.
func (e *Engine) SetText(id int64, text string, vec []float32) {
	e.lexIndex().Set(id, text, vec)
}

// Text returns id's indexed document text.
func (e *Engine) Text(id int64) (string, bool) { return e.lexIndex().Text(id) }

// TextCount returns the number of documents in the lexical index.
func (e *Engine) TextCount() int { return e.lexIndex().Docs() }

// LexicalStats summarizes the lexical index for /varz.
func (e *Engine) LexicalStats() lexical.Stats { return e.lexIndex().Stats() }

// TextsSnapshot returns a point-in-time view of every indexed document;
// the durability layer persists it alongside each engine snapshot.
func (e *Engine) TextsSnapshot() map[int64]lexical.Doc { return e.lexIndex().Snapshot() }

// LexicalDump writes the canonical live-postings dump — a
// construction-history-independent rendering of the inverted index that
// crash-recovery tests compare byte-for-byte.
func (e *Engine) LexicalDump(w io.Writer) error { return e.lexIndex().DumpPostings(w) }

// RestoreTexts replaces the whole lexical index contents — the recovery
// half of TextsSnapshot, called after LoadEngine before WAL tail
// replay. Parameters (SetLexicalConfig) must be applied first.
func (e *Engine) RestoreTexts(docs map[int64]lexical.Doc) { e.lexIndex().Restore(docs) }

// lexAllow builds the candidate predicate for the lexical leg:
// tombstoned documents never score, and an optional filter expression
// restricts further (same semantics as filtered vector search).
func (e *Engine) lexAllow(f *filter.Expr) func(int64) bool {
	keep := e.FilterPredicate(f)
	return func(id int64) bool {
		if e.Deleted(id) {
			return false
		}
		return keep == nil || keep(id)
	}
}

// SearchLexical runs the BM25 leg alone: top-k keyword matches under
// the engine's tombstones and an optional filter.
func (e *Engine) SearchLexical(text string, k int, f *filter.Expr) []lexical.Scored {
	return e.lexIndex().Search(text, k, e.lexAllow(f))
}

// SearchHybrid answers a hybrid query: the vector leg (when q is
// non-nil) runs the regular approximate search, the lexical leg (when
// text is non-empty) runs BM25 over the inverted index, and the two
// rankings are fused. Both legs honor opts.Filter and tombstones. At
// least one leg must be present.
//
// Candidates from either leg are re-scored with exact float32 distances
// (using the vector stored at SetText time) before the vector leg is
// ranked, so the fused ordering is a pure function of the candidate
// sets — identical before a crash and after recovery, and identical
// across scalar/frozen/SQ8 serving modes that surface the same
// candidates.
func (e *Engine) SearchHybrid(q []float32, text string, k int, opts HybridOptions) ([]HybridResult, error) {
	if err := opts.fill(k); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = e.cfg.K
	}
	if len(q) == 0 && text == "" {
		return nil, fmt.Errorf("core: hybrid search needs a text leg, a vector leg, or both")
	}
	if len(q) != 0 && len(q) != e.dim {
		return nil, fmt.Errorf("core: query dim %d, index dim %d", len(q), e.dim)
	}

	lex := e.lexIndex()
	dist := e.cfg.Metric.Func()

	// Vector leg: existing dynamic/frozen/filtered paths, then exact
	// re-scoring of every candidate whose stored vector is known.
	var vecLeg []fusion.Candidate
	exact := make(map[int64]float32)
	if len(q) != 0 {
		var (
			rs  []topk.Result
			err error
		)
		if opts.Filter != nil && !opts.Filter.Empty() {
			rs, err = e.SearchFiltered(q, opts.LegK, opts.Filter)
		} else {
			rs, err = e.Search(q, opts.LegK)
		}
		if err != nil {
			return nil, err
		}
		vecLeg = make([]fusion.Candidate, 0, len(rs))
		for _, r := range rs {
			d := r.Dist
			if v, ok := lex.Vector(r.ID); ok && len(v) == len(q) {
				d = dist(q, v)
			}
			exact[r.ID] = d
			vecLeg = append(vecLeg, fusion.Candidate{ID: r.ID, Score: -float64(d)})
		}
		// Re-scoring may reorder near-equal candidates the approximate
		// leg surfaced; rank on exact scores with ID tie-breaks so the
		// leg's ranking is reproducible.
		fusion.Sort(vecLeg)
	}

	// Lexical leg: BM25 under the same predicates.
	var lexLeg []fusion.Candidate
	bm25 := make(map[int64]float64)
	if text != "" {
		scored := lex.Search(text, opts.LegK, e.lexAllow(opts.Filter))
		lexLeg = make([]fusion.Candidate, 0, len(scored))
		for _, s := range scored {
			bm25[s.ID] = s.Score
			lexLeg = append(lexLeg, fusion.Candidate{ID: s.ID, Score: s.Score})
			if len(q) != 0 {
				if _, ok := exact[s.ID]; !ok {
					if v, ok := lex.Vector(s.ID); ok && len(v) == len(q) {
						exact[s.ID] = dist(q, v)
					}
				}
			}
		}
	}

	var fused []fusion.Candidate
	if opts.Fusion == FusionWeighted {
		fused = fusion.WeightedMinMax([]float64{opts.VecWeight, opts.LexWeight}, k, vecLeg, lexLeg)
	} else {
		fused = fusion.RRF(opts.RRFK, k, vecLeg, lexLeg)
	}
	out := make([]HybridResult, len(fused))
	for i, c := range fused {
		r := HybridResult{ID: c.ID, Score: c.Score, BM25: bm25[c.ID]}
		if d, ok := exact[c.ID]; ok && len(q) != 0 {
			r.Dist, r.HasDist = d, true
		}
		out[i] = r
	}
	return out, nil
}
