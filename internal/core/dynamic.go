package core

import (
	"fmt"
	"sync"

	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Dynamic updates. The paper's engine is built once over a static
// snapshot; a production deployment also needs inserts and deletes
// between batch windows. Inserts route new vectors to their home
// partition's HNSW graph (the VP tree keeps routing correctly: the home
// partition is by construction the region the point falls into).
// Deletes are tombstones — HNSW graphs do not support structural removal
// cheaply, so deleted IDs are filtered out of results and compacted away
// on the next full rebuild.
//
// Updates and searches may interleave: the tombstone set takes an
// RWMutex, and HNSW insertion is internally thread-safe.

// dynamicState holds the mutable update state attached to every
// Engine. The pointer is set at construction and never reassigned;
// the embedded mutex guards the contents.
type dynamicState struct {
	mu        sync.RWMutex
	tombstone map[int64]bool
	inserted  int64
}

func newDynamicState() *dynamicState {
	return &dynamicState{tombstone: make(map[int64]bool)}
}

func (e *Engine) dyn() *dynamicState { return e.dynamic }

// Add inserts a vector with the given global ID into its home
// partition. Only engines with HNSW local indexes support insertion.
func (e *Engine) Add(v []float32, id int64) error {
	home, err := e.Home(v)
	if err != nil {
		return err
	}
	level, err := e.DrawLevel(home)
	if err != nil {
		return err
	}
	return e.AddAt(home, v, id, level)
}

// Home returns the partition a vector routes to on insertion.
func (e *Engine) Home(v []float32) (int, error) {
	if len(v) != e.dim {
		return 0, fmt.Errorf("core: vector dim %d, index dim %d", len(v), e.dim)
	}
	tree, _ := e.view()
	return tree.Home(v), nil
}

// DrawLevel draws the HNSW level the next insert into partition p will
// be assigned, consuming the partition's level generator. Durable
// ingestion draws the level, logs (p, level, vector) to its WAL, and
// then applies with AddAt, so replaying the log rebuilds an identical
// graph.
func (e *Engine) DrawLevel(p int) (int, error) {
	g, err := e.insertGraph(p)
	if err != nil {
		return 0, err
	}
	return g.NextLevel(), nil
}

// AddAt inserts a vector into partition p at a predetermined HNSW
// level — the replay half of the DrawLevel/AddAt pair. Most callers
// want Add, which routes and draws for them.
func (e *Engine) AddAt(p int, v []float32, id int64, level int) error {
	if len(v) != e.dim {
		return fmt.Errorf("core: vector dim %d, index dim %d", len(v), e.dim)
	}
	g, err := e.insertGraph(p)
	if err != nil {
		return err
	}
	if _, err := g.AddAtLevel(v, id, level); err != nil {
		return err
	}
	d := e.dyn()
	d.mu.Lock()
	d.inserted++
	delete(d.tombstone, id) // re-adding a deleted ID revives it
	d.mu.Unlock()
	return nil
}

// insertGraph resolves partition p's HNSW graph for mutation.
func (e *Engine) insertGraph(p int) (*hnsw.Graph, error) {
	_, parts := e.view()
	if p < 0 || p >= len(parts) {
		return nil, fmt.Errorf("core: partition %d out of range [0,%d)", p, len(parts))
	}
	g, ok := index.HNSWGraph(parts[p])
	if !ok {
		return nil, fmt.Errorf("core: local index %q does not support insertion", parts[p].Kind())
	}
	return g, nil
}

// Inserted returns the number of vectors added since construction (or
// since the last Rebuild).
func (e *Engine) Inserted() int64 {
	d := e.dyn()
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inserted
}

// Delete tombstones an ID: it stops appearing in results immediately.
// Deleting an unknown ID is a no-op (idempotent).
func (e *Engine) Delete(id int64) {
	d := e.dyn()
	d.mu.Lock()
	d.tombstone[id] = true
	d.mu.Unlock()
}

// Deleted reports whether id is tombstoned.
func (e *Engine) Deleted(id int64) bool {
	d := e.dyn()
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tombstone[id]
}

// TombstoneIDs returns a copy of the current tombstone set. The
// durability layer's compactor uses it to find the partitions carrying
// the most dead weight.
func (e *Engine) TombstoneIDs() []int64 {
	d := e.dyn()
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]int64, 0, len(d.tombstone))
	for id := range d.tombstone {
		ids = append(ids, id)
	}
	return ids
}

// RestoreDynamic reinstates update state that lives outside the engine
// file: the tombstone set and the inserted counter. Save captures the
// graphs but not this state, so the durable store persists it alongside
// each snapshot and calls RestoreDynamic after LoadEngine during
// recovery — otherwise a checkpoint would silently resurrect every ID
// deleted before it.
func (e *Engine) RestoreDynamic(tombstones []int64, inserted int64) {
	d := e.dyn()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tombstone = make(map[int64]bool, len(tombstones))
	for _, id := range tombstones {
		d.tombstone[id] = true
	}
	d.inserted = inserted
}

// Tombstones returns the number of tombstoned IDs.
func (e *Engine) Tombstones() int {
	d := e.dyn()
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.tombstone)
}

// filterDeleted strips tombstoned IDs from rs. To keep k results in the
// presence of tombstones, callers over-fetch (see SearchStats).
func (e *Engine) filterDeleted(rs []topk.Result, k int) []topk.Result {
	d := e.dyn()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.tombstone) == 0 {
		if len(rs) > k {
			rs = rs[:k]
		}
		return rs
	}
	out := rs[:0]
	for _, r := range rs {
		if !d.tombstone[r.ID] {
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// overfetch widens k to survive tombstone filtering.
func (e *Engine) overfetch(k int) int {
	d := e.dyn()
	d.mu.RLock()
	nt := len(d.tombstone)
	d.mu.RUnlock()
	if nt == 0 {
		return k
	}
	extra := nt
	if extra > 3*k {
		extra = 3 * k // bounded over-fetch; rebuild when tombstones pile up
	}
	return k + extra
}

// Rebuild compacts the engine: it re-partitions and re-indexes the
// current live contents (original + inserted - tombstoned vectors),
// clearing all tombstones. The paper rebuilds offline between batch
// windows; this is that operation in-process.
func (e *Engine) Rebuild() error {
	_, parts := e.view()
	live := vec.NewDataset(e.dim, e.Len())
	for _, p := range parts {
		g, ok := index.HNSWGraph(p)
		if !ok {
			return fmt.Errorf("core: Rebuild requires HNSW local indexes, have %q", p.Kind())
		}
		ds := g.Data()
		for i := 0; i < ds.Len(); i++ {
			if !e.Deleted(ds.ID(i)) {
				live.Append(ds.At(i), ds.ID(i))
			}
		}
	}
	fresh, err := NewEngine(live, e.cfg)
	if err != nil {
		return err
	}
	e.swapMu.Lock()
	e.tree = fresh.tree
	e.parts = fresh.parts
	e.swapMu.Unlock()
	d := e.dyn()
	d.mu.Lock()
	dead := make([]int64, 0, len(d.tombstone))
	for id := range d.tombstone {
		dead = append(dead, id)
	}
	d.tombstone = make(map[int64]bool)
	d.inserted = 0
	d.mu.Unlock()
	// Compacted-away IDs no longer exist; drop their tags.
	for _, id := range dead {
		e.tags.delete(id)
	}
	return nil
}
