package core

import (
	"fmt"
	"sync"

	"repro/internal/index"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Dynamic updates. The paper's engine is built once over a static
// snapshot; a production deployment also needs inserts and deletes
// between batch windows. Inserts route new vectors to their home
// partition's HNSW graph (the VP tree keeps routing correctly: the home
// partition is by construction the region the point falls into).
// Deletes are tombstones — HNSW graphs do not support structural removal
// cheaply, so deleted IDs are filtered out of results and compacted away
// on the next full rebuild.
//
// Updates and searches may interleave: the tombstone set takes an
// RWMutex, and HNSW insertion is internally thread-safe.

// dynamicState is lazily attached to an Engine on first update.
type dynamicState struct {
	mu        sync.RWMutex
	tombstone map[int64]bool
	inserted  int64
}

func (e *Engine) dyn() *dynamicState {
	e.dynOnce.Do(func() {
		e.dynamic = &dynamicState{tombstone: make(map[int64]bool)}
	})
	return e.dynamic
}

// Add inserts a vector with the given global ID into its home
// partition. Only engines with HNSW local indexes support insertion.
func (e *Engine) Add(v []float32, id int64) error {
	if len(v) != e.dim {
		return fmt.Errorf("core: vector dim %d, index dim %d", len(v), e.dim)
	}
	home := e.tree.Home(v)
	g, ok := index.HNSWGraph(e.parts[home])
	if !ok {
		return fmt.Errorf("core: local index %q does not support insertion", e.parts[home].Kind())
	}
	if _, err := g.Add(v, id); err != nil {
		return err
	}
	d := e.dyn()
	d.mu.Lock()
	d.inserted++
	delete(d.tombstone, id) // re-adding a deleted ID revives it
	d.mu.Unlock()
	return nil
}

// Delete tombstones an ID: it stops appearing in results immediately.
// Deleting an unknown ID is a no-op (idempotent).
func (e *Engine) Delete(id int64) {
	d := e.dyn()
	d.mu.Lock()
	d.tombstone[id] = true
	d.mu.Unlock()
}

// Deleted reports whether id is tombstoned.
func (e *Engine) Deleted(id int64) bool {
	if e.dynamic == nil {
		return false
	}
	d := e.dynamic
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tombstone[id]
}

// Tombstones returns the number of tombstoned IDs.
func (e *Engine) Tombstones() int {
	if e.dynamic == nil {
		return 0
	}
	e.dynamic.mu.RLock()
	defer e.dynamic.mu.RUnlock()
	return len(e.dynamic.tombstone)
}

// filterDeleted strips tombstoned IDs from rs. To keep k results in the
// presence of tombstones, callers over-fetch (see SearchStats).
func (e *Engine) filterDeleted(rs []topk.Result, k int) []topk.Result {
	if e.dynamic == nil {
		if len(rs) > k {
			rs = rs[:k]
		}
		return rs
	}
	d := e.dynamic
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.tombstone) == 0 {
		if len(rs) > k {
			rs = rs[:k]
		}
		return rs
	}
	out := rs[:0]
	for _, r := range rs {
		if !d.tombstone[r.ID] {
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// overfetch widens k to survive tombstone filtering.
func (e *Engine) overfetch(k int) int {
	if e.dynamic == nil {
		return k
	}
	e.dynamic.mu.RLock()
	nt := len(e.dynamic.tombstone)
	e.dynamic.mu.RUnlock()
	if nt == 0 {
		return k
	}
	extra := nt
	if extra > 3*k {
		extra = 3 * k // bounded over-fetch; rebuild when tombstones pile up
	}
	return k + extra
}

// Rebuild compacts the engine: it re-partitions and re-indexes the
// current live contents (original + inserted - tombstoned vectors),
// clearing all tombstones. The paper rebuilds offline between batch
// windows; this is that operation in-process.
func (e *Engine) Rebuild() error {
	live := vec.NewDataset(e.dim, e.Len())
	for _, p := range e.parts {
		g, ok := index.HNSWGraph(p)
		if !ok {
			return fmt.Errorf("core: Rebuild requires HNSW local indexes, have %q", p.Kind())
		}
		ds := g.Data()
		for i := 0; i < ds.Len(); i++ {
			if !e.Deleted(ds.ID(i)) {
				live.Append(ds.At(i), ds.ID(i))
			}
		}
	}
	fresh, err := NewEngine(live, e.cfg)
	if err != nil {
		return err
	}
	e.tree = fresh.tree
	e.parts = fresh.parts
	e.dynamic = nil
	e.dynOnce = sync.Once{}
	return nil
}
