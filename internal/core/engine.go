package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/lexical"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// Engine is the single-process facade over the paper's design: the
// dataset is partitioned by a VP tree, each partition carries an HNSW
// index, and queries are routed to their most promising partitions and
// searched by a worker pool. It is the entry point for library users
// (see examples/) and the reference implementation the distributed
// engine is tested against.
type Engine struct {
	cfg Config
	dim int

	// swapMu guards the tree and parts headers. Readers snapshot both
	// under RLock (see view) and then work lock-free against the
	// snapshot: elements are never mutated in place — SwapPartition and
	// Rebuild install fresh slices/trees under the write lock, so a
	// search that started before a swap keeps searching the old graph
	// and one that starts after sees the new one, both valid.
	swapMu sync.RWMutex
	tree   *vptree.PartitionTree
	parts  []index.Local
	// freeze is the frozen-serving-mode state; partitions installed by
	// SwapPartition while it is on are re-frozen before they land.
	freeze freezeState

	// dynamic is set at construction and never reassigned, so it can be
	// read without holding swapMu; its own mutex guards the contents.
	dynamic *dynamicState

	// tags holds per-vector metadata consulted by filtered search; set
	// at construction and never reassigned (internally concurrency-safe).
	tags *tagStore

	// lex is the BM25 inverted index behind SearchHybrid. Like tags it
	// is internally concurrency-safe; the pointer itself is guarded by
	// lexMu only because SetLexicalConfig may swap in a reconfigured
	// empty index before any documents are indexed.
	lexMu sync.RWMutex
	lex   *lexical.Index
}

// view snapshots the routing tree and partition set for one operation.
func (e *Engine) view() (*vptree.PartitionTree, []index.Local) {
	e.swapMu.RLock()
	t, p := e.tree, e.parts
	e.swapMu.RUnlock()
	return t, p
}

// NewEngine partitions and indexes ds. The dataset is copied into the
// partition indexes; ds itself is not retained.
func NewEngine(ds *vec.Dataset, cfg Config) (*Engine, error) {
	if err := cfg.fill(ds.Dim); err != nil {
		return nil, err
	}
	res, err := vptree.BuildPartitions(ds, cfg.Partitions, vptree.PartitionConfig{
		Metric: cfg.Metric,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, tree: res.Tree, parts: make([]index.Local, cfg.Partitions), dim: ds.Dim, dynamic: newDynamicState(), tags: newTagStore(), lex: lexical.NewIndex(lexical.Config{})}

	// Build the partition indexes in parallel, one builder goroutine per
	// CPU (each build itself is single-threaded for reproducibility).
	nw := runtime.GOMAXPROCS(0)
	if nw > cfg.Partitions {
		nw = cfg.Partitions
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Partitions)
	work := make(chan int, cfg.Partitions)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				var build index.Builder
				if cfg.LocalIndex == "" || cfg.LocalIndex == "hnsw" {
					hcfg := cfg.HNSW
					hcfg.Seed = cfg.Seed + int64(i)
					build = index.NewHNSWBuilder(hcfg)
				} else {
					var err error
					build, err = index.BuilderFor(cfg.LocalIndex)
					if err != nil {
						errs[i] = err
						continue
					}
				}
				l, err := build(res.Partitions[i], cfg.Metric, 1)
				if err != nil {
					errs[i] = err
					continue
				}
				e.parts[i] = l
			}
		}()
	}
	for i := 0; i < cfg.Partitions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cfg.Frozen {
		if err := e.Freeze(hnsw.FreezeOptions{SQ8: cfg.SQ8, RerankK: cfg.RerankK}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.dim }

// Partitions returns the partition count.
func (e *Engine) Partitions() int {
	_, parts := e.view()
	return len(parts)
}

// Tree exposes the routing tree.
func (e *Engine) Tree() *vptree.PartitionTree {
	t, _ := e.view()
	return t
}

// Len returns the total number of indexed vectors.
func (e *Engine) Len() int {
	_, parts := e.view()
	n := 0
	for _, p := range parts {
		n += p.Len()
	}
	return n
}

// Search returns the approximate k nearest neighbors of q, searching the
// configured number of partitions.
func (e *Engine) Search(q []float32, k int) ([]topk.Result, error) {
	rs, _, err := e.SearchStats(q, k)
	return rs, err
}

// SearchStats is Search plus the work performed.
func (e *Engine) SearchStats(q []float32, k int) ([]topk.Result, index.Stats, error) {
	if len(q) != e.dim {
		return nil, index.Stats{}, fmt.Errorf("core: query dim %d, index dim %d", len(q), e.dim)
	}
	if k <= 0 {
		k = e.cfg.K
	}
	fetch := e.overfetch(k)
	tree, parts := e.view()
	var routes []vptree.Route
	if e.cfg.Routing == RouteAdaptive {
		// search home first, then widen to the ball of the k-th distance
		home := tree.Home(q)
		first, st0, err := parts[home].Search(q, fetch)
		if err != nil {
			return nil, st0, err
		}
		if len(first) > 0 {
			tau := first[len(first)-1].Dist
			routes = tree.RouteBall(q, tau)
		} else {
			routes = tree.RouteAll(q)
		}
		lists := [][]topk.Result{first}
		total := st0
		for _, rt := range routes {
			if rt.Partition == home {
				continue
			}
			rs, st, err := parts[rt.Partition].Search(q, fetch)
			if err != nil {
				return nil, total, err
			}
			total.DistComps += st.DistComps
			total.Hops += st.Hops
			total.QuantComps += st.QuantComps
			total.Reranked += st.Reranked
			lists = append(lists, rs)
		}
		return e.filterDeleted(topk.Merge(fetch, lists...), k), total, nil
	}
	routes = tree.RouteTop(q, e.cfg.NProbe)
	lists := make([][]topk.Result, 0, len(routes))
	var total index.Stats
	for _, rt := range routes {
		rs, st, err := parts[rt.Partition].Search(q, fetch)
		if err != nil {
			return nil, total, err
		}
		total.DistComps += st.DistComps
		total.Hops += st.Hops
		total.QuantComps += st.QuantComps
		total.Reranked += st.Reranked
		lists = append(lists, rs)
	}
	return e.filterDeleted(topk.Merge(fetch, lists...), k), total, nil
}

// SearchBatch answers all queries using a pool of nThreads workers
// (default GOMAXPROCS) — the single-node equivalent of the batched
// throughput mode the paper targets.
func (e *Engine) SearchBatch(queries *vec.Dataset, k, nThreads int) ([][]topk.Result, error) {
	return e.SearchBatchContext(context.Background(), queries, k, nThreads)
}

// SearchBatchContext is SearchBatch with cancellation: once ctx is done,
// remaining queries are skipped, the pool drains, and ctx.Err() is
// returned. Queries already being searched run to completion (local HNSW
// searches are short); this is the entry point the serving gateway uses
// to bound a coalesced batch by its requests' deadlines.
func (e *Engine) SearchBatchContext(ctx context.Context, queries *vec.Dataset, k, nThreads int) ([][]topk.Result, error) {
	if queries.Dim != e.dim {
		return nil, fmt.Errorf("core: query dim %d, index dim %d", queries.Dim, e.dim)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if nThreads <= 0 {
		nThreads = runtime.GOMAXPROCS(0)
	}
	out := make([][]topk.Result, queries.Len())
	errs := make([]error, queries.Len())
	var wg sync.WaitGroup
	work := make(chan int, nThreads*2)
	done := ctx.Done()
	for w := 0; w < nThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				select {
				case <-done:
					errs[i] = ctx.Err()
					continue // keep draining so the producer never blocks
				default:
				}
				out[i], errs[i] = e.Search(queries.At(i), k)
			}
		}()
	}
	for i := 0; i < queries.Len(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SetNProbe adjusts the number of partitions searched per query.
func (e *Engine) SetNProbe(np int) {
	if np > 0 {
		if np > e.Partitions() {
			np = e.Partitions()
		}
		e.cfg.NProbe = np
	}
}

// SetEfSearch adjusts the beam width of every HNSW partition index
// (no-op for exact local indexes).
func (e *Engine) SetEfSearch(ef int) {
	_, parts := e.view()
	for _, p := range parts {
		if g, ok := index.HNSWGraph(p); ok {
			g.SetEfSearch(ef)
		}
	}
}

// LocalKind reports the local index algorithm in use.
func (e *Engine) LocalKind() string {
	_, parts := e.view()
	if len(parts) == 0 {
		return ""
	}
	return parts[0].Kind()
}

// PartitionGraph exposes partition p's HNSW graph, or false when p is
// out of range or the local index is not HNSW. The durability layer
// uses it to snapshot a partition for offline compaction; callers must
// not mutate the graph behind the engine's back.
func (e *Engine) PartitionGraph(p int) (*hnsw.Graph, bool) {
	_, parts := e.view()
	if p < 0 || p >= len(parts) {
		return nil, false
	}
	return index.HNSWGraph(parts[p])
}

// SwapPartition atomically replaces partition p's local index with l
// and clears the tombstones in folded — the IDs the replacement index
// was rebuilt without. Concurrent searches see either the old or the
// new index, never a mix; the tombstone filter stays correct in both
// orders because folded IDs are absent from l and still filtered from
// the old index until the swap lands.
func (e *Engine) SwapPartition(p int, l index.Local, folded []int64) error {
	// In frozen mode the replacement is re-frozen before it lands, so the
	// flat serving layout survives compaction. The O(n) freeze runs
	// before taking the write lock; a concurrent Freeze/Unfreeze changing
	// the mode underneath is benign (both wrapped and plain HNSW locals
	// serve correctly in either mode).
	e.swapMu.RLock()
	fz := e.freeze
	e.swapMu.RUnlock()
	if fz.on && !index.Frozen(l) {
		fl, err := index.Freeze(l, fz.opts)
		if err != nil {
			return fmt.Errorf("core: re-freezing swapped partition %d: %w", p, err)
		}
		l = fl
	}
	e.swapMu.Lock()
	if p < 0 || p >= len(e.parts) {
		e.swapMu.Unlock()
		return fmt.Errorf("core: swap partition %d out of range [0,%d)", p, len(e.parts))
	}
	parts := append([]index.Local(nil), e.parts...)
	parts[p] = l
	e.parts = parts
	e.swapMu.Unlock()
	if len(folded) > 0 {
		d := e.dyn()
		d.mu.Lock()
		for _, id := range folded {
			delete(d.tombstone, id)
		}
		d.mu.Unlock()
		// Folded IDs left the index for good; drop their tags too.
		for _, id := range folded {
			e.tags.delete(id)
		}
	}
	return nil
}

// engineMagic identifies the engine container format.
const engineMagic = "ANNE"

// Save serialises the engine (routing tree + all partition indexes).
// The partition graphs must not be mutated during the call; concurrent
// searches are fine.
func (e *Engine) Save(w io.Writer) error {
	tree, parts := e.view()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(engineMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(e.dim))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(parts)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(e.cfg.NProbe))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// Length-prefix the gob blob: gob decoders read ahead, so the tree
	// must be framed to keep the following index streams intact.
	var tbuf bytes.Buffer
	if err := tree.Encode(&tbuf); err != nil {
		return err
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(tbuf.Len()))
	if _, err := bw.Write(lenb[:]); err != nil {
		return err
	}
	if _, err := bw.Write(tbuf.Bytes()); err != nil {
		return err
	}
	for i, p := range parts {
		g, ok := index.HNSWGraph(p)
		if !ok {
			return fmt.Errorf("core: Save supports HNSW local indexes only (partition %d is %q)", i, p.Kind())
		}
		if _, err := g.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// loadErr wraps a section-read failure with context, turning the bare
// io.EOF a truncated file produces mid-structure into the unambiguous
// io.ErrUnexpectedEOF so callers see "engine file truncated reading X"
// instead of EOF soup.
func loadErr(section string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("core: engine file truncated or corrupt reading %s: %w", section, err)
}

// maxEnginePartitions bounds the partition-count header field so a
// corrupt file fails fast instead of driving a near-endless decode loop.
const maxEnginePartitions = 1 << 20

// LoadEngine reads an engine saved with Save. Truncated or corrupt
// inputs return descriptive errors naming the section that failed.
func LoadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("core: engine file is empty: %w", io.ErrUnexpectedEOF)
		}
		return nil, loadErr("magic", err)
	}
	if string(magic) != engineMagic {
		return nil, fmt.Errorf("core: bad engine magic %q (want %q): not an annbuild index file", magic, engineMagic)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, loadErr("header", err)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:]))
	np := int(binary.LittleEndian.Uint32(hdr[4:]))
	nprobe := int(binary.LittleEndian.Uint32(hdr[8:]))
	if dim <= 0 {
		return nil, fmt.Errorf("core: corrupt engine header: dimension %d", dim)
	}
	if np <= 0 || np > maxEnginePartitions {
		return nil, fmt.Errorf("core: corrupt engine header: partition count %d", np)
	}
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		return nil, loadErr("routing-tree length", err)
	}
	tblob := make([]byte, binary.LittleEndian.Uint32(lenb[:]))
	if _, err := io.ReadFull(br, tblob); err != nil {
		return nil, loadErr("routing tree", err)
	}
	tree, err := vptree.ReadPartitionTree(bytes.NewReader(tblob))
	if err != nil {
		return nil, fmt.Errorf("core: decoding routing tree: %w", err)
	}
	e := &Engine{
		tree:    tree,
		parts:   make([]index.Local, np),
		dim:     dim,
		dynamic: newDynamicState(),
		tags:    newTagStore(),
		lex:     lexical.NewIndex(lexical.Config{}),
	}
	for i := range e.parts {
		g, err := hnsw.ReadFrom(br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("core: engine file truncated or corrupt reading partition %d of %d: %w", i, np, err)
		}
		e.parts[i] = index.WrapHNSW(g)
	}
	e.cfg = DefaultConfig(np)
	e.cfg.NProbe = nprobe
	e.cfg.Metric = tree.Metric
	if err := e.cfg.fill(dim); err != nil {
		return nil, err
	}
	return e, nil
}
