package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// BuildPrebuilt constructs the Prebuilt bundle the scaling experiments
// inject: sequential partitioning + per-partition HNSW.
func buildPrebuilt(t testing.TB, ds *vec.Dataset, p int, cfg Config) *Prebuilt {
	t.Helper()
	if err := cfg.fill(ds.Dim); err != nil {
		t.Fatal(err)
	}
	res, err := vptree.BuildPartitions(ds, p, vptree.PartitionConfig{Metric: cfg.Metric, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	pre := &Prebuilt{Tree: res.Tree, Indexes: make([]index.Local, p)}
	for i := 0; i < p; i++ {
		hcfg := cfg.HNSW
		hcfg.Seed = cfg.Seed + int64(i)
		g, _, err := hnsw.Build(res.Partitions[i], hcfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		pre.Indexes[i] = index.WrapHNSW(g)
	}
	return pre
}

func TestRunClusterPrebuiltRecall(t *testing.T) {
	ds := clustered(t, 2000, 16, 4, 31)
	qs := dataset.PerturbedQueries(ds, 40, 0.05, 32)
	truth := truthIDs(ds, qs, 10)
	p := 8
	cfg := DefaultConfig(p)
	cfg.NProbe = 3
	cfg.Replication = 2
	pre := buildPrebuilt(t, ds.Clone(), p, cfg)

	w := cluster.NewWorld(p + 1)
	var res *BatchResult
	err := w.Run(func(c *cluster.Comm) error {
		return RunClusterPrebuilt(c, pre, cfg, func(m *Master) error {
			r, err := m.Search(qs)
			res = r
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(res.Results, truth); r < 0.8 {
		t.Errorf("prebuilt cluster recall %v", r)
	}
	if res.Dispatched != int64(qs.Len()*3) {
		t.Errorf("dispatched %d", res.Dispatched)
	}
}

func TestRunClusterPrebuiltSizeMismatch(t *testing.T) {
	ds := clustered(t, 400, 8, 2, 33)
	cfg := DefaultConfig(2)
	pre := buildPrebuilt(t, ds, 2, cfg)
	w := cluster.NewWorld(4) // 3 workers but 2 indexes
	err := w.Run(func(c *cluster.Comm) error {
		err := RunClusterPrebuilt(c, pre, cfg, func(m *Master) error { return nil })
		if err == nil {
			t.Error("want mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Failure injection: one worker hosts a nil index, so every task routed
// to it fails. The batch must complete with degraded results (no
// deadlock), and the worker's error must surface from Run.
func TestWorkerFailureDegradesGracefully(t *testing.T) {
	ds := clustered(t, 1200, 8, 4, 50)
	qs := dataset.PerturbedQueries(ds, 30, 0.05, 51)
	p := 4
	for _, oneSided := range []bool{true, false} {
		cfg := DefaultConfig(p)
		cfg.NProbe = p // hit every partition so the bad worker is exercised
		cfg.OneSided = oneSided
		pre := buildPrebuilt(t, ds.Clone(), p, cfg)
		pre.Indexes[2] = nil // worker 3 hosts nothing

		w := cluster.NewWorld(p + 1)
		var res *BatchResult
		err := w.Run(func(c *cluster.Comm) error {
			return RunClusterPrebuilt(c, pre, cfg, func(m *Master) error {
				r, err := m.Search(qs)
				res = r
				return err
			})
		})
		if err == nil {
			t.Fatalf("oneSided=%v: worker failure should surface", oneSided)
		}
		if res == nil {
			t.Fatalf("oneSided=%v: batch did not complete", oneSided)
		}
		nonEmpty := 0
		for _, r := range res.Results {
			if len(r) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			t.Errorf("oneSided=%v: no degraded results at all", oneSided)
		}
	}
}

// The distributed engine can serve any index.Local: with exact flat
// locals and full routing, the cluster's answers must be exact.
func TestRunClusterPrebuiltExactLocals(t *testing.T) {
	ds := clustered(t, 1200, 10, 4, 95)
	qs := dataset.PerturbedQueries(ds, 25, 0.05, 96)
	truth := truthIDs(ds, qs, 10)
	p := 4
	cfg := DefaultConfig(p)
	cfg.NProbe = p // search every partition: exact

	res, err := vptree.BuildPartitions(ds.Clone(), p, vptree.PartitionConfig{Metric: cfg.Metric, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	pre := &Prebuilt{Tree: res.Tree, Indexes: make([]index.Local, p)}
	flat, _ := index.BuilderFor("flat")
	for i := 0; i < p; i++ {
		l, err := flat(res.Partitions[i], cfg.Metric, 1)
		if err != nil {
			t.Fatal(err)
		}
		pre.Indexes[i] = l
	}
	w := cluster.NewWorld(p + 1)
	var out *BatchResult
	err = w.Run(func(c *cluster.Comm) error {
		return RunClusterPrebuilt(c, pre, cfg, func(m *Master) error {
			r, err := m.Search(qs)
			out = r
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(out.Results, truth); r < 0.999 {
		t.Errorf("exact distributed recall %v < 1", r)
	}
}

// Compute-node layout (Figure 1): W worker ranks each serve
// CoresPerNode partitions; dispatch lands on the right node and recall
// matches the flat layout.
func TestRunClusterPrebuiltComputeNodes(t *testing.T) {
	ds := clustered(t, 2000, 12, 4, 97)
	qs := dataset.PerturbedQueries(ds, 30, 0.05, 98)
	truth := truthIDs(ds, qs, 10)
	const partitions = 12
	const cpn = 4 // 3 worker ranks, 4 cores each
	cfg := DefaultConfig(partitions)
	cfg.NProbe = 3
	cfg.CoresPerNode = cpn
	cfg.ThreadsPerWorker = 2
	pre := buildPrebuilt(t, ds.Clone(), partitions, DefaultConfig(partitions))

	w := cluster.NewWorld(partitions/cpn + 1)
	var res *BatchResult
	err := w.Run(func(c *cluster.Comm) error {
		return RunClusterPrebuilt(c, pre, cfg, func(m *Master) error {
			r, err := m.Search(qs)
			res = r
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(res.Results, truth); r < 0.8 {
		t.Errorf("node-layout recall %v", r)
	}
	if len(res.PerWorkerQueries) != partitions/cpn {
		t.Errorf("per-worker array sized %d, want %d", len(res.PerWorkerQueries), partitions/cpn)
	}
	var total int64
	for _, n := range res.PerWorkerQueries {
		total += n
	}
	if total != res.Dispatched {
		t.Errorf("processed %d != dispatched %d", total, res.Dispatched)
	}
}

// Node layout combined with replication: every workgroup member's node
// must host the partition, so dispatch never misses.
func TestRunClusterPrebuiltNodesWithReplication(t *testing.T) {
	ds := clustered(t, 1600, 8, 4, 99)
	qs := dataset.PerturbedQueries(ds, 20, 0.05, 100)
	const partitions = 8
	const cpn = 2
	cfg := DefaultConfig(partitions)
	cfg.NProbe = partitions
	cfg.CoresPerNode = cpn
	cfg.Replication = 3
	pre := buildPrebuilt(t, ds.Clone(), partitions, DefaultConfig(partitions))
	w := cluster.NewWorld(partitions/cpn + 1)
	var res *BatchResult
	err := w.Run(func(c *cluster.Comm) error {
		return RunClusterPrebuilt(c, pre, cfg, func(m *Master) error {
			r, err := m.Search(qs)
			res = r
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := truthIDs(ds, qs, 10)
	if r := metrics.MeanRecall(res.Results, truth); r < 0.9 {
		t.Errorf("replicated node-layout recall %v", r)
	}
}
