package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/median"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// Internal tags used by construction and replication (user tag space).
const (
	tagTree    = 6
	tagVPCand  = 7
	tagReplica = 8
)

// Built is the per-rank outcome of the distributed construction: the
// rank's own partition and HNSW index, plus (on rank 0 only) the global
// routing tree. Replicas holds indexes of other partitions hosted here
// when replication is enabled.
type Built struct {
	PartitionID int
	Local       *vec.Dataset
	Index       *hnsw.Graph
	Tree        *vptree.PartitionTree // rank 0 only; nil elsewhere
	// Replicas maps partitionID -> local index for every partition this
	// rank hosts (its own plus replication copies). The distributed
	// construction always builds HNSW; the Prebuilt injection path can
	// supply any index.Local (the paper's Section VI extensibility).
	Replicas map[int]index.Local
	Stats    ConstructStats
}

// ConstructStats times the phases of Table II.
type ConstructStats struct {
	VPTree    time.Duration // distributed VP-tree construction (incl. shuffle)
	HNSW      time.Duration // local index build
	Replicate time.Duration // replication for load balancing
	DistComps int64
	HNSWWork  hnsw.Stats
}

// ScatterDataset distributes ds from root across the communicator in
// near-equal random shards, the paper's initial equi-partitioning. Every
// rank receives its shard.
func ScatterDataset(c *cluster.Comm, root int, ds *vec.Dataset, seed int64) (*vec.Dataset, error) {
	var chunks [][]byte
	if c.Rank() == root {
		n := ds.Len()
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		p := c.Size()
		chunks = make([][]byte, p)
		for r := 0; r < p; r++ {
			lo, hi := n*r/p, n*(r+1)/p
			shard := vec.NewDataset(ds.Dim, hi-lo)
			for _, idx := range perm[lo:hi] {
				shard.Append(ds.At(idx), ds.ID(idx))
			}
			var buf bytes.Buffer
			if err := shard.WriteBinary(&buf); err != nil {
				return nil, err
			}
			chunks[r] = buf.Bytes()
		}
	}
	mine, err := c.Scatterv(root, chunks)
	if err != nil {
		return nil, err
	}
	return vec.ReadBinary(bytes.NewReader(mine))
}

// BuildDistributed executes Algorithms 1–2 on the communicator: every
// rank contributes its local shard, the group recursively selects
// vantage points, computes split radii by a distributed median, shuffles
// points with AlltoAllv and splits the communicator in half until each
// rank owns exactly one partition, which it then indexes with HNSW.
//
// The returned Built.PartitionID always equals the calling rank, and
// rank 0 holds the assembled routing tree.
func BuildDistributed(c *cluster.Comm, local *vec.Dataset, cfg Config) (*Built, error) {
	if err := cfg.fill(local.Dim); err != nil {
		return nil, err
	}
	if cfg.Partitions != c.Size() {
		return nil, fmt.Errorf("core: cfg.Partitions=%d but communicator size=%d", cfg.Partitions, c.Size())
	}
	b := &Built{}
	dist := cfg.Metric.Func()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(c.Rank())*7919))

	t0 := time.Now()
	root, ds, err := buildNode(c, local, 0, cfg, dist, rng, &b.Stats)
	if err != nil {
		return nil, err
	}
	b.Stats.VPTree = time.Since(t0)
	b.PartitionID = c.Rank()
	b.Local = ds
	if c.Rank() == 0 {
		b.Tree = vptree.NewPartitionTree(local.Dim, cfg.Metric, root)
	}

	t1 := time.Now()
	g, hst, err := hnsw.Build(ds, cfg.HNSW, cfg.ThreadsPerWorker)
	if err != nil {
		return nil, err
	}
	b.Stats.HNSW = time.Since(t1)
	b.Stats.HNSWWork = hst
	b.Index = g
	b.Replicas = map[int]index.Local{b.PartitionID: index.WrapHNSW(g)}

	t2 := time.Now()
	if err := replicate(c, b, cfg); err != nil {
		return nil, err
	}
	b.Stats.Replicate = time.Since(t2)
	return b, nil
}

// buildNode builds one VP-tree node over the ranks of c, returning the
// subtree root (meaningful on sub-rank 0 only), this rank's final
// dataset and the updated base partition ID.
func buildNode(c *cluster.Comm, ds *vec.Dataset, base int, cfg Config, dist vec.DistFunc, rng *rand.Rand, st *ConstructStats) (*vptree.PNode, *vec.Dataset, error) {
	if c.Size() == 1 {
		return &vptree.PNode{Leaf: int32(base + c.Rank())}, ds, nil
	}
	h := c.Size() / 2

	// --- Algorithm 1: distributed vantage point selection ---
	vp, err := selectVantageDistributed(c, ds, cfg, dist, rng, st)
	if err != nil {
		return nil, nil, err
	}

	// --- split radius: distributed median of distances to vp ---
	dists := make([]float32, ds.Len())
	for i := range dists {
		dists[i] = dist(vp, ds.At(i))
	}
	st.DistComps += int64(ds.Len())
	share := float64(h) / float64(c.Size())
	mu, err := distributedQuantile(c, dists, share)
	if err != nil {
		return nil, nil, err
	}

	// --- partition and shuffle (MPI_Alltoallv) ---
	left := vec.NewDataset(ds.Dim, ds.Len()/2)
	right := vec.NewDataset(ds.Dim, ds.Len()/2)
	for i := range dists {
		if dists[i] <= mu {
			left.Append(ds.At(i), ds.ID(i))
		} else {
			right.Append(ds.At(i), ds.ID(i))
		}
	}
	// Degenerate split (all points equidistant from vp): divide by rank
	// order to guarantee progress; the ball boundary is then vacuous but
	// routing stays sound because both children share the same region.
	nLeft, err := c.AllreduceInt64(int64(left.Len()), addInt64)
	if err != nil {
		return nil, nil, err
	}
	nRight, err := c.AllreduceInt64(int64(right.Len()), addInt64)
	if err != nil {
		return nil, nil, err
	}
	if nLeft < int64(h) || nRight < int64(c.Size()-h) {
		left = ds.Slice(0, int(float64(ds.Len())*share)).Clone()
		right = ds.Slice(left.Len(), ds.Len()).Clone()
	}

	myDS, err := shuffleHalves(c, left, right, h)
	if err != nil {
		return nil, nil, err
	}

	// --- recurse on the halves ---
	color := 0
	if c.Rank() >= h {
		color = 1
	}
	sub, err := c.Split(color, c.Rank())
	if err != nil {
		return nil, nil, err
	}
	childBase := base
	if color == 1 {
		childBase = base + h
	}
	child, finalDS, err := buildNode(sub, myDS, childBase, cfg, dist, rng, st)
	if err != nil {
		return nil, nil, err
	}

	// --- assemble the node at parent rank 0 ---
	node := &vptree.PNode{VP: vp, Mu: mu, Leaf: -1}
	switch {
	case c.Rank() == h: // root of the right subtree: ship it to rank 0
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(child); err != nil {
			return nil, nil, err
		}
		if err := c.Send(0, tagTree, buf.Bytes()); err != nil {
			return nil, nil, err
		}
	case c.Rank() == 0:
		node.Left = child
		p, _, err := c.Recv(h, tagTree)
		if err != nil {
			return nil, nil, err
		}
		var rightNode *vptree.PNode
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rightNode); err != nil {
			return nil, nil, err
		}
		node.Right = rightNode
	}
	return node, finalDS, nil
}

func addInt64(a, b int64) int64 { return a + b }

// selectVantageDistributed is Algorithm 1: every rank proposes its best
// local candidate; rank 0 re-evaluates the proposals against its own
// shard and broadcasts the winner.
func selectVantageDistributed(c *cluster.Comm, ds *vec.Dataset, cfg Config, dist vec.DistFunc, rng *rand.Rand, st *ConstructStats) ([]float32, error) {
	sel := vptree.DefaultSelect()
	counted := func(a, b []float32) float32 {
		st.DistComps++
		return dist(a, b)
	}
	var mine []byte
	if ds.Len() > 0 {
		cands := vptree.SampleCandidates(ds.Len(), sel, rng)
		best := vptree.SelectVantagePointSerial(ds, cands, sel, counted, rng)
		bestVec := ds.At(best)
		buf := make([]byte, 4*len(bestVec))
		for i, x := range bestVec {
			putFloat32(buf[4*i:], x)
		}
		mine = buf
	}
	proposals, err := c.Gatherv(0, mine)
	if err != nil {
		return nil, err
	}
	var winner []byte
	if c.Rank() == 0 {
		cands := vec.NewDataset(ds.Dim, c.Size())
		for _, p := range proposals {
			if len(p) == 0 {
				continue
			}
			v := make([]float32, len(p)/4)
			for i := range v {
				v[i] = getFloat32(p[4*i:])
			}
			cands.Append(v, int64(cands.Len()))
		}
		if cands.Len() == 0 {
			return nil, fmt.Errorf("core: no vantage candidates (all shards empty)")
		}
		best := 0
		if ds.Len() > 0 && cands.Len() > 1 {
			best = selectAmong(cands, ds, dist, rng, st)
		}
		winner = make([]byte, 4*cands.Dim)
		bv := cands.At(best)
		for i, x := range bv {
			putFloat32(winner[4*i:], x)
		}
	}
	winner, err = c.Bcast(0, winner)
	if err != nil {
		return nil, err
	}
	vp := make([]float32, len(winner)/4)
	for i := range vp {
		vp[i] = getFloat32(winner[4*i:])
	}
	return vp, nil
}

// selectAmong evaluates foreign candidate vectors against a local
// evaluation sample and returns the index of the best spread.
func selectAmong(cands, eval *vec.Dataset, dist vec.DistFunc, rng *rand.Rand, st *ConstructStats) int {
	evalN := 100
	if evalN > eval.Len() {
		evalN = eval.Len()
	}
	idx := rng.Perm(eval.Len())[:evalN]
	best, bestSpread := 0, -1.0
	d := make([]float32, evalN)
	for ci := 0; ci < cands.Len(); ci++ {
		cv := cands.At(ci)
		for i, e := range idx {
			d[i] = dist(cv, eval.At(e))
		}
		st.DistComps += int64(evalN)
		if s := vptree.Spread(d); s > bestSpread {
			bestSpread, best = s, ci
		}
	}
	return best
}

// distributedQuantile approximates the global quantile-q of the union of
// all ranks' values using the paper's median-of-medians style combiner:
// each rank contributes its local quantile weighted by its count.
func distributedQuantile(c *cluster.Comm, vals []float32, q float64) (float32, error) {
	var localQ float32
	if len(vals) > 0 {
		rank := int(float64(len(vals)-1) * q)
		localQ = median.Select(append([]float32(nil), vals...), rank)
	}
	buf := make([]byte, 12)
	putFloat32(buf[0:], localQ)
	putUint64(buf[4:], uint64(len(vals)))
	parts, err := c.Allgatherv(buf)
	if err != nil {
		return 0, err
	}
	var wvs []median.WeightedValue
	for _, p := range parts {
		w := int64(getUint64(p[4:]))
		if w == 0 {
			continue
		}
		wvs = append(wvs, median.WeightedValue{Value: getFloat32(p[0:]), Weight: w})
	}
	if len(wvs) == 0 {
		return 0, fmt.Errorf("core: quantile over empty data")
	}
	return median.WeightedMedian(wvs), nil
}

// shuffleHalves sends left-side points to ranks [0,h) and right-side
// points to ranks [h,size), chunked for balance, and returns the points
// this rank receives.
func shuffleHalves(c *cluster.Comm, left, right *vec.Dataset, h int) (*vec.Dataset, error) {
	size := c.Size()
	out := make([][]byte, size)
	encodeChunk := func(part *vec.Dataset, lo, hi int) ([]byte, error) {
		chunk := part.Slice(lo, hi)
		var buf bytes.Buffer
		if err := chunk.WriteBinary(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var err error
	for r := 0; r < h; r++ {
		lo, hi := left.Len()*r/h, left.Len()*(r+1)/h
		if out[r], err = encodeChunk(left, lo, hi); err != nil {
			return nil, err
		}
	}
	nR := size - h
	for i := 0; i < nR; i++ {
		lo, hi := right.Len()*i/nR, right.Len()*(i+1)/nR
		if out[h+i], err = encodeChunk(right, lo, hi); err != nil {
			return nil, err
		}
	}
	in, err := c.AlltoAllv(out)
	if err != nil {
		return nil, err
	}
	merged := vec.NewDataset(left.Dim, 0)
	for _, p := range in {
		part, err := vec.ReadBinary(bytes.NewReader(p))
		if err != nil {
			return nil, err
		}
		merged.AppendAll(part)
	}
	return merged, nil
}

// replicate implements Section IV-C2's partition replication: partition
// i is hosted by workgroup W_i = {p_i, ..., p_(i+r-1 mod P)}, so each
// rank ships its built index to the r-1 ranks after it and hosts the
// indexes of the r-1 partitions before it.
func replicate(c *cluster.Comm, b *Built, cfg Config) error {
	r := cfg.Replication
	if r <= 1 {
		return nil
	}
	p := c.Size()
	var buf bytes.Buffer
	if _, err := b.Index.WriteTo(&buf); err != nil {
		return err
	}
	payload := buf.Bytes()
	for off := 1; off < r; off++ {
		if err := c.Send((c.Rank()+off)%p, tagReplica, payload); err != nil {
			return err
		}
	}
	for off := 1; off < r; off++ {
		src := (c.Rank() - off + p) % p
		data, _, err := c.Recv(src, tagReplica)
		if err != nil {
			return err
		}
		g, err := hnsw.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return err
		}
		b.Replicas[src] = index.WrapHNSW(g)
	}
	return nil
}
