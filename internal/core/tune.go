package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/vec"
)

// Auto-tuning. The paper exposes two quality knobs — the number of
// partitions searched per query (|F(q)|, our NProbe) and HNSW's beam
// width (efSearch; Figure 6 sweeps the related M) — and reports the
// recall each setting buys. Tune searches that two-dimensional space on
// a validation split until a recall target is met, preferring the
// cheaper knob first, which is how an operator would actually pick the
// paper's settings for a new corpus.

// TuneResult reports the chosen operating point.
type TuneResult struct {
	NProbe   int
	EfSearch int
	Recall   float64
	// BatchTime is the validation-batch wall time at the chosen point.
	BatchTime time.Duration
	// Evaluated lists every point tried, in evaluation order.
	Evaluated []TunePoint
}

// TunePoint is one evaluated configuration.
type TunePoint struct {
	NProbe   int
	EfSearch int
	Recall   float64
	Batch    time.Duration
}

// Tune raises NProbe and efSearch until the engine reaches target
// recall@k on the validation queries (ground truth rows in truth), or
// the knobs are exhausted. The engine is left configured at the chosen
// point. Typical use: a few hundred held-out queries with brute-force
// truth.
func (e *Engine) Tune(queries *vec.Dataset, truth [][]int32, k int, target float64) (*TuneResult, error) {
	if queries.Len() == 0 || len(truth) != queries.Len() {
		return nil, fmt.Errorf("core: need truth rows matching %d validation queries", queries.Len())
	}
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("core: recall target %v out of (0,1]", target)
	}
	res := &TuneResult{}
	eval := func(np, ef int) (TunePoint, error) {
		e.SetNProbe(np)
		e.SetEfSearch(ef)
		t0 := time.Now()
		out, err := e.SearchBatch(queries, k, 0)
		if err != nil {
			return TunePoint{}, err
		}
		pt := TunePoint{
			NProbe: np, EfSearch: ef,
			Recall: metrics.MeanRecall(out, truth),
			Batch:  time.Since(t0),
		}
		res.Evaluated = append(res.Evaluated, pt)
		return pt, nil
	}

	// ef ladder per nprobe: the beam is the cheaper knob (no extra
	// messages in the distributed setting), so exhaust it before adding
	// partitions.
	efs := []int{32, 64, 128, 256, 512}
	maxProbe := e.Partitions()
	best := TunePoint{Recall: -1}
	for np := 1; np <= maxProbe; np *= 2 {
		for _, ef := range efs {
			pt, err := eval(np, ef)
			if err != nil {
				return nil, err
			}
			if pt.Recall > best.Recall {
				best = pt
			}
			if pt.Recall >= target {
				res.NProbe, res.EfSearch = pt.NProbe, pt.EfSearch
				res.Recall, res.BatchTime = pt.Recall, pt.Batch
				e.SetNProbe(pt.NProbe)
				e.SetEfSearch(pt.EfSearch)
				return res, nil
			}
		}
	}
	// target unreachable: settle on the best point seen
	res.NProbe, res.EfSearch = best.NProbe, best.EfSearch
	res.Recall, res.BatchTime = best.Recall, best.Batch
	e.SetNProbe(best.NProbe)
	e.SetEfSearch(best.EfSearch)
	return res, fmt.Errorf("core: recall target %.3f unreachable; best %.3f at nprobe=%d ef=%d",
		target, best.Recall, best.NProbe, best.EfSearch)
}
