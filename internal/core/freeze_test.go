package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/vec"
)

var errOutOfOrder = errors.New("results out of distance order")

func freezeDataset(seed int64, n, dim int) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func freezeQueries(seed int64, n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([][]float32, n)
	for i := range qs {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		qs[i] = q
	}
	return qs
}

// TestFrozenGoldenRecall is the recall-regression golden harness: the
// same engine answers the same queries scalar (dynamic float32 HNSW),
// then frozen+SQ8 with a swept re-rank budget, and the quantized path's
// recall@10 against the scalar reference must stay within epsilon.
// RerankK = -1 (the ∞/exact setting) must be bit-identical to the
// scalar path — same IDs, same distances, same order.
func TestFrozenGoldenRecall(t *testing.T) {
	const k, nq = 10, 60
	cases := []struct {
		dim, m, ef, rerankK int
		epsilon             float64
	}{
		{8, 8, 40, 0, 0.05},
		{16, 16, 60, 40, 0.05},
		{24, 16, 100, 100, 0.03},
		{32, 24, 120, 0, 0.05},
	}
	for _, tc := range cases {
		ds := freezeDataset(int64(tc.dim), 4000, tc.dim)
		cfg := DefaultConfig(4)
		cfg.K = k
		cfg.Seed = int64(tc.m)
		cfg.HNSW = hnsw.DefaultConfig(vec.L2)
		cfg.HNSW.M = tc.m
		e, err := NewEngine(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetEfSearch(tc.ef)
		queries := freezeQueries(int64(tc.dim)+99, nq, tc.dim)

		scalar := make([][]int64, nq)
		for i, q := range queries {
			rs, err := e.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]int64, len(rs))
			for j, r := range rs {
				ids[j] = r.ID
			}
			scalar[i] = ids
		}

		if err := e.Freeze(hnsw.FreezeOptions{SQ8: true, RerankK: tc.rerankK}); err != nil {
			t.Fatal(err)
		}
		hits, total := 0, 0
		var quantWork int64
		for i, q := range queries {
			rs, st, err := e.SearchStats(q, k)
			if err != nil {
				t.Fatal(err)
			}
			quantWork += st.QuantComps
			in := make(map[int64]bool, len(scalar[i]))
			for _, id := range scalar[i] {
				in[id] = true
			}
			for _, r := range rs {
				if in[r.ID] {
					hits++
				}
			}
			total += len(scalar[i])
		}
		if quantWork == 0 {
			t.Fatalf("dim=%d M=%d: frozen_sq8 did no quantized scans", tc.dim, tc.m)
		}
		recall := float64(hits) / float64(total)
		if recall < 1-tc.epsilon {
			t.Errorf("dim=%d M=%d ef=%d rerankK=%d: frozen_sq8 recall@%d vs scalar = %.4f, want >= %.4f",
				tc.dim, tc.m, tc.ef, tc.rerankK, k, recall, 1-tc.epsilon)
		}

		// rerank_k = ∞: quantization off, bit-identical to scalar.
		e.SetRerankK(-1)
		for i, q := range queries {
			rs, st, err := e.SearchStats(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if st.QuantComps != 0 {
				t.Fatalf("rerankK=-1 still scanned codes: %+v", st)
			}
			if len(rs) != len(scalar[i]) {
				t.Fatalf("dim=%d query %d: %d results, want %d", tc.dim, i, len(rs), len(scalar[i]))
			}
			for j, r := range rs {
				if r.ID != scalar[i][j] {
					t.Fatalf("dim=%d M=%d query %d rank %d: frozen-exact ID %d != scalar %d",
						tc.dim, tc.m, i, j, r.ID, scalar[i][j])
				}
			}
		}
	}
}

// TestFrozenModeSurvivesSwapAndRebuild: with frozen mode on, a
// compaction-style SwapPartition installs a re-frozen partition, and
// Rebuild keeps every partition frozen.
func TestFrozenModeSurvivesSwapAndRebuild(t *testing.T) {
	ds := freezeDataset(21, 2000, 8)
	cfg := DefaultConfig(4)
	cfg.Seed = 21
	cfg.Frozen, cfg.SQ8 = true, true
	e, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fi, ok := e.FrozenInfo()
	if !ok || fi.Partitions != 4 || !fi.Quantized {
		t.Fatalf("cfg.Frozen did not freeze the build: %+v ok=%v", fi, ok)
	}
	if opts, on := e.FrozenMode(); !on || !opts.SQ8 {
		t.Fatalf("frozen mode not on: %+v %v", opts, on)
	}

	// Compaction-style swap: rebuild partition 0 from its own contents
	// and install it as a plain HNSW local — the engine must re-freeze it.
	g, ok := e.PartitionGraph(0)
	if !ok {
		t.Fatal("no partition graph")
	}
	pds := g.DataSnapshot()
	ng, _, err := hnsw.Build(pds, hnsw.DefaultConfig(vec.L2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapPartition(0, index.WrapHNSW(ng), nil); err != nil {
		t.Fatal(err)
	}
	if fi, _ := e.FrozenInfo(); fi.Partitions != 4 {
		t.Fatalf("swap dropped a frozen partition: %+v", fi)
	}

	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if fi, _ := e.FrozenInfo(); fi.Partitions != 4 {
		t.Fatalf("rebuild dropped frozen partitions: %+v", fi)
	}

	e.Unfreeze()
	if _, on := e.FrozenMode(); on {
		t.Fatal("still frozen after Unfreeze")
	}
	if _, ok := e.FrozenInfo(); ok {
		t.Fatal("frozen info still reported after Unfreeze")
	}
	if _, err := e.Search(make([]float32, 8), 5); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeDuringTraffic hammers a frozen engine with concurrent
// searches, inserts, compaction-style partition swaps, and re-freezes.
// Run under -race this is the "no torn arena" gate: a search must only
// ever see a complete frozen view or the dynamic graph, never a mix.
func TestFreezeDuringTraffic(t *testing.T) {
	ds := freezeDataset(31, 3000, 8)
	cfg := DefaultConfig(4)
	cfg.Seed = 31
	cfg.Frozen, cfg.SQ8 = true, true
	e, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const searchers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, searchers+2)

	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			q := make([]float32, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range q {
					q[j] = float32(rng.NormFloat64())
				}
				rs, err := e.Search(q, 10)
				if err != nil {
					errCh <- err
					return
				}
				for i := 1; i < len(rs); i++ {
					if rs[i].Dist < rs[i-1].Dist {
						errCh <- errOutOfOrder
						return
					}
				}
			}
		}(int64(100 + w))
	}

	// Ingest: appends grow the dynamic graphs under the frozen views and
	// periodically trip background re-freezes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		v := make([]float32, 8)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			if err := e.Add(v, int64(10_000+i)); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Compactor: rebuild a partition from its live contents and swap it
	// in, over and over — each swap re-freezes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := i % 4
			g, ok := e.PartitionGraph(p)
			if !ok {
				continue
			}
			pds := g.DataSnapshot()
			ng, _, err := hnsw.Build(pds, hnsw.DefaultConfig(vec.L2), 1)
			if err != nil {
				errCh <- err
				return
			}
			if err := e.SwapPartition(p, index.WrapHNSW(ng), nil); err != nil {
				errCh <- err
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errCh:
		close(stop)
		<-done
		t.Fatal(err)
	case <-time.After(1500 * time.Millisecond):
		close(stop)
		<-done
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	fi, ok := e.FrozenInfo()
	if !ok || fi.Searches == 0 {
		t.Fatalf("frozen path unexercised: %+v ok=%v", fi, ok)
	}
}
