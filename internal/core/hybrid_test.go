package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/lexical"
)

// hybridEngine builds an empty-born engine with 60 vectors, text on
// every third document, and tags for filter tests.
func hybridEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEmptyEngine(8, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for id := int64(0); id < 60; id++ {
		v := make([]float32, 8)
		for j := range v {
			v[j] = rng.Float32()
		}
		if err := e.Add(v, id); err != nil {
			t.Fatal(err)
		}
		e.SetTags(id, map[string]string{"par": map[bool]string{true: "even", false: "odd"}[id%2 == 0]})
		if id%3 == 0 {
			text := "common corpus token"
			if id == 42 {
				text = "rare needle token"
			}
			e.SetText(id, text, v)
		}
	}
	return e
}

func TestSearchHybridLegs(t *testing.T) {
	e := hybridEngine(t)
	q := make([]float32, 8)
	for j := range q {
		q[j] = 0.4
	}

	// Both legs present: the keyword-only document must surface even if
	// the vector leg alone would miss it.
	rs, err := e.SearchHybrid(q, "needle", 5, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.ID == 42 {
			found = true
			if r.BM25 <= 0 {
				t.Fatalf("lexical hit carries BM25=%v", r.BM25)
			}
			if !r.HasDist {
				t.Fatal("lexical-only candidate missing exact distance re-score")
			}
		}
	}
	if !found {
		t.Fatalf("keyword-only doc 42 missing from hybrid results: %+v", rs)
	}

	// Text-only query: pure BM25 ranking, no distances.
	rs, err = e.SearchHybrid(nil, "common corpus", 5, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("text-only hybrid returned nothing")
	}
	for _, r := range rs {
		if r.HasDist {
			t.Fatalf("text-only query reported a distance: %+v", r)
		}
	}

	// Vector-only query through the hybrid path still works.
	rs, err = e.SearchHybrid(q, "", 5, HybridOptions{})
	if err != nil || len(rs) != 5 {
		t.Fatalf("vector-only hybrid = %d results, %v", len(rs), err)
	}

	// No legs at all is a usage error.
	if _, err := e.SearchHybrid(nil, "", 5, HybridOptions{}); err == nil {
		t.Fatal("hybrid search with no legs succeeded")
	}
	// Dim mismatch is a usage error.
	if _, err := e.SearchHybrid(make([]float32, 3), "x", 5, HybridOptions{}); err == nil {
		t.Fatal("hybrid search with wrong dim succeeded")
	}
	// Unknown fusion mode is a usage error.
	if _, err := e.SearchHybrid(q, "x", 5, HybridOptions{Fusion: "borda"}); err == nil {
		t.Fatal("unknown fusion mode accepted")
	}
}

func TestSearchHybridFilterAndTombstones(t *testing.T) {
	e := hybridEngine(t)
	q := make([]float32, 8)

	// Doc 42 is even; an odd-only filter must exclude it from both legs.
	rs, err := e.SearchHybrid(q, "needle common", 10, HybridOptions{Filter: filter.MustParse("par=odd")})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.ID%2 == 0 {
			t.Fatalf("even doc %d passed odd-only filter", r.ID)
		}
	}

	// Tombstoned documents never score on the lexical leg.
	e.Delete(42)
	rs, err = e.SearchHybrid(nil, "needle", 10, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.ID == 42 {
			t.Fatal("deleted doc scored on lexical leg")
		}
	}
}

func TestSearchHybridFusionModes(t *testing.T) {
	e := hybridEngine(t)
	q := make([]float32, 8)
	for j := range q {
		q[j] = 0.4
	}
	rrf, err := e.SearchHybrid(q, "common corpus", 5, HybridOptions{Fusion: FusionRRF})
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := e.SearchHybrid(q, "common corpus", 5, HybridOptions{Fusion: FusionWeighted, VecWeight: 0.3, LexWeight: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rrf) == 0 || len(wtd) == 0 {
		t.Fatalf("fusion modes returned %d / %d results", len(rrf), len(wtd))
	}
	// Same query twice must reproduce exactly (determinism).
	again, err := e.SearchHybrid(q, "common corpus", 5, HybridOptions{Fusion: FusionRRF})
	if err != nil || !reflect.DeepEqual(rrf, again) {
		t.Fatalf("hybrid search is not reproducible: %v", err)
	}
}

func TestSetLexicalConfigLifecycle(t *testing.T) {
	e, err := NewEmptyEngine(8, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetLexicalConfig(lexical.Config{Stopwords: lexical.DefaultStopwords}); err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 8)
	if err := e.Add(v, 1); err != nil {
		t.Fatal(err)
	}
	e.SetText(1, "the quick fox", v)
	if got := e.SearchLexical("the", 5, nil); got != nil {
		t.Fatalf("stopword scored: %v", got)
	}
	if got := e.SearchLexical("quick", 5, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("content term missing: %v", got)
	}
	// Reconfiguring a populated index must be refused.
	if err := e.SetLexicalConfig(lexical.Config{}); err == nil {
		t.Fatal("SetLexicalConfig succeeded on a populated index")
	}
}

func TestTextsSnapshotRestoreDump(t *testing.T) {
	e := hybridEngine(t)
	var want bytes.Buffer
	if err := e.LexicalDump(&want); err != nil {
		t.Fatal(err)
	}
	snap := e.TextsSnapshot()

	e2, err := NewEmptyEngine(8, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	e2.RestoreTexts(snap)
	var got bytes.Buffer
	if err := e2.LexicalDump(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("restored dump diverges:\n%s---\n%s", got.String(), want.String())
	}
	if e2.TextCount() != e.TextCount() {
		t.Fatalf("TextCount %d != %d", e2.TextCount(), e.TextCount())
	}
}
