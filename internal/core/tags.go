package core

import (
	"sync"
	"sync/atomic"
)

// Per-vector metadata tags. Tags are small string maps attached to
// global IDs, consulted by filtered search during graph traversal. The
// store is a sync.Map of immutable maps: SetTags installs a fresh copy
// on every write and readers never see a map that is concurrently
// mutated, so the filtered hot path can evaluate predicates lock-free
// while upserts stream in.
type tagStore struct {
	m sync.Map // int64 -> map[string]string (immutable once stored)
	n atomic.Int64
}

func newTagStore() *tagStore { return &tagStore{} }

// get returns the stored immutable tag map for id (nil if untagged).
// Callers must not mutate the result.
func (t *tagStore) get(id int64) map[string]string {
	v, ok := t.m.Load(id)
	if !ok {
		return nil
	}
	return v.(map[string]string)
}

// set installs a copy of tags for id; nil or empty removes the entry.
func (t *tagStore) set(id int64, tags map[string]string) {
	if len(tags) == 0 {
		if _, loaded := t.m.LoadAndDelete(id); loaded {
			t.n.Add(-1)
		}
		return
	}
	cp := make(map[string]string, len(tags))
	for k, v := range tags {
		cp[k] = v
	}
	if _, loaded := t.m.Swap(id, cp); !loaded {
		t.n.Add(1)
	}
}

// delete removes id's tags.
func (t *tagStore) delete(id int64) {
	if _, loaded := t.m.LoadAndDelete(id); loaded {
		t.n.Add(-1)
	}
}

// len returns the number of tagged IDs.
func (t *tagStore) len() int { return int(t.n.Load()) }

// snapshot copies the outer map; the inner maps are immutable and
// shared.
func (t *tagStore) snapshot() map[int64]map[string]string {
	out := make(map[int64]map[string]string, t.len())
	t.m.Range(func(k, v any) bool {
		out[k.(int64)] = v.(map[string]string)
		return true
	})
	return out
}

// SetTags attaches metadata tags to a global ID (replacing any previous
// tags); nil or empty tags remove the entry. The map is copied. Safe
// for concurrent use with searches.
func (e *Engine) SetTags(id int64, tags map[string]string) {
	e.tags.set(id, tags)
}

// Tags returns a copy of id's tags, or nil when untagged.
func (e *Engine) Tags(id int64) map[string]string {
	m := e.tags.get(id)
	if m == nil {
		return nil
	}
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// TagCount returns the number of IDs carrying tags.
func (e *Engine) TagCount() int { return e.tags.len() }

// TagsSnapshot returns a point-in-time view of all tags. The inner maps
// are shared and must not be mutated; the durability layer persists
// this alongside each snapshot.
func (e *Engine) TagsSnapshot() map[int64]map[string]string {
	return e.tags.snapshot()
}

// RestoreTags replaces the whole tag store — the recovery half of
// TagsSnapshot, called after LoadEngine before WAL tail replay. The
// store is cleared in place (the tags pointer is never reassigned) so
// it stays safe against concurrent readers.
func (e *Engine) RestoreTags(tags map[int64]map[string]string) {
	e.tags.m.Range(func(k, _ any) bool {
		e.tags.delete(k.(int64))
		return true
	})
	for id, m := range tags {
		e.tags.set(id, m)
	}
}
