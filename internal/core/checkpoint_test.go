package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// saveSmallCheckpoint builds a 2-partition checkpoint into dir.
func saveSmallCheckpoint(t *testing.T, dir string) {
	t.Helper()
	ds := clustered(t, 600, 8, 2, 91)
	w := cluster.NewWorld(2)
	err := w.Run(func(c *cluster.Comm) error {
		shard, err := ScatterDataset(c, 0, ds, 1)
		if err != nil {
			return err
		}
		b, err := BuildDistributed(c, shard, DefaultConfig(2))
		if err != nil {
			return err
		}
		return b.SaveCheckpoint(dir)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	saveSmallCheckpoint(t, dir)

	// happy path still works
	if _, err := LoadCheckpoint(dir, 1); err != nil {
		t.Fatalf("valid checkpoint: %v", err)
	}

	// partition beyond the tree's leaf count
	if _, err := LoadCheckpoint(dir, 5); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("partition out of range: got %v", err)
	}
	if _, err := LoadCheckpoint(dir, -1); err == nil {
		t.Error("negative partition: want error")
	}

	// a part file whose header claims another partition
	if err := os.Rename(filepath.Join(dir, "part-0.ann"), filepath.Join(dir, "part-0.ann.bak")); err != nil {
		t.Fatal(err)
	}
	if err := copyFile(filepath.Join(dir, "part-1.ann"), filepath.Join(dir, "part-0.ann")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, 0); err == nil || !strings.Contains(err.Error(), "claims partition") {
		t.Errorf("mismatched partition id: got %v", err)
	}
	if err := os.Rename(filepath.Join(dir, "part-0.ann.bak"), filepath.Join(dir, "part-0.ann")); err != nil {
		t.Fatal(err)
	}

	// missing part file for an in-range partition
	if err := os.Remove(filepath.Join(dir, "part-1.ann")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, 1); err == nil || !strings.Contains(err.Error(), "no part-1.ann") {
		t.Errorf("missing part file: got %v", err)
	}

	// missing tree.vp turns the whole directory invalid
	if err := os.Remove(filepath.Join(dir, "tree.vp")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, 0); err == nil || !strings.Contains(err.Error(), "missing tree.vp") {
		t.Errorf("missing tree: got %v", err)
	}
	if _, err := LoadCheckpointTree(dir); err == nil || !strings.Contains(err.Error(), "missing tree.vp") {
		t.Errorf("missing tree via LoadCheckpointTree: got %v", err)
	}
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}
