package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vec"
)

// savedEngine builds a tiny engine and returns its serialized bytes.
func savedEngine(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ds := vec.NewDataset(6, 200)
	for i := 0; i < 200; i++ {
		v := make([]float32, 6)
		for j := range v {
			v[j] = rng.Float32()
		}
		ds.Append(v, int64(i))
	}
	cfg := DefaultConfig(4)
	cfg.K = 5
	e, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadEngineTruncated(t *testing.T) {
	full := savedEngine(t)
	// Truncation points covering every section: empty file, mid-magic,
	// mid-header, mid tree-length, mid tree blob, mid partition stream,
	// and one byte short of complete.
	cuts := []int{0, 2, 4, 9, 17, 40, len(full) / 2, len(full) - 1}
	for _, n := range cuts {
		if n > len(full) {
			continue
		}
		_, err := LoadEngine(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("LoadEngine(%d of %d bytes): want error, got nil", n, len(full))
		}
		// Every truncation must surface as a described unexpected-EOF (or
		// a named decode failure), never a bare io.EOF.
		if err == io.EOF {
			t.Fatalf("LoadEngine(%d bytes): bare io.EOF leaked: %v", n, err)
		}
		if !strings.Contains(err.Error(), "core:") {
			t.Fatalf("LoadEngine(%d bytes): undescriptive error %q", n, err)
		}
	}
}

func TestLoadEngineBadMagic(t *testing.T) {
	full := savedEngine(t)
	bad := append([]byte("NOPE"), full[4:]...)
	_, err := LoadEngine(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "bad engine magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

func TestLoadEngineCorruptHeader(t *testing.T) {
	full := savedEngine(t)
	// Zero dimension.
	bad := append([]byte(nil), full...)
	bad[4], bad[5], bad[6], bad[7] = 0, 0, 0, 0
	if _, err := LoadEngine(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("want corrupt-dimension error, got %v", err)
	}
	// Absurd partition count must fail fast, not loop decoding garbage.
	bad = append([]byte(nil), full...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := LoadEngine(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "partition count") {
		t.Fatalf("want corrupt-partition-count error, got %v", err)
	}
}

func TestLoadEngineCorruptTree(t *testing.T) {
	full := savedEngine(t)
	bad := append([]byte(nil), full...)
	// Scribble over the gob-encoded routing tree (starts at offset 20).
	for i := 20; i < 40 && i < len(bad); i++ {
		bad[i] ^= 0xa5
	}
	_, err := LoadEngine(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("want error decoding corrupt tree, got nil")
	}
	if !strings.Contains(err.Error(), "core:") {
		t.Fatalf("undescriptive error %q", err)
	}
}

func TestLoadEngineRoundTrip(t *testing.T) {
	full := savedEngine(t)
	e, err := LoadEngine(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 200 || e.Partitions() != 4 || e.Dim() != 6 {
		t.Fatalf("round trip mismatch: len=%d parts=%d dim=%d", e.Len(), e.Partitions(), e.Dim())
	}
	if _, err := e.Search(make([]float32, 6), 3); err != nil {
		t.Fatal(err)
	}
}

func TestSearchBatchContextCancel(t *testing.T) {
	full := savedEngine(t)
	e, err := LoadEngine(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	qs := vec.NewDataset(6, 8)
	for i := 0; i < 8; i++ {
		qs.Append(make([]float32, 6), int64(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchBatchContext(ctx, qs, 3, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// And an un-canceled context behaves exactly like SearchBatch.
	res, err := e.SearchBatchContext(context.Background(), qs, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("want 8 result rows, got %d", len(res))
	}
	for i, r := range res {
		if len(r) != 3 {
			t.Fatalf("row %d: want 3 results, got %d", i, len(r))
		}
	}
}
