package core

import (
	"errors"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// Fault-tolerant batch serving (enabled by Config.QueryTimeout > 0).
//
// The legacy protocol waits forever for every worker's Done, so one dead
// rank hangs the batch. This path bounds every collection round by the
// query timeout and treats Algorithm 5's replication workgroups as
// failover targets: a (query, partition) task lost to a dead, erroring,
// or unresponsive worker is retried — with exponential backoff, at most
// MaxRetries rounds — on another worker of the partition's workgroup.
// When no replica is left the batch completes anyway, flagged Degraded
// with the failed partitions identified.
//
// Correctness hinges on three rules:
//
//  1. Rounds are numbered (batchHeader.Seq) and workers echo the number
//     in every result and Done, so stale traffic is recognized.
//  2. A worker that missed its round deadline is "lagging": it gets no
//     new header until its Done (with the old Seq) arrives, so its
//     in-flight threads can never consume queries of a newer round.
//  3. Results are deduplicated per (query, partition): a lagging
//     worker's late answer and a replica's retried answer for the same
//     task cannot both be pushed into the collector.

// taskKey identifies one routed (query, partition) task.
type taskKey struct {
	qi   uint32
	part int32
}

// ftTask is one outstanding task and its failover history.
type ftTask struct {
	qi    uint32
	part  int32
	vec   []float32
	tried map[int]bool // worker ranks already attempted
}

// FaultStats counts fault-tolerance events across a master's lifetime.
type FaultStats struct {
	// Failovers is the number of tasks rerouted to a replica worker.
	Failovers int64
	// Timeouts is the number of collection rounds that hit the deadline.
	Timeouts int64
	// DegradedBatches is the number of batches that returned Degraded.
	DegradedBatches int64
}

// FaultStats returns the counters accumulated since the master started.
func (m *Master) FaultStats() FaultStats { return m.d.ft }

// replicaWorkers lists the worker ranks of partition part's workgroup
// W_part = {p_part, ..., p_(part+r-1 mod P)} in workgroup order,
// deduplicated (CoresPerNode > 1 can map several cores to one rank).
func (d *Distributed) replicaWorkers(part int) []int {
	r := d.cfg.Replication
	p := d.cfg.Partitions
	cpn := d.cfg.CoresPerNode
	out := make([]int, 0, r)
	for off := 0; off < r; off++ {
		w := ((part+off)%p)/cpn + 1
		dup := false
		for _, x := range out {
			if x == w {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// UnionPartitions merges two failed-partition lists into one
// deduplicated, ascending list. Shared by the master's two-phase search
// and the serving gateway's shard router, both of which accumulate
// failed partitions across rounds.
func UnionPartitions(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// ftBatch carries the mutable state of one fault-tolerant batch.
type ftBatch struct {
	res        *BatchResult
	collectors []*topk.Collector
	pending    map[taskKey]*ftTask
	acked      map[taskKey]bool
	batchStart uint32 // Seq of the batch's first round
}

// drainQueued absorbs every queued result/Done without blocking: late
// answers from lagging workers resolve pending tasks for free, and stale
// Dones clear the lagging flag so those workers become eligible again.
func (m *Master) drainQueued(b *ftBatch) {
	c := m.d.comm
	for {
		pay, st, ok, err := c.TryRecv(cluster.Any, tagDone)
		if err != nil || !ok {
			break
		}
		if dn, err := decodeDone(pay); err == nil {
			delete(m.d.lagging, st.Source)
			if b != nil && dn.Seq >= b.batchStart {
				m.noteDone(b, st.Source, dn)
			}
		}
	}
	for {
		pay, _, ok, err := c.TryRecv(cluster.Any, tagResult)
		if err != nil || !ok {
			break
		}
		if rm, err := decodeResult(pay); err == nil && b != nil {
			m.noteResult(b, rm)
		}
	}
}

func (m *Master) noteDone(b *ftBatch, source int, dn workerDone) {
	b.res.PerWorkerQueries[source-1] += dn.Processed
	b.res.PerWorkerDistComps[source-1] += dn.DistComps
	b.res.PerWorkerHops[source-1] += dn.Hops
	b.res.Work.DistComps += dn.DistComps
	b.res.Work.Hops += dn.Hops
}

func (m *Master) noteResult(b *ftBatch, rm resultMsg) {
	if rm.Seq < b.batchStart {
		return // leftover from an earlier batch
	}
	key := taskKey{qi: rm.QueryID, part: rm.Partition}
	if b.acked[key] {
		return // duplicate: a lagging worker and its replica both answered
	}
	b.acked[key] = true
	delete(b.pending, key)
	if int(rm.QueryID) < len(b.collectors) {
		for _, x := range rm.Results {
			b.collectors[rm.QueryID].PushResult(x)
		}
	}
}

// collectRound receives results and Dones until every worker in waitDone
// has closed round roundSeq, the deadline passes (remaining workers are
// marked lagging), or a watched worker dies (it is dropped and the loop
// continues). Only ErrClosed-style hard failures are returned.
func (m *Master) collectRound(b *ftBatch, waitDone map[int]bool, roundSeq uint32, deadline time.Time) error {
	d := m.d
	c := d.comm
	for len(waitDone) > 0 {
		for w := range waitDone {
			if c.IsDown(w) {
				delete(waitDone, w)
			}
		}
		if len(waitDone) == 0 {
			return nil
		}
		watch := make([]int, 0, len(waitDone))
		for w := range waitDone {
			watch = append(watch, w)
		}
		timeout := time.Until(deadline)
		if timeout <= 0 {
			timeout = time.Millisecond
		}
		pay, st, err := c.RecvTagsWatch(cluster.Any, timeout, watch, tagResult, tagDone)
		if err != nil {
			if errors.Is(err, cluster.ErrTimeout) {
				for w := range waitDone {
					d.lagging[w] = true
				}
				d.ft.Timeouts++
				d.cfg.Trace.Emitf(0, "fault", "round %d timed out waiting for %v", roundSeq, watch)
				return nil
			}
			var pd *cluster.PeerDownError
			if errors.As(err, &pd) {
				d.cfg.Trace.Emitf(0, "fault", "worker %d died during round %d", pd.Rank, roundSeq)
				delete(waitDone, pd.Rank)
				continue
			}
			return err
		}
		switch st.Tag {
		case tagDone:
			dn, err := decodeDone(pay)
			if err != nil {
				continue
			}
			if dn.Seq != roundSeq {
				// A lagging worker finally closed an old round; its
				// stats still belong to this batch if the round does.
				delete(d.lagging, st.Source)
				if dn.Seq >= b.batchStart {
					m.noteDone(b, st.Source, dn)
				}
				continue
			}
			m.noteDone(b, st.Source, dn)
			delete(waitDone, st.Source)
			delete(d.lagging, st.Source)
		case tagResult:
			rm, err := decodeResult(pay)
			if err != nil {
				continue
			}
			m.noteResult(b, rm)
		}
	}
	return nil
}

// assignWorker picks the next untried, alive, non-lagging worker of the
// task's workgroup, rotated by rot for load balance. Returns -1 when the
// workgroup is exhausted.
func (d *Distributed) assignWorker(t *ftTask, rot int) int {
	cands := d.replicaWorkers(int(t.part))
	for i := 0; i < len(cands); i++ {
		w := cands[(rot+i)%len(cands)]
		if t.tried[w] || d.lagging[w] || d.comm.IsDown(w) {
			continue
		}
		return w
	}
	return -1
}

// searchBatchFT is the fault-tolerant Algorithm 3/5: dispatch with
// per-worker headers, collect under a deadline, and retry lost tasks on
// workgroup replicas with exponential backoff.
func (m *Master) searchBatchFT(queries *vec.Dataset, route func(qi int, q []float32) []vptree.Route) (*BatchResult, error) {
	d := m.d
	c := d.comm
	nq := queries.Len()
	k := d.cfg.K
	p := d.cfg.Partitions
	workers := c.Size() - 1
	t0 := time.Now()

	if d.lagging == nil {
		d.lagging = make(map[int]bool)
	}

	res := &BatchResult{
		Results:            make([][]topk.Result, nq),
		PerWorkerQueries:   make([]int64, workers),
		PerWorkerDistComps: make([]int64, workers),
		PerWorkerHops:      make([]int64, workers),
	}
	b := &ftBatch{
		res:     res,
		pending: make(map[taskKey]*ftTask),
		acked:   make(map[taskKey]bool),
	}
	b.collectors = make([]*topk.Collector, nq)
	for i := range b.collectors {
		b.collectors[i] = topk.New(k)
	}

	// Absorb anything left queued from previous batches (this also
	// un-lags workers whose old Done has since arrived), then open the
	// batch: from here on, Seq >= batchStart identifies our traffic.
	m.drainQueued(nil)
	b.batchStart = d.nextSeq()
	roundSeq := b.batchStart

	d.cfg.Trace.Emitf(0, "batch", "start (ft): %d queries, k=%d, seq=%d", nq, k, roundSeq)

	// Round 1 header: every alive, non-lagging worker participates.
	var commT time.Duration
	inRound := make(map[int]bool)
	metrics.Phase(&commT, func() {
		enc := encodeHeader(batchHeader{Seq: roundSeq, NQueries: uint32(nq), K: uint16(k)})
		for w := 1; w <= workers; w++ {
			if c.IsDown(w) || d.lagging[w] {
				continue
			}
			if err := c.Send(w, tagHeader, enc); err != nil {
				continue
			}
			inRound[w] = true
		}
	})

	// Route and dispatch. next[i] rotates the workgroup of partition i
	// (Algorithm 5's load balancing); a candidate that is dead, lagging,
	// or fails at send time falls through to the next replica.
	next := make([]int, p)
	var batchFailovers int64
	var routeT, sendT time.Duration
	for qi := 0; qi < nq; qi++ {
		q := queries.At(qi)
		var routes []vptree.Route
		metrics.Phase(&routeT, func() { routes = route(qi, q) })
		metrics.Phase(&sendT, func() {
			for _, rt := range routes {
				t := &ftTask{qi: uint32(qi), part: int32(rt.Partition), vec: q, tried: make(map[int]bool)}
				key := taskKey{qi: t.qi, part: t.part}
				b.pending[key] = t
				rot := next[rt.Partition]
				next[rt.Partition] = (next[rt.Partition] + 1) % d.cfg.Replication
				msg := encodeQuery(queryMsg{QueryID: t.qi, Partition: t.part, K: uint16(k), Vec: q})
				for {
					w := d.assignWorker(t, rot)
					if w < 0 || !inRound[w] {
						break // no live replica: stays pending -> degraded
					}
					if err := c.Send(w, tagQuery, msg); err != nil {
						t.tried[w] = true // died at send time; try the next replica
						continue
					}
					t.tried[w] = true
					res.Dispatched++
					d.cfg.Trace.Emitf(0, "dispatch", "q%d -> partition %d on rank %d", qi, rt.Partition, w)
					break
				}
			}
		})
	}
	metrics.Phase(&sendT, func() {
		for w := range inRound {
			if err := c.Send(w, tagEOQ, nil); err != nil {
				delete(inRound, w)
			}
		}
	})

	// Collect round 1.
	var recvT time.Duration
	waitDone := make(map[int]bool, len(inRound))
	for w := range inRound {
		waitDone[w] = true
	}
	var roundErr error
	metrics.Phase(&recvT, func() {
		roundErr = m.collectRound(b, waitDone, roundSeq, time.Now().Add(d.cfg.QueryTimeout))
	})
	if roundErr != nil {
		return nil, roundErr
	}

	// Retry rounds: regroup the leftover tasks onto untried replicas.
	for attempt := 1; len(b.pending) > 0 && attempt <= d.cfg.MaxRetries; attempt++ {
		time.Sleep(d.cfg.RetryBackoff << (attempt - 1))
		// Late traffic may have resolved tasks (or un-lagged workers)
		// while we slept.
		m.drainQueued(b)
		if len(b.pending) == 0 {
			break
		}
		byWorker := make(map[int][]*ftTask)
		for _, t := range b.pending {
			if w := d.assignWorker(t, 0); w >= 0 {
				byWorker[w] = append(byWorker[w], t)
			}
		}
		if len(byWorker) == 0 {
			break // every leftover task has exhausted its workgroup
		}
		res.Retries++
		roundSeq = d.nextSeq()
		d.cfg.Trace.Emitf(0, "fault", "retry round %d: %d tasks on %d workers", roundSeq, len(b.pending), len(byWorker))
		waitDone = make(map[int]bool, len(byWorker))
		metrics.Phase(&sendT, func() {
			enc := encodeHeader(batchHeader{Seq: roundSeq, NQueries: uint32(nq), K: uint16(k)})
			for w, tasks := range byWorker {
				if err := c.Send(w, tagHeader, enc); err != nil {
					continue // died just now; tasks stay pending
				}
				for _, t := range tasks {
					msg := encodeQuery(queryMsg{QueryID: t.qi, Partition: t.part, K: uint16(k), Vec: t.vec})
					if err := c.Send(w, tagQuery, msg); err != nil {
						break
					}
					t.tried[w] = true
					batchFailovers++
					res.Dispatched++
				}
				if err := c.Send(w, tagEOQ, nil); err != nil {
					continue
				}
				waitDone[w] = true
			}
		})
		if len(waitDone) == 0 {
			continue
		}
		metrics.Phase(&recvT, func() {
			roundErr = m.collectRound(b, waitDone, roundSeq, time.Now().Add(d.cfg.QueryTimeout))
		})
		if roundErr != nil {
			return nil, roundErr
		}
	}

	// Finalize: whatever is still pending is lost for this batch.
	if len(b.pending) > 0 {
		res.Degraded = true
		d.ft.DegradedBatches++
		seen := make(map[int]bool)
		for key := range b.pending {
			if !seen[int(key.part)] {
				seen[int(key.part)] = true
				res.FailedPartitions = append(res.FailedPartitions, int(key.part))
			}
		}
		sort.Ints(res.FailedPartitions)
		d.cfg.Trace.Emitf(0, "fault", "batch degraded: %d tasks lost, partitions %v", len(b.pending), res.FailedPartitions)
	}
	res.Failovers = batchFailovers
	d.ft.Failovers += batchFailovers
	for i, col := range b.collectors {
		res.Results[i] = col.Results()
	}
	res.Elapsed = time.Since(t0)
	d.cfg.Trace.Emitf(0, "batch", "done in %v (%d tasks, %d failovers, degraded=%v)",
		res.Elapsed, res.Dispatched, res.Failovers, res.Degraded)
	res.Breakdown = metrics.Breakdown{
		Route:   routeT,
		Comm:    commT + sendT + recvT,
		Compute: 0,
		Total:   res.Elapsed,
	}
	return res, nil
}
