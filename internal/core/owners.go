package core

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topk"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// RunMultipleOwner implements the multiple-owner strategy of Section IV:
// every rank holds the routing tree and owns the queries assigned to it
// by hash; owners route their queries to the partition hosts and merge
// the replies themselves. There is no dedicated master rank: all P ranks
// host a partition, and rank 0 additionally gathers the final results.
//
// The paper found this slightly faster than master–worker at low core
// counts but worse at scale (it cannot do replication-based load
// balancing); the "owners" experiment reproduces that comparison.
//
// ds and queries are consulted on rank 0 only; results are returned on
// rank 0 (nil elsewhere).
func RunMultipleOwner(c *cluster.Comm, ds, queries *vec.Dataset, cfg Config) ([][]topk.Result, error) {
	cfg.Partitions = c.Size()
	p := c.Size()

	// Distribute data and build (everyone is a builder and a host).
	shard, err := ScatterDataset(c, 0, ds, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := cfg.fill(shard.Dim); err != nil {
		return nil, err
	}
	built, err := BuildDistributed(c, shard, cfg)
	if err != nil {
		return nil, err
	}

	// Share the routing tree with every rank.
	var treeBlob []byte
	if c.Rank() == 0 {
		var buf bytes.Buffer
		if err := built.Tree.Encode(&buf); err != nil {
			return nil, err
		}
		treeBlob = buf.Bytes()
	}
	treeBlob, err = c.Bcast(0, treeBlob)
	if err != nil {
		return nil, err
	}
	tree, err := vptree.ReadPartitionTree(bytes.NewReader(treeBlob))
	if err != nil {
		return nil, err
	}

	// Scatter the queries to their owners (query qi is owned by qi mod P
	// — the hash function of the paper's description).
	var chunks [][]byte
	if c.Rank() == 0 {
		byOwner := make([]*vec.Dataset, p)
		for o := range byOwner {
			byOwner[o] = vec.NewDataset(queries.Dim, queries.Len()/p+1)
		}
		for qi := 0; qi < queries.Len(); qi++ {
			byOwner[qi%p].Append(queries.At(qi), int64(qi))
		}
		chunks = make([][]byte, p)
		for o := range byOwner {
			var buf bytes.Buffer
			if err := byOwner[o].WriteBinary(&buf); err != nil {
				return nil, err
			}
			chunks[o] = buf.Bytes()
		}
	}
	mineRaw, err := c.Scatterv(0, chunks)
	if err != nil {
		return nil, err
	}
	mine, err := vec.ReadBinary(bytes.NewReader(mineRaw))
	if err != nil {
		return nil, err
	}

	// Dispatch my queries to their partition hosts.
	expectReplies := 0
	for i := 0; i < mine.Len(); i++ {
		q := mine.At(i)
		routes := tree.RouteTop(q, cfg.NProbe)
		for _, rt := range routes {
			msg := queryMsg{QueryID: uint32(mine.ID(i)), Partition: int32(rt.Partition), K: uint16(cfg.K), Vec: q}
			if err := c.Send(rt.Partition, tagOwner, encodeQuery(msg)); err != nil {
				return nil, err
			}
			expectReplies++
		}
	}
	// Announce that this owner is done sending requests.
	for r := 0; r < p; r++ {
		if err := c.Send(r, tagEOQ, nil); err != nil {
			return nil, err
		}
	}

	// Serve requests and collect replies until: all P owners signalled
	// EOQ (so, by FIFO, every request addressed to me has arrived), the
	// request queue is drained, and all my replies are in.
	collectors := make(map[uint32]*topk.Collector, mine.Len())
	for i := 0; i < mine.Len(); i++ {
		collectors[uint32(mine.ID(i))] = topk.New(cfg.K)
	}
	eoqSeen, replies := 0, 0
	for {
		if eoqSeen == p && replies == expectReplies {
			// drain any remaining requests, then leave
			pay, _, ok, err := c.TryRecv(cluster.Any, tagOwner)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := serveOwnerRequest(c, built, pay); err != nil {
				return nil, err
			}
			continue
		}
		pay, st, err := c.RecvTags(cluster.Any, tagOwner, tagResult, tagEOQ)
		if err != nil {
			return nil, err
		}
		switch st.Tag {
		case tagEOQ:
			eoqSeen++
		case tagOwner:
			if err := serveOwnerRequest(c, built, pay); err != nil {
				return nil, err
			}
		case tagResult:
			rm, err := decodeResult(pay)
			if err != nil {
				return nil, err
			}
			col := collectors[rm.QueryID]
			if col == nil {
				return nil, fmt.Errorf("core: reply for foreign query %d", rm.QueryID)
			}
			for _, x := range rm.Results {
				col.PushResult(x)
			}
			replies++
		}
	}

	// Gather per-owner results at rank 0.
	var buf bytes.Buffer
	for i := 0; i < mine.Len(); i++ {
		qid := uint32(mine.ID(i))
		blob := encodeResult(resultMsg{QueryID: qid, Partition: -1, Results: collectors[qid].Results()})
		var lenb [4]byte
		putUint32(lenb[:], uint32(len(blob)))
		buf.Write(lenb[:])
		buf.Write(blob)
	}
	parts, err := c.Gatherv(0, buf.Bytes())
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	out := make([][]topk.Result, queries.Len())
	for _, part := range parts {
		for off := 0; off < len(part); {
			n := int(getUint32(part[off:]))
			off += 4
			rm, err := decodeResult(part[off : off+n])
			if err != nil {
				return nil, err
			}
			out[rm.QueryID] = rm.Results
			off += n
		}
	}
	return out, nil
}

func serveOwnerRequest(c *cluster.Comm, built *Built, pay []byte) error {
	qm, err := decodeQuery(pay)
	if err != nil {
		return err
	}
	g := built.Replicas[int(qm.Partition)]
	if g == nil {
		return fmt.Errorf("core: rank %d does not host partition %d", c.Rank(), qm.Partition)
	}
	rs, hst, err := g.Search(qm.Vec, int(qm.K))
	if err != nil {
		return err
	}
	// reply goes back to the owner: query qi is owned by qi mod P
	owner := int(qm.QueryID) % c.Size()
	return c.Send(owner, tagResult, encodeResult(resultMsg{
		QueryID:   qm.QueryID,
		Partition: qm.Partition,
		DistComps: hst.DistComps,
		Results:   rs,
	}))
}
