package core

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/trace"
	"repro/internal/vec"
)

func clustered(t testing.TB, n, dim, clusters int, seed int64) *vec.Dataset {
	t.Helper()
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: n, Dim: dim, Clusters: clusters, Outliers: n / 100, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Data
}

func truthIDs(ds, qs *vec.Dataset, k int) [][]int32 {
	return bruteforce.GroundTruth(ds, qs, k, vec.L2)
}

// --- wire format ---

func TestQueryMsgRoundtrip(t *testing.T) {
	m := queryMsg{QueryID: 7, Partition: 3, K: 10, Vec: []float32{1.5, -2, 0}}
	got, err := decodeQuery(encodeQuery(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != 7 || got.Partition != 3 || got.K != 10 || len(got.Vec) != 3 || got.Vec[1] != -2 {
		t.Fatalf("%+v", got)
	}
	if _, err := decodeQuery([]byte{1, 2}); err == nil {
		t.Error("want error for short query")
	}
	if _, err := decodeQuery(make([]byte, 13)); err == nil {
		t.Error("want error for misaligned query")
	}
}

func TestResultMsgRoundtrip(t *testing.T) {
	m := resultMsg{QueryID: 9, Partition: 2, DistComps: 123,
		Results: []topk.Result{{ID: 5, Dist: 1.25}, {ID: 9, Dist: 2}}}
	got, err := decodeResult(encodeResult(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != 9 || got.DistComps != 123 || len(got.Results) != 2 || got.Results[0] != m.Results[0] {
		t.Fatalf("%+v", got)
	}
	if _, err := decodeResult([]byte{1}); err == nil {
		t.Error("want error for short result")
	}
	bad := encodeResult(m)
	if _, err := decodeResult(bad[:len(bad)-1]); err == nil {
		t.Error("want error for truncated result")
	}
}

func TestDoneMsgRoundtrip(t *testing.T) {
	d := workerDone{Processed: 1, Accumulates: 2, DistComps: 3, Hops: 4}
	got, err := decodeDone(encodeDone(d))
	if err != nil || got != d {
		t.Fatalf("%+v %v", got, err)
	}
	if _, err := decodeDone([]byte{1}); err == nil {
		t.Error("want error")
	}
}

func TestMergeResultSlot(t *testing.T) {
	merge := mergeResultSlot(2)
	a := encodeResult(resultMsg{QueryID: 1, Results: []topk.Result{{ID: 1, Dist: 3}, {ID: 2, Dist: 1}, {ID: 3, Dist: 9}}})
	cur := merge(nil, a)
	rm, _ := decodeResult(cur)
	if len(rm.Results) != 2 {
		t.Fatalf("first merge kept %d", len(rm.Results))
	}
	b := encodeResult(resultMsg{QueryID: 1, Results: []topk.Result{{ID: 9, Dist: 0.5}}})
	cur = merge(cur, b)
	rm, _ = decodeResult(cur)
	if len(rm.Results) != 2 || rm.Results[0].ID != 9 || rm.Results[1].ID != 2 {
		t.Fatalf("merged: %+v", rm.Results)
	}
	// garbage update leaves current untouched
	if out := merge(cur, []byte{1, 2, 3}); !bytes.Equal(out, cur) {
		t.Error("garbage update changed slot")
	}
}

// --- config ---

func TestConfigFill(t *testing.T) {
	cfg := Config{Partitions: 4, NProbe: 99, Replication: 99}
	if err := cfg.fill(8); err != nil {
		t.Fatal(err)
	}
	if cfg.K != 10 || cfg.NProbe != 4 || cfg.Replication != 4 || cfg.ThreadsPerWorker != 1 {
		t.Fatalf("%+v", cfg)
	}
	bad := Config{}
	if err := bad.fill(8); err == nil {
		t.Error("want error for 0 partitions")
	}
}

// --- single-process engine ---

func TestEngineRecallAndExactness(t *testing.T) {
	ds := clustered(t, 4000, 32, 8, 1)
	cfg := DefaultConfig(8)
	cfg.NProbe = 3
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != ds.Len() || e.Partitions() != 8 || e.Dim() != 32 {
		t.Fatalf("engine shape: %d %d %d", e.Len(), e.Partitions(), e.Dim())
	}
	qs := dataset.PerturbedQueries(ds, 60, 0.05, 2)
	truth := truthIDs(ds, qs, 10)
	res, err := e.SearchBatch(qs, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r := metrics.MeanRecall(res, truth); r < 0.8 {
		t.Errorf("engine recall %v < 0.8", r)
	}
}

func TestEngineAdaptiveRoutingBeatsTop1(t *testing.T) {
	ds := clustered(t, 3000, 16, 6, 3)
	qs := dataset.PerturbedQueries(ds, 40, 0.2, 4)
	truth := truthIDs(ds, qs, 10)

	top1 := DefaultConfig(8)
	top1.NProbe = 1
	e1, err := NewEngine(ds.Clone(), top1)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := e1.SearchBatch(qs, 10, 2)

	ad := DefaultConfig(8)
	ad.Routing = RouteAdaptive
	e2, err := NewEngine(ds.Clone(), ad)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e2.SearchBatch(qs, 10, 2)

	rec1 := metrics.MeanRecall(r1, truth)
	rec2 := metrics.MeanRecall(r2, truth)
	if rec2 < rec1 {
		t.Errorf("adaptive recall %v < top-1 recall %v", rec2, rec1)
	}
	if rec2 < 0.9 {
		t.Errorf("adaptive recall %v < 0.9", rec2)
	}
}

func TestEngineSearchErrors(t *testing.T) {
	ds := clustered(t, 200, 8, 2, 5)
	e, err := NewEngine(ds, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(make([]float32, 5), 3); err == nil {
		t.Error("want dim error")
	}
	if _, err := e.SearchBatch(vec.NewDataset(5, 0), 3, 1); err == nil {
		t.Error("want dim error on batch")
	}
	rs, err := e.Search(ds.At(0), 0) // k=0 falls back to cfg.K
	if err != nil || len(rs) == 0 {
		t.Errorf("k fallback: %v %v", rs, err)
	}
}

func TestEngineKnobs(t *testing.T) {
	ds := clustered(t, 400, 8, 2, 6)
	e, _ := NewEngine(ds, DefaultConfig(4))
	e.SetNProbe(99)
	if e.cfg.NProbe != 4 {
		t.Errorf("NProbe clamp: %d", e.cfg.NProbe)
	}
	e.SetNProbe(2)
	if e.cfg.NProbe != 2 {
		t.Error("SetNProbe ignored")
	}
	e.SetEfSearch(77)
	if g, ok := coreIndexGraph(e); !ok || g.Config().EfSearch != 77 {
		t.Error("SetEfSearch not propagated")
	}
	if e.LocalKind() != "hnsw" {
		t.Errorf("LocalKind = %q", e.LocalKind())
	}
}

func TestEngineSaveLoad(t *testing.T) {
	ds := clustered(t, 800, 16, 4, 7)
	e, err := NewEngine(ds.Clone(), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != e.Len() || e2.Partitions() != e.Partitions() {
		t.Fatalf("shape after load: %d/%d", e2.Len(), e2.Partitions())
	}
	for i := 0; i < 10; i++ {
		q := ds.At(i * 37)
		a, _ := e.Search(q, 5)
		b, _ := e2.Search(q, 5)
		if len(a) != len(b) {
			t.Fatal("result count differs after load")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("result differs after load: %+v vs %+v", a[j], b[j])
			}
		}
	}
	if _, err := LoadEngine(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("want error for junk")
	}
}

// --- distributed construction ---

func TestBuildDistributedPartitionsAgreeWithTree(t *testing.T) {
	ds := clustered(t, 2000, 12, 4, 8)
	for _, p := range []int{2, 4, 8} {
		w := cluster.NewWorld(p)
		partSizes := make([]int, p)
		partIDs := make([][]int64, p)
		var trees []*treeCheck
		err := w.Run(func(c *cluster.Comm) error {
			shard, err := ScatterDataset(c, 0, ds, 1)
			if err != nil {
				return err
			}
			cfg := DefaultConfig(p)
			b, err := BuildDistributed(c, shard, cfg)
			if err != nil {
				return err
			}
			partSizes[c.Rank()] = b.Local.Len()
			ids := make([]int64, b.Local.Len())
			copy(ids, b.Local.IDs)
			partIDs[c.Rank()] = ids
			if c.Rank() == 0 {
				trees = append(trees, &treeCheck{b: b})
			}
			if b.PartitionID != c.Rank() {
				t.Errorf("partition id %d != rank %d", b.PartitionID, c.Rank())
			}
			if b.Index.Len() != b.Local.Len() {
				t.Errorf("index size %d != partition size %d", b.Index.Len(), b.Local.Len())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// coverage + disjointness
		seen := make(map[int64]bool)
		total := 0
		for _, ids := range partIDs {
			total += len(ids)
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("p=%d: duplicate id %d", p, id)
				}
				seen[id] = true
			}
		}
		if total != ds.Len() {
			t.Fatalf("p=%d: covered %d/%d points", p, total, ds.Len())
		}
		// near-balance (weighted-median approximation allows some slack)
		minS, maxS := ds.Len(), 0
		for _, s := range partSizes {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		if maxS > 3*minS+16 {
			t.Errorf("p=%d: imbalance %d..%d", p, minS, maxS)
		}
		// the tree on rank 0 must route every point to its own partition
		tc := trees[len(trees)-1]
		if tc.b.Tree.Leaves != p {
			t.Fatalf("p=%d: tree has %d leaves", p, tc.b.Tree.Leaves)
		}
	}
}

type treeCheck struct{ b *Built }

func TestBuildDistributedTreeRoutesHome(t *testing.T) {
	ds := clustered(t, 1500, 8, 4, 9)
	p := 4
	w := cluster.NewWorld(p)
	home := make(map[int64]int)
	var tb *Built
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := w.Run(func(c *cluster.Comm) error {
		shard, err := ScatterDataset(c, 0, ds, 2)
		if err != nil {
			return err
		}
		b, err := BuildDistributed(c, shard, DefaultConfig(p))
		if err != nil {
			return err
		}
		<-mu
		for i := 0; i < b.Local.Len(); i++ {
			home[b.Local.ID(i)] = b.PartitionID
		}
		if c.Rank() == 0 {
			tb = b
		}
		mu <- struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// every dataset point must be routed (Home) to the partition that
	// holds it: the geometric invariant of the distributed construction
	misrouted := 0
	for i := 0; i < ds.Len(); i++ {
		if tb.Tree.Home(ds.At(i)) != home[ds.ID(i)] {
			misrouted++
		}
	}
	if misrouted > 0 {
		t.Errorf("%d/%d points misrouted by the distributed tree", misrouted, ds.Len())
	}
}

func TestBuildDistributedReplication(t *testing.T) {
	ds := clustered(t, 800, 8, 4, 10)
	p := 4
	r := 3
	w := cluster.NewWorld(p)
	err := w.Run(func(c *cluster.Comm) error {
		shard, err := ScatterDataset(c, 0, ds, 3)
		if err != nil {
			return err
		}
		cfg := DefaultConfig(p)
		cfg.Replication = r
		b, err := BuildDistributed(c, shard, cfg)
		if err != nil {
			return err
		}
		if len(b.Replicas) != r {
			t.Errorf("rank %d hosts %d replicas, want %d", c.Rank(), len(b.Replicas), r)
		}
		for off := 0; off < r; off++ {
			want := (c.Rank() - off + p) % p
			if b.Replicas[want] == nil {
				t.Errorf("rank %d missing replica of partition %d", c.Rank(), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- distributed search (the headline integration test) ---

func runDistributedSearch(t *testing.T, ds, qs *vec.Dataset, cfg Config, p int) *BatchResult {
	t.Helper()
	w := cluster.NewWorld(p + 1)
	var out *BatchResult
	err := w.Run(func(c *cluster.Comm) error {
		return RunCluster(c, ds, cfg, func(m *Master) error {
			res, err := m.Search(qs)
			if err != nil {
				return err
			}
			out = res
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDistributedSearchRecall(t *testing.T) {
	ds := clustered(t, 3000, 24, 6, 11)
	qs := dataset.PerturbedQueries(ds, 50, 0.05, 12)
	truth := truthIDs(ds, qs, 10)
	cfg := DefaultConfig(4)
	cfg.NProbe = 3
	cfg.ThreadsPerWorker = 2
	res := runDistributedSearch(t, ds, qs, cfg, 4)
	if len(res.Results) != qs.Len() {
		t.Fatalf("got %d result rows", len(res.Results))
	}
	if r := metrics.MeanRecall(res.Results, truth); r < 0.8 {
		t.Errorf("distributed recall %v < 0.8", r)
	}
	if res.Dispatched != int64(qs.Len()*3) {
		t.Errorf("dispatched %d, want %d", res.Dispatched, qs.Len()*3)
	}
	var totalProcessed int64
	for _, n := range res.PerWorkerQueries {
		totalProcessed += n
	}
	if totalProcessed != res.Dispatched {
		t.Errorf("processed %d != dispatched %d", totalProcessed, res.Dispatched)
	}
	if res.Work.DistComps == 0 {
		t.Error("no work stats")
	}
}

func TestDistributedOneSidedMatchesTwoSided(t *testing.T) {
	ds := clustered(t, 2000, 16, 4, 13)
	qs := dataset.PerturbedQueries(ds, 30, 0.05, 14)
	for _, oneSided := range []bool{true, false} {
		cfg := DefaultConfig(4)
		cfg.OneSided = oneSided
		cfg.Seed = 5
		res := runDistributedSearch(t, ds, qs, cfg, 4)
		truth := truthIDs(ds, qs, 10)
		if r := metrics.MeanRecall(res.Results, truth); r < 0.75 {
			t.Errorf("oneSided=%v recall %v", oneSided, r)
		}
	}
}

func TestDistributedAgainstSingleProcessEngine(t *testing.T) {
	// The distributed engine and the single-process engine implement the
	// same algorithm; with identical seeds and routing they must reach
	// comparable recall on the same workload.
	ds := clustered(t, 2400, 16, 4, 15)
	qs := dataset.PerturbedQueries(ds, 40, 0.05, 16)
	truth := truthIDs(ds, qs, 10)

	cfg := DefaultConfig(4)
	cfg.NProbe = 2
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := e.SearchBatch(qs, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	dres := runDistributedSearch(t, ds, qs, cfg, 4)

	rl := metrics.MeanRecall(local, truth)
	rd := metrics.MeanRecall(dres.Results, truth)
	if rd < rl-0.1 {
		t.Errorf("distributed recall %v much worse than local %v", rd, rl)
	}
}

func TestDistributedReplicationBalancesLoad(t *testing.T) {
	ds := clustered(t, 2000, 16, 4, 17)
	// skewed queries: all in one cluster -> one partition hammered
	g, _ := dataset.GenerateClusters(dataset.ClusterConfig{N: 2000, Dim: 16, Clusters: 4, Seed: 17})
	qs, _ := g.Queries(dataset.QueryConfig{N: 80, Cluster: 1, Seed: 18})

	imb := map[int]float64{}
	for _, r := range []int{1, 3} {
		cfg := DefaultConfig(4)
		cfg.Replication = r
		cfg.NProbe = 2
		res := runDistributedSearch(t, ds, qs, cfg, 4)
		_, _, f := metrics.NewHistogram(res.PerWorkerQueries).Spread()
		imb[r] = f
	}
	if imb[3] > imb[1]+1e-9 {
		t.Errorf("replication did not reduce imbalance: r=1 %.3f, r=3 %.3f", imb[1], imb[3])
	}
}

func TestDistributedAdaptiveRouting(t *testing.T) {
	ds := clustered(t, 1600, 12, 4, 19)
	qs := dataset.PerturbedQueries(ds, 25, 0.05, 20)
	truth := truthIDs(ds, qs, 10)
	cfg := DefaultConfig(4)
	cfg.Routing = RouteAdaptive
	res := runDistributedSearch(t, ds, qs, cfg, 4)
	if r := metrics.MeanRecall(res.Results, truth); r < 0.85 {
		t.Errorf("adaptive distributed recall %v", r)
	}
}

func TestDistributedMultipleBatches(t *testing.T) {
	ds := clustered(t, 1200, 8, 4, 21)
	qs1 := dataset.PerturbedQueries(ds, 20, 0.05, 22)
	qs2 := dataset.PerturbedQueries(ds, 15, 0.05, 23)
	w := cluster.NewWorld(4 + 1)
	cfg := DefaultConfig(4)
	err := w.Run(func(c *cluster.Comm) error {
		return RunCluster(c, ds, cfg, func(m *Master) error {
			a, err := m.Search(qs1)
			if err != nil {
				return err
			}
			b, err := m.Search(qs2)
			if err != nil {
				return err
			}
			if len(a.Results) != 20 || len(b.Results) != 15 {
				t.Errorf("batch sizes: %d %d", len(a.Results), len(b.Results))
			}
			if m.ConstructionStats().HNSW <= 0 {
				t.Error("no construction stats")
			}
			if m.Tree() == nil {
				t.Error("no tree")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedQueryDimMismatch(t *testing.T) {
	ds := clustered(t, 400, 8, 2, 24)
	w := cluster.NewWorld(3)
	err := w.Run(func(c *cluster.Comm) error {
		return RunCluster(c, ds, DefaultConfig(2), func(m *Master) error {
			if _, err := m.Search(vec.NewDataset(5, 0)); err == nil {
				t.Error("want dim error")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterTooSmall(t *testing.T) {
	w := cluster.NewWorld(1)
	err := w.Run(func(c *cluster.Comm) error {
		return RunCluster(c, nil, DefaultConfig(1), nil)
	})
	if err == nil {
		t.Error("want size error")
	}
}

// --- multiple-owner strategy ---

func TestMultipleOwnerRecall(t *testing.T) {
	ds := clustered(t, 2000, 16, 4, 25)
	qs := dataset.PerturbedQueries(ds, 40, 0.05, 26)
	truth := truthIDs(ds, qs, 10)
	p := 4
	w := cluster.NewWorld(p)
	var out [][]topk.Result
	err := w.Run(func(c *cluster.Comm) error {
		cfg := DefaultConfig(p)
		cfg.NProbe = 2
		res, err := RunMultipleOwner(c, ds, qs, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != qs.Len() {
		t.Fatalf("got %d rows", len(out))
	}
	if r := metrics.MeanRecall(out, truth); r < 0.75 {
		t.Errorf("multiple-owner recall %v", r)
	}
}

// --- larger world smoke test (oversubscribed ranks) ---

func TestDistributedManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := clustered(t, 4096, 16, 8, 27)
	qs := dataset.PerturbedQueries(ds, 64, 0.05, 28)
	cfg := DefaultConfig(16)
	cfg.NProbe = 3
	res := runDistributedSearch(t, ds, qs, cfg, 16)
	truth := truthIDs(ds, qs, 10)
	if r := metrics.MeanRecall(res.Results, truth); r < 0.7 {
		t.Errorf("16-worker recall %v", r)
	}
}

func BenchmarkEngineSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_ = rng
	ds := clustered(b, 20000, 64, 8, 29)
	e, err := NewEngine(ds, DefaultConfig(8))
	if err != nil {
		b.Fatal(err)
	}
	q := ds.At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q, 10)
	}
}

// coreIndexGraph unwraps the first partition's HNSW graph.
func coreIndexGraph(e *Engine) (*hnsw.Graph, bool) {
	if len(e.parts) == 0 {
		return nil, false
	}
	return index.HNSWGraph(e.parts[0])
}

func TestEngineLocalIndexVariants(t *testing.T) {
	ds := clustered(t, 1500, 12, 4, 40)
	qs := dataset.PerturbedQueries(ds, 25, 0.05, 41)
	truth := truthIDs(ds, qs, 10)
	for _, kind := range []string{"hnsw", "vp", "kd", "flat"} {
		cfg := DefaultConfig(4)
		cfg.LocalIndex = kind
		cfg.Routing = RouteAdaptive
		e, err := NewEngine(ds.Clone(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if e.LocalKind() != kind {
			t.Errorf("LocalKind = %q want %q", e.LocalKind(), kind)
		}
		res, err := e.SearchBatch(qs, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		r := metrics.MeanRecall(res, truth)
		// adaptive routing + exact local indexes must be exact
		if kind != "hnsw" && r < 0.999 {
			t.Errorf("%s: exact local index recall %v < 1", kind, r)
		}
		if kind == "hnsw" && r < 0.85 {
			t.Errorf("hnsw recall %v", r)
		}
		if kind != "hnsw" {
			if err := e.Save(io.Discard); err == nil {
				t.Errorf("%s: Save should reject non-HNSW locals", kind)
			}
		}
	}
	cfg := DefaultConfig(4)
	cfg.LocalIndex = "bogus"
	if _, err := NewEngine(ds.Clone(), cfg); err == nil {
		t.Error("want error for unknown local index")
	}
}

func TestEngineDynamicAddDelete(t *testing.T) {
	ds := clustered(t, 1000, 8, 4, 60)
	cfg := DefaultConfig(4)
	cfg.NProbe = 4
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// insert a brand-new point very close to an existing one
	newVec := append([]float32(nil), ds.At(5)...)
	newVec[0] += 0.001
	if err := e.Add(newVec, 999_999); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Search(newVec, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.ID == 999_999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted point not found: %+v", rs)
	}

	// delete it: it must vanish, and k results still come back
	e.Delete(999_999)
	if !e.Deleted(999_999) || e.Tombstones() != 1 {
		t.Fatal("tombstone not recorded")
	}
	rs, _ = e.Search(newVec, 3)
	for _, r := range rs {
		if r.ID == 999_999 {
			t.Fatalf("deleted point still returned: %+v", rs)
		}
	}
	if len(rs) != 3 {
		t.Errorf("over-fetch failed: got %d results", len(rs))
	}

	// revive by re-adding
	if err := e.Add(newVec, 999_999); err != nil {
		t.Fatal(err)
	}
	if e.Deleted(999_999) {
		t.Error("re-add should clear the tombstone")
	}

	// errors
	if err := e.Add(make([]float32, 3), 1); err == nil {
		t.Error("want dim error")
	}
	e.Delete(424242) // idempotent no-op
}

func TestEngineAddRejectedForExactLocals(t *testing.T) {
	ds := clustered(t, 400, 6, 2, 61)
	cfg := DefaultConfig(2)
	cfg.LocalIndex = "flat"
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Add(ds.At(0), 77); err == nil {
		t.Error("flat local index should reject Add")
	}
}

func TestEngineConcurrentAddSearch(t *testing.T) {
	ds := clustered(t, 2000, 8, 4, 62)
	cfg := DefaultConfig(4)
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				v := append([]float32(nil), ds.At(rng.Intn(ds.Len()))...)
				v[0] += float32(rng.NormFloat64())
				if err := e.Add(v, int64(1_000_000+seed*1000+int64(i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 100; i++ {
				if _, err := e.Search(ds.At(rng.Intn(ds.Len())), 5); err != nil {
					done <- err
					return
				}
				if i%10 == 0 {
					e.Delete(int64(rng.Intn(2000)))
				}
			}
			done <- nil
		}(int64(w))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineRebuildCompactsTombstones(t *testing.T) {
	ds := clustered(t, 800, 8, 4, 63)
	cfg := DefaultConfig(4)
	cfg.NProbe = 4
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 100; id++ {
		e.Delete(id)
	}
	if e.Tombstones() != 100 {
		t.Fatalf("tombstones %d", e.Tombstones())
	}
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if e.Tombstones() != 0 {
		t.Error("rebuild kept tombstones")
	}
	if e.Len() != 700 {
		t.Errorf("live size %d, want 700", e.Len())
	}
	rs, err := e.Search(ds.At(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.ID < 100 {
			t.Fatalf("deleted id %d resurrected", r.ID)
		}
	}
}

func TestMultipleOwnerSingleRank(t *testing.T) {
	ds := clustered(t, 300, 6, 2, 64)
	qs := dataset.PerturbedQueries(ds, 10, 0.05, 65)
	w := cluster.NewWorld(1)
	var out [][]topk.Result
	err := w.Run(func(c *cluster.Comm) error {
		cfg := DefaultConfig(1)
		res, err := RunMultipleOwner(c, ds, qs, cfg)
		out = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("rows %d", len(out))
	}
	truth := truthIDs(ds, qs, 10)
	if r := metrics.MeanRecall(out, truth); r < 0.9 {
		t.Errorf("single-rank owner recall %v", r)
	}
}

// Property: wire encoding roundtrips arbitrary queries and results.
func TestWireQuick(t *testing.T) {
	err := quick.Check(func(qid uint32, part int16, k uint16, comps [6]float32) bool {
		m := queryMsg{QueryID: qid, Partition: int32(part), K: k, Vec: comps[:]}
		got, err := decodeQuery(encodeQuery(m))
		if err != nil || got.QueryID != m.QueryID || got.Partition != m.Partition || got.K != m.K {
			return false
		}
		for i := range m.Vec {
			if got.Vec[i] != m.Vec[i] && !(got.Vec[i] != got.Vec[i] && m.Vec[i] != m.Vec[i]) {
				return false // NaN-safe compare
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	err = quick.Check(func(qid uint32, ids [4]int64, dists [4]float32, dc int64) bool {
		rs := make([]topk.Result, 4)
		for i := range rs {
			rs[i] = topk.Result{ID: ids[i], Dist: dists[i]}
		}
		m := resultMsg{QueryID: qid, Partition: 1, DistComps: dc, Results: rs}
		got, err := decodeResult(encodeResult(m))
		if err != nil || got.QueryID != qid || got.DistComps != dc || len(got.Results) != 4 {
			return false
		}
		for i := range rs {
			if got.Results[i].ID != rs[i].ID {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestDistributedTracing(t *testing.T) {
	ds := clustered(t, 800, 8, 4, 80)
	qs := dataset.PerturbedQueries(ds, 10, 0.05, 81)
	rec := trace.New(256)
	cfg := DefaultConfig(3)
	cfg.Trace = rec
	w := cluster.NewWorld(4)
	err := w.Run(func(c *cluster.Comm) error {
		return RunCluster(c, ds, cfg, func(m *Master) error {
			_, err := m.Search(qs)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds["batch"] < 2 || kinds["dispatch"] == 0 || kinds["task"] == 0 || kinds["done"] == 0 {
		t.Errorf("missing trace kinds: %v", kinds)
	}
	var sb strings.Builder
	if err := rec.Timeline(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dispatch") {
		t.Error("timeline lacks dispatch events")
	}
}

// Property: engine results are valid dataset IDs, sorted by distance,
// at most k long, and contain no tombstoned IDs.
func TestEngineResultInvariantsQuick(t *testing.T) {
	ds := clustered(t, 900, 6, 3, 90)
	cfg := DefaultConfig(4)
	cfg.NProbe = 2
	e, err := NewEngine(ds.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[int64]bool{}
	for i := 0; i < ds.Len(); i++ {
		valid[ds.ID(i)] = true
	}
	e.Delete(7)
	err = quick.Check(func(qx [6]float32, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		rs, err := e.Search(qx[:], k)
		if err != nil || len(rs) > k {
			return false
		}
		for i, r := range rs {
			if !valid[r.ID] || r.ID == 7 {
				return false
			}
			if i > 0 && r.Dist < rs[i-1].Dist {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}
