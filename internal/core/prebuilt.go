package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/index"
	"repro/internal/vptree"
)

// Prebuilt injects already-constructed partition indexes and routing
// tree into a cluster run, skipping the distributed build. The scaling
// experiments use it for very large worker counts: the distributed
// construction's AlltoAllv costs O(P^2) messages per level, which the
// real machine amortises over its fabric but an in-process simulation
// at P=8192 should not replay when only the *search* protocol is being
// measured. (Construction itself is measured separately, at feasible P,
// by the Table II experiment.)
type Prebuilt struct {
	Tree *vptree.PartitionTree
	// Indexes[i] serves partition i; len = P. Any index.Local works —
	// HNSW for the paper's engine, exact VP/KD/flat for the
	// extensibility ablations.
	Indexes []index.Local
}

// RunClusterPrebuilt is RunCluster with construction replaced by the
// supplied Prebuilt. All ranks must pass the same pre value (the
// in-process transport shares memory, mirroring a cluster whose ranks
// load a prebuilt index from a parallel filesystem).
func RunClusterPrebuilt(c *cluster.Comm, pre *Prebuilt, cfg Config, driver func(*Master) error) error {
	if c.Size() < 2 {
		return fmt.Errorf("core: need at least 1 master + 1 worker, got %d ranks", c.Size())
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 1
	}
	cfg.Partitions = (c.Size() - 1) * cfg.CoresPerNode
	if len(pre.Indexes) != cfg.Partitions {
		return fmt.Errorf("core: %d prebuilt indexes for %d cores (%d workers x %d cores/node)",
			len(pre.Indexes), cfg.Partitions, c.Size()-1, cfg.CoresPerNode)
	}
	if err := cfg.fill(pre.Tree.Dim); err != nil {
		return err
	}
	d := &Distributed{comm: c, cfg: cfg, dim: pre.Tree.Dim}

	if c.Rank() == 0 {
		if _, err := c.Split(0, 0); err != nil {
			return err
		}
		d.tree = pre.Tree
		m := &Master{d: d}
		derr := driver(m)
		if err := m.shutdown(); err != nil && derr == nil {
			derr = err
		}
		return derr
	}

	workers, err := c.Split(1, c.Rank())
	if err != nil {
		return err
	}
	// This rank plays one compute node hosting the partitions of its
	// CoresPerNode cores, plus the replication copies each of those
	// cores' workgroups imply. Replication is satisfied without traffic:
	// replicas are reachable in shared memory, like a node-local copy;
	// the message cost of real replication is charged by the Table II /
	// Fig 4 construction accounting.
	cpn := cfg.CoresPerNode
	firstCore := (c.Rank() - 1) * cpn
	b := &Built{
		PartitionID: firstCore,
		Replicas:    make(map[int]index.Local),
	}
	r := cfg.Replication
	p := cfg.Partitions
	for core := firstCore; core < firstCore+cpn; core++ {
		for off := 0; off < r; off++ {
			src := (core - off + p) % p
			b.Replicas[src] = pre.Indexes[src]
		}
	}
	_ = workers
	d.builtB = b
	return d.workerLoop()
}
