package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/topk"
	"repro/internal/vec"
)

// tagForID mirrors the tagging rule used by the golden tests: every id
// carries t100=1; ids divisible by 10 add t10=1; divisible by 100 add
// t1=1 — selectivities 1.0, 0.1 and 0.01 over sequential ids.
func tagForID(id int64) map[string]string {
	tags := map[string]string{"t100": "1"}
	if id%10 == 0 {
		tags["t10"] = "1"
	}
	if id%100 == 0 {
		tags["t1"] = "1"
	}
	return tags
}

func tagAll(e *Engine, n int) {
	for id := int64(0); id < int64(n); id++ {
		e.SetTags(id, tagForID(id))
	}
}

func bruteFiltered(ds *vec.Dataset, q []float32, k int, keep func(int64) bool) []topk.Result {
	c := topk.New(k)
	for i := 0; i < ds.Len(); i++ {
		if keep(ds.ID(i)) {
			c.Push(ds.ID(i), vec.L2Distance(q, ds.At(i)))
		}
	}
	return c.Results()
}

func filteredRecall(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	truth := make(map[int64]bool, len(want))
	for _, r := range want {
		truth[r.ID] = true
	}
	hit := 0
	for _, r := range got {
		if truth[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// TestEngineSearchFilteredGolden compares the engine's filter pushdown
// against exact brute-force-with-filter at selectivities {1.0, 0.1,
// 0.01}, in scalar, frozen, and frozen+SQ8 serving modes.
func TestEngineSearchFilteredGolden(t *testing.T) {
	const (
		n  = 6000
		k  = 10
		nq = 30
	)
	ds := clustered(t, n, 16, 10, 1)
	rng := rand.New(rand.NewSource(5))

	for _, mode := range []struct {
		name   string
		mutate func(cfg *Config)
		ef     int
	}{
		{"scalar", func(cfg *Config) {}, 256},
		{"frozen", func(cfg *Config) { cfg.Frozen = true; cfg.RerankK = -1 }, 256},
		{"frozen_sq8", func(cfg *Config) { cfg.Frozen = true; cfg.SQ8 = true; cfg.RerankK = 0 }, 256},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig(4)
			cfg.NProbe = 4 // search everything: isolates traversal quality from routing
			mode.mutate(&cfg)
			e, err := NewEngine(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.SetEfSearch(mode.ef)
			tagAll(e, n)

			for _, tc := range []struct {
				expr string
				mod  int64
			}{
				{"t100=1", 1},
				{"t10=1", 10},
				{"t1=1", 100},
			} {
				f := filter.MustParse(tc.expr)
				keep := func(id int64) bool { return id%tc.mod == 0 }
				var sum float64
				for qi := 0; qi < nq; qi++ {
					q := ds.At(rng.Intn(n))
					truth := bruteFiltered(ds, q, k, keep)
					got, err := e.SearchFiltered(q, k, f)
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range got {
						if r.ID%tc.mod != 0 {
							t.Fatalf("filter %q returned non-matching id %d", tc.expr, r.ID)
						}
					}
					sum += filteredRecall(got, truth)
				}
				if mean := sum / nq; mean < 0.95 {
					t.Errorf("%s filter %q: recall %.3f < 0.95", mode.name, tc.expr, mean)
				}
			}
		})
	}
}

// TestEngineFilteredVsPostFilter pins the acceptance property at the
// engine level: at 1% selectivity traversal-time filtering finds more
// valid neighbors than post-filtering the unfiltered top-k.
func TestEngineFilteredVsPostFilter(t *testing.T) {
	const (
		n  = 6000
		k  = 10
		nq = 30
	)
	ds := clustered(t, n, 16, 10, 2)
	cfg := DefaultConfig(4)
	cfg.NProbe = 4
	e, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetEfSearch(256)
	tagAll(e, n)
	f := filter.MustParse("t1=1")
	keep := func(id int64) bool { return id%100 == 0 }
	rng := rand.New(rand.NewSource(9))
	var push, post int
	for qi := 0; qi < nq; qi++ {
		q := ds.At(rng.Intn(n))
		truth := map[int64]bool{}
		for _, r := range bruteFiltered(ds, q, k, keep) {
			truth[r.ID] = true
		}
		got, err := e.SearchFiltered(q, k, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if truth[r.ID] {
				push++
			}
		}
		raw, err := e.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range raw {
			if keep(r.ID) && truth[r.ID] {
				post++
			}
		}
	}
	if push <= post {
		t.Fatalf("pushdown valid hits %d not better than post-filter %d", push, post)
	}
	t.Logf("valid hits over %d queries: pushdown=%d post-filter=%d", nq, push, post)
}

// TestFilteredSearchConcurrentMutation races filtered searches against
// upserts, deletes, and tag rewrites. Run under -race in tier1.
func TestFilteredSearchConcurrentMutation(t *testing.T) {
	const n = 2000
	ds := clustered(t, n, 12, 6, 3)
	cfg := DefaultConfig(2)
	e, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tagAll(e, n)
	f := filter.MustParse("t10=1")

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// Mutators: interleave adds (with tags), deletes, and tag rewrites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		v := make([]float32, 12)
		for i := 0; !stop.Load(); i++ {
			id := int64(n + i)
			for j := range v {
				v[j] = rng.Float32()
			}
			if err := e.Add(v, id); err != nil {
				errs <- err
				return
			}
			e.SetTags(id, tagForID(id))
			if i%3 == 0 {
				e.Delete(int64(rng.Intn(n)))
			}
			if i%5 == 0 {
				e.SetTags(int64(rng.Intn(n)), map[string]string{"t100": "1", "rewritten": "yes"})
			}
		}
	}()

	// Searchers: filtered queries must never return a non-matching or
	// foreign ID.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				q := ds.At(rng.Intn(n))
				rs, err := e.SearchFiltered(q, 5, f)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range rs {
					tags := e.Tags(r.ID)
					_ = tags // value raced by rewrites; presence checked below
					if r.ID < 0 {
						errs <- fmt.Errorf("impossible id %d", r.ID)
						return
					}
				}
			}
		}(int64(w))
	}

	for i := 0; i < 100; i++ {
		select {
		case err := <-errs:
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestNewEmptyEngine exercises the empty-engine lifecycle a fresh
// collection goes through: search-empty, add, tag, filtered search.
func TestNewEmptyEngine(t *testing.T) {
	e, err := NewEmptyEngine(8, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if e.Partitions() != 1 {
		t.Fatalf("empty engine has %d partitions, want 1", e.Partitions())
	}
	if e.Len() != 0 {
		t.Fatalf("empty engine Len=%d", e.Len())
	}
	q := make([]float32, 8)
	rs, err := e.Search(q, 3)
	if err != nil {
		t.Fatalf("searching empty engine: %v", err)
	}
	if len(rs) != 0 {
		t.Fatalf("empty engine returned %d results", len(rs))
	}

	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 8)
	for id := int64(0); id < 200; id++ {
		for j := range v {
			v[j] = rng.Float32()
		}
		if err := e.Add(v, id); err != nil {
			t.Fatal(err)
		}
		e.SetTags(id, tagForID(id))
	}
	if e.Len() != 200 {
		t.Fatalf("Len=%d after 200 adds", e.Len())
	}
	rs, err = e.SearchFiltered(q, 5, filter.MustParse("t10=1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("filtered search on populated empty-born engine returned nothing")
	}
	for _, r := range rs {
		if r.ID%10 != 0 {
			t.Fatalf("non-matching id %d", r.ID)
		}
	}

	// Frozen empty engine must also be constructible and ingest via the
	// tail-scan path.
	cfg := DefaultConfig(1)
	cfg.Frozen = true
	fe, err := NewEmptyEngine(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range v {
		v[j] = 0.5
	}
	if err := fe.Add(v, 7); err != nil {
		t.Fatal(err)
	}
	rs, err = fe.Search(v, 1)
	if err != nil || len(rs) != 1 || rs[0].ID != 7 {
		t.Fatalf("frozen empty-born engine search = %v, %v", rs, err)
	}
}

// TestTagsLifecycle covers snapshot/restore and cleanup on rebuild.
func TestTagsLifecycle(t *testing.T) {
	ds := clustered(t, 500, 8, 4, 7)
	e, err := NewEngine(ds, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	e.SetTags(1, map[string]string{"a": "x"})
	e.SetTags(2, map[string]string{"b": "y"})
	if e.TagCount() != 2 {
		t.Fatalf("TagCount=%d", e.TagCount())
	}
	// Mutating the caller's map must not leak in.
	m := map[string]string{"c": "z"}
	e.SetTags(3, m)
	m["c"] = "mutated"
	if got := e.Tags(3)["c"]; got != "z" {
		t.Fatalf("Tags(3) = %q, want z", got)
	}
	// Clearing.
	e.SetTags(2, nil)
	if e.TagCount() != 2 {
		t.Fatalf("TagCount=%d after clear", e.TagCount())
	}
	snap := e.TagsSnapshot()
	if len(snap) != 2 || snap[1]["a"] != "x" {
		t.Fatalf("snapshot = %v", snap)
	}
	// Restore into a fresh engine.
	e2, err := NewEngine(ds, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	e2.RestoreTags(snap)
	if e2.TagCount() != 2 || e2.Tags(3)["c"] != "z" {
		t.Fatalf("restore lost tags: count=%d", e2.TagCount())
	}
	// Rebuild drops tombstoned ids' tags.
	e2.Delete(1)
	if err := e2.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if e2.Tags(1) != nil {
		t.Fatal("rebuild kept tags of a compacted-away id")
	}
	if e2.Tags(3)["c"] != "z" {
		t.Fatal("rebuild dropped tags of a live id")
	}
}
