package core

import (
	"fmt"

	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/lexical"
	"repro/internal/vptree"
)

// NewEmptyEngine builds an engine with no vectors: a single-leaf
// routing tree over one empty HNSW partition, ready to receive Add /
// AddAt traffic. This is how a freshly created collection starts —
// vptree.BuildPartitions needs at least one point per partition, so an
// empty engine always has exactly one partition regardless of
// cfg.Partitions (a later Rebuild re-partitions once data exists).
func NewEmptyEngine(dim int, cfg Config) (*Engine, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: non-positive dimension %d", dim)
	}
	cfg.Partitions = 1
	if cfg.LocalIndex != "" && cfg.LocalIndex != "hnsw" {
		return nil, fmt.Errorf("core: empty engines require the hnsw local index, got %q", cfg.LocalIndex)
	}
	if err := cfg.fill(dim); err != nil {
		return nil, err
	}
	hcfg := cfg.HNSW
	hcfg.Seed = cfg.Seed
	g, err := hnsw.New(dim, hcfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		dim:     dim,
		tree:    vptree.NewPartitionTree(dim, cfg.Metric, &vptree.PNode{Leaf: 0}),
		parts:   []index.Local{index.WrapHNSW(g)},
		dynamic: newDynamicState(),
		tags:    newTagStore(),
		lex:     lexical.NewIndex(lexical.Config{}),
	}
	if cfg.Frozen {
		if err := e.Freeze(hnsw.FreezeOptions{SQ8: cfg.SQ8, RerankK: cfg.RerankK}); err != nil {
			return nil, err
		}
	}
	return e, nil
}
