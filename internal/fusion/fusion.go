// Package fusion merges ranked candidate lists from heterogeneous
// retrieval legs — the vector top-k and the BM25 top-k — into one
// hybrid ranking. Two schemes are provided:
//
//   - Reciprocal-rank fusion (RRF): score(d) = Σ_legs 1/(K + rank_d),
//     rank 1-based, K=60 by default. Rank-only, so it needs no score
//     calibration between legs and is the robust default.
//   - Weighted min-max fusion: each leg's scores are min-max normalized
//     to [0,1] (higher = better) and combined as Σ w_leg · norm(d);
//     documents absent from a leg contribute 0 for it.
//
// Both schemes break ties on ascending document ID and are pure
// functions of their inputs, so fused rankings are reproducible across
// runs and across crash recovery.
package fusion

import "sort"

// DefaultRRFK is the standard reciprocal-rank fusion constant from
// Cormack et al.; it damps the gap between the first few ranks.
const DefaultRRFK = 60

// Candidate is one scored document in a leg's ranking. Score
// orientation is higher = better (vector legs pass negated distance).
type Candidate struct {
	ID    int64
	Score float64
}

// Sort orders a candidate list best-first (descending score) with
// deterministic ascending-ID tie-breaking — the ranking convention
// every fusion input and output uses.
func Sort(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		return cs[i].ID < cs[j].ID
	})
}

// RRF fuses the lists by reciprocal rank: each list is read best-first
// (callers pass lists already ranked; order within a list is taken as
// its ranking) and a document scores Σ 1/(kParam + rank) over the lists
// it appears in. kParam <= 0 selects DefaultRRFK. The fused top k is
// returned best-first; k <= 0 returns the full fused ranking.
func RRF(kParam float64, k int, lists ...[]Candidate) []Candidate {
	if kParam <= 0 {
		kParam = DefaultRRFK
	}
	scores := make(map[int64]float64)
	for _, list := range lists {
		for rank, c := range list {
			scores[c.ID] += 1 / (kParam + float64(rank+1))
		}
	}
	return collect(scores, k)
}

// WeightedMinMax fuses the lists by weighted normalized score. Each
// list is min-max normalized independently: norm = (s-min)/(max-min),
// or 1 for every entry when the list has no score spread (max == min),
// since presence in a leg is positive evidence. weights[i] weighs
// lists[i]; missing weights default to 1. The fused top k is returned
// best-first; k <= 0 returns the full fused ranking.
func WeightedMinMax(weights []float64, k int, lists ...[]Candidate) []Candidate {
	scores := make(map[int64]float64)
	for li, list := range lists {
		if len(list) == 0 {
			continue
		}
		w := 1.0
		if li < len(weights) {
			w = weights[li]
		}
		lo, hi := list[0].Score, list[0].Score
		for _, c := range list[1:] {
			if c.Score < lo {
				lo = c.Score
			}
			if c.Score > hi {
				hi = c.Score
			}
		}
		spread := hi - lo
		for _, c := range list {
			norm := 1.0
			if spread > 0 {
				norm = (c.Score - lo) / spread
			}
			scores[c.ID] += w * norm
		}
	}
	return collect(scores, k)
}

// collect materializes a score map as a best-first ranking, truncated
// to k when k > 0.
func collect(scores map[int64]float64, k int) []Candidate {
	out := make([]Candidate, 0, len(scores))
	for id, s := range scores {
		out = append(out, Candidate{ID: id, Score: s})
	}
	Sort(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
