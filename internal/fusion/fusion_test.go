package fusion

import (
	"math"
	"reflect"
	"testing"
)

func ids(cs []Candidate) []int64 {
	out := make([]int64, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

func TestRRFBasics(t *testing.T) {
	vec := []Candidate{{ID: 1, Score: -0.1}, {ID: 2, Score: -0.2}, {ID: 3, Score: -0.3}}
	lex := []Candidate{{ID: 3, Score: 9}, {ID: 4, Score: 5}}

	got := RRF(60, 0, vec, lex)
	// Doc 3 appears in both legs (rank 3 + rank 1) and must win.
	if got[0].ID != 3 {
		t.Fatalf("fused order %v, want doc 3 first", ids(got))
	}
	want3 := 1/63.0 + 1/61.0
	if math.Abs(got[0].Score-want3) > 1e-15 {
		t.Fatalf("doc 3 score %v, want %v", got[0].Score, want3)
	}
	if len(got) != 4 {
		t.Fatalf("fused %d docs, want 4", len(got))
	}

	if got := RRF(60, 2, vec, lex); len(got) != 2 {
		t.Fatalf("k=2 returned %d", len(got))
	}
}

func TestRRFDefaultK(t *testing.T) {
	l := []Candidate{{ID: 7, Score: 1}}
	got := RRF(0, 0, l)
	if want := 1 / (DefaultRRFK + 1.0); got[0].Score != want {
		t.Fatalf("score %v, want %v", got[0].Score, want)
	}
}

func TestRRFTieBreakByID(t *testing.T) {
	// Two docs at the same rank in disjoint lists: identical scores,
	// ascending-ID order must be stable.
	a := []Candidate{{ID: 9, Score: 1}}
	b := []Candidate{{ID: 2, Score: 1}}
	got := RRF(60, 0, a, b)
	if !reflect.DeepEqual(ids(got), []int64{2, 9}) {
		t.Fatalf("tie order %v", ids(got))
	}
}

func TestWeightedMinMax(t *testing.T) {
	vec := []Candidate{{ID: 1, Score: -0.1}, {ID: 2, Score: -0.5}} // norms: 1, 0
	lex := []Candidate{{ID: 2, Score: 3}, {ID: 3, Score: 1}}       // norms: 1, 0

	got := WeightedMinMax([]float64{0.5, 0.5}, 0, vec, lex)
	// Doc 1: 0.5*1 = 0.5; doc 2: 0.5*0 + 0.5*1 = 0.5; doc 3: 0.
	// Docs 1 and 2 tie -> ID order.
	if !reflect.DeepEqual(ids(got), []int64{1, 2, 3}) {
		t.Fatalf("order %v", ids(got))
	}
	if got[0].Score != 0.5 || got[1].Score != 0.5 || got[2].Score != 0 {
		t.Fatalf("scores %v", got)
	}
}

func TestWeightedMinMaxDegenerateList(t *testing.T) {
	// A single-candidate leg has no spread: presence counts as 1.
	lex := []Candidate{{ID: 5, Score: 2.5}}
	got := WeightedMinMax([]float64{2}, 0, lex)
	if len(got) != 1 || got[0].Score != 2 {
		t.Fatalf("got %v", got)
	}
	// Equal scores across a leg likewise all normalize to 1.
	flat := []Candidate{{ID: 1, Score: 4}, {ID: 2, Score: 4}}
	got = WeightedMinMax(nil, 0, flat)
	if got[0].Score != 1 || got[1].Score != 1 {
		t.Fatalf("flat leg %v", got)
	}
}

func TestWeightedMissingWeightDefaultsToOne(t *testing.T) {
	a := []Candidate{{ID: 1, Score: 1}, {ID: 2, Score: 0}}
	b := []Candidate{{ID: 2, Score: 1}, {ID: 1, Score: 0}}
	got := WeightedMinMax([]float64{1}, 0, a, b) // weight for b omitted
	if got[0].Score != 1 || got[1].Score != 1 {
		t.Fatalf("scores %v", got)
	}
}

func TestEmptyLegs(t *testing.T) {
	if got := RRF(60, 5); got != nil && len(got) != 0 {
		t.Fatalf("RRF of nothing: %v", got)
	}
	if got := WeightedMinMax(nil, 5, nil, nil); got != nil && len(got) != 0 {
		t.Fatalf("weighted of nothing: %v", got)
	}
	one := []Candidate{{ID: 1, Score: 1}}
	if got := RRF(60, 5, one, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("single leg: %v", got)
	}
}

// Fusion must be bit-reproducible: same inputs, same floats out.
func TestDeterminism(t *testing.T) {
	vec := make([]Candidate, 50)
	lex := make([]Candidate, 50)
	for i := range vec {
		vec[i] = Candidate{ID: int64(i * 3 % 71), Score: -float64(i) * 0.017}
		lex[i] = Candidate{ID: int64(i * 7 % 71), Score: 100 - float64(i)*1.3}
	}
	r1 := RRF(60, 10, vec, lex)
	w1 := WeightedMinMax([]float64{0.7, 0.3}, 10, vec, lex)
	for trial := 0; trial < 20; trial++ {
		if r2 := RRF(60, 10, vec, lex); !reflect.DeepEqual(r1, r2) {
			t.Fatalf("RRF nondeterministic: %v vs %v", r1, r2)
		}
		if w2 := WeightedMinMax([]float64{0.7, 0.3}, 10, vec, lex); !reflect.DeepEqual(w1, w2) {
			t.Fatalf("weighted nondeterministic: %v vs %v", w1, w2)
		}
	}
}
