package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, "x", "y")
	r.Emitf(0, "x", "%d", 1)
	if r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil recorder should be inert")
	}
	var sb strings.Builder
	if err := r.Timeline(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil timeline should write nothing")
	}
	if err := r.Summary(&sb); err != nil {
		t.Error(err)
	}
}

func TestEmitAndOrder(t *testing.T) {
	r := New(16)
	r.Emit(1, "a", "first")
	r.Emit(0, "b", "second")
	r.Emitf(1, "c", "n=%d", 42)
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At.Before(ev[i-1].At) {
			t.Fatal("events out of order")
		}
	}
	if ev[2].Detail != "n=42" {
		t.Errorf("Emitf detail %q", ev[2].Detail)
	}
}

func TestRingCapsAndDropCount(t *testing.T) {
	r := New(8)
	for i := 0; i < 30; i++ {
		r.Emitf(0, "k", "%d", i)
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("retained %d, want 8", len(ev))
	}
	if ev[len(ev)-1].Detail != "29" || ev[0].Detail != "22" {
		t.Errorf("ring kept wrong window: %s..%s", ev[0].Detail, ev[len(ev)-1].Detail)
	}
	if r.Dropped() != 22 {
		t.Errorf("dropped %d, want 22", r.Dropped())
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(1000)
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(rank, "t", "")
			}
		}(rank)
	}
	wg.Wait()
	if got := len(r.Events()); got != 4000 {
		t.Errorf("got %d events", got)
	}
}

func TestTimelineAndSummary(t *testing.T) {
	r := New(16)
	r.Emit(0, "route", "q1")
	r.Emit(1, "task", "q1/p0")
	r.Emit(1, "task", "q2/p0")
	var tl strings.Builder
	if err := r.Timeline(&tl); err != nil {
		t.Fatal(err)
	}
	out := tl.String()
	if !strings.Contains(out, "rank 0:") || !strings.Contains(out, "rank 1:") {
		t.Errorf("timeline missing ranks:\n%s", out)
	}
	if !strings.Contains(out, "route") || !strings.Contains(out, "q2/p0") {
		t.Errorf("timeline missing events:\n%s", out)
	}
	var sm strings.Builder
	if err := r.Summary(&sm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sm.String(), "task") || !strings.Contains(sm.String(), "rank 1") {
		t.Errorf("summary:\n%s", sm.String())
	}
}

func TestDefaultCap(t *testing.T) {
	r := New(0)
	if r.cap != 4096 {
		t.Errorf("default cap %d", r.cap)
	}
}
