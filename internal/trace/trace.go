// Package trace records timestamped events from the distributed engine
// — master routing/dispatch, worker task execution, window traffic — and
// renders per-rank timelines and summaries. It exists for the reason
// production MPI codes carry tracing hooks: the paper's performance
// story (Figure 5's breakdown, Figure 4's imbalance) is only debuggable
// when one can see which rank did what, when.
//
// Recording is lock-striped and bounded: a Recorder holds at most cap
// events per rank in a ring, so tracing a million-task batch cannot
// exhaust memory. A nil *Recorder is valid and records nothing, which
// is how the engine keeps the hot path branch-cheap when tracing is off.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	Rank   int
	At     time.Time
	Kind   string // e.g. "route", "dispatch", "task", "done"
	Detail string
}

// Recorder collects events from concurrent ranks.
type Recorder struct {
	start time.Time
	cap   int
	mu    sync.Mutex
	rings map[int]*ring
}

type ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int64
}

// New returns a recorder keeping up to perRankCap events per rank
// (default 4096 if <= 0).
func New(perRankCap int) *Recorder {
	if perRankCap <= 0 {
		perRankCap = 4096
	}
	return &Recorder{start: time.Now(), cap: perRankCap, rings: make(map[int]*ring)}
}

// Emit records an event. Safe for concurrent use; no-op on a nil
// recorder.
func (r *Recorder) Emit(rank int, kind, detail string) {
	if r == nil {
		return
	}
	e := Event{Rank: rank, At: time.Now(), Kind: kind, Detail: detail}
	r.mu.Lock()
	rg := r.rings[rank]
	if rg == nil {
		rg = &ring{buf: make([]Event, 0, min(r.cap, 64))}
		r.rings[rank] = rg
	}
	if len(rg.buf) < r.cap {
		rg.buf = append(rg.buf, e)
	} else {
		rg.buf[rg.next] = e
		rg.next = (rg.next + 1) % r.cap
		rg.wrapped = true
		rg.dropped++
	}
	r.mu.Unlock()
}

// Emitf is Emit with formatting.
func (r *Recorder) Emitf(rank int, kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Emit(rank, kind, fmt.Sprintf(format, args...))
}

// Events returns all retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	for _, rg := range r.rings {
		if rg.wrapped {
			out = append(out, rg.buf[rg.next:]...)
			out = append(out, rg.buf[:rg.next]...)
		} else {
			out = append(out, rg.buf...)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Dropped returns the number of events lost to ring wraparound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, rg := range r.rings {
		n += rg.dropped
	}
	return n
}

// Timeline writes a per-rank chronological listing with timestamps
// relative to the recorder's creation.
func (r *Recorder) Timeline(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Events()
	byRank := map[int][]Event{}
	var ranks []int
	for _, e := range events {
		if _, ok := byRank[e.Rank]; !ok {
			ranks = append(ranks, e.Rank)
		}
		byRank[e.Rank] = append(byRank[e.Rank], e)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		if _, err := fmt.Fprintf(w, "rank %d:\n", rank); err != nil {
			return err
		}
		for _, e := range byRank[rank] {
			if _, err := fmt.Fprintf(w, "  %10.3fms %-10s %s\n",
				float64(e.At.Sub(r.start).Microseconds())/1000, e.Kind, e.Detail); err != nil {
				return err
			}
		}
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d events dropped by per-rank ring caps)\n", d)
	}
	return nil
}

// Summary writes per-kind counts and per-rank event counts.
func (r *Recorder) Summary(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Events()
	kinds := map[string]int{}
	perRank := map[int]int{}
	for _, e := range events {
		kinds[e.Kind]++
		perRank[e.Rank]++
	}
	var ks []string
	for k := range kinds {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		if _, err := fmt.Fprintf(w, "%-12s %6d\n", k, kinds[k]); err != nil {
			return err
		}
	}
	var ranks []int
	for rk := range perRank {
		ranks = append(ranks, rk)
	}
	sort.Ints(ranks)
	for _, rk := range ranks {
		if _, err := fmt.Fprintf(w, "rank %-4d %6d events\n", rk, perRank[rk]); err != nil {
			return err
		}
	}
	return nil
}
