package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCollectorKeepsKSmallest(t *testing.T) {
	c := New(3)
	dists := []float32{5, 1, 9, 3, 7, 2}
	for i, d := range dists {
		c.Push(int64(i), d)
	}
	got := c.Results()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	wantDists := []float32{1, 2, 3}
	for i, r := range got {
		if r.Dist != wantDists[i] {
			t.Errorf("result[%d] = %+v, want dist %v", i, r, wantDists[i])
		}
	}
}

func TestCollectorBound(t *testing.T) {
	c := New(2)
	if c.Bound() != maxFloat32 {
		t.Error("empty collector should have +inf bound")
	}
	c.Push(1, 4)
	if c.Bound() != maxFloat32 {
		t.Error("non-full collector should have +inf bound")
	}
	c.Push(2, 2)
	if c.Bound() != 4 {
		t.Errorf("Bound = %v, want 4", c.Bound())
	}
	if c.Push(3, 5) {
		t.Error("push worse than bound should be rejected")
	}
	if !c.Push(3, 1) {
		t.Error("push better than bound should be kept")
	}
	if c.Bound() != 2 {
		t.Errorf("Bound = %v, want 2", c.Bound())
	}
}

func TestCollectorResetAndAccessors(t *testing.T) {
	c := New(4)
	if c.K() != 4 {
		t.Errorf("K = %d", c.K())
	}
	c.PushResult(Result{1, 1})
	if c.Len() != 1 || c.Full() {
		t.Error("Len/Full wrong after one push")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not empty")
	}
}

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

// Property: the collector returns exactly the k smallest distances of any
// push sequence, in sorted order.
func TestCollectorQuick(t *testing.T) {
	err := quick.Check(func(ds []float32, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		c := New(k)
		for i, d := range ds {
			c.Push(int64(i), d)
		}
		got := c.Results()
		want := append([]float32(nil), ds...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := []Result{{1, 5}, {2, 1}}
	b := []Result{{1, 3}, {3, 2}}
	got := Merge(3, a, b)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].ID != 2 || got[1].ID != 3 || got[2].ID != 1 || got[2].Dist != 3 {
		t.Errorf("merge = %+v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(5); len(got) != 0 {
		t.Errorf("Merge() = %+v", got)
	}
	if got := Merge(2, nil, []Result{}); len(got) != 0 {
		t.Errorf("Merge(nil) = %+v", got)
	}
}

// Property: merging partial lists equals collecting everything at once.
func TestMergeEqualsGlobalQuick(t *testing.T) {
	err := quick.Check(func(ds []float32, split uint8) bool {
		if len(ds) == 0 {
			return true
		}
		s := int(split) % len(ds)
		var a, b []Result
		for i, d := range ds {
			r := Result{int64(i), d}
			if i < s {
				a = append(a, r)
			} else {
				b = append(b, r)
			}
		}
		merged := Merge(5, a, b)
		c := New(5)
		for i, d := range ds {
			c.Push(int64(i), d)
		}
		want := c.Results()
		if len(merged) != len(want) {
			return false
		}
		for i := range want {
			if merged[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMinQueueOrdering(t *testing.T) {
	var q MinQueue
	for _, d := range []float32{5, 1, 4, 2, 3} {
		q.PushMin(int64(d), d)
	}
	if q.PeekMin().Dist != 1 {
		t.Errorf("PeekMin = %v", q.PeekMin())
	}
	prev := float32(-1)
	for q.Len() > 0 {
		r := q.PopMin()
		if r.Dist < prev {
			t.Errorf("out of order: %v after %v", r.Dist, prev)
		}
		prev = r.Dist
	}
}

// Property: MinQueue pops in nondecreasing order.
func TestMinQueueQuick(t *testing.T) {
	err := quick.Check(func(ds []float32) bool {
		var q MinQueue
		for i, d := range ds {
			q.PushMin(int64(i), d)
		}
		prev := float32(-maxFloat32)
		for q.Len() > 0 {
			r := q.PopMin()
			if r.Dist < prev {
				return false
			}
			prev = r.Dist
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestMinQueueReset(t *testing.T) {
	var q MinQueue
	q.PushMin(1, 1)
	q.Reset()
	if q.Len() != 0 {
		t.Error("Reset did not empty")
	}
}

func TestSortResultsTieBreak(t *testing.T) {
	rs := []Result{{5, 1}, {2, 1}, {9, 0}}
	SortResults(rs)
	if rs[0].ID != 9 || rs[1].ID != 2 || rs[2].ID != 5 {
		t.Errorf("tie-break wrong: %+v", rs)
	}
}

func BenchmarkCollectorPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := make([]float32, 4096)
	for i := range ds {
		ds[i] = rng.Float32()
	}
	b.ResetTimer()
	c := New(10)
	for i := 0; i < b.N; i++ {
		c.Push(int64(i), ds[i%len(ds)])
	}
}
