// Package topk provides the bounded result collectors and candidate
// queues shared by every search structure in this repository (HNSW, VP
// tree, KD tree, brute force) and by the distributed result merger at the
// master process.
//
// Two heap disciplines appear throughout nearest-neighbor search:
//
//   - a bounded MAX-heap of the best k results found so far, whose root is
//     the current k-th nearest distance (the pruning bound tau);
//   - an unbounded MIN-heap of candidates to expand, ordered by distance.
//
// Both are implemented directly on slices rather than via container/heap
// to keep the hot path free of interface dispatch; these heaps sit inside
// every distance-computation loop.
package topk

import "sort"

// Result is one (id, distance) pair returned by a search.
type Result struct {
	ID   int64
	Dist float32
}

// Collector is a bounded max-heap that retains the K smallest-distance
// results pushed into it. The zero Collector is unusable; call New.
type Collector struct {
	k    int
	heap []Result // max-heap on Dist
}

// New returns a collector that keeps the k nearest results.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, heap: make([]Result, 0, k)}
}

// K returns the collector's capacity.
func (c *Collector) K() int { return c.k }

// Len returns the number of results currently held.
func (c *Collector) Len() int { return len(c.heap) }

// Full reports whether the collector holds k results.
func (c *Collector) Full() bool { return len(c.heap) == c.k }

// Bound returns the current pruning bound: the largest retained distance
// if the collector is full, else +inf expressed as MaxFloat32-like
// sentinel. Searches compare candidate distances against Bound to prune.
func (c *Collector) Bound() float32 {
	if len(c.heap) < c.k {
		return maxFloat32
	}
	return c.heap[0].Dist
}

const maxFloat32 = 3.40282346638528859811704183484516925440e+38

// Push offers a result. It is kept iff fewer than k results are held or
// its distance beats the current worst. Returns true if kept.
func (c *Collector) Push(id int64, dist float32) bool {
	if len(c.heap) < c.k {
		c.heap = append(c.heap, Result{id, dist})
		c.siftUp(len(c.heap) - 1)
		return true
	}
	if dist >= c.heap[0].Dist {
		return false
	}
	c.heap[0] = Result{id, dist}
	c.siftDown(0)
	return true
}

// PushResult offers an existing Result value.
func (c *Collector) PushResult(r Result) bool { return c.Push(r.ID, r.Dist) }

// Results returns the retained results sorted by ascending distance (ties
// broken by ascending ID for determinism). The collector is unchanged.
func (c *Collector) Results() []Result {
	out := append([]Result(nil), c.heap...)
	SortResults(out)
	return out
}

// Reset empties the collector, retaining capacity.
func (c *Collector) Reset() { c.heap = c.heap[:0] }

func (c *Collector) siftUp(i int) {
	h := c.heap
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Dist >= h[i].Dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (c *Collector) siftDown(i int) {
	h := c.heap
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].Dist > h[m].Dist {
			m = l
		}
		if r < n && h[r].Dist > h[m].Dist {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// SortResults sorts results by ascending distance, then ascending ID.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}

// Merge combines any number of sorted-or-unsorted partial result lists
// into the global top-k, deduplicating by ID (keeping the smaller
// distance). This is the master-side reduction in the distributed engine.
func Merge(k int, lists ...[]Result) []Result {
	best := make(map[int64]float32)
	for _, l := range lists {
		for _, r := range l {
			if d, ok := best[r.ID]; !ok || r.Dist < d {
				best[r.ID] = r.Dist
			}
		}
	}
	c := New(k)
	for id, d := range best {
		c.Push(id, d)
	}
	return c.Results()
}

// MinQueue is a min-heap of candidates ordered by ascending distance,
// used as the expansion frontier in HNSW beam search and best-first KD/VP
// traversal.
type MinQueue struct {
	heap []Result
}

// PushMin inserts a candidate.
func (q *MinQueue) PushMin(id int64, dist float32) {
	q.heap = append(q.heap, Result{id, dist})
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Dist <= h[i].Dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// PopMin removes and returns the nearest candidate. It panics on an empty
// queue; check Len first.
func (q *MinQueue) PopMin() Result {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.heap = h[:n]
	h = q.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].Dist < h[m].Dist {
			m = l
		}
		if r < n && h[r].Dist < h[m].Dist {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// PeekMin returns the nearest candidate without removing it.
func (q *MinQueue) PeekMin() Result { return q.heap[0] }

// Len returns the number of queued candidates.
func (q *MinQueue) Len() int { return len(q.heap) }

// Reset empties the queue, retaining capacity.
func (q *MinQueue) Reset() { q.heap = q.heap[:0] }
