package kdtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/median"
	"repro/internal/vec"
)

// PartitionTree is the KD analogue of vptree.PartitionTree: an internal
// KD split tree whose leaves are data partitions, used as the routing
// structure of the PANDA-style baseline engine.
type PartitionTree struct {
	Dim    int
	Root   *PNode
	Leaves int
}

// PNode is one node of a KD PartitionTree.
type PNode struct {
	SplitDim int
	SplitVal float32
	Left     *PNode
	Right    *PNode
	Leaf     int32 // partition ID if >= 0
}

// IsLeaf reports whether n is a partition leaf.
func (n *PNode) IsLeaf() bool { return n.Leaf >= 0 }

// Route mirrors vptree.Route: a partition plus a lower bound on the
// distance from the query to any point of the partition's region.
type Route struct {
	Partition  int
	LowerBound float32
}

// BuildResult is the output of the KD partitioner.
type BuildResult struct {
	Tree       *PartitionTree
	Partitions []*vec.Dataset
	DistComps  int64 // spread scans, for cost parity with the VP builder
}

// BuildPartitions splits ds into p near-equal partitions by recursive
// median splits on the max-spread dimension.
func BuildPartitions(ds *vec.Dataset, p int) (*BuildResult, error) {
	if p <= 0 {
		return nil, fmt.Errorf("kdtree: need at least one partition, got %d", p)
	}
	if ds.Len() < p {
		return nil, fmt.Errorf("kdtree: cannot split %d points into %d partitions", ds.Len(), p)
	}
	b := &kbuilder{}
	root := b.split(ds, p)
	t := &PartitionTree{Dim: ds.Dim, Root: root, Leaves: len(b.parts)}
	return &BuildResult{Tree: t, Partitions: b.parts, DistComps: b.scans}, nil
}

type kbuilder struct {
	parts []*vec.Dataset
	scans int64
}

func (b *kbuilder) split(ds *vec.Dataset, p int) *PNode {
	if p == 1 {
		id := int32(len(b.parts))
		b.parts = append(b.parts, ds)
		return &PNode{Leaf: id, SplitDim: -1}
	}
	leftLeaves := p / 2
	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	d := maxSpreadDim(ds, rows)
	b.scans += int64(ds.Len())
	vals := make([]float32, ds.Len())
	for i := range vals {
		vals[i] = ds.At(i)[d]
	}
	rank := ds.Len()*leftLeaves/p - 1
	if rank < 0 {
		rank = 0
	}
	v := median.Select(append([]float32(nil), vals...), rank)
	left := vec.NewDataset(ds.Dim, ds.Len()/2)
	right := vec.NewDataset(ds.Dim, ds.Len()/2)
	for i := range vals {
		if vals[i] <= v {
			left.Append(ds.At(i), ds.ID(i))
		} else {
			right.Append(ds.At(i), ds.ID(i))
		}
	}
	if left.Len() < leftLeaves || right.Len() < p-leftLeaves {
		// duplicate-heavy fallback: split by rank order
		cut := ds.Len() * leftLeaves / p
		if cut == 0 {
			cut = 1
		}
		left = ds.Slice(0, cut).Clone()
		right = ds.Slice(cut, ds.Len()).Clone()
		v = left.At(left.Len() - 1)[d]
	}
	return &PNode{
		SplitDim: d,
		SplitVal: v,
		Leaf:     -1,
		Left:     b.split(left, leftLeaves),
		Right:    b.split(right, p-leftLeaves),
	}
}

// RouteAll returns every partition with its L2 lower bound, ascending.
func (t *PartitionTree) RouteAll(q []float32) []Route {
	var out []Route
	offsets := make([]float32, t.Dim)
	descend(t.Root, q, 0, offsets, math.MaxFloat32, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].LowerBound != out[j].LowerBound {
			return out[i].LowerBound < out[j].LowerBound
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}

// RouteBall returns the partitions whose region intersects B(q, tau) —
// the exact F(q) under L2.
func (t *PartitionTree) RouteBall(q []float32, tau float32) []Route {
	all := t.RouteAll(q)
	cut := sort.Search(len(all), func(i int) bool { return all[i].LowerBound > tau })
	return all[:cut]
}

// RouteTop returns the m most promising partitions.
func (t *PartitionTree) RouteTop(q []float32, m int) []Route {
	all := t.RouteAll(q)
	if m < len(all) {
		all = all[:m]
	}
	return all
}

// Home returns the partition whose cell contains q.
func (t *PartitionTree) Home(q []float32) int {
	n := t.Root
	for !n.IsLeaf() {
		if q[n.SplitDim] <= n.SplitVal {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return int(n.Leaf)
}

// descend tracks the per-dimension offset from q to the current cell;
// lb2 is the running squared distance (sum of squared offsets).
func descend(n *PNode, q []float32, lb2 float32, offsets []float32, tau float32, out *[]Route) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		*out = append(*out, Route{Partition: int(n.Leaf), LowerBound: float32(math.Sqrt(float64(lb2)))})
		return
	}
	d := n.SplitDim
	diff := q[d] - n.SplitVal
	old := offsets[d]
	// toward the left cell (x <= val): offset grows only if q is right
	// of the plane
	var offL, offR float32
	if diff > 0 {
		offL = diff
	}
	if diff < 0 {
		offR = -diff
	}
	// entering a child replaces the old offset on dim d
	lbL := lb2 - old*old + offL*offL
	lbR := lb2 - old*old + offR*offR
	if offL < old {
		offL = old // never shrink: the cell only tightens going down
		lbL = lb2
	}
	if offR < old {
		offR = old
		lbR = lb2
	}
	offsets[d] = offL
	descend(n.Left, q, lbL, offsets, tau, out)
	offsets[d] = offR
	descend(n.Right, q, lbR, offsets, tau, out)
	offsets[d] = old
}
