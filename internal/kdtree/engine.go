package kdtree

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Engine is the PANDA-style exact distributed k-NN baseline of Table
// III: a KD partition tree routes queries, and each partition answers
// exactly with a local KD tree. Search is best-first over partitions and
// provably exact: partitions are visited in ascending lower-bound order
// until the next bound exceeds the current k-th distance.
//
// The engine is deliberately *not* approximate — the paper's comparison
// point is "distributed KD trees give exact results", and the cost it
// pays in high dimensions (visiting almost every partition) is the
// effect being measured.
type Engine struct {
	tree  *PartitionTree
	parts []*Tree
	dim   int
}

// EngineStats reports the work of one engine search.
type EngineStats struct {
	DistComps         int64
	PartitionsVisited int
}

// NewEngine partitions ds into p partitions and indexes each with a
// local KD tree.
func NewEngine(ds *vec.Dataset, p int) (*Engine, error) {
	res, err := BuildPartitions(ds, p)
	if err != nil {
		return nil, err
	}
	e := &Engine{tree: res.Tree, parts: make([]*Tree, p), dim: ds.Dim}
	nw := runtime.GOMAXPROCS(0)
	if nw > p {
		nw = p
	}
	var wg sync.WaitGroup
	work := make(chan int, p)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				e.parts[i] = NewTree(res.Partitions[i], TreeConfig{})
			}
		}()
	}
	for i := 0; i < p; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return e, nil
}

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.dim }

// Partitions returns the partition count.
func (e *Engine) Partitions() int { return len(e.parts) }

// Search returns the exact k nearest neighbors of q.
func (e *Engine) Search(q []float32, k int) ([]topk.Result, EngineStats, error) {
	if len(q) != e.dim {
		return nil, EngineStats{}, fmt.Errorf("kdtree: query dim %d, index dim %d", len(q), e.dim)
	}
	routes := e.tree.RouteAll(q)
	c := topk.New(k)
	var st EngineStats
	for _, rt := range routes {
		if c.Full() && rt.LowerBound > c.Bound() {
			break // no partition beyond this bound can improve the result
		}
		rs, ps := e.parts[rt.Partition].Search(q, k)
		st.DistComps += ps.DistComps
		st.PartitionsVisited++
		for _, r := range rs {
			c.Push(r.ID, r.Dist)
		}
	}
	return c.Results(), st, nil
}

// SearchBatch answers all queries with nThreads workers and returns the
// results plus aggregate work stats.
func (e *Engine) SearchBatch(queries *vec.Dataset, k, nThreads int) ([][]topk.Result, EngineStats, error) {
	if nThreads <= 0 {
		nThreads = runtime.GOMAXPROCS(0)
	}
	out := make([][]topk.Result, queries.Len())
	stats := make([]EngineStats, queries.Len())
	errs := make([]error, queries.Len())
	var wg sync.WaitGroup
	work := make(chan int, nThreads*2)
	for w := 0; w < nThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], stats[i], errs[i] = e.Search(queries.At(i), k)
			}
		}()
	}
	for i := 0; i < queries.Len(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	var agg EngineStats
	for i := range stats {
		if errs[i] != nil {
			return nil, agg, errs[i]
		}
		agg.DistComps += stats[i].DistComps
		agg.PartitionsVisited += stats[i].PartitionsVisited
	}
	return out, agg, nil
}
