package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/vec"
)

func randDS(rng *rand.Rand, n, dim int) *vec.Dataset {
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 3)
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func TestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randDS(rng, 700, 10)
	tree := NewTree(ds, TreeConfig{})
	for trial := 0; trial < 30; trial++ {
		q := randDS(rng, 1, 10).At(0)
		got, st := tree.Search(q, 6)
		want := bruteforce.Search(ds, q, 6, vec.L2)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: %+v vs %+v", trial, i, got[i], want[i])
			}
			if math.Abs(float64(got[i].Dist-want[i].Dist)) > 1e-4 {
				t.Fatalf("dist mismatch %v vs %v", got[i].Dist, want[i].Dist)
			}
		}
		if st.DistComps == 0 {
			t.Fatal("no stats")
		}
	}
}

func TestLowDimPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 3-d clustered data: KD trees prune aggressively here
	ds := vec.NewDataset(3, 5000)
	v := make([]float32, 3)
	for i := 0; i < 5000; i++ {
		base := float32(i%8) * 50
		for j := range v {
			v[j] = base + float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	tree := NewTree(ds, TreeConfig{})
	_, st := tree.Search(ds.At(0), 5)
	if st.DistComps > int64(ds.Len())/4 {
		t.Errorf("weak pruning in 3d: %d/%d", st.DistComps, ds.Len())
	}
}

func TestHighDimDegradation(t *testing.T) {
	// The motivating effect: in high dimension the same tree scans a
	// large fraction of the data.
	rng := rand.New(rand.NewSource(3))
	lo := randDS(rng, 2000, 4)
	hi := randDS(rng, 2000, 64)
	tl := NewTree(lo, TreeConfig{})
	th := NewTree(hi, TreeConfig{})
	var cl, ch int64
	for i := 0; i < 20; i++ {
		_, sl := tl.Search(randDS(rng, 1, 4).At(0), 10)
		_, sh := th.Search(randDS(rng, 1, 64).At(0), 10)
		cl += sl.DistComps
		ch += sh.DistComps
	}
	if ch < cl*2 {
		t.Errorf("expected high-dim to scan much more: %d vs %d", ch, cl)
	}
}

func TestTreeSmallAndDuplicates(t *testing.T) {
	ds := vec.NewDataset(2, 100)
	for i := 0; i < 100; i++ {
		ds.Append([]float32{5, 5}, int64(i))
	}
	tree := NewTree(ds, TreeConfig{LeafSize: 8})
	got, _ := tree.Search([]float32{5, 5}, 3)
	if len(got) != 3 || got[0].Dist != 0 {
		t.Fatalf("%+v", got)
	}
	one := randDS(rand.New(rand.NewSource(4)), 1, 2)
	tr := NewTree(one, TreeConfig{})
	if r, _ := tr.Search(one.At(0), 5); len(r) != 1 {
		t.Fatalf("singleton: %+v", r)
	}
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Error("Len/Height wrong")
	}
}

func TestBuildPartitionsCoverDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randDS(rng, 1200, 6)
	for _, p := range []int{1, 2, 5, 8, 16} {
		res, err := BuildPartitions(ds.Clone(), p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(res.Partitions) != p || res.Tree.Leaves != p {
			t.Fatalf("p=%d: %d partitions", p, len(res.Partitions))
		}
		seen := make(map[int64]bool)
		total := 0
		for _, part := range res.Partitions {
			total += part.Len()
			for i := 0; i < part.Len(); i++ {
				if seen[part.ID(i)] {
					t.Fatalf("dup id %d", part.ID(i))
				}
				seen[part.ID(i)] = true
			}
		}
		if total != ds.Len() {
			t.Fatalf("p=%d: lost points %d != %d", p, total, ds.Len())
		}
	}
}

func TestBuildPartitionsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randDS(rng, 4, 2)
	if _, err := BuildPartitions(ds, 0); err == nil {
		t.Error("want p=0 error")
	}
	if _, err := BuildPartitions(ds, 9); err == nil {
		t.Error("want p>n error")
	}
}

func TestBuildPartitionsDuplicates(t *testing.T) {
	ds := vec.NewDataset(2, 128)
	for i := 0; i < 128; i++ {
		ds.Append([]float32{1, 1}, int64(i))
	}
	res, err := BuildPartitions(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Partitions {
		total += p.Len()
	}
	if total != 128 {
		t.Fatalf("lost points: %d", total)
	}
}

// Property: routing with the exact k-th distance is sound (contains the
// home partitions of all true neighbors).
func TestRouteBallSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randDS(rng, 2000, 5)
	res, _ := BuildPartitions(ds.Clone(), 8)
	home := make(map[int64]int)
	for pi, part := range res.Partitions {
		for i := 0; i < part.Len(); i++ {
			home[part.ID(i)] = pi
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := randDS(rng, 1, 5).At(0)
		want := bruteforce.Search(ds, q, 10, vec.L2)
		tau := want[len(want)-1].Dist
		routes := res.Tree.RouteBall(q, tau+1e-5)
		routed := map[int]bool{}
		for _, r := range routes {
			routed[r.Partition] = true
		}
		for _, w := range want {
			if !routed[home[w.ID]] {
				t.Fatalf("trial %d: neighbor %d (part %d) not routed, tau=%v routes=%v",
					trial, w.ID, home[w.ID], tau, routes)
			}
		}
	}
}

func TestRouteAllSortedAndHome(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := randDS(rng, 900, 4)
	res, _ := BuildPartitions(ds.Clone(), 8)
	q := ds.At(3)
	all := res.Tree.RouteAll(q)
	if len(all) != 8 {
		t.Fatalf("%d routes", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].LowerBound < all[i-1].LowerBound {
			t.Fatal("not sorted")
		}
	}
	if all[0].LowerBound != 0 {
		t.Errorf("home lb = %v", all[0].LowerBound)
	}
	if h := res.Tree.Home(q); h != all[0].Partition {
		t.Errorf("Home %d vs %d", h, all[0].Partition)
	}
	top := res.Tree.RouteTop(q, 2)
	if len(top) != 2 || top[0] != all[0] {
		t.Errorf("RouteTop: %+v", top)
	}
}

// Property: lower bounds are admissible — no partition contains a point
// closer to q than the partition's reported bound.
func TestLowerBoundAdmissibleQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randDS(rng, 600, 4)
	res, _ := BuildPartitions(ds.Clone(), 8)
	err := quick.Check(func(qx [4]float32) bool {
		q := qx[:]
		for _, r := range res.Tree.RouteAll(q) {
			part := res.Partitions[r.Partition]
			best := bruteforce.Search(part, q, 1, vec.L2)
			if len(best) > 0 && best[0].Dist < r.LowerBound-1e-4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// The cross-check that motivates the whole paper: on identical
// high-dimensional data, the KD router must route far more partitions
// than needed while the VP router's exact ball stays selective is shown
// in core's comparison tests; here we just pin that a clustered query
// routes fewer partitions than a uniform one.
func TestRoutingSelectivityOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := vec.NewDataset(8, 4000)
	v := make([]float32, 8)
	for i := 0; i < 4000; i++ {
		base := float32(i%16) * 100
		for j := range v {
			v[j] = base + float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	res, _ := BuildPartitions(ds.Clone(), 16)
	q := ds.At(0)
	truth := bruteforce.Search(ds, q, 10, vec.L2)
	tau := truth[len(truth)-1].Dist
	if got := len(res.Tree.RouteBall(q, tau)); got > 8 {
		t.Errorf("clustered query routed %d/16 partitions", got)
	}
}

func BenchmarkKDSearchDim128(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	ds := randDS(rng, 10000, 128)
	tree := NewTree(ds, TreeConfig{})
	q := ds.At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Search(q, 10)
	}
}
