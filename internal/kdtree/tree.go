// Package kdtree implements the distributed-KD-tree baseline the paper
// compares against (PANDA, Patwary et al. IPDPS 2016): a KD partition
// tree that splits the space on the max-spread coordinate at the median,
// with exact bucket search at the leaves. In high dimensions a k-NN ball
// intersects almost every KD cell, so routing degenerates to visiting
// most partitions — the effect Table III quantifies (our method ~10X
// faster on 128-d and 96-d data).
//
// The package mirrors internal/vptree's two layers: Tree (exact point
// tree used for local search inside a partition) and PartitionTree
// (leaves are partition IDs, used by the master for routing). KD trees
// here support the L2 metric only, which is the regime the baseline was
// designed for.
package kdtree

import (
	"math"

	"repro/internal/median"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Tree is an exact KD tree over a dataset with bucket leaves.
type Tree struct {
	ds       *vec.Dataset
	root     *knode
	leafSize int
}

type knode struct {
	dim    int     // split dimension
	val    float32 // split value: left has x[dim] <= val
	left   *knode
	right  *knode
	bucket []int // leaf rows
}

// TreeConfig controls exact KD tree construction.
type TreeConfig struct {
	LeafSize int // default 32
}

// NewTree builds an exact KD tree over ds (retained, not copied).
func NewTree(ds *vec.Dataset, cfg TreeConfig) *Tree {
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 32
	}
	t := &Tree{ds: ds, leafSize: cfg.LeafSize}
	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	t.root = t.build(rows)
	return t
}

// maxSpreadDim returns the coordinate with the largest value range over
// the rows — PANDA's split-dimension rule.
func maxSpreadDim(ds *vec.Dataset, rows []int) int {
	dim := ds.Dim
	lo := make([]float32, dim)
	hi := make([]float32, dim)
	first := ds.At(rows[0])
	copy(lo, first)
	copy(hi, first)
	for _, r := range rows[1:] {
		v := ds.At(r)
		for j := 0; j < dim; j++ {
			if v[j] < lo[j] {
				lo[j] = v[j]
			}
			if v[j] > hi[j] {
				hi[j] = v[j]
			}
		}
	}
	best, bestSpread := 0, float32(-1)
	for j := 0; j < dim; j++ {
		if s := hi[j] - lo[j]; s > bestSpread {
			bestSpread, best = s, j
		}
	}
	return best
}

func (t *Tree) build(rows []int) *knode {
	if len(rows) <= t.leafSize {
		return &knode{dim: -1, bucket: rows}
	}
	d := maxSpreadDim(t.ds, rows)
	vals := make([]float32, len(rows))
	for i, r := range rows {
		vals[i] = t.ds.At(r)[d]
	}
	v := median.MedianCopy(vals)
	var left, right []int
	for i, r := range rows {
		if vals[i] <= v {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// zero spread on the chosen dim (duplicates): leaf out
		return &knode{dim: -1, bucket: rows}
	}
	return &knode{dim: d, val: v, left: t.build(left), right: t.build(right)}
}

// SearchStats reports the work of one exact search.
type SearchStats struct {
	DistComps  int64
	NodesSeen  int64
	LeavesSeen int64
}

// Search returns the exact k nearest neighbors of q under L2.
func (t *Tree) Search(q []float32, k int) ([]topk.Result, SearchStats) {
	c := topk.New(k)
	var st SearchStats
	t.search(t.root, q, 0, c, &st)
	rs := c.Results()
	for i := range rs {
		rs[i].Dist = float32(math.Sqrt(float64(rs[i].Dist)))
	}
	return rs, st
}

// search traverses with squared-L2 bounds; lb2 is the squared distance
// from q to the node's region.
func (t *Tree) search(n *knode, q []float32, lb2 float32, c *topk.Collector, st *SearchStats) {
	if n == nil || lb2 > c.Bound() {
		return
	}
	st.NodesSeen++
	if n.bucket != nil {
		st.LeavesSeen++
		for _, r := range n.bucket {
			st.DistComps++
			c.Push(t.ds.ID(r), vec.SquaredL2Distance(q, t.ds.At(r)))
		}
		return
	}
	diff := q[n.dim] - n.val
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, lb2, c, st)
	// Crossing the split plane costs at least diff^2 on this axis; this
	// per-plane bound (rather than the full hyperrectangle distance)
	// matches the classic recursion and is admissible.
	farLB := lb2 + diff*diff
	if farLB <= c.Bound() {
		t.search(far, q, farLB, c, st)
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }

// Height returns the height of the tree.
func (t *Tree) Height() int { return kheight(t.root) }

func kheight(n *knode) int {
	if n == nil {
		return 0
	}
	if n.bucket != nil {
		return 1
	}
	l, r := kheight(n.left), kheight(n.right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}
