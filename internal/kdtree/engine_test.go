package kdtree

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/vec"
)

func TestEngineExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ds := randDS(rng, 3000, 12)
	e, err := NewEngine(ds.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 12 || e.Partitions() != 8 {
		t.Fatalf("shape: %d/%d", e.Dim(), e.Partitions())
	}
	for trial := 0; trial < 30; trial++ {
		q := randDS(rng, 1, 12).At(0)
		got, st, err := e.Search(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.Search(ds, q, 7, vec.L2)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: %+v vs %+v (visited %d)", trial, i, got[i], want[i], st.PartitionsVisited)
			}
		}
	}
}

func TestEngineBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := randDS(rng, 1000, 8)
	e, _ := NewEngine(ds.Clone(), 4)
	qs := randDS(rng, 25, 8)
	batch, agg, err := e.SearchBatch(qs, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.DistComps == 0 || agg.PartitionsVisited == 0 {
		t.Error("no aggregate stats")
	}
	for i := 0; i < qs.Len(); i++ {
		single, _, _ := e.Search(qs.At(i), 5)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("q%d differs", i)
			}
		}
	}
}

func TestEngineVisitsMorePartitionsInHighDim(t *testing.T) {
	// The Table III effect: identical engine, low vs high dimension.
	rng := rand.New(rand.NewSource(22))
	lo := randDS(rng, 4000, 3)
	hi := randDS(rng, 4000, 96)
	el, _ := NewEngine(lo.Clone(), 16)
	eh, _ := NewEngine(hi.Clone(), 16)
	var vl, vh int
	for i := 0; i < 20; i++ {
		_, sl, _ := el.Search(randDS(rng, 1, 3).At(0), 10)
		_, sh, _ := eh.Search(randDS(rng, 1, 96).At(0), 10)
		vl += sl.PartitionsVisited
		vh += sh.PartitionsVisited
	}
	if vh <= vl {
		t.Errorf("high-dim should visit more partitions: %d vs %d", vh, vl)
	}
}

func TestEngineDimError(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds := randDS(rng, 100, 4)
	e, _ := NewEngine(ds, 2)
	if _, _, err := e.Search(make([]float32, 3), 1); err == nil {
		t.Error("want dim error")
	}
}
