package metrics

import (
	"runtime"
	"time"
)

// RuntimeSnapshot is a point-in-time picture of the Go process serving
// traffic: scheduler pressure (goroutines), memory footprint, and GC
// behavior. The serving gateway exports it on /varz; long-running
// experiment drivers can log it between phases.
type RuntimeSnapshot struct {
	Goroutines   int           `json:"goroutines"`
	HeapAlloc    uint64        `json:"heap_alloc_bytes"`  // live heap bytes
	HeapSys      uint64        `json:"heap_sys_bytes"`    // heap bytes obtained from the OS
	HeapObjects  uint64        `json:"heap_objects"`      // live objects
	StackInuse   uint64        `json:"stack_inuse_bytes"` // goroutine stack bytes
	TotalAlloc   uint64        `json:"total_alloc_bytes"` // cumulative allocated bytes
	NumGC        uint32        `json:"num_gc"`            // completed GC cycles
	GCPauseTotal time.Duration `json:"gc_pause_total_ns"` // cumulative stop-the-world pause
	LastGC       time.Time     `json:"last_gc,omitempty"` // completion time of the last cycle
	GCCPUPercent float64       `json:"gc_cpu_percent"`    // fraction of CPU spent in GC, as a percentage
	NumCPU       int           `json:"num_cpu"`           // usable logical CPUs
}

// CaptureRuntime reads the runtime counters. It calls
// runtime.ReadMemStats, which briefly stops the world — cheap enough for
// a /varz scrape or a per-phase log line, too hot for a per-query path.
func CaptureRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSnapshot{
		Goroutines:   runtime.NumGoroutine(),
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		HeapObjects:  ms.HeapObjects,
		StackInuse:   ms.StackInuse,
		TotalAlloc:   ms.TotalAlloc,
		NumGC:        ms.NumGC,
		GCPauseTotal: time.Duration(ms.PauseTotalNs),
		GCCPUPercent: ms.GCCPUFraction * 100,
		NumCPU:       runtime.NumCPU(),
	}
	if ms.LastGC != 0 {
		s.LastGC = time.Unix(0, int64(ms.LastGC))
	}
	return s
}
