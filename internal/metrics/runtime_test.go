package metrics

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestCaptureRuntime(t *testing.T) {
	s := CaptureRuntime()
	if s.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", s.Goroutines)
	}
	if s.HeapAlloc == 0 || s.HeapSys == 0 || s.HeapObjects == 0 {
		t.Fatalf("zero heap stats: %+v", s)
	}
	if s.NumCPU < 1 {
		t.Fatalf("NumCPU = %d", s.NumCPU)
	}
	// After a forced GC the cycle count must advance and pauses accrue.
	runtime.GC()
	s2 := CaptureRuntime()
	if s2.NumGC <= s.NumGC {
		t.Fatalf("NumGC did not advance: %d -> %d", s.NumGC, s2.NumGC)
	}
	if s2.GCPauseTotal < s.GCPauseTotal {
		t.Fatalf("GC pause total went backwards: %v -> %v", s.GCPauseTotal, s2.GCPauseTotal)
	}
	if s2.LastGC.IsZero() {
		t.Fatal("LastGC still zero after runtime.GC()")
	}
	// The snapshot must serialize cleanly — /varz embeds it as JSON.
	b, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["goroutines"]; !ok {
		t.Fatalf("missing goroutines key in %s", b)
	}
}
