package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/topk"
)

func TestRecall(t *testing.T) {
	approx := []topk.Result{{ID: 1}, {ID: 2}, {ID: 3}}
	if r := Recall(approx, []int32{1, 2, 3}); r != 1 {
		t.Errorf("perfect recall = %v", r)
	}
	if r := Recall(approx, []int32{1, 9, 8}); math.Abs(r-1.0/3) > 1e-9 {
		t.Errorf("1/3 recall = %v", r)
	}
	if r := Recall(nil, []int32{1}); r != 0 {
		t.Errorf("empty approx recall = %v", r)
	}
	if r := Recall(approx, nil); r != 0 {
		t.Errorf("empty truth recall = %v", r)
	}
}

func TestMeanRecall(t *testing.T) {
	a := [][]topk.Result{{{ID: 1}}, {{ID: 5}}}
	truth := [][]int32{{1}, {2}}
	if r := MeanRecall(a, truth); r != 0.5 {
		t.Errorf("mean = %v", r)
	}
	if r := MeanRecall(nil, nil); r != 0 {
		t.Errorf("empty mean = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on row mismatch")
		}
	}()
	MeanRecall(a, truth[:1])
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	one := Summarize([]float64{7})
	if one.P99 != 7 || one.P50 != 7 {
		t.Errorf("singleton: %+v", one)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Compute: 80, Comm: 10, Route: 5, Idle: 5, Total: 100}
	if f := b.CommFraction(); f != 0.1 {
		t.Errorf("comm fraction %v", f)
	}
	if f := b.ComputeFraction(); f != 0.85 {
		t.Errorf("compute fraction %v", f)
	}
	var zero Breakdown
	if zero.CommFraction() != 0 || zero.ComputeFraction() != 0 {
		t.Error("zero-total fractions should be 0")
	}
	sum := b.Add(b)
	if sum.Total != 200 || sum.Compute != 160 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30, 40})
	min, max, imb := h.Spread()
	if min != 10 || max != 40 {
		t.Errorf("spread %d %d", min, max)
	}
	if math.Abs(imb-1.6) > 1e-9 {
		t.Errorf("imbalance %v", imb)
	}
	mn, q1, med, q3, mx := h.Quartiles()
	if mn != 10 || mx != 40 || med != 25 {
		t.Errorf("quartiles %v %v %v %v %v", mn, q1, med, q3, mx)
	}
	if q1 >= med || q3 <= med {
		t.Errorf("quartile order %v %v %v", q1, med, q3)
	}
	empty := NewHistogram(nil)
	if _, _, imb := empty.Spread(); imb != 0 {
		t.Error("empty spread")
	}
	zeros := NewHistogram([]int64{0, 0})
	if _, _, imb := zeros.Spread(); imb != 0 {
		t.Error("zero-mean imbalance should be 0")
	}
}

func TestPhase(t *testing.T) {
	var bucket time.Duration
	Phase(&bucket, func() { time.Sleep(time.Millisecond) })
	if bucket < time.Millisecond/2 {
		t.Errorf("bucket %v", bucket)
	}
}
