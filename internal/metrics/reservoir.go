package metrics

import "sync"

// ReservoirSize bounds the samples a Reservoir keeps: enough for stable
// percentiles, small enough to summarize on every scrape.
const ReservoirSize = 4096

// Reservoir is a fixed-capacity sample reservoir of the most recent
// values, safe for concurrent use. The zero value is ready. The serving
// gateway records per-request latencies and batch sizes in one; the
// durability store records fsync latencies.
type Reservoir struct {
	mu   sync.Mutex
	buf  [ReservoirSize]float64
	n    int // total values ever pushed
	fill int // values currently valid (min(n, ReservoirSize))
}

// Push records one sample, displacing the oldest past capacity.
func (r *Reservoir) Push(v float64) {
	r.mu.Lock()
	r.buf[r.n%ReservoirSize] = v
	r.n++
	if r.fill < ReservoirSize {
		r.fill++
	}
	r.mu.Unlock()
}

// Count returns the total number of samples ever pushed.
func (r *Reservoir) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Summarize reduces the retained samples to summary statistics.
func (r *Reservoir) Summarize() Summary {
	r.mu.Lock()
	s := append([]float64(nil), r.buf[:r.fill]...)
	r.mu.Unlock()
	return Summarize(s)
}
