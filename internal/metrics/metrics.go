// Package metrics provides the measurement machinery of the evaluation:
// recall@k against ground truth (Table III, Figure 6), latency and
// timing statistics, time-breakdown accounting between computation and
// communication (Figure 5), and query-distribution histograms across
// processors (Figure 4b).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/topk"
)

// Recall returns |approx ∩ truth| / |truth| for one query, the paper's
// recall definition ("the ratio of the number of true k-nearest
// neighbors in the result of the approximate search to k").
func Recall(approx []topk.Result, truth []int32) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[int64]bool, len(truth))
	for _, id := range truth {
		set[int64(id)] = true
	}
	hit := 0
	for _, r := range approx {
		if set[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// MeanRecall averages Recall over a batch; rows of approx and truth
// correspond.
func MeanRecall(approx [][]topk.Result, truth [][]int32) float64 {
	if len(approx) != len(truth) {
		panic(fmt.Sprintf("metrics: %d approx rows vs %d truth rows", len(approx), len(truth)))
	}
	if len(approx) == 0 {
		return 0
	}
	var s float64
	for i := range approx {
		s += Recall(approx[i], truth[i])
	}
	return s / float64(len(approx))
}

// Summary holds order statistics of a sample (latencies, counts, ...).
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Std     float64
	P50, P90, P99 float64
}

// Summarize computes order statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sq float64
	for _, x := range s {
		sum += x
		sq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: mean,
		Std:  math.Sqrt(variance),
		P50:  quantile(s, 0.50),
		P90:  quantile(s, 0.90),
		P99:  quantile(s, 0.99),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g mean=%.4g±%.4g",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.Std)
}

// Breakdown splits a search run's wall time into the paper's Figure 5
// categories. Times are additive per category across ranks.
type Breakdown struct {
	Compute time.Duration // local HNSW/KD search work
	Comm    time.Duration // messaging + one-sided accumulation
	Route   time.Duration // master-side VP-tree routing
	Idle    time.Duration // waiting (load imbalance, drain)
	Total   time.Duration // end-to-end wall time
}

// CommFraction returns the fraction of total time spent communicating.
func (b Breakdown) CommFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Comm) / float64(b.Total)
}

// ComputeFraction returns the fraction of total time spent computing
// (including routing).
func (b Breakdown) ComputeFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Compute+b.Route) / float64(b.Total)
}

// Add accumulates another breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Compute: b.Compute + o.Compute,
		Comm:    b.Comm + o.Comm,
		Route:   b.Route + o.Route,
		Idle:    b.Idle + o.Idle,
		Total:   b.Total + o.Total,
	}
}

// Histogram is a fixed-bin histogram over non-negative integers, used to
// report the per-processor query-count distribution of Figure 4(b).
type Histogram struct {
	Counts []int64 // raw per-processor counts
}

// NewHistogram wraps per-processor counts.
func NewHistogram(counts []int64) *Histogram {
	return &Histogram{Counts: append([]int64(nil), counts...)}
}

// Spread describes the dispersion of the distribution: min, max, and the
// max/mean imbalance factor the load balancer tries to push toward 1.
func (h *Histogram) Spread() (min, max int64, imbalance float64) {
	if len(h.Counts) == 0 {
		return 0, 0, 0
	}
	min, max = h.Counts[0], h.Counts[0]
	var sum int64
	for _, c := range h.Counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(h.Counts))
	if mean == 0 {
		return min, max, 0
	}
	return min, max, float64(max) / mean
}

// Quartiles returns the five-number summary of the counts (the box plot
// of Figure 4b).
func (h *Histogram) Quartiles() (min, q1, med, q3, max float64) {
	if len(h.Counts) == 0 {
		return
	}
	s := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		s[i] = float64(c)
	}
	sort.Float64s(s)
	return s[0], quantile(s, 0.25), quantile(s, 0.5), quantile(s, 0.75), s[len(s)-1]
}

// Phase runs f and adds its duration to *bucket.
func Phase(bucket *time.Duration, f func()) {
	t0 := time.Now()
	f()
	*bucket += time.Since(t0)
}
