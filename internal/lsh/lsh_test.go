package lsh

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

func workload(t testing.TB, n int) (*vec.Dataset, *vec.Dataset, [][]int32) {
	t.Helper()
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: n, Dim: 24, Clusters: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.PerturbedQueries(g.Data, 40, 0.05, 2)
	truth := bruteforce.GroundTruth(g.Data, qs, 10, vec.L2)
	return g.Data, qs, truth
}

func meanRecall(t *testing.T, x *Index, qs *vec.Dataset, truth [][]int32) float64 {
	t.Helper()
	res := make([][]topk.Result, qs.Len())
	for i := 0; i < qs.Len(); i++ {
		rs, _, err := x.Search(qs.At(i), 10)
		if err != nil {
			t.Fatal(err)
		}
		res[i] = rs
	}
	return metrics.MeanRecall(res, truth)
}

func TestBuildAndSearch(t *testing.T) {
	ds, qs, truth := workload(t, 4000)
	x, err := Build(ds, Config{Tables: 12, Hashes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != ds.Len() {
		t.Fatalf("Len %d", x.Len())
	}
	if r := meanRecall(t, x, qs, truth); r < 0.4 {
		t.Errorf("LSH recall %v unexpectedly low", r)
	}
	if x.MemoryBytes() <= 0 {
		t.Error("no memory estimate")
	}
}

func TestRecallImprovesWithTables(t *testing.T) {
	ds, qs, truth := workload(t, 3000)
	few, err := Build(ds, Config{Tables: 2, Hashes: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Build(ds, Config{Tables: 16, Hashes: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rf := meanRecall(t, few, qs, truth)
	rm := meanRecall(t, many, qs, truth)
	if rm < rf {
		t.Errorf("more tables should not hurt recall: %v -> %v", rf, rm)
	}
}

func TestCandidatesAreExactlyRanked(t *testing.T) {
	// whatever candidates LSH surfaces, their order must be the true
	// distance order (exact re-ranking)
	ds, qs, _ := workload(t, 1000)
	x, _ := Build(ds, Config{Tables: 8, Hashes: 6, Seed: 3})
	for i := 0; i < 10; i++ {
		rs, st, _ := x.Search(qs.At(i), 10)
		for j := 1; j < len(rs); j++ {
			if rs[j].Dist < rs[j-1].Dist {
				t.Fatal("results out of order")
			}
		}
		if len(rs) > 0 && st.Candidates == 0 {
			t.Fatal("stats missing")
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(vec.NewDataset(4, 0), Config{}); err == nil {
		t.Error("want empty error")
	}
	ds, _, _ := workload(t, 100)
	x, _ := Build(ds, Config{})
	if _, _, err := x.Search(make([]float32, 3), 5); err == nil {
		t.Error("want dim error")
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	ds, _, _ := workload(t, 2000)
	x, _ := Build(ds, Config{Tables: 10, Hashes: 8, Seed: 4})
	hits := 0
	for i := 0; i < 50; i++ {
		row := i * 37 % ds.Len()
		rs, _, _ := x.Search(ds.At(row), 1)
		if len(rs) > 0 && rs[0].ID == ds.ID(row) {
			hits++
		}
	}
	// a point always hashes into its own bucket in every table
	if hits != 50 {
		t.Errorf("self-query hits %d/50", hits)
	}
}
