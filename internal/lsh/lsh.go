// Package lsh implements locality-sensitive hashing for Euclidean
// space — the classic approximate k-NN family the paper's related work
// opens with (Indyk & Motwani [9]). It serves as a second approximate
// baseline beside IVF-PQ: LSH answers from hash-bucket candidates plus
// exact re-ranking, trading memory (L tables) for recall.
//
// The scheme is p-stable E2LSH: each of L tables hashes a vector by K
// quantised Gaussian projections h(v) = floor((a·v + b)/W); the K values
// concatenate into the bucket key. Queries collect the union of their
// buckets across tables and re-rank candidates with true distances.
package lsh

import (
	"fmt"
	"math/rand"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Config sizes the hash structure.
type Config struct {
	// Tables is L, the number of independent hash tables (default 8).
	Tables int
	// Hashes is K, the projections concatenated per table (default 12).
	Hashes int
	// Width is the quantisation bucket width W; 0 auto-tunes to the mean
	// pairwise distance of a sample (the standard E2LSH heuristic).
	Width float64
	Seed  int64
}

func (c *Config) fill() {
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.Hashes <= 0 {
		c.Hashes = 12
	}
}

// Index is a built LSH index. It retains the dataset for re-ranking.
type Index struct {
	cfg Config
	ds  *vec.Dataset

	// projections: [Tables][Hashes] rows of dim floats + offsets
	proj   [][]float32 // flattened per table: Hashes*dim
	offset [][]float64
	tables []map[string][]int32 // bucket key -> row indices
}

// Stats reports the work of one search.
type Stats struct {
	Candidates int   // unique candidates re-ranked
	DistComps  int64 // exact distances computed
}

// Build hashes every row of ds (retained, not copied).
func Build(ds *vec.Dataset, cfg Config) (*Index, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("lsh: empty dataset")
	}
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	if cfg.Width <= 0 {
		cfg.Width = estimateWidth(ds, rng)
	}
	x := &Index{
		cfg:    cfg,
		ds:     ds,
		proj:   make([][]float32, cfg.Tables),
		offset: make([][]float64, cfg.Tables),
		tables: make([]map[string][]int32, cfg.Tables),
	}
	dim := ds.Dim
	for t := 0; t < cfg.Tables; t++ {
		x.proj[t] = make([]float32, cfg.Hashes*dim)
		x.offset[t] = make([]float64, cfg.Hashes)
		for h := 0; h < cfg.Hashes; h++ {
			for j := 0; j < dim; j++ {
				x.proj[t][h*dim+j] = float32(rng.NormFloat64())
			}
			x.offset[t][h] = rng.Float64() * cfg.Width
		}
		x.tables[t] = make(map[string][]int32)
	}
	key := make([]byte, 0, cfg.Hashes*3)
	for i := 0; i < ds.Len(); i++ {
		v := ds.At(i)
		for t := 0; t < cfg.Tables; t++ {
			key = x.bucketKey(key[:0], t, v)
			k := string(key)
			x.tables[t][k] = append(x.tables[t][k], int32(i))
		}
	}
	return x, nil
}

// estimateWidth samples pairwise distances and returns their mean.
func estimateWidth(ds *vec.Dataset, rng *rand.Rand) float64 {
	const samples = 200
	var sum float64
	for s := 0; s < samples; s++ {
		a := rng.Intn(ds.Len())
		b := rng.Intn(ds.Len())
		sum += float64(vec.L2Distance(ds.At(a), ds.At(b)))
	}
	w := sum / samples
	if w == 0 {
		w = 1
	}
	return w
}

// bucketKey appends the quantised hash tuple of v for table t to dst.
func (x *Index) bucketKey(dst []byte, t int, v []float32) []byte {
	dim := x.ds.Dim
	for h := 0; h < x.cfg.Hashes; h++ {
		dot := float64(vec.Dot(x.proj[t][h*dim:(h+1)*dim], v))
		q := int64((dot + x.offset[t][h]) / x.cfg.Width)
		if dot+x.offset[t][h] < 0 {
			q-- // floor for negatives
		}
		// varint-ish packing keeps keys short
		dst = append(dst, byte(q), byte(q>>8), byte(q>>16))
	}
	return dst
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return x.ds.Len() }

// Search returns the approximate k nearest neighbors of q: the union of
// q's buckets across tables, exactly re-ranked.
func (x *Index) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	if len(q) != x.ds.Dim {
		return nil, Stats{}, fmt.Errorf("lsh: query dim %d, index dim %d", len(q), x.ds.Dim)
	}
	var st Stats
	seen := make(map[int32]bool)
	col := topk.New(k)
	key := make([]byte, 0, x.cfg.Hashes*3)
	for t := 0; t < x.cfg.Tables; t++ {
		key = x.bucketKey(key[:0], t, q)
		for _, row := range x.tables[t][string(key)] {
			if seen[row] {
				continue
			}
			seen[row] = true
			st.Candidates++
			st.DistComps++
			col.Push(x.ds.ID(int(row)), vec.L2Distance(q, x.ds.At(int(row))))
		}
	}
	return col.Results(), st, nil
}

// MemoryBytes estimates table overhead (keys + row indices).
func (x *Index) MemoryBytes() int64 {
	var b int64
	for _, t := range x.tables {
		for k, rows := range t {
			b += int64(len(k)) + int64(len(rows))*4
		}
	}
	return b
}
