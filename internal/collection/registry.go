package collection

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/hnsw"
	"repro/internal/store"
)

// freeze applies the collection's frozen serving mode after the durable
// store is in place — the store snapshots plain HNSW graphs, so the
// flat layout is rebuilt on every open rather than persisted.
func freeze(d *store.Durable, cfg Config) error {
	if !cfg.Frozen {
		return nil
	}
	return d.Engine().Freeze(hnsw.FreezeOptions{SQ8: cfg.SQ8, RerankK: cfg.RerankK})
}

const configName = "collection.json"

// storeOptions specializes the registry-wide store options for one
// collection: a lexical collection's store must know the BM25
// configuration before it restores the text sidecar or replays text
// records, since tokenization happens at indexing time.
func storeOptions(base store.Options, cfg Config) store.Options {
	base.Lexical = cfg.lexicalConfig()
	return base
}

// Options tunes the registry.
type Options struct {
	// Store configures every collection's durability layer (WAL fsync
	// policy, compaction, fault-injection FS).
	Store store.Options
	// Logf, when non-nil, receives lifecycle progress.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Registry maps collection names to live collections under one root
// directory and owns their lifecycle.
type Registry struct {
	root string
	opts Options

	mu     sync.RWMutex
	cols   map[string]*Collection
	closed bool
}

// ValidateName checks a collection name: 1–64 characters from
// [A-Za-z0-9_.-], not starting with a dot or dash. The charset keeps
// names safe as directory names and URL path segments.
func ValidateName(name string) error {
	if len(name) == 0 || len(name) > 64 {
		return fmt.Errorf("%w: %q (need 1-64 chars)", ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		ok := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' ||
			b == '_' || b == '-' || b == '.'
		if !ok {
			return fmt.Errorf("%w: %q (allowed: letters, digits, _ - .)", ErrBadName, name)
		}
	}
	if name[0] == '.' || name[0] == '-' {
		return fmt.Errorf("%w: %q (must not start with . or -)", ErrBadName, name)
	}
	return nil
}

// Open loads every collection under root (creating root if needed): a
// subdirectory with a collection.json is a collection and is recovered
// through its durable store (snapshot + WAL replay, tags included).
func Open(root string, opts Options) (*Registry, error) {
	opts.fill()
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	r := &Registry{root: root, opts: opts, cols: make(map[string]*Collection)}
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		cfgPath := filepath.Join(root, name, configName)
		b, err := os.ReadFile(cfgPath)
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a collection directory
			}
			return nil, r.closeWith(fmt.Errorf("collection: reading %s: %w", cfgPath, err))
		}
		var cfg Config
		if err := json.Unmarshal(b, &cfg); err != nil {
			return nil, r.closeWith(fmt.Errorf("collection: parsing %s: %w", cfgPath, err))
		}
		if err := cfg.fill(); err != nil {
			return nil, r.closeWith(fmt.Errorf("collection: %s: %w", cfgPath, err))
		}
		d, err := store.Open(filepath.Join(root, name, "data"), storeOptions(opts.Store, cfg))
		if err != nil {
			return nil, r.closeWith(fmt.Errorf("collection: opening %q: %w", name, err))
		}
		if err := freeze(d, cfg); err != nil {
			d.Close()
			return nil, r.closeWith(fmt.Errorf("collection: freezing %q: %w", name, err))
		}
		r.cols[name] = &Collection{name: name, cfg: cfg, dur: d}
		opts.Logf("collection: opened %q (dim %d, metric %s, %d points)",
			name, cfg.Dim, cfg.Metric, d.Engine().Len())
	}
	return r, nil
}

// closeWith tears down already-opened collections after a failed Open.
func (r *Registry) closeWith(err error) error {
	for _, c := range r.cols {
		c.dur.Close()
	}
	return err
}

// Create makes a new empty collection: engine, store directory, and
// config file. The config write is tmp+rename, and it happens LAST —
// a crash mid-create leaves a directory without collection.json, which
// the next Open skips (and a re-Create of the same name replaces).
func (r *Registry) Create(name string, cfg Config) (*Collection, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrDraining
	}
	if _, ok := r.cols[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	dir := filepath.Join(r.root, name)
	if _, err := os.Stat(filepath.Join(dir, configName)); err == nil {
		return nil, fmt.Errorf("%w: %q (directory present on disk)", ErrExists, name)
	}
	ecfg, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	e, err := core.NewEmptyEngine(cfg.Dim, ecfg)
	if err != nil {
		return nil, err
	}
	if cfg.EfSearch > 0 {
		e.SetEfSearch(cfg.EfSearch)
	}
	dataDir := filepath.Join(dir, "data")
	// A half-created data dir from a crashed earlier Create would make
	// store.Create fail with "already holds a store"; clear it.
	os.RemoveAll(dataDir)
	d, err := store.Create(dataDir, e, storeOptions(r.opts.Store, cfg))
	if err != nil {
		return nil, err
	}
	if err := freeze(d, cfg); err != nil {
		d.Close()
		return nil, err
	}
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		d.Close()
		return nil, err
	}
	tmp := filepath.Join(dir, configName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		d.Close()
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, configName)); err != nil {
		d.Close()
		return nil, err
	}
	c := &Collection{name: name, cfg: cfg, dur: d}
	r.cols[name] = c
	r.opts.Logf("collection: created %q (dim %d, metric %s)", name, cfg.Dim, cfg.Metric)
	return c, nil
}

// Get resolves a name.
func (r *Registry) Get(name string) (*Collection, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrDraining
	}
	c, ok := r.cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return c, nil
}

// Names returns the registered collection names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.cols))
	for n := range r.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a collection: unregisters it (new requests get
// ErrUnknown immediately), drains in-flight ones, closes the store,
// and deletes the directory.
func (r *Registry) Drop(ctx context.Context, name string) error {
	r.mu.Lock()
	c, ok := r.cols[name]
	if ok {
		delete(r.cols, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if err := c.Drain(ctx); err != nil {
		return err
	}
	if err := c.dur.Close(); err != nil {
		return err
	}
	if err := os.RemoveAll(filepath.Join(r.root, name)); err != nil {
		return err
	}
	r.opts.Logf("collection: dropped %q", name)
	return nil
}

// Close drains and closes every collection. The registry is unusable
// afterwards.
func (r *Registry) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	cols := make([]*Collection, 0, len(r.cols))
	for _, c := range r.cols {
		cols = append(cols, c)
	}
	r.mu.Unlock()
	var first error
	for _, c := range cols {
		if err := c.Drain(ctx); err != nil && first == nil {
			first = err
		}
		if err := c.dur.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
