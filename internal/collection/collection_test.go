package collection

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(context.Background()) })
	return r
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "docs", "my-coll_2.v1", "A0"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".hidden", "-x", "a/b", "a b", "ü", string(long)} {
		if err := ValidateName(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", bad, err)
		}
	}
}

func TestLifecycle(t *testing.T) {
	root := t.TempDir()
	r, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Create("docs", Config{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("docs", Config{Dim: 8}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown get = %v, want ErrUnknown", err)
	}
	if _, err := r.Create("bad name", Config{Dim: 8}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name create = %v, want ErrBadName", err)
	}
	if _, err := r.Create("nodim", Config{}); err == nil {
		t.Fatal("created a collection without a dim")
	}

	rng := rand.New(rand.NewSource(1))
	for id := int64(0); id < 100; id++ {
		tags := map[string]string{"lang": []string{"en", "de"}[id%2]}
		if err := c.UpsertTagged(randVec(rng, 8), id, tags); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Upsert(randVec(rng, 4), 999); err == nil {
		t.Fatal("upsert with wrong dim succeeded")
	}
	rs, err := c.SearchFiltered(randVec(rng, 8), 5, filter.MustParse("lang=en"))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rs {
		if res.ID%2 != 0 {
			t.Fatalf("lang=en returned odd id %d", res.ID)
		}
	}

	// Reopen: config, vectors and tags must all come back.
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(context.Background())
	c2, err := r2.Get("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Config().Dim != 8 {
		t.Fatalf("reopened dim = %d", c2.Config().Dim)
	}
	if got := c2.Engine().Len(); got != 100 {
		t.Fatalf("reopened Len = %d, want 100", got)
	}
	if tags := c2.Engine().Tags(3); tags["lang"] != "de" {
		t.Fatalf("reopened tags(3) = %v", tags)
	}

	// Drop: gone from the registry and from disk.
	if err := r2.Drop(context.Background(), "docs"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Get("docs"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("dropped get = %v, want ErrUnknown", err)
	}
	r3, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close(context.Background())
	if n := r3.Names(); len(n) != 0 {
		t.Fatalf("dropped collection resurfaced on reopen: %v", n)
	}
}

func TestQuota(t *testing.T) {
	r := testRegistry(t)
	c, err := r.Create("small", Config{Dim: 4, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the quota by holding admissions open manually.
	if err := c.acquire(); err != nil {
		t.Fatal(err)
	}
	if err := c.acquire(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(make([]float32, 4), 3); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota search = %v, want ErrQuota", err)
	}
	c.release()
	if _, err := c.Search(make([]float32, 4), 3); err != nil {
		t.Fatalf("search after release = %v", err)
	}
	c.release()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after all released", got)
	}
}

func TestDrain(t *testing.T) {
	r := testRegistry(t)
	c, err := r.Create("d", Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A held admission stalls the drain until released.
	if err := c.acquire(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); err == nil {
		t.Fatal("drain returned with a request in flight")
	}
	c.release()
	if err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(make([]float32, 4), 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain search = %v, want ErrDraining", err)
	}
}

// TestTwoCollectionsConcurrentIsolation is the acceptance property: two
// collections with different dims and metrics serve concurrent mutating
// traffic with zero cross-collection leakage. Run under -race.
func TestTwoCollectionsConcurrentIsolation(t *testing.T) {
	r := testRegistry(t)
	ca, err := r.Create("alpha", Config{Dim: 8, Metric: "l2"})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := r.Create("beta", Config{Dim: 12, Metric: "cosine"})
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint ID ranges: any crossover in results is leakage.
	const aBase, bBase = 1000, 2_000_000

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	writer := func(c *Collection, base int64, dim int, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := int64(0); !stop.Load(); i++ {
			id := base + i
			tags := map[string]string{"col": c.Name(), "par": fmt.Sprintf("%d", i%2)}
			if err := c.UpsertTagged(randVec(rng, dim), id, tags); err != nil {
				fail(fmt.Errorf("%s upsert: %w", c.Name(), err))
				return
			}
			if i%7 == 0 {
				if err := c.Delete(base + rng.Int63n(i+1)); err != nil {
					fail(fmt.Errorf("%s delete: %w", c.Name(), err))
					return
				}
			}
		}
	}
	reader := func(c *Collection, lo, hi int64, dim int, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		f := filter.MustParse("par=0")
		for !stop.Load() {
			q := randVec(rng, dim)
			rs, err := c.Search(q, 5)
			if err != nil {
				fail(fmt.Errorf("%s search: %w", c.Name(), err))
				return
			}
			frs, err := c.SearchFiltered(q, 5, f)
			if err != nil {
				fail(fmt.Errorf("%s filtered search: %w", c.Name(), err))
				return
			}
			for _, res := range append(rs, frs...) {
				if res.ID < lo || res.ID >= hi {
					fail(fmt.Errorf("%s returned foreign id %d (want [%d,%d))", c.Name(), res.ID, lo, hi))
					return
				}
			}
			for _, res := range frs {
				if tags := c.Engine().Tags(res.ID); tags["col"] != c.Name() {
					fail(fmt.Errorf("%s: id %d carries tags %v from another collection", c.Name(), res.ID, tags))
					return
				}
			}
		}
	}

	wg.Add(6)
	go writer(ca, aBase, 8, 1)
	go writer(cb, bBase, 12, 2)
	go reader(ca, aBase, bBase, 8, 3)
	go reader(ca, aBase, bBase, 8, 4)
	go reader(cb, bBase, bBase*10, 12, 5)
	go reader(cb, bBase, bBase*10, 12, 6)

	deadline := time.After(400 * time.Millisecond)
loop:
	for {
		select {
		case err := <-errs:
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		case <-deadline:
			break loop
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if ca.Engine().Len() == 0 || cb.Engine().Len() == 0 {
		t.Fatal("writers inserted nothing; test proved nothing")
	}
}

func TestFrozenCollection(t *testing.T) {
	r := testRegistry(t)
	c, err := r.Create("fr", Config{Dim: 8, Frozen: true, SQ8: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for id := int64(0); id < 300; id++ {
		if err := c.UpsertTagged(randVec(rng, 8), id, map[string]string{"m": fmt.Sprintf("%d", id%3)}); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := c.SearchFiltered(randVec(rng, 8), 5, filter.MustParse("m=1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results from frozen collection")
	}
	for _, res := range rs {
		if res.ID%3 != 1 {
			t.Fatalf("m=1 returned id %d", res.ID)
		}
	}
}
