package collection

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestLexicalGate: text upserts and hybrid searches require
// "lexical": true at create time.
func TestLexicalGate(t *testing.T) {
	r := testRegistry(t)
	plain, err := r.Create("plain", Config{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 8)
	if err := plain.UpsertText(v, 1, "hello"); !errors.Is(err, ErrLexicalDisabled) {
		t.Fatalf("UpsertText on non-lexical collection = %v, want ErrLexicalDisabled", err)
	}
	if _, err := plain.SearchHybrid(v, "hello", 5, core.HybridOptions{}); !errors.Is(err, ErrLexicalDisabled) {
		t.Fatalf("SearchHybrid on non-lexical collection = %v, want ErrLexicalDisabled", err)
	}
	if _, ok := plain.Varz()["lexical"]; ok {
		t.Fatal("non-lexical collection exposes a lexical varz section")
	}
}

// TestLexicalLifecycle: upsert text, hybrid search both fusion modes,
// varz counters, durable reopen through the registry.
func TestLexicalLifecycle(t *testing.T) {
	root := t.TempDir()
	r, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Create("docs", Config{Dim: 8, Lexical: true, BM25K1: 1.5, Stopwords: []string{"the"}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for id := int64(0); id < 30; id++ {
		text := "common document body"
		if id == 17 {
			text = "the zebra sighting"
		}
		if err := c.UpsertText(randVec(rng, 8), id, text); err != nil {
			t.Fatal(err)
		}
	}
	// Stopwords from the config must apply.
	if got := c.Engine().SearchLexical("the", 5, nil); got != nil {
		t.Fatalf("configured stopword scored: %v", got)
	}
	q := randVec(rng, 8)
	rs, err := c.SearchHybrid(q, "zebra", 5, core.HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range rs {
		found = found || h.ID == 17
	}
	if !found {
		t.Fatalf("keyword doc missing from hybrid results: %+v", rs)
	}
	if _, err := c.SearchHybrid(q, "zebra", 5, core.HybridOptions{Fusion: core.FusionWeighted}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SearchHybrid(randVec(rng, 3), "zebra", 5, core.HybridOptions{}); err == nil {
		t.Fatal("dim-mismatched hybrid query accepted")
	}

	lz, ok := c.Varz()["lexical"].(map[string]any)
	if !ok {
		t.Fatal("lexical collection missing lexical varz section")
	}
	if lz["docs"] != 30 {
		t.Fatalf("varz docs = %v, want 30", lz["docs"])
	}
	if lz["hybrid_rrf"] != int64(1) || lz["hybrid_weighted"] != int64(1) {
		t.Fatalf("hybrid counters = %v / %v, want 1 / 1", lz["hybrid_rrf"], lz["hybrid_weighted"])
	}
	if lz["k1"] != 1.5 {
		t.Fatalf("varz k1 = %v, want 1.5", lz["k1"])
	}

	want, err := c.SearchHybrid(q, "zebra common", 5, core.HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reopen: config (k1, stopwords) and the whole index must come back.
	r2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(context.Background())
	c2, err := r2.Get("docs")
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Config().Lexical || c2.Config().BM25K1 != 1.5 {
		t.Fatalf("lexical config lost on reopen: %+v", c2.Config())
	}
	if got := c2.Engine().SearchLexical("the", 5, nil); got != nil {
		t.Fatalf("stopword scored after reopen: %v", got)
	}
	got, err := c2.SearchHybrid(q, "zebra common", 5, core.HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("hybrid results changed across reopen: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("hybrid result %d changed across reopen: %+v vs %+v", i, got[i], want[i])
		}
	}
}
