// Package collection manages named, isolated vector collections inside
// one server process — the multi-tenant layer over the single-engine
// core. Each collection owns a full vertical slice: a core.Engine with
// its own dimensionality, metric, and serving mode (scalar or frozen /
// SQ8), a write-ahead log + snapshot store for durability, a tag store
// for filtered search, and an admission quota bounding its in-flight
// requests so one tenant cannot starve the rest. A Registry maps names
// to collections and owns the create / open / drop lifecycle under a
// single root directory:
//
//	<root>/<name>/collection.json   — the collection's Config
//	<root>/<name>/data/             — its durable store (WAL, snapshots)
//
// Engines never share state across collections: vectors, tags, caches
// and stores are per-collection by construction, so cross-tenant
// leakage is structurally impossible rather than filtered after the
// fact.
package collection

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/lexical"
	"repro/internal/store"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Typed lifecycle and admission errors; the gateway maps each to its
// own HTTP status (404 / 409 / 429 / 503 / 400).
var (
	// ErrUnknown reports a name the registry does not hold.
	ErrUnknown = errors.New("collection: unknown collection")
	// ErrExists reports a Create of a name already in use.
	ErrExists = errors.New("collection: collection already exists")
	// ErrBadName reports an invalid collection name.
	ErrBadName = errors.New("collection: invalid name")
	// ErrQuota reports an admission rejection: the collection is at its
	// MaxInflight concurrent requests.
	ErrQuota = errors.New("collection: per-collection quota exceeded")
	// ErrDraining reports a request against a collection being dropped
	// or a registry being closed.
	ErrDraining = errors.New("collection: draining")
	// ErrLexicalDisabled reports a text upsert or hybrid search against a
	// collection created without "lexical": true. The gate is at create
	// time because BM25 parameters and stopwords are part of the
	// collection's durable contract — they shape tokenization, which
	// shapes what the WAL's text records replay into.
	ErrLexicalDisabled = errors.New("collection: lexical indexing disabled")
)

// Config declares one collection. It is written to collection.json at
// create time and reread on open; the zero value of every field except
// Dim is usable.
type Config struct {
	// Dim is the vector dimensionality (required, immutable).
	Dim int `json:"dim"`
	// Metric names the distance metric: "L2" (default), "sqL2",
	// "cosine", "ip" (vec.ParseMetric spellings).
	Metric string `json:"metric,omitempty"`
	// Partitions is the target partition count once the collection is
	// rebuilt over real data; a freshly created collection always starts
	// with one (see core.NewEmptyEngine).
	Partitions int `json:"partitions,omitempty"`
	// Frozen serves from the flat frozen layout; SQ8 adds quantized
	// candidate generation with RerankK re-ranking (see core.Config).
	Frozen  bool `json:"frozen,omitempty"`
	SQ8     bool `json:"sq8,omitempty"`
	RerankK int  `json:"rerank_k,omitempty"`
	// EfSearch overrides the HNSW search beam width (0 = library default).
	EfSearch int `json:"ef_search,omitempty"`
	// MaxInflight bounds concurrently admitted requests (searches and
	// mutations) for this collection; 0 means unlimited. This is the
	// per-tenant quota layered on top of the gateway's global bounded
	// queue: the queue protects the process, the quota protects tenants
	// from each other.
	MaxInflight int `json:"max_inflight,omitempty"`
	// Seed makes index construction reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Lexical opts the collection into hybrid retrieval: text upserts are
	// BM25-indexed and persisted, and /hybrid searches are served. Off by
	// default because every text upsert pays tokenization and the text
	// sidecar grows checkpoints.
	Lexical bool `json:"lexical,omitempty"`
	// BM25K1 / BM25B tune BM25 term-frequency saturation and length
	// normalization (0 selects the standard 1.2 / 0.75).
	BM25K1 float64 `json:"bm25_k1,omitempty"`
	BM25B  float64 `json:"bm25_b,omitempty"`
	// Stopwords are dropped at tokenization time; they never enter the
	// index and never score. Immutable after create (they are part of the
	// durability contract). Use lexical.DefaultStopwords for English.
	Stopwords []string `json:"stopwords,omitempty"`
}

// lexicalConfig maps the collection's BM25 settings onto the index
// config, or nil when the collection is not lexical.
func (c Config) lexicalConfig() *lexical.Config {
	if !c.Lexical {
		return nil
	}
	return &lexical.Config{K1: c.BM25K1, B: c.BM25B, Stopwords: c.Stopwords}
}

func (c *Config) fill() error {
	if c.Dim <= 0 {
		return fmt.Errorf("collection: config needs a positive dim, got %d", c.Dim)
	}
	if c.Metric == "" {
		c.Metric = vec.L2.String()
	}
	m, err := vec.ParseMetric(strings.ToLower(c.Metric))
	if err != nil {
		return fmt.Errorf("collection: %w", err)
	}
	c.Metric = m.String() // canonical spelling in collection.json
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SQ8 && !c.Frozen {
		return fmt.Errorf("collection: sq8 requires frozen")
	}
	return nil
}

// engineConfig maps the collection Config onto core.Config. Frozen/SQ8
// are intentionally NOT set here: the durable store wraps the plain
// HNSW engine and the registry freezes it afterwards, matching the
// store-then-freeze order the rest of the system uses.
func (c Config) engineConfig() (core.Config, error) {
	m, err := vec.ParseMetric(strings.ToLower(c.Metric))
	if err != nil {
		return core.Config{}, err
	}
	ec := core.DefaultConfig(c.Partitions)
	ec.Metric = m
	ec.RerankK = c.RerankK
	ec.Seed = c.Seed
	return ec, nil
}

// Collection is one live tenant: engine + durable store + quota.
type Collection struct {
	name string
	cfg  Config
	dur  *store.Durable

	inflight atomic.Int64
	draining atomic.Bool

	// Hybrid search counters by fusion mode, surfaced in Varz.
	hybridRRF      atomic.Int64
	hybridWeighted atomic.Int64
}

// Name returns the collection's registry name.
func (c *Collection) Name() string { return c.name }

// Config returns the collection's declared configuration.
func (c *Collection) Config() Config { return c.cfg }

// Engine exposes the underlying engine for read-only introspection
// (varz, benchmarks). Mutations must go through the Collection so they
// hit the WAL and the admission quota.
func (c *Collection) Engine() *core.Engine { return c.dur.Engine() }

// Store exposes the durability layer (stats, checkpoint tooling).
func (c *Collection) Store() *store.Durable { return c.dur }

// Inflight reports the currently admitted request count.
func (c *Collection) Inflight() int64 { return c.inflight.Load() }

// acquire admits one request against the quota, release undoes it.
// The post-increment draining recheck closes the race with Drain: a
// request that slips past the flag before it is set either lands its
// increment before Drain's poll (and is waited for) or sees the flag.
func (c *Collection) acquire() error {
	if c.draining.Load() {
		return ErrDraining
	}
	n := c.inflight.Add(1)
	if max := int64(c.cfg.MaxInflight); max > 0 && n > max {
		c.inflight.Add(-1)
		return ErrQuota
	}
	if c.draining.Load() {
		c.inflight.Add(-1)
		return ErrDraining
	}
	return nil
}

func (c *Collection) release() { c.inflight.Add(-1) }

// Acquire reserves one admission slot against the quota without doing
// any work — for embedders coordinating external operations with the
// collection's admission control. Every successful Acquire must be
// paired with a Release.
func (c *Collection) Acquire() error { return c.acquire() }

// Release returns a slot taken by Acquire.
func (c *Collection) Release() { c.release() }

// checkDim rejects a vector of the wrong dimensionality with an error
// the gateway maps to 400.
func (c *Collection) checkDim(v []float32) error {
	if len(v) != c.cfg.Dim {
		return fmt.Errorf("collection %s: vector dim %d, collection dim %d", c.name, len(v), c.cfg.Dim)
	}
	return nil
}

// Search answers the approximate k nearest neighbors of q.
func (c *Collection) Search(q []float32, k int) ([]topk.Result, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	return c.Engine().Search(q, k)
}

// SearchFiltered answers with the filter pushed into the traversal.
func (c *Collection) SearchFiltered(q []float32, k int, f *filter.Expr) ([]topk.Result, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	return c.Engine().SearchFiltered(q, k, f)
}

// SearchBatch answers a query batch (one admission for the whole batch:
// the quota bounds concurrent requests, not queries).
func (c *Collection) SearchBatch(ctx context.Context, queries *vec.Dataset, k, threads int) ([][]topk.Result, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	return c.Engine().SearchBatchContext(ctx, queries, k, threads)
}

// SearchBatchFiltered is SearchBatch with a filter pushed down.
func (c *Collection) SearchBatchFiltered(ctx context.Context, queries *vec.Dataset, k int, f *filter.Expr, threads int) ([][]topk.Result, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	return c.Engine().SearchBatchFiltered(ctx, queries, k, f, threads)
}

// Upsert durably inserts a vector.
func (c *Collection) Upsert(v []float32, id int64) error {
	if err := c.checkDim(v); err != nil {
		return err
	}
	if err := c.acquire(); err != nil {
		return err
	}
	defer c.release()
	return c.dur.Upsert(v, id)
}

// UpsertTagged durably inserts a vector with its metadata tags.
func (c *Collection) UpsertTagged(v []float32, id int64, tags map[string]string) error {
	if err := c.checkDim(v); err != nil {
		return err
	}
	if err := c.acquire(); err != nil {
		return err
	}
	defer c.release()
	return c.dur.UpsertTagged(v, id, tags)
}

// UpsertText durably inserts a vector together with document text for
// hybrid retrieval. The collection must have been created with
// "lexical": true.
func (c *Collection) UpsertText(v []float32, id int64, text string) error {
	if !c.cfg.Lexical {
		return fmt.Errorf("%w: %q", ErrLexicalDisabled, c.name)
	}
	if err := c.checkDim(v); err != nil {
		return err
	}
	if err := c.acquire(); err != nil {
		return err
	}
	defer c.release()
	return c.dur.UpsertText(v, id, text)
}

// SearchHybrid answers a hybrid (vector + BM25 text) query, fusing the
// two legs per opts. The collection must be lexical.
func (c *Collection) SearchHybrid(q []float32, text string, k int, opts core.HybridOptions) ([]core.HybridResult, error) {
	if !c.cfg.Lexical {
		return nil, fmt.Errorf("%w: %q", ErrLexicalDisabled, c.name)
	}
	if len(q) != 0 {
		if err := c.checkDim(q); err != nil {
			return nil, err
		}
	}
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	rs, err := c.Engine().SearchHybrid(q, text, k, opts)
	if err == nil {
		if opts.Fusion == core.FusionWeighted {
			c.hybridWeighted.Add(1)
		} else {
			c.hybridRRF.Add(1)
		}
	}
	return rs, err
}

// Delete durably tombstones an ID.
func (c *Collection) Delete(id int64) error {
	if err := c.acquire(); err != nil {
		return err
	}
	defer c.release()
	return c.dur.Delete(id)
}

// Checkpoint snapshots the collection at its current watermark.
func (c *Collection) Checkpoint() error { return c.dur.Checkpoint() }

// Drain stops admitting requests and waits (bounded by ctx) for the
// in-flight ones to finish. It is idempotent and leaves the collection
// permanently draining; Drop and registry Close call it.
func (c *Collection) Drain(ctx context.Context) error {
	c.draining.Store(true)
	for c.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("collection %s: drain: %w (%d in flight)", c.name, ctx.Err(), c.inflight.Load())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Varz returns the collection's observability section for /varz.
func (c *Collection) Varz() map[string]any {
	e := c.Engine()
	m := map[string]any{
		"dim":        c.cfg.Dim,
		"metric":     c.cfg.Metric,
		"points":     e.Len(),
		"partitions": e.Partitions(),
		"inserted":   e.Inserted(),
		"tombstones": e.Tombstones(),
		"tagged":     e.TagCount(),
		"inflight":   c.inflight.Load(),
		"draining":   c.draining.Load(),
	}
	if c.cfg.MaxInflight > 0 {
		m["max_inflight"] = c.cfg.MaxInflight
	}
	if c.cfg.Lexical {
		ls := e.LexicalStats()
		m["lexical"] = map[string]any{
			"docs":            ls.Docs,
			"terms":           ls.Terms,
			"postings_bytes":  ls.PostingsBytes,
			"avg_doc_len":     ls.AvgDocLen,
			"k1":              ls.K1,
			"b":               ls.B,
			"hybrid_rrf":      c.hybridRRF.Load(),
			"hybrid_weighted": c.hybridWeighted.Load(),
		}
	}
	if fi, ok := e.FrozenInfo(); ok {
		m["frozen"] = map[string]any{
			"points": fi.FrozenLen, "tail_points": fi.TailLen, "sq8": fi.Quantized,
		}
	}
	m["ingest"] = c.dur.Stats()
	return m
}
