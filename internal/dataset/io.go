package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/vec"
)

// TEXMEX corpus file formats (http://corpus-texmex.irisa.fr/), used by
// ANN_SIFT1B, ANN_GIST1M and DEEP1B:
//
//	fvecs: per vector, int32 dim then dim float32 components
//	bvecs: per vector, int32 dim then dim uint8 components
//	ivecs: per vector, int32 dim then dim int32 components (ground truth)
//
// Readers accept a limit (<=0 means all) so billion-scale files can be
// prefix-loaded.

// ReadFvecs parses an fvecs stream.
func ReadFvecs(r io.Reader, limit int) (*vec.Dataset, error) {
	return readVecs(r, limit, func(br io.Reader, dim int, out []float32) error {
		buf := make([]byte, 4*dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		for j := 0; j < dim; j++ {
			out[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		return nil
	})
}

// ReadBvecs parses a bvecs stream (byte components widened to float32).
func ReadBvecs(r io.Reader, limit int) (*vec.Dataset, error) {
	return readVecs(r, limit, func(br io.Reader, dim int, out []float32) error {
		buf := make([]byte, dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		for j := 0; j < dim; j++ {
			out[j] = float32(buf[j])
		}
		return nil
	})
}

func readVecs(r io.Reader, limit int, readRow func(io.Reader, int, []float32) error) (*vec.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var ds *vec.Dataset
	var row []float32
	hdr := make([]byte, 4)
	for n := 0; limit <= 0 || n < limit; n++ {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		dim := int(int32(binary.LittleEndian.Uint32(hdr)))
		if dim <= 0 || dim > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible vector dim %d at row %d", dim, n)
		}
		if ds == nil {
			ds = vec.NewDataset(dim, 1024)
			row = make([]float32, dim)
		} else if dim != ds.Dim {
			return nil, fmt.Errorf("dataset: dim changed from %d to %d at row %d", ds.Dim, dim, n)
		}
		if err := readRow(br, dim, row); err != nil {
			return nil, fmt.Errorf("dataset: truncated row %d: %w", n, err)
		}
		ds.Append(row, int64(n))
	}
	if ds == nil {
		return nil, fmt.Errorf("dataset: empty vecs stream")
	}
	return ds, nil
}

// WriteFvecs writes ds in fvecs format.
func WriteFvecs(w io.Writer, ds *vec.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	buf := make([]byte, 4+4*ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		binary.LittleEndian.PutUint32(buf, uint32(ds.Dim))
		row := ds.At(i)
		for j, x := range row {
			binary.LittleEndian.PutUint32(buf[4+4*j:], math.Float32bits(x))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIvecs parses an ivecs stream of k-NN ground truth: one row of
// neighbor IDs per query.
func ReadIvecs(r io.Reader, limit int) ([][]int32, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var out [][]int32
	hdr := make([]byte, 4)
	for n := 0; limit <= 0 || n < limit; n++ {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		k := int(int32(binary.LittleEndian.Uint32(hdr)))
		if k <= 0 || k > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible row length %d", k)
		}
		buf := make([]byte, 4*k)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated ivecs row %d: %w", n, err)
		}
		row := make([]int32, k)
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteIvecs writes ground-truth rows in ivecs format.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, row := range rows {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(row)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		buf := make([]byte, 4*len(row))
		for j, x := range row {
			binary.LittleEndian.PutUint32(buf[4*j:], uint32(x))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string, limit int) (*vec.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, limit)
}

// SaveFvecsFile writes ds to an fvecs file.
func SaveFvecsFile(path string, ds *vec.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFvecs(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
