// Package dataset provides the workloads of the paper's evaluation
// (Table I): synthetic multidimensional cluster data in the style of
// MDCGen (used for SYN_1M and SYN_10M), generators that mimic the
// statistical shape of the SIFT/DEEP/GIST descriptor datasets (standing
// in for ANN_SIFT1B, DEEP1B and ANN_GIST1M, which are multi-hundred-GB
// downloads), query-set generation, and readers/writers for the TEXMEX
// fvecs/bvecs/ivecs formats so the real datasets can be dropped in.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/vec"
)

// Distribution selects the intra-cluster point distribution, following
// MDCGen's Gaussian and uniform modes (the paper uses both).
type Distribution int

const (
	// Gaussian scatters points normally around the centroid.
	Gaussian Distribution = iota
	// Uniform scatters points uniformly in a box around the centroid.
	Uniform
)

// ClusterConfig describes an MDCGen-style synthetic dataset: k clusters
// with configurable spread plus background outliers. The paper's SYN_1M
// (1M x 512) and SYN_10M (10M x 256) use 10 clusters with 5000 and 50000
// outliers respectively and defaults elsewhere.
type ClusterConfig struct {
	N            int          // total points including outliers
	Dim          int          // dimensionality
	Clusters     int          // number of clusters
	Outliers     int          // uniform background points
	Distribution Distribution // intra-cluster distribution
	// Spread is the cluster standard deviation (Gaussian) or half-width
	// (Uniform) relative to the unit domain; 0 means 0.03.
	Spread float64
	// Domain is the coordinate range [0, Domain] for centroids; 0 means 100.
	Domain float64
	Seed   int64
}

// SYN1MConfig mirrors the paper's SYN_1M dataset, scaled by factor
// (factor 1.0 = the full 1M x 512; experiments on one machine typically
// use factor <= 0.2).
func SYN1MConfig(factor float64, seed int64) ClusterConfig {
	return ClusterConfig{
		N: scaled(1_000_000, factor), Dim: 512, Clusters: 10,
		Outliers: scaled(5000, factor), Distribution: Gaussian, Seed: seed,
	}
}

// SYN10MConfig mirrors the paper's SYN_10M dataset, scaled by factor.
func SYN10MConfig(factor float64, seed int64) ClusterConfig {
	return ClusterConfig{
		N: scaled(10_000_000, factor), Dim: 256, Clusters: 10,
		Outliers: scaled(50_000, factor), Distribution: Uniform, Seed: seed,
	}
}

func scaled(n int, factor float64) int {
	s := int(float64(n) * factor)
	if s < 1 {
		s = 1
	}
	return s
}

// Clustered holds a generated cluster dataset with its ground structure.
type Clustered struct {
	Data      *vec.Dataset
	Centroids *vec.Dataset // Clusters rows
	Labels    []int        // cluster of each row; -1 for outliers
	cfg       ClusterConfig
}

// GenerateClusters produces an MDCGen-style dataset.
func GenerateClusters(cfg ClusterConfig) (*Clustered, error) {
	if cfg.N <= 0 || cfg.Dim <= 0 || cfg.Clusters <= 0 {
		return nil, fmt.Errorf("dataset: bad config %+v", cfg)
	}
	if cfg.Outliers < 0 || cfg.Outliers > cfg.N {
		return nil, fmt.Errorf("dataset: outliers %d out of range for n=%d", cfg.Outliers, cfg.N)
	}
	if cfg.Spread == 0 {
		cfg.Spread = 0.03
	}
	if cfg.Domain == 0 {
		cfg.Domain = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := vec.NewDataset(cfg.Dim, cfg.Clusters)
	cv := make([]float32, cfg.Dim)
	for c := 0; c < cfg.Clusters; c++ {
		for j := range cv {
			cv[j] = float32(rng.Float64() * cfg.Domain)
		}
		centroids.Append(cv, int64(c))
	}

	ds := vec.NewDataset(cfg.Dim, cfg.N)
	labels := make([]int, 0, cfg.N)
	sigma := cfg.Spread * cfg.Domain
	v := make([]float32, cfg.Dim)
	clustered := cfg.N - cfg.Outliers
	for i := 0; i < clustered; i++ {
		c := i % cfg.Clusters
		cent := centroids.At(c)
		for j := range v {
			switch cfg.Distribution {
			case Gaussian:
				v[j] = cent[j] + float32(rng.NormFloat64()*sigma)
			default:
				v[j] = cent[j] + float32((rng.Float64()*2-1)*sigma)
			}
		}
		ds.Append(v, int64(ds.Len()))
		labels = append(labels, c)
	}
	for i := 0; i < cfg.Outliers; i++ {
		for j := range v {
			v[j] = float32(rng.Float64() * cfg.Domain)
		}
		ds.Append(v, int64(ds.Len()))
		labels = append(labels, -1)
	}
	return &Clustered{Data: ds, Centroids: centroids, Labels: labels, cfg: cfg}, nil
}

// QueryConfig controls synthetic query generation. The paper draws query
// sets "using uniform distribution in a single cluster with a
// compactness factor of 0.01".
type QueryConfig struct {
	N           int     // number of queries
	Cluster     int     // cluster to draw from; -1 picks one at random
	Compactness float64 // query spread relative to the domain; 0 means 0.01
	Seed        int64
}

// Queries generates a query set localized to one cluster of g.
func (g *Clustered) Queries(cfg QueryConfig) (*vec.Dataset, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: need positive query count")
	}
	if cfg.Compactness == 0 {
		cfg.Compactness = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	c := cfg.Cluster
	if c < 0 {
		c = rng.Intn(g.Centroids.Len())
	}
	if c >= g.Centroids.Len() {
		return nil, fmt.Errorf("dataset: cluster %d out of range", c)
	}
	cent := g.Centroids.At(c)
	half := cfg.Compactness * g.cfg.Domain
	qs := vec.NewDataset(g.Data.Dim, cfg.N)
	v := make([]float32, g.Data.Dim)
	for i := 0; i < cfg.N; i++ {
		for j := range v {
			v[j] = cent[j] + float32((rng.Float64()*2-1)*half)
		}
		qs.Append(v, int64(i))
	}
	return qs, nil
}

// UniformQueries draws queries uniformly over the whole domain — an
// un-skewed query load used as the balanced control in the load
// balancing experiments.
func (g *Clustered) UniformQueries(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed + 2000))
	qs := vec.NewDataset(g.Data.Dim, n)
	v := make([]float32, g.Data.Dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.Float64() * g.cfg.Domain)
		}
		qs.Append(v, int64(i))
	}
	return qs
}

// PerturbedQueries draws queries by perturbing random dataset points,
// the standard protocol when a dataset ships without a query file.
func PerturbedQueries(ds *vec.Dataset, n int, scale float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed + 3000))
	qs := vec.NewDataset(ds.Dim, n)
	v := make([]float32, ds.Dim)
	for i := 0; i < n; i++ {
		base := ds.At(rng.Intn(ds.Len()))
		for j := range v {
			v[j] = base[j] + float32(rng.NormFloat64()*scale)
		}
		qs.Append(v, int64(i))
	}
	return qs
}
