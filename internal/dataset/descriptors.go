package dataset

import (
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Descriptor-shaped synthetic generators. The paper evaluates on
// ANN_SIFT1B (1B x 128 SIFT descriptors), DEEP1B (1B x 96 CNN
// descriptors) and ANN_GIST1M (1M x 960 GIST descriptors). Those corpora
// are not redistributable here, so these generators reproduce the
// statistical properties that matter for the algorithms under test:
//
//   - SIFT: non-negative, heavy-tailed, integer-quantised 128-d gradient
//     histograms with strong cluster structure (local image patches
//     repeat across images);
//   - DEEP: L2-normalised 96-d CNN embeddings — points on the unit
//     sphere with directional clusters;
//   - GIST: 960-d globally smooth energy histograms in [0,1] with heavy
//     inter-dimension correlation, which is what makes GIST the classic
//     "hard for KD-trees" workload.
//
// Cluster structure + dimensionality drive both VP routing selectivity
// and HNSW recall, which is what the experiments measure; see DESIGN.md
// for the substitution argument.

// DescriptorConfig sizes a descriptor-like dataset.
type DescriptorConfig struct {
	N    int
	Seed int64
	// Clusters is the number of latent patch/semantic clusters
	// (default max(16, N/2000)).
	Clusters int
}

func (c *DescriptorConfig) fill() {
	if c.Clusters == 0 {
		c.Clusters = c.N / 2000
		if c.Clusters < 16 {
			c.Clusters = 16
		}
	}
}

// SIFTLike generates N 128-dimensional SIFT-shaped descriptors.
func SIFTLike(cfg DescriptorConfig) *vec.Dataset {
	cfg.fill()
	const dim = 128
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := gammaCenters(rng, cfg.Clusters, dim, 40)
	ds := vec.NewDataset(dim, cfg.N)
	v := make([]float32, dim)
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		for j := range v {
			x := float64(c[j]) * math.Exp(rng.NormFloat64()*0.45)
			if x > 218 { // SIFT descriptors clip at ~218 after normalisation
				x = 218
			}
			v[j] = float32(math.Round(x))
		}
		ds.Append(v, int64(i))
	}
	return ds
}

// DEEPLike generates N 96-dimensional unit-norm CNN-shaped embeddings.
// CNN descriptor spaces are strongly clustered (semantically similar
// images embed tightly), so the per-cluster spread must stay well below
// the inter-center separation on the sphere (~sqrt(2) for random
// directions) — otherwise the data degenerates to uniform-on-sphere and
// loses the locality every ANN index (including the paper's) exploits.
func DEEPLike(cfg DescriptorConfig) *vec.Dataset {
	if cfg.Clusters == 0 {
		cfg.Clusters = cfg.N / 500
		if cfg.Clusters < 64 {
			cfg.Clusters = 64
		}
	}
	cfg.fill()
	const dim = 96
	rng := rand.New(rand.NewSource(cfg.Seed))
	// directional cluster centers on the sphere
	centers := make([][]float32, cfg.Clusters)
	for c := range centers {
		ctr := make([]float32, dim)
		for j := range ctr {
			ctr[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(ctr)
		centers[c] = ctr
	}
	ds := vec.NewDataset(dim, cfg.N)
	v := make([]float32, dim)
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.07)
		}
		vec.Normalize(v)
		ds.Append(v, int64(i))
	}
	return ds
}

// GISTLike generates N 960-dimensional GIST-shaped descriptors: smooth
// along the dimension axis (neighbouring orientation/scale cells
// correlate) and bounded in [0,1].
func GISTLike(cfg DescriptorConfig) *vec.Dataset {
	cfg.fill()
	const dim = 960
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([][]float32, cfg.Clusters)
	for c := range centers {
		ctr := make([]float32, dim)
		// random walk smoothed: heavy correlation between adjacent dims
		x := rng.Float64() * 0.5
		for j := range ctr {
			x += rng.NormFloat64() * 0.03
			if x < 0 {
				x = -x
			}
			if x > 1 {
				x = 2 - x
			}
			ctr[j] = float32(x)
		}
		centers[c] = ctr
	}
	ds := vec.NewDataset(dim, cfg.N)
	v := make([]float32, dim)
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		for j := range v {
			x := float64(c[j]) + rng.NormFloat64()*0.02
			if x < 0 {
				x = 0
			}
			if x > 1 {
				x = 1
			}
			v[j] = float32(x)
		}
		ds.Append(v, int64(i))
	}
	return ds
}

// gammaCenters draws non-negative heavy-tailed cluster centers
// (exponential mixture approximating SIFT's gradient-energy histogram).
func gammaCenters(rng *rand.Rand, k, dim int, mean float64) [][]float32 {
	out := make([][]float32, k)
	for c := range out {
		ctr := make([]float32, dim)
		for j := range ctr {
			// exponential with a few dominant bins, like real SIFT
			x := rng.ExpFloat64() * mean
			if rng.Float64() < 0.1 {
				x *= 2.5
			}
			ctr[j] = float32(x)
		}
		out[c] = ctr
	}
	return out
}

// Named builds one of the paper's datasets by name ("sift", "deep",
// "gist", "syn1m", "syn10m") at the given point count. For the synthetic
// cluster datasets the count overrides the configured N.
func Named(name string, n int, seed int64) (*vec.Dataset, error) {
	switch name {
	case "sift":
		return SIFTLike(DescriptorConfig{N: n, Seed: seed}), nil
	case "deep":
		return DEEPLike(DescriptorConfig{N: n, Seed: seed}), nil
	case "gist":
		return GISTLike(DescriptorConfig{N: n, Seed: seed}), nil
	case "syn1m":
		cfg := SYN1MConfig(1, seed)
		cfg.N = n
		cfg.Outliers = n / 200
		g, err := GenerateClusters(cfg)
		if err != nil {
			return nil, err
		}
		return g.Data, nil
	case "syn10m":
		cfg := SYN10MConfig(1, seed)
		cfg.N = n
		cfg.Outliers = n / 200
		g, err := GenerateClusters(cfg)
		if err != nil {
			return nil, err
		}
		return g.Data, nil
	}
	return nil, errUnknown(name)
}

type errUnknown string

func (e errUnknown) Error() string { return "dataset: unknown dataset " + string(e) }
