package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/vec"
)

func TestGenerateClustersShape(t *testing.T) {
	g, err := GenerateClusters(ClusterConfig{N: 1000, Dim: 16, Clusters: 10, Outliers: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Data.Len() != 1000 || g.Data.Dim != 16 {
		t.Fatalf("shape %d x %d", g.Data.Len(), g.Data.Dim)
	}
	if g.Centroids.Len() != 10 {
		t.Fatalf("centroids %d", g.Centroids.Len())
	}
	outliers := 0
	for _, l := range g.Labels {
		if l == -1 {
			outliers++
		} else if l < 0 || l >= 10 {
			t.Fatalf("bad label %d", l)
		}
	}
	if outliers != 50 {
		t.Errorf("outliers = %d", outliers)
	}
}

func TestGenerateClustersClusteredness(t *testing.T) {
	// points must be far closer to their own centroid than to others
	g, _ := GenerateClusters(ClusterConfig{N: 500, Dim: 8, Clusters: 5, Seed: 2})
	misses := 0
	for i := 0; i < g.Data.Len(); i++ {
		c := g.Labels[i]
		if c == -1 {
			continue
		}
		own := vec.L2Distance(g.Data.At(i), g.Centroids.At(c))
		for o := 0; o < 5; o++ {
			if o == c {
				continue
			}
			if vec.L2Distance(g.Data.At(i), g.Centroids.At(o)) < own {
				misses++
				break
			}
		}
	}
	if misses > g.Data.Len()/20 {
		t.Errorf("%d/%d points closer to a foreign centroid", misses, g.Data.Len())
	}
}

func TestGenerateClustersErrors(t *testing.T) {
	if _, err := GenerateClusters(ClusterConfig{N: 0, Dim: 2, Clusters: 1}); err == nil {
		t.Error("want error for N=0")
	}
	if _, err := GenerateClusters(ClusterConfig{N: 10, Dim: 2, Clusters: 1, Outliers: 20}); err == nil {
		t.Error("want error for outliers > N")
	}
}

func TestGenerateClustersReproducible(t *testing.T) {
	a, _ := GenerateClusters(ClusterConfig{N: 100, Dim: 4, Clusters: 3, Seed: 7})
	b, _ := GenerateClusters(ClusterConfig{N: 100, Dim: 4, Clusters: 3, Seed: 7})
	for i := range a.Data.Data {
		if a.Data.Data[i] != b.Data.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c, _ := GenerateClusters(ClusterConfig{N: 100, Dim: 4, Clusters: 3, Seed: 8})
	same := true
	for i := range a.Data.Data {
		if a.Data.Data[i] != c.Data.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestQueriesCompactness(t *testing.T) {
	g, _ := GenerateClusters(ClusterConfig{N: 500, Dim: 8, Clusters: 5, Seed: 3})
	qs, err := g.Queries(QueryConfig{N: 100, Cluster: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 100 {
		t.Fatalf("len %d", qs.Len())
	}
	cent := g.Centroids.At(2)
	for i := 0; i < qs.Len(); i++ {
		// compactness 0.01 on domain 100 => per-dim offset <= 1
		for j, x := range qs.At(i) {
			if d := math.Abs(float64(x - cent[j])); d > 1.0001 {
				t.Fatalf("query %d dim %d offset %v too large", i, j, d)
			}
		}
	}
	if _, err := g.Queries(QueryConfig{N: 0}); err == nil {
		t.Error("want error for N=0")
	}
	if _, err := g.Queries(QueryConfig{N: 1, Cluster: 99}); err == nil {
		t.Error("want error for bad cluster")
	}
}

func TestUniformAndPerturbedQueries(t *testing.T) {
	g, _ := GenerateClusters(ClusterConfig{N: 200, Dim: 4, Clusters: 2, Seed: 5})
	u := g.UniformQueries(50, 1)
	if u.Len() != 50 || u.Dim != 4 {
		t.Fatalf("uniform: %d x %d", u.Len(), u.Dim)
	}
	p := PerturbedQueries(g.Data, 30, 0.1, 2)
	if p.Len() != 30 || p.Dim != 4 {
		t.Fatalf("perturbed: %d x %d", p.Len(), p.Dim)
	}
}

func TestSYNConfigs(t *testing.T) {
	c1 := SYN1MConfig(0.001, 1)
	if c1.N != 1000 || c1.Dim != 512 || c1.Clusters != 10 || c1.Outliers != 5 {
		t.Errorf("SYN1M: %+v", c1)
	}
	c10 := SYN10MConfig(0.001, 1)
	if c10.N != 10000 || c10.Dim != 256 || c10.Outliers != 50 {
		t.Errorf("SYN10M: %+v", c10)
	}
}

func TestSIFTLikeShape(t *testing.T) {
	ds := SIFTLike(DescriptorConfig{N: 500, Seed: 1})
	if ds.Len() != 500 || ds.Dim != 128 {
		t.Fatalf("shape %d x %d", ds.Len(), ds.Dim)
	}
	for i := 0; i < ds.Len(); i++ {
		for _, x := range ds.At(i) {
			if x < 0 || x > 218 {
				t.Fatalf("SIFT component %v out of [0,218]", x)
			}
			if x != float32(math.Trunc(float64(x))) {
				t.Fatalf("SIFT component %v not integral", x)
			}
		}
	}
}

func TestDEEPLikeUnitNorm(t *testing.T) {
	ds := DEEPLike(DescriptorConfig{N: 300, Seed: 2})
	if ds.Len() != 300 || ds.Dim != 96 {
		t.Fatalf("shape %d x %d", ds.Len(), ds.Dim)
	}
	for i := 0; i < ds.Len(); i++ {
		if n := vec.Norm(ds.At(i)); math.Abs(float64(n)-1) > 1e-4 {
			t.Fatalf("row %d norm %v", i, n)
		}
	}
}

func TestGISTLikeBoundedAndSmooth(t *testing.T) {
	ds := GISTLike(DescriptorConfig{N: 100, Seed: 3})
	if ds.Dim != 960 {
		t.Fatalf("dim %d", ds.Dim)
	}
	var adjacent, random float64
	cnt := 0
	for i := 0; i < ds.Len(); i++ {
		row := ds.At(i)
		for j := 0; j < ds.Dim; j++ {
			if row[j] < 0 || row[j] > 1 {
				t.Fatalf("component %v out of [0,1]", row[j])
			}
		}
		for j := 0; j+1 < ds.Dim; j += 7 {
			adjacent += math.Abs(float64(row[j] - row[j+1]))
			random += math.Abs(float64(row[j] - row[(j+480)%ds.Dim]))
			cnt++
		}
	}
	if adjacent/float64(cnt) >= random/float64(cnt) {
		t.Errorf("no smoothness: adjacent %v vs random %v", adjacent/float64(cnt), random/float64(cnt))
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"sift", "deep", "gist", "syn1m", "syn10m"} {
		ds, err := Named(name, 300, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() != 300 {
			t.Errorf("%s: len %d", name, ds.Len())
		}
	}
	if _, err := Named("bogus", 10, 1); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestFvecsRoundtrip(t *testing.T) {
	ds := SIFTLike(DescriptorConfig{N: 50, Seed: 4})
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.Dim != ds.Dim {
		t.Fatalf("shape %d x %d", got.Len(), got.Dim)
	}
	for i := range ds.Data {
		if got.Data[i] != ds.Data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestFvecsLimit(t *testing.T) {
	ds := DEEPLike(DescriptorConfig{N: 20, Seed: 5})
	var buf bytes.Buffer
	WriteFvecs(&buf, ds)
	got, err := ReadFvecs(&buf, 7)
	if err != nil || got.Len() != 7 {
		t.Fatalf("limit read: %v len %d", err, got.Len())
	}
}

func TestBvecs(t *testing.T) {
	// hand-roll a 2-vector bvecs stream: dim 3
	raw := []byte{
		3, 0, 0, 0, 10, 20, 30,
		3, 0, 0, 0, 1, 2, 255,
	}
	ds, err := ReadBvecs(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim != 3 {
		t.Fatalf("shape %d x %d", ds.Len(), ds.Dim)
	}
	if ds.At(1)[2] != 255 || ds.At(0)[0] != 10 {
		t.Fatalf("values: %v %v", ds.At(0), ds.At(1))
	}
}

func TestVecsErrors(t *testing.T) {
	if _, err := ReadFvecs(bytes.NewReader(nil), 0); err == nil {
		t.Error("want error for empty stream")
	}
	bad := []byte{255, 255, 255, 255}
	if _, err := ReadFvecs(bytes.NewReader(bad), 0); err == nil {
		t.Error("want error for negative dim")
	}
	// truncated row
	tr := []byte{2, 0, 0, 0, 1, 1, 1}
	if _, err := ReadFvecs(bytes.NewReader(tr), 0); err == nil {
		t.Error("want error for truncated row")
	}
	// dim change mid-stream
	var buf bytes.Buffer
	WriteFvecs(&buf, vec.FromRows([][]float32{{1, 2}}))
	buf.Write([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Error("want error for dim change")
	}
}

func TestIvecsRoundtrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {9, 8, 7, 6}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][2] != 3 || got[1][3] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestFvecsFileRoundtrip(t *testing.T) {
	ds := DEEPLike(DescriptorConfig{N: 10, Seed: 6})
	path := t.TempDir() + "/x.fvecs"
	if err := SaveFvecsFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecsFile(path, 0)
	if err != nil || got.Len() != 10 {
		t.Fatalf("%v len %d", err, got.Len())
	}
	if _, err := LoadFvecsFile(t.TempDir()+"/missing", 0); err == nil {
		t.Error("want error for missing file")
	}
}
