// Package vptree implements vantage point trees (Yianilos, SODA 1993) in
// two flavours:
//
//   - Tree: the classic point-per-leaf VP tree with exact k-NN search and
//     triangle-inequality pruning, included as the metric-space baseline
//     and to validate routing;
//   - PartitionTree: the paper's variant whose leaves are whole data
//     partitions ("the leaves of the VP tree we construct will be a set of
//     data points rather than a single point"), used by the master process
//     to compute F(q), the subset of partitions a query must visit.
//
// Vantage points are chosen by Yianilos' spread heuristic: sample a
// candidate set, and pick the candidate maximising the second moment of
// its distances to an evaluation sample about their median.
package vptree

import (
	"math/rand"

	"repro/internal/median"
	"repro/internal/vec"
)

// SelectConfig controls vantage point selection.
type SelectConfig struct {
	// Candidates is the number of sampled vantage-point candidates
	// (the paper's Algorithm 1 samples 100).
	Candidates int
	// Evals is the number of points sampled to evaluate each candidate.
	Evals int
}

// DefaultSelect mirrors the paper: 100 candidates, 100 evaluation points.
func DefaultSelect() SelectConfig { return SelectConfig{Candidates: 100, Evals: 100} }

// SelectVantagePointSerial implements the paper's
// SelectVantagePointSerial(D', D): among candidate rows cands (indices
// into ds), return the index whose distances to an evaluation sample of
// ds have the largest second moment about their median. dist counts are
// the caller's responsibility via a counted DistFunc.
func SelectVantagePointSerial(ds *vec.Dataset, cands []int, cfg SelectConfig, dist vec.DistFunc, rng *rand.Rand) int {
	if len(cands) == 0 {
		panic("vptree: no vantage candidates")
	}
	evalN := cfg.Evals
	if evalN <= 0 {
		evalN = 100
	}
	if evalN > ds.Len() {
		evalN = ds.Len()
	}
	evals := rng.Perm(ds.Len())[:evalN]
	best, bestSpread := cands[0], -1.0
	d := make([]float32, evalN)
	for _, c := range cands {
		cv := ds.At(c)
		for i, e := range evals {
			d[i] = dist(cv, ds.At(e))
		}
		if s := Spread(d); s > bestSpread {
			bestSpread, best = s, c
		}
	}
	return best
}

// Spread computes the second moment of ds about their median — the
// quality function H(v, D) of Algorithm 1. Larger spread means the
// median sphere separates the space more sharply.
func Spread(d []float32) float64 {
	if len(d) == 0 {
		return 0
	}
	m := float64(median.MedianCopy(d))
	var s float64
	for _, x := range d {
		dx := float64(x) - m
		s += dx * dx
	}
	return s / float64(len(d))
}

// SampleCandidates draws up to cfg.Candidates distinct row indices.
func SampleCandidates(n int, cfg SelectConfig, rng *rand.Rand) []int {
	c := cfg.Candidates
	if c <= 0 {
		c = 100
	}
	if c > n {
		c = n
	}
	return rng.Perm(n)[:c]
}
