package vptree

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/median"
	"repro/internal/vec"
)

// PartitionTree is the paper's space-partitioning VP tree: an internal
// binary tree over vantage points whose leaves identify whole data
// partitions (one per processing core). The master process walks it to
// compute F(q), the set of partitions that must be searched for a query.
//
// The tree itself stores only vantage-point vectors and radii; the
// partition payloads live wherever the caller put them (worker ranks in
// the distributed engine, a slice of datasets in the single-node engine).
type PartitionTree struct {
	Dim    int
	Metric vec.Metric
	Root   *PNode
	Leaves int

	dist vec.DistFunc
}

// PNode is one node of a PartitionTree. Exported fields make the tree
// gob-serialisable so the master can ship it to multiple owners.
type PNode struct {
	VP    []float32 // vantage point (copied out of the dataset)
	Mu    float32   // split radius: left subtree is the closed ball B(VP, Mu)
	Left  *PNode
	Right *PNode
	Leaf  int32 // partition ID if >= 0; internal nodes carry -1
}

// IsLeaf reports whether n is a partition leaf.
func (n *PNode) IsLeaf() bool { return n.Leaf >= 0 }

// NewPartitionTree wraps an externally built root (e.g. from the
// distributed construction in internal/core).
func NewPartitionTree(dim int, metric vec.Metric, root *PNode) *PartitionTree {
	t := &PartitionTree{Dim: dim, Metric: metric, Root: root, dist: metric.Func()}
	t.Leaves = countLeaves(root)
	return t
}

func countLeaves(n *PNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// BuildResult is the output of the sequential partitioner.
type BuildResult struct {
	Tree       *PartitionTree
	Partitions []*vec.Dataset // Partitions[i] is the payload of leaf i
	DistComps  int64
}

// PartitionConfig controls sequential partition-tree construction.
type PartitionConfig struct {
	Metric vec.Metric
	Seed   int64
	Select SelectConfig
}

// BuildPartitions splits ds into p partitions of near-equal size using
// recursive vantage-point median splits — the sequential equivalent of
// the paper's Algorithm 2 (the distributed version lives in
// internal/core). p may be any positive count; non-powers of two are
// handled by splitting at the child-leaf-count quantile instead of the
// median.
func BuildPartitions(ds *vec.Dataset, p int, cfg PartitionConfig) (*BuildResult, error) {
	if p <= 0 {
		return nil, fmt.Errorf("vptree: need at least one partition, got %d", p)
	}
	if ds.Len() < p {
		return nil, fmt.Errorf("vptree: cannot split %d points into %d partitions", ds.Len(), p)
	}
	if cfg.Select.Candidates == 0 {
		cfg.Select = DefaultSelect()
	}
	b := &builder{
		metric: cfg.Metric,
		dist:   cfg.Metric.Func(),
		sel:    cfg.Select,
		rng:    rand.New(rand.NewSource(cfg.Seed + 7)),
	}
	root := b.split(ds, p)
	t := NewPartitionTree(ds.Dim, cfg.Metric, root)
	return &BuildResult{Tree: t, Partitions: b.parts, DistComps: b.distComps}, nil
}

type builder struct {
	metric    vec.Metric
	dist      vec.DistFunc
	sel       SelectConfig
	rng       *rand.Rand
	parts     []*vec.Dataset
	distComps int64
}

func (b *builder) split(ds *vec.Dataset, p int) *PNode {
	if p == 1 {
		id := int32(len(b.parts))
		b.parts = append(b.parts, ds)
		return &PNode{Leaf: id}
	}
	leftLeaves := p / 2
	cands := SampleCandidates(ds.Len(), b.sel, b.rng)
	vpRow := SelectVantagePointSerial(ds, cands, b.sel, b.count(), b.rng)
	vpv := append([]float32(nil), ds.At(vpRow)...)

	dists := make([]float32, ds.Len())
	for i := range dists {
		dists[i] = b.dist(vpv, ds.At(i))
	}
	b.distComps += int64(ds.Len())

	// Split at the quantile so the left subtree receives a share of
	// points proportional to its share of leaves; for p even this is the
	// median, matching the paper.
	rank := int(int64(ds.Len())*int64(leftLeaves)/int64(p)) - 1
	if rank < 0 {
		rank = 0
	}
	mu := median.Select(append([]float32(nil), dists...), rank)

	left := vec.NewDataset(ds.Dim, ds.Len()/2)
	right := vec.NewDataset(ds.Dim, ds.Len()/2)
	for i := range dists {
		if dists[i] <= mu {
			left.Append(ds.At(i), ds.ID(i))
		} else {
			right.Append(ds.At(i), ds.ID(i))
		}
	}
	// Ties at mu can unbalance the halves; rebalance by moving boundary
	// points so both sides can still host their leaf counts.
	needLeft, needRight := leftLeaves, p-leftLeaves
	if left.Len() < needLeft || right.Len() < needRight {
		return b.fallbackSplit(ds, p)
	}
	return &PNode{
		VP:    vpv,
		Mu:    mu,
		Leaf:  -1,
		Left:  b.split(left, leftLeaves),
		Right: b.split(right, p-leftLeaves),
	}
}

// fallbackSplit handles pathological duplicate-heavy data by splitting on
// rank order, still producing a valid (if unprunable) tree node.
func (b *builder) fallbackSplit(ds *vec.Dataset, p int) *PNode {
	leftLeaves := p / 2
	cut := ds.Len() * leftLeaves / p
	if cut == 0 {
		cut = 1
	}
	left := ds.Slice(0, cut)
	right := ds.Slice(cut, ds.Len())
	vpv := append([]float32(nil), ds.At(0)...)
	return &PNode{
		VP:    vpv,
		Mu:    b.dist(vpv, ds.At(cut-1)),
		Leaf:  -1,
		Left:  b.split(left.Clone(), leftLeaves),
		Right: b.split(right.Clone(), p-leftLeaves),
	}
}

func (b *builder) count() vec.DistFunc {
	return func(x, y []float32) float32 {
		b.distComps++
		return b.dist(x, y)
	}
}

// Route is one routing decision: a partition and the lower bound on the
// distance from the query to any point that could live in it.
type Route struct {
	Partition  int
	LowerBound float32
}

// RouteBall returns every partition whose region intersects the closed
// ball B(q, tau) — the exact F(q) of the paper when tau is (an upper
// bound on) the k-th nearest distance. Routes are sorted by ascending
// lower bound.
func (t *PartitionTree) RouteBall(q []float32, tau float32) []Route {
	var out []Route
	t.descend(t.Root, q, 0, func(r Route) bool { return r.LowerBound <= tau }, &out)
	sortRoutes(out)
	return out
}

// RouteTop returns the m partitions with the smallest lower bounds — the
// approximate F(q) used for throughput-oriented batched querying (the
// paper's engine searches a fixed-size subset of promising partitions).
func (t *PartitionTree) RouteTop(q []float32, m int) []Route {
	rs, _ := t.RouteTopStats(q, m)
	return rs
}

// RouteTopStats is RouteTop plus the number of internal tree nodes
// evaluated (one distance computation each). It descends best-first (a
// min-heap of frontier nodes keyed by lower bound), so the master's
// routing cost per query is O(m log P) rather than O(P) — the property
// that keeps the serial master off the critical path in the
// strong-scaling experiments.
func (t *PartitionTree) RouteTopStats(q []float32, m int) ([]Route, int) {
	type frontier struct {
		n  *PNode
		lb float32
	}
	heap := []frontier{{t.Root, 0}}
	push := func(f frontier) {
		heap = append(heap, f)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].lb <= heap[i].lb {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() frontier {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < n && heap[l].lb < heap[s].lb {
				s = l
			}
			if r < n && heap[r].lb < heap[s].lb {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	var out []Route
	visits := 0
	for len(heap) > 0 && len(out) < m {
		f := pop()
		if f.n.IsLeaf() {
			out = append(out, Route{Partition: int(f.n.Leaf), LowerBound: f.lb})
			continue
		}
		visits++
		d := t.dist(q, f.n.VP)
		lbL, lbR := f.lb, f.lb
		if x := d - f.n.Mu; x > lbL {
			lbL = x
		}
		if x := f.n.Mu - d; x > lbR {
			lbR = x
		}
		if f.n.Left != nil {
			push(frontier{f.n.Left, lbL})
		}
		if f.n.Right != nil {
			push(frontier{f.n.Right, lbR})
		}
	}
	sortRoutes(out)
	return out, visits
}

// RouteAll returns every partition ordered by ascending lower bound.
func (t *PartitionTree) RouteAll(q []float32) []Route {
	var out []Route
	t.descend(t.Root, q, 0, func(Route) bool { return true }, &out)
	sortRoutes(out)
	return out
}

// Home returns the single partition whose region contains q (lower bound
// zero along the geodesic descent).
func (t *PartitionTree) Home(q []float32) int {
	n := t.Root
	for !n.IsLeaf() {
		if t.dist(q, n.VP) <= n.Mu {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return int(n.Leaf)
}

// descend accumulates per-leaf lower bounds: entering the inside-sphere
// child costs max(0, d-mu) (q must travel inward), the outside child
// max(0, mu-d).
func (t *PartitionTree) descend(n *PNode, q []float32, lb float32, keep func(Route) bool, out *[]Route) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		r := Route{Partition: int(n.Leaf), LowerBound: lb}
		if keep(r) {
			*out = append(*out, r)
		}
		return
	}
	d := t.dist(q, n.VP)
	lbL, lbR := lb, lb
	if excess := d - n.Mu; excess > lbL {
		lbL = excess
	}
	if excess := n.Mu - d; excess > lbR {
		lbR = excess
	}
	if lbL <= lbR {
		t.descend(n.Left, q, lbL, keep, out)
		t.descend(n.Right, q, lbR, keep, out)
	} else {
		t.descend(n.Right, q, lbR, keep, out)
		t.descend(n.Left, q, lbL, keep, out)
	}
}

func sortRoutes(rs []Route) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].LowerBound != rs[j].LowerBound {
			return rs[i].LowerBound < rs[j].LowerBound
		}
		return rs[i].Partition < rs[j].Partition
	})
}

// Depth returns the height of the partition tree.
func (t *PartitionTree) Depth() int {
	var f func(*PNode) int
	f = func(n *PNode) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		l, r := f(n.Left), f(n.Right)
		if l > r {
			return 1 + l
		}
		return 1 + r
	}
	return f(t.Root)
}

// treeWire is the gob wire form of a PartitionTree.
type treeWire struct {
	Dim    int
	Metric int
	Root   *PNode
}

// Encode serialises the tree with encoding/gob; the multiple-owner
// strategy and the TCP deployment ship the routing tree this way.
func (t *PartitionTree) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(treeWire{Dim: t.Dim, Metric: int(t.Metric), Root: t.Root})
}

// ReadPartitionTree deserialises a tree written by Encode.
func ReadPartitionTree(r io.Reader) (*PartitionTree, error) {
	var w treeWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	if w.Root == nil {
		return nil, fmt.Errorf("vptree: decoded tree has no root")
	}
	return NewPartitionTree(w.Dim, vec.Metric(w.Metric), w.Root), nil
}
