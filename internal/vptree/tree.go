package vptree

import (
	"math"
	"math/rand"

	"repro/internal/median"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Tree is a classic exact vantage point tree with one point per internal
// node and small linear-scan buckets at the leaves.
type Tree struct {
	ds     *vec.Dataset
	metric vec.Metric
	dist   vec.DistFunc
	root   *pnode
	// LeafSize is the bucket size below which subtrees become leaves.
	leafSize int
}

type pnode struct {
	vp     int     // row index of the vantage point
	mu     float32 // median distance
	left   *pnode  // inside the sphere
	right  *pnode  // outside
	bucket []int   // leaf: row indices (vp unused)
}

// TreeConfig controls construction of the exact tree.
type TreeConfig struct {
	Metric   vec.Metric
	LeafSize int // default 16
	Seed     int64
	Select   SelectConfig
}

// NewTree builds an exact VP tree over ds (which is retained, not copied).
func NewTree(ds *vec.Dataset, cfg TreeConfig) *Tree {
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 16
	}
	if cfg.Select.Candidates == 0 {
		cfg.Select = SelectConfig{Candidates: 16, Evals: 64}
	}
	t := &Tree{ds: ds, metric: cfg.Metric, dist: cfg.Metric.Func(), leafSize: cfg.LeafSize}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	t.root = t.build(rows, rng)
	return t
}

func (t *Tree) build(rows []int, rng *rand.Rand) *pnode {
	if len(rows) == 0 {
		return nil
	}
	if len(rows) <= t.leafSize {
		return &pnode{vp: -1, bucket: rows}
	}
	sub := t.ds.Select(rows)
	ci := SampleCandidates(sub.Len(), SelectConfig{Candidates: 8, Evals: 32}, rng)
	vpLocal := SelectVantagePointSerial(sub, ci, SelectConfig{Candidates: 8, Evals: 32}, t.dist, rng)
	vp := rows[vpLocal]

	vpv := t.ds.At(vp)
	ds := make([]float32, 0, len(rows)-1)
	rest := make([]int, 0, len(rows)-1)
	for _, r := range rows {
		if r == vp {
			continue
		}
		rest = append(rest, r)
		ds = append(ds, t.dist(vpv, t.ds.At(r)))
	}
	mu := median.MedianCopy(ds)
	var left, right []int
	for i, r := range rest {
		if ds[i] <= mu {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	// Degenerate split (all equal distances): fall back to a leaf to
	// guarantee termination.
	if len(left) == 0 || len(right) == 0 {
		return &pnode{vp: -1, bucket: rows}
	}
	return &pnode{
		vp:    vp,
		mu:    mu,
		left:  t.build(left, rng),
		right: t.build(right, rng),
	}
}

// SearchStats reports the work of one exact search.
type SearchStats struct {
	DistComps  int64
	NodesSeen  int64
	LeavesSeen int64
}

// Search returns the exact k nearest neighbors of q.
func (t *Tree) Search(q []float32, k int) ([]topk.Result, SearchStats) {
	c := topk.New(k)
	var st SearchStats
	t.search(t.root, q, c, &st)
	return c.Results(), st
}

func (t *Tree) search(n *pnode, q []float32, c *topk.Collector, st *SearchStats) {
	if n == nil {
		return
	}
	st.NodesSeen++
	if n.bucket != nil {
		st.LeavesSeen++
		for _, r := range n.bucket {
			st.DistComps++
			c.Push(t.ds.ID(r), t.dist(q, t.ds.At(r)))
		}
		return
	}
	d := t.dist(q, t.ds.At(n.vp))
	st.DistComps++
	c.Push(t.ds.ID(n.vp), d)
	tau := c.Bound()
	// Visit the more promising side first, prune with the triangle
	// inequality: the inside sphere can be skipped iff d - tau > mu, the
	// outside iff d + tau < mu.
	if d <= n.mu {
		t.search(n.left, q, c, st)
		tau = c.Bound()
		if d+tau >= n.mu {
			t.search(n.right, q, c, st)
		}
	} else {
		t.search(n.right, q, c, st)
		tau = c.Bound()
		if d-tau <= n.mu {
			t.search(n.left, q, c, st)
		}
	}
}

// Height returns the height of the tree (leaf = 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *pnode) int {
	if n == nil {
		return 0
	}
	if n.bucket != nil {
		return 1
	}
	l, r := height(n.left), height(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }
