package vptree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topk"
	"repro/internal/vec"
)

func randDataset(rng *rand.Rand, n, dim int) *vec.Dataset {
	ds := vec.NewDataset(dim, n)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 5)
		}
		ds.Append(v, int64(i))
	}
	return ds
}

func bruteKNN(ds *vec.Dataset, q []float32, k int, m vec.Metric) []topk.Result {
	f := m.Func()
	c := topk.New(k)
	for i := 0; i < ds.Len(); i++ {
		c.Push(ds.ID(i), f(q, ds.At(i)))
	}
	return c.Results()
}

func TestExactTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, metric := range []vec.Metric{vec.L2, vec.L1} {
		ds := randDataset(rng, 500, 12)
		tree := NewTree(ds, TreeConfig{Metric: metric, Seed: 3})
		for trial := 0; trial < 25; trial++ {
			q := randDataset(rng, 1, 12).At(0)
			got, st := tree.Search(q, 7)
			want := bruteKNN(ds, q, 7, metric)
			if len(got) != len(want) {
				t.Fatalf("metric %v: len %d vs %d", metric, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("metric %v trial %d: %+v vs %+v", metric, trial, got[i], want[i])
				}
			}
			if st.DistComps == 0 || st.NodesSeen == 0 {
				t.Fatal("stats not recorded")
			}
		}
	}
}

func TestTreePrunes(t *testing.T) {
	// On clustered low-dimensional data the VP tree must visit far fewer
	// points than brute force.
	rng := rand.New(rand.NewSource(2))
	ds := vec.NewDataset(4, 4000)
	v := make([]float32, 4)
	for i := 0; i < 4000; i++ {
		c := float32(i % 4 * 100)
		for j := range v {
			v[j] = c + float32(rng.NormFloat64())
		}
		ds.Append(v, int64(i))
	}
	tree := NewTree(ds, TreeConfig{Metric: vec.L2, Seed: 4})
	q := ds.At(10)
	_, st := tree.Search(q, 5)
	if st.DistComps > int64(ds.Len())/2 {
		t.Errorf("no pruning: %d dist comps for %d points", st.DistComps, ds.Len())
	}
}

func TestTreeSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 17} {
		ds := randDataset(rng, n, 3)
		tree := NewTree(ds, TreeConfig{Metric: vec.L2})
		got, _ := tree.Search(ds.At(0), n+5)
		if len(got) != n {
			t.Errorf("n=%d: got %d results", n, len(got))
		}
		if tree.Len() != n || tree.Height() < 1 {
			t.Errorf("n=%d: Len/Height wrong", n)
		}
	}
}

func TestTreeDuplicatePoints(t *testing.T) {
	ds := vec.NewDataset(2, 64)
	for i := 0; i < 64; i++ {
		ds.Append([]float32{1, 1}, int64(i))
	}
	tree := NewTree(ds, TreeConfig{Metric: vec.L2, LeafSize: 4})
	got, _ := tree.Search([]float32{1, 1}, 10)
	if len(got) != 10 || got[0].Dist != 0 {
		t.Fatalf("duplicates: %+v", got)
	}
}

func TestSpread(t *testing.T) {
	if Spread(nil) != 0 {
		t.Error("empty spread should be 0")
	}
	// constant distances: spread 0; spread of {0,10} about median 0 is 50
	if s := Spread([]float32{3, 3, 3}); s != 0 {
		t.Errorf("constant spread = %v", s)
	}
	if s := Spread([]float32{0, 10}); s != 50 {
		t.Errorf("spread = %v, want 50", s)
	}
}

func TestSelectVantagePointPrefersSpread(t *testing.T) {
	// Points on a line: the extremes separate the set better than the
	// center, so the heuristic should not pick the centroid.
	ds := vec.NewDataset(1, 101)
	for i := 0; i <= 100; i++ {
		ds.Append([]float32{float32(i)}, int64(i))
	}
	rng := rand.New(rand.NewSource(5))
	cands := []int{0, 50, 100}
	cfg := SelectConfig{Candidates: 3, Evals: 101}
	got := SelectVantagePointSerial(ds, cands, cfg, vec.L2Distance, rng)
	if got == 50 {
		t.Errorf("heuristic picked the centroid, want an extreme")
	}
}

func TestBuildPartitionsCoverAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randDataset(rng, 1000, 8)
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		res, err := BuildPartitions(ds.Clone(), p, PartitionConfig{Metric: vec.L2, Seed: 11})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(res.Partitions) != p || res.Tree.Leaves != p {
			t.Fatalf("p=%d: got %d partitions, %d leaves", p, len(res.Partitions), res.Tree.Leaves)
		}
		seen := make(map[int64]int)
		total := 0
		for _, part := range res.Partitions {
			total += part.Len()
			for i := 0; i < part.Len(); i++ {
				seen[part.ID(i)]++
			}
		}
		if total != ds.Len() {
			t.Fatalf("p=%d: %d points in partitions, want %d", p, total, ds.Len())
		}
		for id, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("p=%d: id %d appears %d times", p, id, cnt)
			}
		}
		// near-equal sizes: worst/best ratio bounded
		minSz, maxSz := ds.Len(), 0
		for _, part := range res.Partitions {
			if part.Len() < minSz {
				minSz = part.Len()
			}
			if part.Len() > maxSz {
				maxSz = part.Len()
			}
		}
		if p > 1 && maxSz > 2*minSz+8 {
			t.Errorf("p=%d: imbalance %d..%d", p, minSz, maxSz)
		}
	}
}

func TestBuildPartitionsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randDataset(rng, 3, 2)
	if _, err := BuildPartitions(ds, 0, PartitionConfig{Metric: vec.L2}); err == nil {
		t.Error("want error for p=0")
	}
	if _, err := BuildPartitions(ds, 10, PartitionConfig{Metric: vec.L2}); err == nil {
		t.Error("want error for p>n")
	}
}

func TestBuildPartitionsDuplicateHeavy(t *testing.T) {
	ds := vec.NewDataset(2, 256)
	for i := 0; i < 256; i++ {
		ds.Append([]float32{1, 2}, int64(i))
	}
	res, err := BuildPartitions(ds, 8, PartitionConfig{Metric: vec.L2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Partitions {
		total += p.Len()
	}
	if total != 256 {
		t.Fatalf("lost points: %d", total)
	}
}

// Property: RouteBall with the exact k-th distance always contains the
// home partitions of all true k nearest neighbors (routing soundness).
func TestRouteBallSound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := randDataset(rng, 2000, 6)
	res, err := BuildPartitions(ds.Clone(), 8, PartitionConfig{Metric: vec.L2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// map id -> partition
	home := make(map[int64]int)
	for pi, part := range res.Partitions {
		for i := 0; i < part.Len(); i++ {
			home[part.ID(i)] = pi
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := randDataset(rng, 1, 6).At(0)
		want := bruteKNN(ds, q, 10, vec.L2)
		tau := want[len(want)-1].Dist
		routes := res.Tree.RouteBall(q, tau)
		routed := make(map[int]bool)
		for _, r := range routes {
			routed[r.Partition] = true
		}
		for _, w := range want {
			if !routed[home[w.ID]] {
				t.Fatalf("trial %d: neighbor %d in partition %d not routed (tau=%v, routes=%v)",
					trial, w.ID, home[w.ID], tau, routes)
			}
		}
	}
}

func TestRouteTopAndAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randDataset(rng, 800, 5)
	res, _ := BuildPartitions(ds.Clone(), 8, PartitionConfig{Metric: vec.L2, Seed: 17})
	q := ds.At(0)
	all := res.Tree.RouteAll(q)
	if len(all) != 8 {
		t.Fatalf("RouteAll returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].LowerBound < all[i-1].LowerBound {
			t.Fatal("RouteAll not sorted")
		}
	}
	if all[0].LowerBound != 0 {
		t.Errorf("home partition lower bound = %v, want 0", all[0].LowerBound)
	}
	top := res.Tree.RouteTop(q, 3)
	if len(top) != 3 {
		t.Fatalf("RouteTop returned %d", len(top))
	}
	for i := range top {
		if top[i] != all[i] {
			t.Errorf("RouteTop[%d] = %+v, want %+v", i, top[i], all[i])
		}
	}
	if h := res.Tree.Home(q); h != all[0].Partition {
		t.Errorf("Home = %d, want %d", h, all[0].Partition)
	}
}

// Property: the home partition of a dataset point is the partition that
// actually contains it.
func TestHomeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := randDataset(rng, 600, 4)
	res, _ := BuildPartitions(ds.Clone(), 8, PartitionConfig{Metric: vec.L2, Seed: 19})
	home := make(map[int64]int)
	for pi, part := range res.Partitions {
		for i := 0; i < part.Len(); i++ {
			home[part.ID(i)] = pi
		}
	}
	err := quick.Check(func(rowRaw uint16) bool {
		row := int(rowRaw) % ds.Len()
		return res.Tree.Home(ds.At(row)) == home[ds.ID(row)]
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPartitionTreeSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randDataset(rng, 500, 6)
	res, _ := BuildPartitions(ds.Clone(), 8, PartitionConfig{Metric: vec.L2, Seed: 23})
	var buf bytes.Buffer
	if err := res.Tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartitionTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaves != res.Tree.Leaves || got.Dim != res.Tree.Dim || got.Metric != res.Tree.Metric {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for trial := 0; trial < 20; trial++ {
		q := randDataset(rng, 1, 6).At(0)
		a := res.Tree.RouteAll(q)
		b := got.RouteAll(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("routing differs after roundtrip: %+v vs %+v", a[i], b[i])
			}
		}
	}
	if _, err := ReadPartitionTree(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("want error for junk input")
	}
}

func TestDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := randDataset(rng, 512, 4)
	res, _ := BuildPartitions(ds, 16, PartitionConfig{Metric: vec.L2, Seed: 29})
	if d := res.Tree.Depth(); d < 5 {
		t.Errorf("depth %d too small for 16 leaves", d)
	}
}

func BenchmarkRouteAll64(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	ds := randDataset(rng, 6400, 32)
	res, _ := BuildPartitions(ds, 64, PartitionConfig{Metric: vec.L2, Seed: 31})
	q := ds.At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Tree.RouteAll(q)
	}
}
