// Package fsx abstracts the filesystem operations of the durable store
// behind a narrow interface with two implementations: OS, a direct
// passthrough, and Faulty (fault.go), a deterministic, seeded fault
// injector that can fail the Nth fsync, tear writes, break renames,
// return ENOSPC, flip bits on reads, and simulate process death at any
// of those sites.
//
// Every byte the store reads or writes — WAL segments, snapshots, the
// manifest — moves through an FS, so the crash-point harness
// (internal/store) can systematically kill the store at every I/O
// operation and prove recovery is exact or fails loudly. Production
// code pays one interface call per operation; the hot append path
// buffers above the FS, so the overhead is per-flush, not per-record.
package fsx

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the store uses. Writers must call
// Sync before relying on durability, exactly as with the real thing.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface of the durable store. Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens with the given flags (os.O_CREATE, ...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading.
	Open(name string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable.
	SyncDir(dir string) error
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err == nil {
		err = cerr
	}
	return err
}

// Glob returns the names in the directory of pattern that match its
// base, like filepath.Glob but routed through fs so fault injection
// covers directory listings too.
func Glob(fs FS, pattern string) ([]string, error) {
	dir, base := filepath.Split(pattern)
	if dir == "" {
		dir = "."
	}
	ents, err := fs.ReadDir(filepath.Clean(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		ok, err := filepath.Match(base, e.Name())
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, filepath.Join(filepath.Clean(dir), e.Name()))
		}
	}
	return out, nil
}
