package fsx

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Deterministic fault injection. A Faulty wraps an inner FS and fires
// scripted faults at exact operation sites ("the 3rd fsync", "the 7th
// write under wal/") or at a seeded random rate. Five failure shapes
// cover the storage-failure taxonomy the store must survive:
//
//   - Fail: the op returns an error having done nothing (EIO, ENOSPC);
//   - Fail+After: the op COMPLETES, then returns an error — the
//     fsyncgate shape, where a failed fsync leaves the page-cache state
//     unknown and retrying is unsound;
//   - ShortWrite: only a prefix of the buffer lands before the error, a
//     torn write;
//   - BitFlip: the op succeeds but one seeded-random bit of the data
//     read is flipped — silent media corruption;
//   - Crash: after the fault fires the FS enters a dead state and every
//     later operation returns ErrCrashed, simulating process death at
//     exactly that site. Recovery then reopens the directory with a
//     clean OS FS, like a restarted process would.

var (
	// ErrInjected is the default error returned by injected faults.
	ErrInjected = errors.New("fsx: injected fault")
	// ErrCrashed is returned by every operation after a Crash fault
	// fired: the simulated process is dead.
	ErrCrashed = errors.New("fsx: filesystem crashed (simulated process death)")
)

// Op names one filesystem operation kind for fault matching.
type Op uint8

const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpReadDir
	OpStat
	OpSyncDir
	opCount
)

var opNames = [...]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpRename: "rename", OpRemove: "remove", OpTruncate: "truncate",
	OpMkdir: "mkdir", OpReadDir: "readdir", OpStat: "stat", OpSyncDir: "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is the failure shape a rule injects.
type Kind uint8

const (
	// Fail returns Err without performing the op (or, with After, after
	// performing it).
	Fail Kind = iota
	// ShortWrite performs half the write, then returns Err.
	ShortWrite
	// BitFlip performs the read, then flips one seeded-random bit of
	// the data returned. No error: the corruption is silent.
	BitFlip
)

// Rule scripts one fault. A rule with Nth>0 fires on exactly the Nth
// matching operation (1-based, counted per Op across the Faulty's
// lifetime) and never again; a rule with Nth==0 and Rate>0 fires each
// matching op with that probability from the seeded generator.
type Rule struct {
	Op   Op
	Nth  int     // exact site: the Nth occurrence of Op
	Rate float64 // probabilistic alternative to Nth
	Path string  // optional substring the op's path must contain
	Kind Kind
	Err  error // returned error (default ErrInjected); e.g. syscall.ENOSPC
	// After performs the operation first, then injects: the fsyncgate
	// shape for Fail (op durable, caller told otherwise), or the
	// crash-after-success site with Crash.
	After bool
	// Crash kills the FS once this rule fires: all later ops return
	// ErrCrashed.
	Crash bool
}

func (r Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Faulty is a fault-injecting FS. Safe for concurrent use; all
// randomness comes from the seed, so a given (seed, rules, workload)
// triple replays identically.
type Faulty struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	fired    []bool // Nth-rules fire once
	seen     []int  // per-rule count of matching ops (drives Nth)
	counts   [opCount]int
	crashed  bool
	injected int
}

// NewFaulty wraps inner (nil means OS{}) with the scripted rules.
func NewFaulty(inner FS, seed int64, rules ...Rule) *Faulty {
	if inner == nil {
		inner = OS{}
	}
	return &Faulty{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
		fired: make([]bool, len(rules)),
		seen:  make([]int, len(rules)),
	}
}

// Count returns how many operations of kind op have been issued.
func (f *Faulty) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Injected returns how many faults have fired.
func (f *Faulty) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a Crash fault has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// hit counts the op and returns the rule that fires on it, if any.
// ErrCrashed is returned once the FS is dead.
func (f *Faulty) hit(op Op, path string) (*Rule, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	f.counts[op]++
	var hit *Rule
	for i := range f.rules {
		r := &f.rules[i]
		if r.Op != op || f.fired[i] && r.Nth > 0 {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		// Every matching rule sees the op, even when an earlier rule
		// fires on it — "the 2nd write" means the 2nd write issued, not
		// the 2nd that no other rule touched.
		f.seen[i]++
		if hit != nil {
			continue
		}
		switch {
		case r.Nth > 0:
			if f.seen[i] != r.Nth {
				continue
			}
		case r.Rate > 0:
			if f.rng.Float64() >= r.Rate {
				continue
			}
		default:
			continue
		}
		f.fired[i] = true
		f.injected++
		if r.Crash && !r.After {
			f.crashed = true
		}
		hit = r
	}
	return hit, nil
}

// crashAfter marks the FS dead once an After rule's op has completed.
func (f *Faulty) crashAfter(r *Rule) {
	if r.Crash {
		f.mu.Lock()
		f.crashed = true
		f.mu.Unlock()
	}
}

// flipBit corrupts one seeded-random bit of b in place.
func (f *Faulty) flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	f.mu.Lock()
	i, bit := f.rng.Intn(len(b)), uint(f.rng.Intn(8))
	f.mu.Unlock()
	b[i] ^= 1 << bit
}

// do wraps a no-result operation with fault matching.
func (f *Faulty) do(op Op, path string, fn func() error) error {
	r, err := f.hit(op, path)
	if err != nil {
		return err
	}
	if r == nil {
		return fn()
	}
	if !r.After {
		return r.err()
	}
	opErr := fn()
	f.crashAfter(r)
	if opErr != nil {
		return opErr
	}
	return r.err()
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	r, err := f.hit(OpOpen, name)
	if err != nil {
		return nil, err
	}
	if r != nil && !r.After {
		return nil, r.err()
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if r != nil {
		f.crashAfter(r)
		if err == nil {
			inner.Close()
			err = r.err()
		}
	}
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: inner, fs: f, path: name}, nil
}

// Open implements FS.
func (f *Faulty) Open(name string) (File, error) {
	return f.OpenFile(name, os.O_RDONLY, 0)
}

// ReadFile implements FS. A BitFlip rule on OpRead corrupts one bit of
// the returned contents.
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	r, err := f.hit(OpRead, name)
	if err != nil {
		return nil, err
	}
	if r != nil && !r.After && r.Kind == Fail {
		return nil, r.err()
	}
	b, err := f.inner.ReadFile(name)
	if r != nil {
		if r.Kind == BitFlip && err == nil {
			f.flipBit(b)
		}
		f.crashAfter(r)
		if r.Kind == Fail && err == nil {
			return nil, r.err()
		}
	}
	return b, err
}

// Rename implements FS. A plain Fail leaves oldpath in place (the torn
// rename's stale-temp aftermath); Fail+After performs the rename and
// still reports failure, the crash-between-rename-and-dirsync shape.
func (f *Faulty) Rename(oldpath, newpath string) error {
	return f.do(OpRename, newpath, func() error { return f.inner.Rename(oldpath, newpath) })
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	return f.do(OpRemove, name, func() error { return f.inner.Remove(name) })
}

// Truncate implements FS.
func (f *Faulty) Truncate(name string, size int64) error {
	return f.do(OpTruncate, name, func() error { return f.inner.Truncate(name, size) })
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.do(OpMkdir, path, func() error { return f.inner.MkdirAll(path, perm) })
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	r, err := f.hit(OpReadDir, name)
	if err != nil {
		return nil, err
	}
	if r != nil && !r.After {
		return nil, r.err()
	}
	ents, err := f.inner.ReadDir(name)
	if r != nil {
		f.crashAfter(r)
		if err == nil {
			return nil, r.err()
		}
	}
	return ents, err
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (os.FileInfo, error) {
	r, err := f.hit(OpStat, name)
	if err != nil {
		return nil, err
	}
	if r != nil && !r.After {
		return nil, r.err()
	}
	fi, err := f.inner.Stat(name)
	if r != nil {
		f.crashAfter(r)
		if err == nil {
			return nil, r.err()
		}
	}
	return fi, err
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	return f.do(OpSyncDir, dir, func() error { return f.inner.SyncDir(dir) })
}

// faultyFile threads per-file read/write/sync operations back through
// the injector.
type faultyFile struct {
	f    File
	fs   *Faulty
	path string
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	r, err := ff.fs.hit(OpRead, ff.path)
	if err != nil {
		return 0, err
	}
	if r != nil && !r.After && r.Kind == Fail {
		return 0, r.err()
	}
	n, err := ff.f.Read(p)
	if r != nil {
		if r.Kind == BitFlip && n > 0 {
			ff.fs.flipBit(p[:n])
		}
		ff.fs.crashAfter(r)
		if r.Kind == Fail && err == nil {
			return n, r.err()
		}
	}
	return n, err
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	r, err := ff.fs.hit(OpWrite, ff.path)
	if err != nil {
		return 0, err
	}
	if r == nil {
		return ff.f.Write(p)
	}
	switch r.Kind {
	case ShortWrite:
		n, werr := ff.f.Write(p[:len(p)/2])
		ff.fs.crashAfter(r)
		if werr != nil {
			return n, werr
		}
		return n, r.err()
	default: // Fail
		if !r.After {
			return 0, r.err()
		}
		n, werr := ff.f.Write(p)
		ff.fs.crashAfter(r)
		if werr != nil {
			return n, werr
		}
		return n, r.err()
	}
}

func (ff *faultyFile) Sync() error {
	return ff.fs.do(OpSync, ff.path, ff.f.Sync)
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	if ff.fs.Crashed() {
		return 0, ErrCrashed
	}
	return ff.f.Seek(offset, whence)
}

// Close always releases the inner descriptor, crashed or not, so tests
// do not leak file handles.
func (ff *faultyFile) Close() error { return ff.f.Close() }

func (ff *faultyFile) Name() string { return ff.path }

// ParseFaults parses a comma-separated fault script, one rule per
// clause:
//
//	op:kind[@nth][~rate][/pathsub]
//
// op is one of open, read, write, sync, rename, remove, truncate,
// mkdir, readdir, stat, syncdir. kind is one of fail, enospc, short,
// bitflip, crash (fail + process death), crash-after (op succeeds,
// then death), fail-after (the fsyncgate shape). @nth defaults to 1
// when no ~rate is given.
//
//	"sync:fail@3"            — the 3rd fsync returns EIO
//	"write:enospc@5"         — the 5th write returns ENOSPC
//	"read:bitflip@2"         — the 2nd read flips one bit
//	"rename:crash@1/MANIFEST" — die at the first manifest rename
//	"sync:fail~0.01"         — 1% of fsyncs fail (seeded)
func ParseFaults(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		opName, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fsx: fault %q: want op:kind[@nth]", clause)
		}
		var r Rule
		op := -1
		for i, n := range opNames {
			if n == opName {
				op = i
			}
		}
		if op < 0 {
			return nil, fmt.Errorf("fsx: fault %q: unknown op %q", clause, opName)
		}
		r.Op = Op(op)
		if rest, ok = cutSuffixArg(rest, "/", &r.Path); !ok {
			return nil, fmt.Errorf("fsx: fault %q: bad path filter", clause)
		}
		var rateStr, nthStr string
		rest, _ = cutSuffixArg(rest, "~", &rateStr)
		rest, _ = cutSuffixArg(rest, "@", &nthStr)
		switch rest {
		case "fail":
			r.Kind = Fail
		case "fail-after":
			r.Kind, r.After = Fail, true
		case "enospc":
			r.Kind, r.Err = Fail, error(syscall.ENOSPC)
		case "short":
			r.Kind = ShortWrite
		case "bitflip":
			r.Kind = BitFlip
		case "crash":
			r.Kind, r.Crash = Fail, true
		case "crash-after":
			r.Kind, r.After, r.Crash = Fail, true, true
		default:
			return nil, fmt.Errorf("fsx: fault %q: unknown kind %q", clause, rest)
		}
		if rateStr != "" {
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || rate <= 0 || rate > 1 {
				return nil, fmt.Errorf("fsx: fault %q: bad rate %q", clause, rateStr)
			}
			r.Rate = rate
		}
		if nthStr != "" {
			nth, err := strconv.Atoi(nthStr)
			if err != nil || nth <= 0 {
				return nil, fmt.Errorf("fsx: fault %q: bad occurrence %q", clause, nthStr)
			}
			r.Nth = nth
		}
		if r.Nth == 0 && r.Rate == 0 {
			r.Nth = 1
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// cutSuffixArg splits "base<sep>arg" into base and arg when sep is
// present; reports false when the arg would be empty.
func cutSuffixArg(s, sep string, out *string) (string, bool) {
	base, arg, ok := strings.Cut(s, sep)
	if !ok {
		return s, true
	}
	if arg == "" {
		return base, false
	}
	*out = arg
	return base, true
}
