package fsx

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeThrough(t *testing.T, fs FS, path string, data []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	path := filepath.Join(dir, "a.txt")
	if err := writeThrough(t, fs, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile: %q, %v", b, err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	matches, err := Glob(fs, filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("Glob: %v, %v", matches, err)
	}
	if fi, err := fs.Stat(matches[0]); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat: %v, %v", fi, err)
	}
	if err := fs.Truncate(matches[0], 2); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	// Glob on a missing directory is empty, not an error (mirrors the
	// store opening a fresh dir).
	if m, err := Glob(fs, filepath.Join(dir, "nope", "*.x")); err != nil || m != nil {
		t.Fatalf("Glob on missing dir: %v, %v", m, err)
	}
}

func TestFaultyNthSync(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1, Rule{Op: OpSync, Nth: 2})
	if err := writeThrough(t, fs, filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	err := writeThrough(t, fs, filepath.Join(dir, "b"), []byte("y"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: want ErrInjected, got %v", err)
	}
	// Nth rules fire once; the third sync passes again.
	if err := writeThrough(t, fs, filepath.Join(dir, "c"), []byte("z")); err != nil {
		t.Fatalf("third sync should pass: %v", err)
	}
	if fs.Injected() != 1 || fs.Count(OpSync) != 3 {
		t.Fatalf("injected=%d syncs=%d, want 1/3", fs.Injected(), fs.Count(OpSync))
	}
}

func TestFaultyShortWriteAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1,
		Rule{Op: OpWrite, Nth: 1, Kind: ShortWrite},
		Rule{Op: OpWrite, Nth: 2, Err: syscall.ENOSPC})
	path := filepath.Join(dir, "torn")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 5/ErrInjected", n, err)
	}
	if _, err := f.Write([]byte("abc")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "01234" {
		t.Fatalf("on-disk contents %q, want the torn prefix", b)
	}
}

func TestFaultyBitFlipDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	orig := bytes.Repeat([]byte{0xAA}, 64)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	read := func(seed int64) []byte {
		fs := NewFaulty(OS{}, seed, Rule{Op: OpRead, Nth: 1, Kind: BitFlip})
		b, err := fs.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := read(7), read(7)
	if bytes.Equal(a, orig) {
		t.Fatal("bit flip did not corrupt the read")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if c := read(8); bytes.Equal(a, c) {
		t.Log("different seeds flipped the same bit (unlikely but legal)")
	}
}

func TestFaultyCrashPoisonsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1, Rule{Op: OpRename, Nth: 1, Crash: true})
	path := filepath.Join(dir, "f")
	if err := writeThrough(t, fs, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path, path+".new"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: want ErrInjected, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("FS not crashed after Crash rule")
	}
	// Every operation on the dead FS fails, including on open files.
	if _, err := fs.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadFile after crash: %v", err)
	}
	if _, err := fs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("OpenFile after crash: %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("SyncDir after crash: %v", err)
	}
	// The rename never happened: oldpath intact, newpath absent.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("source gone after failed rename: %v", err)
	}
	if _, err := os.Stat(path + ".new"); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed rename: %v", err)
	}
}

func TestFaultyCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1, Rule{Op: OpRename, Nth: 1, After: true, Crash: true})
	path := filepath.Join(dir, "f")
	if err := writeThrough(t, fs, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path, path+".new"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: want ErrInjected, got %v", err)
	}
	// The rename DID land before the crash.
	if _, err := os.Stat(path + ".new"); err != nil {
		t.Fatalf("destination missing after crash-after rename: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("FS not crashed")
	}
}

func TestFaultyFsyncgateShape(t *testing.T) {
	// fail-after on sync: the data may be durable, the caller is told it
	// is not, and nothing is crashed — the store must poison itself.
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1, Rule{Op: OpSync, Nth: 1, After: true})
	err := writeThrough(t, fs, filepath.Join(dir, "f"), []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected from fail-after sync, got %v", err)
	}
	if fs.Crashed() {
		t.Fatal("fail-after should not crash the FS")
	}
	if b, _ := os.ReadFile(filepath.Join(dir, "f")); string(b) != "x" {
		t.Fatalf("contents %q: the op should have completed", b)
	}
}

func TestFaultyRateSeeded(t *testing.T) {
	fire := func(seed int64) int {
		dir := t.TempDir()
		fs := NewFaulty(OS{}, seed, Rule{Op: OpSync, Rate: 0.5})
		n := 0
		for i := 0; i < 40; i++ {
			if err := writeThrough(t, fs, filepath.Join(dir, "f"), []byte("x")); err != nil {
				n++
			}
		}
		return n
	}
	a, b := fire(3), fire(3)
	if a != b {
		t.Fatalf("same seed fired %d then %d faults", a, b)
	}
	if a == 0 || a == 40 {
		t.Fatalf("rate 0.5 fired %d/40 times", a)
	}
}

func TestFaultyPathFilter(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(OS{}, 1, Rule{Op: OpSync, Nth: 1, Path: "wal"})
	if err := writeThrough(t, fs, filepath.Join(dir, "snap.ann"), []byte("x")); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	err := writeThrough(t, fs, filepath.Join(dir, "wal-001.log"), []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path: want ErrInjected, got %v", err)
	}
}

func TestParseFaults(t *testing.T) {
	rules, err := ParseFaults("sync:fail@3, write:enospc@5, read:bitflip@2, rename:crash/MANIFEST, sync:fail~0.01, sync:fail-after@7, open:crash-after@2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpSync, Nth: 3},
		{Op: OpWrite, Nth: 5, Err: syscall.ENOSPC},
		{Op: OpRead, Nth: 2, Kind: BitFlip},
		{Op: OpRename, Nth: 1, Crash: true, Path: "MANIFEST"},
		{Op: OpSync, Rate: 0.01},
		{Op: OpSync, Nth: 7, After: true},
		{Op: OpOpen, Nth: 2, After: true, Crash: true},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d: got %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"sync", "zap:fail", "sync:zap", "sync:fail@0", "sync:fail~2", "sync:fail@x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q): want error", bad)
		}
	}
}
