package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/topk"
	"repro/internal/vec"
)

// fakeBackend answers query q with k rows whose IDs encode q[0], records
// every dispatched batch size, and can block or delay to stage overload
// and coalescing scenarios.
type fakeBackend struct {
	dim     int
	delay   time.Duration
	block   chan struct{} // when non-nil, SearchBatch waits for close
	entered chan struct{} // when non-nil, receives one token per SearchBatch call

	degraded    bool  // when set, every batch reports a partial answer
	failedParts []int // partitions reported as failed alongside degraded

	mu      sync.Mutex
	batches []int
	queries int
}

func (f *fakeBackend) Dim() int  { return f.dim }
func (f *fakeBackend) MaxK() int { return 0 }

func (f *fakeBackend) SearchBatch(ctx context.Context, qs *vec.Dataset, k int) (BatchOutput, error) {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.block != nil {
		<-f.block
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, qs.Len())
	f.queries += qs.Len()
	f.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return BatchOutput{}, err
	}
	out := make([][]topk.Result, qs.Len())
	for i := range out {
		base := int64(qs.At(i)[0])
		row := make([]topk.Result, k)
		for j := range row {
			row[j] = topk.Result{ID: base*1000 + int64(j), Dist: float32(j)}
		}
		out[i] = row
	}
	return BatchOutput{Results: out, Degraded: f.degraded, FailedPartitions: f.failedParts}, nil
}

func (f *fakeBackend) snapshot() (batches []int, queries int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...), f.queries
}

func query(dim int, tag float32) []float32 {
	q := make([]float32, dim)
	q[0] = tag
	return q
}

// TestBatcherCoalesces: concurrent submissions land in shared rounds —
// the observed max batch size exceeds 1 and every caller still gets its
// own correct, k-trimmed row.
func TestBatcherCoalesces(t *testing.T) {
	fb := &fakeBackend{dim: 4}
	b := NewBatcher(fb, BatcherConfig{MaxBatch: 32, MaxWait: 50 * time.Millisecond, QueueDepth: 64}, nil)
	defer b.Drain(context.Background())

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([][]topk.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], _, errs[i] = b.Do(context.Background(), query(4, float32(i)), 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(rows[i]) != 3 {
			t.Fatalf("request %d: got %d results, want 3", i, len(rows[i]))
		}
		if rows[i][0].ID != int64(i)*1000 {
			t.Fatalf("request %d: got row for tag %d", i, rows[i][0].ID/1000)
		}
	}
	batches, queries := fb.snapshot()
	if queries != n {
		t.Fatalf("backend saw %d queries, want %d", queries, n)
	}
	max := 0
	for _, sz := range batches {
		if sz > max {
			max = sz
		}
	}
	if max < 2 {
		t.Fatalf("no coalescing observed: batch sizes %v", batches)
	}
	t.Logf("coalesced %d requests into %d batches (max size %d)", n, len(batches), max)
}

// TestBatcherDropsExpired: a request whose deadline passed while queued
// is answered with its context error and never reaches the backend.
func TestBatcherDropsExpired(t *testing.T) {
	fb := &fakeBackend{dim: 4}
	stats := NewStats()
	b := NewBatcher(fb, BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond, QueueDepth: 8}, stats)
	defer b.Drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, err := b.Submit(ctx, query(4, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", a.err)
	}
	if _, queries := fb.snapshot(); queries != 0 {
		t.Fatalf("expired query reached the backend (%d queries)", queries)
	}
	if got := stats.DeadlineDrops.Load(); got != 1 {
		t.Fatalf("DeadlineDrops = %d, want 1", got)
	}
}

// TestBatcherOverload: once the dispatcher is busy and the bounded queue
// is full, Submit sheds immediately with ErrOverloaded.
func TestBatcherOverload(t *testing.T) {
	fb := &fakeBackend{dim: 4, block: make(chan struct{}), entered: make(chan struct{}, 4)}
	stats := NewStats()
	b := NewBatcher(fb, BatcherConfig{MaxBatch: 1, MaxWait: time.Millisecond, QueueDepth: 2}, stats)
	defer b.Drain(context.Background())

	// First submission is collected by the dispatcher and blocks inside
	// the backend; wait for that handshake so queue occupancy is exact.
	first, err := b.Submit(context.Background(), query(4, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	<-fb.entered

	// Fill the admission queue.
	waiting := make([]<-chan answer, 0, 2)
	for i := 1; i <= 2; i++ {
		ch, err := b.Submit(context.Background(), query(4, float32(i)), 1)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waiting = append(waiting, ch)
	}
	// The queue is full: the next submission must shed.
	if _, err := b.Submit(context.Background(), query(4, 9), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if got := stats.Shed.Load(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	// Release the backend (a closed channel unblocks every later round):
	// everything admitted still completes.
	close(fb.block)
	if a := <-first; a.err != nil {
		t.Fatal(a.err)
	}
	for i, ch := range waiting {
		if a := <-ch; a.err != nil {
			t.Fatalf("queued request %d: %v", i, a.err)
		}
	}
}

// TestBatcherDrain: Drain finishes queued work, then refuses new
// submissions with ErrDraining.
func TestBatcherDrain(t *testing.T) {
	fb := &fakeBackend{dim: 4, delay: 2 * time.Millisecond}
	b := NewBatcher(fb, BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16}, nil)

	chans := make([]<-chan answer, 0, 8)
	for i := 0; i < 8; i++ {
		ch, err := b.Submit(context.Background(), query(4, float32(i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		a := <-ch
		if a.err != nil {
			t.Fatalf("request %d lost in drain: %v", i, a.err)
		}
	}
	if _, err := b.Submit(context.Background(), query(4, 0), 2); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining after drain, got %v", err)
	}
	if _, queries := fb.snapshot(); queries != 8 {
		t.Fatalf("backend saw %d queries, want all 8", queries)
	}
}
