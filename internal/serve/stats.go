package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Stats aggregates the gateway's served-traffic counters. Counters are
// atomics (hot path); the latency/batch-size reservoirs are mutex-backed
// rings (metrics.Reservoir) summarized only on /varz scrape.
type Stats struct {
	Requests       atomic.Int64 // queries received over HTTP (after parsing)
	Batches        atomic.Int64 // backend rounds dispatched
	Queries        atomic.Int64 // queries that reached the backend
	Shed           atomic.Int64 // admissions refused with 429
	DeadlineDrops  atomic.Int64 // queued entries expired before dispatch
	CacheHits      atomic.Int64 // answered from the result cache
	CacheMisses    atomic.Int64 // had to search (cache enabled only)
	Coalesced      atomic.Int64 // answered by another request's single-flight search
	BackendErrors  atomic.Int64 // backend rounds that failed
	BadRequests    atomic.Int64 // malformed HTTP requests
	Upserts        atomic.Int64 // vectors ingested via POST /v1/upsert
	Deletes        atomic.Int64 // IDs tombstoned via POST /v1/delete
	WritesRejected atomic.Int64 // mutations refused by the open write circuit breaker

	HybridRequests  atomic.Int64 // hybrid queries received (after parsing)
	HybridCacheHits atomic.Int64 // answered from the hybrid result cache

	DegradedBatches   atomic.Int64 // backend rounds that returned a partial (degraded) answer
	DegradedResponses atomic.Int64 // HTTP responses delivered with degraded markers
	TopologyPurges    atomic.Int64 // cache purges forced by shard-topology changes

	queueDepth atomic.Int64 // entries currently admitted but not collected

	batchSizes metrics.Reservoir // queries per dispatched round
	latencies  metrics.Reservoir // per-request end-to-end µs (HTTP handler view)
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

// recordBatch accounts one dispatched round.
func (s *Stats) recordBatch(size int) {
	s.Batches.Add(1)
	s.Queries.Add(int64(size))
	s.batchSizes.Push(float64(size))
}

// RecordLatency accounts one served request's end-to-end latency.
func (s *Stats) RecordLatency(d time.Duration) {
	s.latencies.Push(float64(d.Microseconds()))
}

// Snapshot is the JSON shape /varz exports.
type Snapshot struct {
	Requests       int64 `json:"requests"`
	Batches        int64 `json:"batches"`
	Queries        int64 `json:"queries"`
	Shed           int64 `json:"shed"`
	DeadlineDrops  int64 `json:"deadline_drops"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Coalesced      int64 `json:"coalesced"`
	BackendErrors  int64 `json:"backend_errors"`
	BadRequests    int64 `json:"bad_requests"`
	Upserts        int64 `json:"upserts"`
	Deletes        int64 `json:"deletes"`
	WritesRejected int64 `json:"writes_rejected"`
	QueueDepth     int64 `json:"queue_depth"`

	HybridRequests  int64 `json:"hybrid_requests"`
	HybridCacheHits int64 `json:"hybrid_cache_hits"`

	DegradedBatches   int64 `json:"degraded_batches"`
	DegradedResponses int64 `json:"degraded_responses"`
	TopologyPurges    int64 `json:"topology_purges"`

	// MeanBatchSize is Queries/Batches — the amortization the
	// micro-batcher is buying.
	MeanBatchSize float64         `json:"mean_batch_size"`
	BatchSize     metrics.Summary `json:"batch_size"`
	LatencyUS     metrics.Summary `json:"latency_us"`

	Runtime metrics.RuntimeSnapshot `json:"runtime"`
}

// Snapshot captures every counter plus a process runtime snapshot.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Requests:       s.Requests.Load(),
		Batches:        s.Batches.Load(),
		Queries:        s.Queries.Load(),
		Shed:           s.Shed.Load(),
		DeadlineDrops:  s.DeadlineDrops.Load(),
		CacheHits:      s.CacheHits.Load(),
		CacheMisses:    s.CacheMisses.Load(),
		Coalesced:      s.Coalesced.Load(),
		BackendErrors:  s.BackendErrors.Load(),
		BadRequests:    s.BadRequests.Load(),
		Upserts:        s.Upserts.Load(),
		Deletes:        s.Deletes.Load(),
		WritesRejected: s.WritesRejected.Load(),
		QueueDepth:     s.queueDepth.Load(),

		HybridRequests:  s.HybridRequests.Load(),
		HybridCacheHits: s.HybridCacheHits.Load(),

		DegradedBatches:   s.DegradedBatches.Load(),
		DegradedResponses: s.DegradedResponses.Load(),
		TopologyPurges:    s.TopologyPurges.Load(),
		BatchSize:         s.batchSizes.Summarize(),
		LatencyUS:         s.latencies.Summarize(),
		Runtime:           metrics.CaptureRuntime(),
	}
	if snap.Batches > 0 {
		snap.MeanBatchSize = float64(snap.Queries) / float64(snap.Batches)
	}
	return snap
}
