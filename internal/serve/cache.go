package serve

import (
	"container/list"
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/topk"
)

// cacheKey fingerprints a (collection, filter, query vector, k) tuple.
// FNV-1a over the raw float bits: exact-match caching only, which is
// what repeated traffic (hot queries, retries, loadgen loops) produces.
// The collection name and the filter's canonical form are part of the
// key even though caches are per-tenant — the same query under a
// different filter (or in a different collection) is a different
// result set and must never collide. Both strings are length-prefixed
// so ("ab","c") and ("a","bc") cannot alias.
func cacheKey(tenant, canon string, q []float32, k int) uint64 {
	h := fnv.New64a()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(tenant)))
	h.Write(b[:])
	h.Write([]byte(tenant))
	binary.LittleEndian.PutUint32(b[:], uint32(len(canon)))
	h.Write(b[:])
	h.Write([]byte(canon))
	binary.LittleEndian.PutUint32(b[:], uint32(k))
	h.Write(b[:])
	for _, x := range q {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		h.Write(b[:])
	}
	return h.Sum64()
}

// flight is one in-progress search that duplicate concurrent requests
// wait on instead of searching again.
type flight struct {
	done chan struct{} // closed when res/meta/err are set
	res  []topk.Result
	meta BatchMeta
	err  error
}

// resultCache is a bounded LRU of recent results plus a single-flight
// table of in-progress searches. Result slices stored here are treated
// as immutable by every reader.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[uint64]*list.Element
	flights map[uint64]*flight
}

type cacheEntry struct {
	key uint64
	res []topk.Result
}

// newResultCache returns a cache retaining up to capacity entries;
// capacity <= 0 disables storage (single-flight dedup still works).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[uint64]*list.Element),
		flights: make(map[uint64]*flight),
	}
}

// get returns a cached result row and refreshes its recency.
func (c *resultCache) get(key uint64) ([]topk.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result row, evicting the least recently used entry past
// capacity.
func (c *resultCache) put(key uint64, res []topk.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// purge drops every cached entry. Mutations call it: any cached row may
// now contain a deleted ID or miss a fresh insert. In-flight searches
// (flights) are left alone — they resolve against whichever engine state
// their batch ran on, which is always a valid snapshot.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[uint64]*list.Element)
}

// Len reports the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// startFlight registers interest in key. The first caller becomes the
// leader (leader=true) and must call finishFlight exactly once; later
// callers get the shared flight to wait on.
func (c *resultCache) startFlight(key uint64) (f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// finishFlight publishes the leader's outcome to all waiters and, on
// success, stores the row in the LRU. Degraded rows are never stored:
// they are missing neighbors from failed partitions, and serving them
// after the cluster recovers would silently pin the outage's results.
func (c *resultCache) finishFlight(key uint64, f *flight, res []topk.Result, meta BatchMeta, err error) {
	f.res, f.meta, f.err = res, meta, err
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if err == nil && !meta.Degraded {
		c.put(key, res)
	}
}

// wait blocks until the flight resolves or ctx expires.
func (f *flight) wait(ctx context.Context) ([]topk.Result, BatchMeta, error) {
	select {
	case <-f.done:
		return f.res, f.meta, f.err
	case <-ctx.Done():
		return nil, BatchMeta{}, ctx.Err()
	}
}
