package serve

import (
	"math/rand"
	"testing"

	"repro/internal/hnsw"
)

// TestVarzFrozenSection: once the engine is frozen, /varz grows a
// "frozen" section with the arena footprint and quantized-work counters
// the operator tunes -ef/-rerank-k against.
func TestVarzFrozenSection(t *testing.T) {
	e := testEngine(t)
	b := &EngineBackend{Engine: e}
	if v := b.Varz(); v["frozen"] != nil {
		t.Fatal("frozen section present before freezing")
	}
	if err := e.Freeze(hnsw.FreezeOptions{SQ8: true}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		if _, err := e.Search(randQuery(rng, 8), 10); err != nil {
			t.Fatal(err)
		}
	}
	v := b.Varz()
	fz, ok := v["frozen"].(map[string]any)
	if !ok {
		t.Fatalf("no frozen varz section: %v", v)
	}
	if fz["partitions"].(int) != 4 || fz["sq8"].(bool) != true {
		t.Errorf("frozen shape: %v", fz)
	}
	if fz["arena_bytes"].(int64) <= 0 {
		t.Errorf("arena_bytes = %v", fz["arena_bytes"])
	}
	if fz["searches"].(int64) == 0 || fz["quant_scans"].(int64) == 0 || fz["reranked"].(int64) == 0 {
		t.Errorf("work counters flat: %v", fz)
	}
	rr := fz["rerank_ratio"].(float64)
	if rr <= 0 || rr >= 1 {
		t.Errorf("rerank_ratio = %v, want in (0,1)", rr)
	}
}
