package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collection"
)

// testCollectionServer spins a registry-backed gateway with one
// pre-created collection "default" (dim 8) so legacy routes work.
func testCollectionServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server, *collection.Registry) {
	t.Helper()
	reg, err := collection.Open(t.TempDir(), collection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultCollection, collection.Config{Dim: 8}); err != nil {
		t.Fatal(err)
	}
	if cfg.Batcher.MaxWait == 0 {
		cfg.Batcher = BatcherConfig{MaxBatch: 16, MaxWait: time.Millisecond, QueueDepth: 64}
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	s, err := NewCollectionServer(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
	})
	return s, ts, reg
}

func decodeErr(t *testing.T, data []byte) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("error body not JSON: %v: %s", err, data)
	}
	return er
}

// TestCollectionServerEndToEnd drives the multi-tenant surface: create
// a second collection over HTTP, write tagged points into both, run
// filtered searches through the per-collection routes, check the
// legacy aliases and /varz sections, and drop the collection again.
func TestCollectionServerEndToEnd(t *testing.T) {
	s, ts, _ := testCollectionServer(t, ServerConfig{})
	client := ts.Client()

	// Create "beta" with a different dim and metric at runtime.
	resp, data := postJSON(t, client, ts.URL, "/v1/collections",
		map[string]any{"name": "beta", "dim": 4, "metric": "cosine"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create beta: %d %s", resp.StatusCode, data)
	}
	// Duplicate create conflicts.
	resp, data = postJSON(t, client, ts.URL, "/v1/collections",
		map[string]any{"name": "beta", "dim": 4})
	if resp.StatusCode != http.StatusConflict || decodeErr(t, data).Code != codeCollectionExists {
		t.Fatalf("duplicate create: %d %s", resp.StatusCode, data)
	}

	// List shows both, sorted.
	lresp, err := client.Get(ts.URL + "/v1/collections")
	if err != nil {
		t.Fatal(err)
	}
	ldata, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var list struct {
		Collections []collectionInfo `json:"collections"`
	}
	if err := json.Unmarshal(ldata, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Collections) != 2 || list.Collections[0].Name != "beta" ||
		list.Collections[1].Name != DefaultCollection {
		t.Fatalf("list = %s", ldata)
	}
	if list.Collections[0].Dim != 4 || list.Collections[0].Metric != "cosine" {
		t.Fatalf("beta info wrong: %s", ldata)
	}

	// Tagged upserts: legacy route hits "default", the prefixed route
	// hits "beta".
	rng := rand.New(rand.NewSource(11))
	var defPoints, betaPoints []map[string]any
	for i := 0; i < 60; i++ {
		defPoints = append(defPoints, map[string]any{
			"id": 1000 + i, "vector": randQuery(rng, 8),
			"tags": map[string]string{"lang": []string{"en", "de", "fr"}[i%3]},
		})
		betaPoints = append(betaPoints, map[string]any{
			"id": 9_000_000 + i, "vector": randQuery(rng, 4),
			"tags": map[string]string{"hot": fmt.Sprintf("%d", i%2)},
		})
	}
	resp, data = postJSON(t, client, ts.URL, "/v1/upsert", map[string]any{"points": defPoints})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default upsert: %d %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL, "/v1/collections/beta/upsert", map[string]any{"points": betaPoints})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta upsert: %d %s", resp.StatusCode, data)
	}

	// Filtered search in default: only lang=de ids (1000+i, i%3==1) may
	// come back, and exploring past non-matching points must fill k.
	resp, data = postJSON(t, client, ts.URL, "/v1/collections/default/search",
		map[string]any{"query": randQuery(rng, 8), "k": 5, "filter": "lang=de"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered search: %d %s", resp.StatusCode, data)
	}
	var sr searchResponse
	json.Unmarshal(data, &sr)
	if len(sr.Results) != 1 || len(sr.Results[0].IDs) != 5 {
		t.Fatalf("filtered search returned %s", data)
	}
	for _, id := range sr.Results[0].IDs {
		if (id-1000)%3 != 1 {
			t.Fatalf("lang=de returned id %d", id)
		}
	}

	// Cross-collection isolation over HTTP: beta's filtered search only
	// returns beta ids.
	resp, data = postJSON(t, client, ts.URL, "/v1/collections/beta/search",
		map[string]any{"query": randQuery(rng, 4), "k": 5, "filter": "hot=1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta search: %d %s", resp.StatusCode, data)
	}
	json.Unmarshal(data, &sr)
	for _, id := range sr.Results[0].IDs {
		if id < 9_000_000 {
			t.Fatalf("beta search leaked foreign id %d", id)
		}
	}

	// Legacy /v1/search aliases the default collection.
	resp, data = postSearch(t, client, ts.URL, map[string]any{"query": randQuery(rng, 8), "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy search: %d %s", resp.StatusCode, data)
	}
	json.Unmarshal(data, &sr)
	for _, id := range sr.Results[0].IDs {
		if id < 1000 || id >= 9_000_000 {
			t.Fatalf("legacy search returned non-default id %d", id)
		}
	}

	// /varz exposes a per-collection section for both tenants.
	vresp, err := client.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	vdata, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	var varz struct {
		Collections map[string]struct {
			Dim      int   `json:"dim"`
			Points   int   `json:"points"`
			Tagged   int   `json:"tagged"`
			Cache    int   `json:"cache_entries"`
			Inserted int64 `json:"inserted"`
		} `json:"collections"`
	}
	if err := json.Unmarshal(vdata, &varz); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, vdata)
	}
	if varz.Collections["default"].Dim != 8 || varz.Collections["beta"].Dim != 4 {
		t.Fatalf("varz collections sections wrong: %s", vdata)
	}
	if varz.Collections["beta"].Tagged != 60 {
		t.Fatalf("beta tagged = %d, want 60", varz.Collections["beta"].Tagged)
	}

	// Drop beta: 200, then requests 404 and the listing shrinks.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/collections/beta", nil)
	dresp, err := client.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drop beta: %d", dresp.StatusCode)
	}
	resp, data = postJSON(t, client, ts.URL, "/v1/collections/beta/search",
		map[string]any{"query": randQuery(rng, 4)})
	if resp.StatusCode != http.StatusNotFound || decodeErr(t, data).Code != codeUnknownCollection {
		t.Fatalf("search dropped collection: %d %s", resp.StatusCode, data)
	}
	_ = s
}

// TestTypedErrors pins the machine-readable error contract: status and
// code for every failure class the gateway distinguishes.
func TestTypedErrors(t *testing.T) {
	_, ts, reg := testCollectionServer(t, ServerConfig{})
	client := ts.Client()
	if _, err := reg.Create("tiny", collection.Config{Dim: 4, MaxInflight: 1}); err != nil {
		t.Fatal(err)
	}
	// The registry-created collection is not yet a tenant (created
	// outside HTTP); recreate the server path by hitting the admin API
	// instead.
	resp, data := postJSON(t, client, ts.URL, "/v1/collections",
		map[string]any{"name": "quota", "dim": 4, "max_inflight": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create quota collection: %d %s", resp.StatusCode, data)
	}
	qcol, err := reg.Get("quota")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		path       string
		body       map[string]any
		wantStatus int
		wantCode   string
		retryAfter bool
		setup      func() func()
	}{
		{
			name: "unknown collection search", path: "/v1/collections/nope/search",
			body:       map[string]any{"query": []float32{1, 2, 3, 4}},
			wantStatus: http.StatusNotFound, wantCode: codeUnknownCollection,
		},
		{
			name: "unknown collection upsert", path: "/v1/collections/nope/upsert",
			body:       map[string]any{"id": 1, "vector": []float32{1, 2, 3, 4}},
			wantStatus: http.StatusNotFound, wantCode: codeUnknownCollection,
		},
		{
			name: "dim mismatch search", path: "/v1/collections/default/search",
			body:       map[string]any{"query": []float32{1, 2}},
			wantStatus: http.StatusBadRequest, wantCode: codeDimMismatch,
		},
		{
			name: "dim mismatch upsert", path: "/v1/collections/default/upsert",
			body:       map[string]any{"id": 7, "vector": []float32{1, 2}},
			wantStatus: http.StatusBadRequest, wantCode: codeDimMismatch,
		},
		{
			name: "bad filter", path: "/v1/collections/default/search",
			body:       map[string]any{"query": make([]float32, 8), "filter": "lang=={"},
			wantStatus: http.StatusBadRequest, wantCode: codeBadFilter,
		},
		{
			name: "bad collection name", path: "/v1/collections",
			body:       map[string]any{"name": "no/slash", "dim": 4},
			wantStatus: http.StatusBadRequest, wantCode: codeBadName,
		},
		{
			name: "bad collection config", path: "/v1/collections",
			body:       map[string]any{"name": "nodim"},
			wantStatus: http.StatusBadRequest, wantCode: codeBadRequest,
		},
		{
			name: "quota exceeded search", path: "/v1/collections/quota/search",
			body:       map[string]any{"query": []float32{0, 0, 0, 0}},
			wantStatus: http.StatusTooManyRequests, wantCode: codeQuota, retryAfter: true,
			setup: func() func() {
				if err := qcol.Acquire(); err != nil {
					t.Fatal(err)
				}
				return qcol.Release
			},
		},
		{
			name: "quota exceeded upsert", path: "/v1/collections/quota/upsert",
			body:       map[string]any{"id": 3, "vector": []float32{0, 0, 0, 0}},
			wantStatus: http.StatusTooManyRequests, wantCode: codeQuota, retryAfter: true,
			setup: func() func() {
				if err := qcol.Acquire(); err != nil {
					t.Fatal(err)
				}
				return qcol.Release
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.setup != nil {
				defer tc.setup()()
			}
			resp, data := postJSON(t, client, ts.URL, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, data)
			}
			er := decodeErr(t, data)
			if er.Code != tc.wantCode {
				t.Fatalf("code %q, want %q: %s", er.Code, tc.wantCode, data)
			}
			if er.Error == "" {
				t.Fatalf("error message empty: %s", data)
			}
			if tc.retryAfter && resp.Header.Get("Retry-After") == "" {
				t.Fatalf("%d response missing Retry-After", tc.wantStatus)
			}
		})
	}
}

// TestCacheKeyedByCollectionAndFilter is the cache-correctness
// regression: the same query vector is a different cache entry per
// collection and per canonical filter, equivalent filter spellings
// share an entry, and a mutation in one collection purges only that
// collection's cache.
func TestCacheKeyedByCollectionAndFilter(t *testing.T) {
	_, ts, _ := testCollectionServer(t, ServerConfig{})
	client := ts.Client()
	resp, data := postJSON(t, client, ts.URL, "/v1/collections",
		map[string]any{"name": "twin", "dim": 8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create twin: %d %s", resp.StatusCode, data)
	}

	rng := rand.New(rand.NewSource(5))
	for _, col := range []string{"default", "twin"} {
		var pts []map[string]any
		for i := 0; i < 40; i++ {
			pts = append(pts, map[string]any{
				"id": 100 + i, "vector": randQuery(rng, 8),
				"tags": map[string]string{"p": fmt.Sprintf("%d", i%2), "q": "x"},
			})
		}
		resp, data := postJSON(t, client, ts.URL, "/v1/collections/"+col+"/upsert",
			map[string]any{"points": pts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s upsert: %d %s", col, resp.StatusCode, data)
		}
	}

	q := randQuery(rng, 8)
	search := func(col, filter string) searchResponse {
		t.Helper()
		body := map[string]any{"query": q, "k": 3}
		if filter != "" {
			body["filter"] = filter
		}
		resp, data := postJSON(t, client, ts.URL, "/v1/collections/"+col+"/search", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s search (filter %q): %d %s", col, filter, resp.StatusCode, data)
		}
		var sr searchResponse
		json.Unmarshal(data, &sr)
		return sr
	}
	cached := func(sr searchResponse) bool { return sr.Results[0].Cached }

	// Warm default unfiltered, then assert every distinct (collection,
	// filter) axis misses while repeats hit.
	if cached(search("default", "")) {
		t.Fatal("first search came back cached")
	}
	if !cached(search("default", "")) {
		t.Fatal("repeat unfiltered search not cached")
	}
	if cached(search("twin", "")) {
		t.Fatal("same query in another collection reused the cache entry")
	}
	if cached(search("default", "p=1")) {
		t.Fatal("filtered search reused the unfiltered cache entry")
	}
	if !cached(search("default", "p=1")) {
		t.Fatal("repeat filtered search not cached")
	}
	if cached(search("default", "p=0")) {
		t.Fatal("different filter value reused the cache entry")
	}
	// Equivalent spellings canonicalize to one entry.
	if cached(search("default", "p=1 and q=x")) {
		t.Fatal("conjunction unexpectedly cached already")
	}
	if !cached(search("default", "q=x && p=1")) {
		t.Fatal("equivalent filter spelling missed the cache")
	}

	// A mutation in twin purges only twin's cache.
	if !cached(search("twin", "")) {
		t.Fatal("twin repeat not cached before mutation")
	}
	resp, data = postJSON(t, client, ts.URL, "/v1/collections/twin/upsert",
		map[string]any{"id": 999, "vector": randQuery(rng, 8)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("twin mutation: %d %s", resp.StatusCode, data)
	}
	if cached(search("twin", "")) {
		t.Fatal("twin cache survived twin's own mutation")
	}
	if !cached(search("default", "")) {
		t.Fatal("default cache was purged by twin's mutation")
	}
	if !cached(search("default", "p=1")) {
		t.Fatal("default filtered cache was purged by twin's mutation")
	}
}

// TestCollectionServerConcurrentIsolation hammers two collections with
// mixed mutating and filtered-search HTTP traffic; run under -race. Any
// cross-collection id in a response is leakage.
func TestCollectionServerConcurrentIsolation(t *testing.T) {
	_, ts, _ := testCollectionServer(t, ServerConfig{CacheSize: -1})
	client := ts.Client()
	resp, data := postJSON(t, client, ts.URL, "/v1/collections",
		map[string]any{"name": "wide", "dim": 12, "metric": "cosine"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create wide: %d %s", resp.StatusCode, data)
	}

	type colSpec struct {
		name string
		dim  int
		base int64
	}
	specs := []colSpec{{"default", 8, 1000}, {"wide", 12, 5_000_000}}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	for si, spec := range specs {
		wg.Add(2)
		go func(spec colSpec, seed int64) { // writer
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; !stop.Load(); i++ {
				body := map[string]any{
					"id": spec.base + int64(i), "vector": randQuery(rng, spec.dim),
					"tags": map[string]string{"par": fmt.Sprintf("%d", i%2)},
				}
				resp, data := postJSON(t, client, ts.URL, "/v1/collections/"+spec.name+"/upsert", body)
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("%s upsert: %d %s", spec.name, resp.StatusCode, data))
					return
				}
			}
		}(spec, int64(si+1))
		go func(spec colSpec, seed int64) { // filtered reader
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				resp, data := postJSON(t, client, ts.URL, "/v1/collections/"+spec.name+"/search",
					map[string]any{"query": randQuery(rng, spec.dim), "k": 4, "filter": "par=0"})
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("%s search: %d %s", spec.name, resp.StatusCode, data))
					return
				}
				var sr searchResponse
				json.Unmarshal(data, &sr)
				for _, id := range sr.Results[0].IDs {
					if id < spec.base || id >= spec.base+1_000_000 {
						fail(fmt.Errorf("%s returned foreign id %d", spec.name, id))
						return
					}
				}
			}
		}(spec, int64(si+10))
	}
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
