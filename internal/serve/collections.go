package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/collection"
)

// Collection admin surface. List works on every server; create and
// drop need a registry-backed one (NewCollectionServer) — a
// single-backend gateway has nowhere to put a new collection's files
// and answers 501.

// collectionInfo is one entry of the GET /v1/collections response.
type collectionInfo struct {
	Name   string `json:"name"`
	Dim    int    `json:"dim"`
	Metric string `json:"metric,omitempty"`
	Points int    `json:"points"`
	Frozen bool   `json:"frozen,omitempty"`
}

// createCollectionRequest is the POST /v1/collections body: a name
// plus the collection's Config fields inline ({"name":"docs","dim":128,
// "metric":"cosine",...}).
type createCollectionRequest struct {
	Name string `json:"name"`
	collection.Config
}

func (s *Server) handleColList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	infos := make([]collectionInfo, 0, len(ts))
	for _, t := range ts {
		info := collectionInfo{Name: t.name, Dim: t.backend.Dim()}
		if t.col != nil {
			cfg := t.col.Config()
			info.Metric = cfg.Metric
			info.Frozen = cfg.Frozen
			info.Points = t.col.Engine().Len()
		}
		infos = append(infos, info)
	}
	// Stable order for scripts and tests.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"collections": infos})
}

func (s *Server) handleColCreate(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeError(w, http.StatusNotImplemented, codeNotImplemented,
			"this gateway serves a fixed backend; collection management needs -collections mode")
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, ErrDraining.Error())
		return
	}
	var req createCollectionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
		return
	}
	col, err := s.reg.Create(req.Name, req.Config)
	if err != nil {
		switch {
		case errors.Is(err, collection.ErrExists):
			writeError(w, http.StatusConflict, codeCollectionExists, err.Error())
		case errors.Is(err, collection.ErrBadName):
			writeError(w, http.StatusBadRequest, codeBadName, err.Error())
		case errors.Is(err, collection.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, codeDraining, err.Error())
		default:
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		}
		return
	}
	t := s.newTenant(req.Name, &CollectionBackend{Col: col, Threads: s.cfg.Threads}, col)
	s.mu.Lock()
	s.tenants[req.Name] = t
	s.mu.Unlock()
	cfg := col.Config()
	writeJSON(w, http.StatusCreated, collectionInfo{
		Name: req.Name, Dim: cfg.Dim, Metric: cfg.Metric, Frozen: cfg.Frozen,
	})
}

func (s *Server) handleColDrop(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeError(w, http.StatusNotImplemented, codeNotImplemented,
			"this gateway serves a fixed backend; collection management needs -collections mode")
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownCollection, "unknown collection "+name)
		return
	}
	// Unregistered first: new requests 404 immediately, then the
	// tenant's queued work finishes, then the registry drains the
	// collection's own in-flight admissions and deletes its files.
	if err := t.batcher.Drain(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, codeDraining, "drop interrupted: "+err.Error())
		return
	}
	if err := s.reg.Drop(r.Context(), name); err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}
