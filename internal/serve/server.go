package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/topk"
)

// ServerConfig tunes the HTTP gateway.
type ServerConfig struct {
	// Batcher configures the micro-batcher (see BatcherConfig).
	Batcher BatcherConfig
	// DefaultK is the neighbor count when a request omits k (default 10).
	DefaultK int
	// MaxK caps per-request k (default: the backend's MaxK, else 1000).
	MaxK int
	// CacheSize is the LRU result-cache capacity in entries; 0 disables
	// result caching (single-flight deduplication stays on regardless),
	// negative uses the default 4096.
	CacheSize int
	// DefaultTimeout bounds requests that do not carry their own
	// timeout_ms; 0 leaves them deadline-free.
	DefaultTimeout time.Duration
	// MaxQueries bounds the queries one POST may carry (default 1024).
	MaxQueries int
}

func (c *ServerConfig) fill(backend Backend) {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		if mk := backend.MaxK(); mk > 0 {
			c.MaxK = mk
		} else {
			c.MaxK = 1000
		}
	}
	if c.DefaultK > c.MaxK {
		c.DefaultK = c.MaxK
	}
	if c.CacheSize < 0 {
		c.CacheSize = 4096
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 1024
	}
}

// Server is the gateway: HTTP handlers over the micro-batcher, the
// result cache, and the stats collector.
type Server struct {
	backend Backend
	cfg     ServerConfig
	batcher *Batcher
	cache   *resultCache
	stats   *Stats
	mux     *http.ServeMux
}

// NewServer wires the gateway over backend and starts its dispatcher.
func NewServer(backend Backend, cfg ServerConfig) *Server {
	cfg.fill(backend)
	s := &Server{
		backend: backend,
		cfg:     cfg,
		stats:   NewStats(),
		cache:   newResultCache(cfg.CacheSize),
		mux:     http.NewServeMux(),
	}
	s.batcher = NewBatcher(backend, cfg.Batcher, s.stats)
	// Routed backends report topology transitions (shard-map swaps,
	// replicas dying or recovering); every one invalidates the result
	// cache, so a cached row can never outlive the topology it was
	// computed against.
	if tn, ok := backend.(TopologyNotifier); ok {
		tn.OnTopologyChange(func() {
			s.cache.purge()
			s.stats.TopologyPurges.Add(1)
		})
	}
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/upsert", s.handleUpsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/varz", s.handleVarz)
	return s
}

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the served-traffic counters (tests and embedders).
func (s *Server) Stats() *Stats { return s.stats }

// Drain stops admitting queries, finishes everything queued, and waits
// (bounded by ctx). Call it after http.Server.Shutdown so in-flight
// handlers have delivered their submissions.
func (s *Server) Drain(ctx context.Context) error { return s.batcher.Drain(ctx) }

// Draining reports whether Drain has begun (healthz turns 503).
func (s *Server) Draining() bool { return s.batcher.Draining() }

// searchRequest is the POST /v1/search body. Exactly one of Query or
// Queries must be set.
type searchRequest struct {
	Query   []float32   `json:"query,omitempty"`
	Queries [][]float32 `json:"queries,omitempty"`
	K       int         `json:"k,omitempty"`
	// TimeoutMS is the per-request deadline; it rides the request context
	// down to the batched search call. 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// searchResult is one query's answer.
type searchResult struct {
	IDs    []int64   `json:"ids"`
	Dists  []float32 `json:"dists"`
	Cached bool      `json:"cached,omitempty"`
}

// searchResponse is the 200 body. Degraded marks a partial answer: some
// shards/partitions were unreachable, and FailedPartitions lists them
// (union over every query in the request). Results are still valid but
// may miss neighbors from those partitions.
type searchResponse struct {
	K                int            `json:"k"`
	TookUS           int64          `json:"took_us"`
	Degraded         bool           `json:"degraded,omitempty"`
	FailedPartitions []int          `json:"failed_partitions,omitempty"`
	Results          []searchResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// failStatus maps a per-query error to the request's HTTP status. When a
// batch fails in several ways the most actionable status wins: draining
// beats overload beats deadline beats internal.
func failStatus(errs []error) (int, error) {
	rank := func(err error) int {
		switch {
		case errors.Is(err, ErrDraining):
			return 3
		case errors.Is(err, ErrOverloaded):
			return 2
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return 1
		default:
			return 0
		}
	}
	best, bestRank := error(nil), -1
	for _, err := range errs {
		if err == nil {
			continue
		}
		if r := rank(err); r > bestRank {
			best, bestRank = err, r
		}
	}
	switch bestRank {
	case 3:
		return http.StatusServiceUnavailable, best
	case 2:
		return http.StatusTooManyRequests, best
	case 1:
		return http.StatusGatewayTimeout, best
	default:
		return http.StatusInternalServerError, best
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	t0 := time.Now()
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	queries := req.Queries
	if req.Query != nil {
		if queries != nil {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "set query or queries, not both"})
			return
		}
		queries = [][]float32{req.Query}
	}
	if len(queries) == 0 {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no queries"})
		return
	}
	if len(queries) > s.cfg.MaxQueries {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("%d queries exceeds the per-request limit %d", len(queries), s.cfg.MaxQueries)})
		return
	}
	dim := s.backend.Dim()
	for i, q := range queries {
		if len(q) != dim {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("query %d has dim %d, index dim %d", i, len(q), dim)})
			return
		}
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.stats.Requests.Add(int64(len(queries)))

	// Each query goes through the cache/single-flight/batcher path on its
	// own, so members of one HTTP batch coalesce and dedup individually
	// alongside every other in-flight request.
	results := make([]searchResult, len(queries))
	metas := make([]BatchMeta, len(queries))
	errs := make([]error, len(queries))
	if len(queries) == 1 {
		results[0], metas[0], errs[0] = s.answerOne(ctx, queries[0], k)
	} else {
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q []float32) {
				defer wg.Done()
				results[i], metas[i], errs[i] = s.answerOne(ctx, q, k)
			}(i, q)
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			status, cause := failStatus(errs)
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, status, errorResponse{Error: cause.Error()})
			return
		}
	}
	// Queries of one HTTP request may land in different backend rounds;
	// the response's degraded view is the union over all of them.
	resp := searchResponse{
		K:       k,
		Results: results,
	}
	for _, m := range metas {
		if m.Degraded {
			resp.Degraded = true
			resp.FailedPartitions = core.UnionPartitions(resp.FailedPartitions, m.FailedPartitions)
		}
	}
	if resp.Degraded {
		s.stats.DegradedResponses.Add(1)
	}
	s.stats.RecordLatency(time.Since(t0))
	resp.TookUS = time.Since(t0).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// answerOne resolves a single query: cache hit, join an identical
// in-flight search, or lead one through the batcher. Cache hits carry a
// zero BatchMeta by construction — degraded rows are never stored.
func (s *Server) answerOne(ctx context.Context, q []float32, k int) (searchResult, BatchMeta, error) {
	key := cacheKey(q, k)
	if res, ok := s.cache.get(key); ok {
		s.stats.CacheHits.Add(1)
		return toSearchResult(res, true), BatchMeta{}, nil
	}
	s.stats.CacheMisses.Add(1)
	f, leader := s.cache.startFlight(key)
	if !leader {
		s.stats.Coalesced.Add(1)
		res, meta, err := f.wait(ctx)
		if err != nil {
			return searchResult{}, meta, err
		}
		return toSearchResult(res, false), meta, nil
	}
	res, meta, err := s.batcher.Do(ctx, q, k)
	s.cache.finishFlight(key, f, res, meta, err)
	if err != nil {
		return searchResult{}, meta, err
	}
	return toSearchResult(res, false), meta, nil
}

func toSearchResult(res []topk.Result, cached bool) searchResult {
	sr := searchResult{
		IDs:    make([]int64, len(res)),
		Dists:  make([]float32, len(res)),
		Cached: cached,
	}
	for i, r := range res {
		sr.IDs[i] = r.ID
		sr.Dists[i] = r.Dist
	}
	return sr
}

// writeBroken returns the error that tripped the write circuit
// breaker, or nil while the backend's write path is healthy.
func (s *Server) writeBroken() error {
	if wh, ok := s.backend.(WriteHealth); ok {
		return wh.WriteFailed()
	}
	return nil
}

// handleHealthz is both probes. Liveness (the default) answers whether
// the process should keep running: 200 unless it is draining away.
// Readiness (?ready=1) answers whether it should receive NEW traffic
// and additionally goes not-ready when the write circuit breaker is
// open — a storage-degraded replica can finish serving reads it already
// has, but a load balancer should prefer healthy replicas for fresh
// connections and an orchestrator should schedule a restart, not a
// kill.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("ready") != "" {
		if err := s.writeBroken(); err != nil {
			http.Error(w, "not-ready: write path failed: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	// Flatten the traffic snapshot to a map so VarzProvider backends can
	// add sibling sections (engine occupancy, WAL/compaction counters).
	doc := map[string]any{}
	if b, err := json.Marshal(s.stats.Snapshot()); err == nil {
		json.Unmarshal(b, &doc)
	}
	if vp, ok := s.backend.(VarzProvider); ok {
		for k, v := range vp.Varz() {
			doc[k] = v
		}
	}
	if wh, ok := s.backend.(WriteHealth); ok {
		breaker := map[string]any{
			"writes_tripped":  false,
			"writes_rejected": s.stats.WritesRejected.Load(),
		}
		if err := wh.WriteFailed(); err != nil {
			breaker["writes_tripped"] = true
			breaker["reason"] = err.Error()
		}
		doc["breaker"] = breaker
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
