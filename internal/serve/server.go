package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/topk"
)

// ServerConfig tunes the HTTP gateway.
type ServerConfig struct {
	// Batcher configures the micro-batcher (see BatcherConfig).
	Batcher BatcherConfig
	// DefaultK is the neighbor count when a request omits k (default 10).
	DefaultK int
	// MaxK caps per-request k (default: the backend's MaxK, else 1000).
	MaxK int
	// CacheSize is the per-collection LRU result-cache capacity in
	// entries; 0 disables result caching (single-flight deduplication
	// stays on regardless), negative uses the default 4096.
	CacheSize int
	// DefaultTimeout bounds requests that do not carry their own
	// timeout_ms; 0 leaves them deadline-free.
	DefaultTimeout time.Duration
	// MaxQueries bounds the queries one POST may carry (default 1024).
	MaxQueries int
	// Threads is the per-batch worker-pool width for collection-backed
	// tenants created at runtime via POST /v1/collections (0 = GOMAXPROCS).
	Threads int
}

func (c *ServerConfig) fill(backend Backend) {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
		if backend != nil {
			if mk := backend.MaxK(); mk > 0 {
				c.MaxK = mk
			}
		}
	}
	if c.DefaultK > c.MaxK {
		c.DefaultK = c.MaxK
	}
	if c.CacheSize < 0 {
		c.CacheSize = 4096
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 1024
	}
}

// Server is the gateway: HTTP handlers over per-collection tenants,
// each a micro-batcher + result cache over its backend. A
// single-backend server (NewServer) has exactly one tenant named
// "default", which the legacy un-prefixed routes resolve; a
// registry-backed server (NewCollectionServer) has one tenant per
// collection plus the create/drop admin surface.
type Server struct {
	cfg   ServerConfig
	stats *Stats
	mux   *http.ServeMux
	reg   *collection.Registry // nil in single-backend mode

	mu      sync.RWMutex
	tenants map[string]*tenant

	draining atomic.Bool
}

// NewServer wires a single-backend gateway: one tenant, "default",
// served by both the legacy routes and /v1/collections/default/*.
func NewServer(backend Backend, cfg ServerConfig) *Server {
	cfg.fill(backend)
	s := newServer(cfg, nil)
	s.tenants[DefaultCollection] = s.newTenant(DefaultCollection, backend, nil)
	return s
}

// NewCollectionServer wires a multi-tenant gateway over a collection
// registry: every registered collection becomes a tenant, and the
// /v1/collections admin routes can create and drop them at runtime.
// Legacy routes alias the collection named "default" when one exists.
func NewCollectionServer(reg *collection.Registry, cfg ServerConfig) (*Server, error) {
	cfg.fill(nil)
	s := newServer(cfg, reg)
	for _, name := range reg.Names() {
		col, err := reg.Get(name)
		if err != nil {
			return nil, err
		}
		s.tenants[name] = s.newTenant(name, &CollectionBackend{Col: col, Threads: cfg.Threads}, col)
	}
	return s, nil
}

func newServer(cfg ServerConfig, reg *collection.Registry) *Server {
	s := &Server{
		cfg:     cfg,
		stats:   NewStats(),
		mux:     http.NewServeMux(),
		reg:     reg,
		tenants: make(map[string]*tenant),
	}
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/upsert", s.handleUpsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("POST /v1/hybrid", s.handleHybrid)
	s.mux.HandleFunc("POST /v1/collections/{name}/hybrid", s.handleColHybrid)
	s.mux.HandleFunc("POST /v1/collections/{name}/search", s.handleColSearch)
	s.mux.HandleFunc("POST /v1/collections/{name}/upsert", s.handleColUpsert)
	s.mux.HandleFunc("POST /v1/collections/{name}/delete", s.handleColDelete)
	s.mux.HandleFunc("GET /v1/collections", s.handleColList)
	s.mux.HandleFunc("POST /v1/collections", s.handleColCreate)
	s.mux.HandleFunc("DELETE /v1/collections/{name}", s.handleColDrop)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/varz", s.handleVarz)
	return s
}

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the served-traffic counters (tests and embedders).
func (s *Server) Stats() *Stats { return s.stats }

// Drain stops admitting queries, finishes everything queued in every
// tenant, and waits (bounded by ctx). Call it after http.Server.Shutdown
// so in-flight handlers have delivered their submissions. The registry
// itself (stores, WALs) stays open — closing it is its owner's job.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	var first error
	for _, t := range ts {
		if err := t.batcher.Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Draining reports whether Drain has begun (healthz turns 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// searchRequest is the search POST body. Exactly one of Query or
// Queries must be set.
type searchRequest struct {
	Query   []float32   `json:"query,omitempty"`
	Queries [][]float32 `json:"queries,omitempty"`
	K       int         `json:"k,omitempty"`
	// Filter is a tag-filter expression (filter.Parse syntax) pushed
	// down into the graph traversal; empty means unfiltered.
	Filter string `json:"filter,omitempty"`
	// TimeoutMS is the per-request deadline; it rides the request context
	// down to the batched search call. 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// searchResult is one query's answer.
type searchResult struct {
	IDs    []int64   `json:"ids"`
	Dists  []float32 `json:"dists"`
	Cached bool      `json:"cached,omitempty"`
}

// searchResponse is the 200 body. Degraded marks a partial answer: some
// shards/partitions were unreachable, and FailedPartitions lists them
// (union over every query in the request). Results are still valid but
// may miss neighbors from those partitions.
type searchResponse struct {
	K                int            `json:"k"`
	TookUS           int64          `json:"took_us"`
	Degraded         bool           `json:"degraded,omitempty"`
	FailedPartitions []int          `json:"failed_partitions,omitempty"`
	Results          []searchResult `json:"results"`
}

// Machine-readable error codes carried in every error body, so clients
// can branch without parsing prose.
const (
	codeBadRequest        = "bad_request"
	codeBadFilter         = "bad_filter"
	codeDimMismatch       = "dim_mismatch"
	codeUnknownCollection = "unknown_collection"
	codeCollectionExists  = "collection_exists"
	codeBadName           = "bad_name"
	codeMissingLeg        = "missing_leg"
	codeLexicalDisabled   = "lexical_disabled"
	codeQuota             = "quota_exceeded"
	codeOverloaded        = "overloaded"
	codeDraining          = "draining"
	codeDeadline          = "deadline_exceeded"
	codeWriteFailed       = "write_failed"
	codeNotImplemented    = "not_implemented"
	codeInternal          = "internal"
)

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits a typed JSON error. Retriable statuses (429, 503)
// carry Retry-After so well-behaved clients back off.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// failStatus maps a per-query error to the request's HTTP status and
// error code. When a batch fails in several ways the most actionable
// status wins: draining beats quota beats overload beats deadline.
func failStatus(errs []error) (int, string, error) {
	rank := func(err error) int {
		switch {
		case errors.Is(err, ErrDraining), errors.Is(err, collection.ErrDraining):
			return 5
		case errors.Is(err, collection.ErrQuota):
			return 4
		case errors.Is(err, ErrOverloaded):
			return 3
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return 2
		case errors.Is(err, ErrFilterUnsupported):
			return 1
		default:
			return 0
		}
	}
	best, bestRank := error(nil), -1
	for _, err := range errs {
		if err == nil {
			continue
		}
		if r := rank(err); r > bestRank {
			best, bestRank = err, r
		}
	}
	switch bestRank {
	case 5:
		return http.StatusServiceUnavailable, codeDraining, best
	case 4:
		return http.StatusTooManyRequests, codeQuota, best
	case 3:
		return http.StatusTooManyRequests, codeOverloaded, best
	case 2:
		return http.StatusGatewayTimeout, codeDeadline, best
	case 1:
		return http.StatusNotImplemented, codeNotImplemented, best
	default:
		return http.StatusInternalServerError, codeInternal, best
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "POST only")
		return
	}
	t, ok := s.tenantFor(w, DefaultCollection)
	if !ok {
		return
	}
	s.searchTenant(t, w, r)
}

func (s *Server) handleColSearch(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.searchTenant(t, w, r)
}

func (s *Server) searchTenant(t *tenant, w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
		return
	}
	queries := req.Queries
	if req.Query != nil {
		if queries != nil {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "set query or queries, not both")
			return
		}
		queries = [][]float32{req.Query}
	}
	if len(queries) == 0 {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "no queries")
		return
	}
	if len(queries) > s.cfg.MaxQueries {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("%d queries exceeds the per-request limit %d", len(queries), s.cfg.MaxQueries))
		return
	}
	dim := t.backend.Dim()
	for i, q := range queries {
		if len(q) != dim {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeDimMismatch,
				fmt.Sprintf("query %d has dim %d, collection %s has dim %d", i, len(q), t.name, dim))
			return
		}
	}
	f, err := filter.Parse(req.Filter)
	if err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadFilter, err.Error())
		return
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.stats.Requests.Add(int64(len(queries)))

	// Each query goes through the cache/single-flight/batcher path on its
	// own, so members of one HTTP batch coalesce and dedup individually
	// alongside every other in-flight request.
	results := make([]searchResult, len(queries))
	metas := make([]BatchMeta, len(queries))
	errs := make([]error, len(queries))
	if len(queries) == 1 {
		results[0], metas[0], errs[0] = s.answerOne(t, ctx, queries[0], k, f)
	} else {
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q []float32) {
				defer wg.Done()
				results[i], metas[i], errs[i] = s.answerOne(t, ctx, q, k, f)
			}(i, q)
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			status, code, cause := failStatus(errs)
			writeError(w, status, code, cause.Error())
			return
		}
	}
	// Queries of one HTTP request may land in different backend rounds;
	// the response's degraded view is the union over all of them.
	resp := searchResponse{
		K:       k,
		Results: results,
	}
	for _, m := range metas {
		if m.Degraded {
			resp.Degraded = true
			resp.FailedPartitions = core.UnionPartitions(resp.FailedPartitions, m.FailedPartitions)
		}
	}
	if resp.Degraded {
		s.stats.DegradedResponses.Add(1)
	}
	s.stats.RecordLatency(time.Since(t0))
	resp.TookUS = time.Since(t0).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// answerOne resolves a single query within a tenant: cache hit, join an
// identical in-flight search, or lead one through the batcher. Cache
// hits carry a zero BatchMeta by construction — degraded rows are never
// stored.
func (s *Server) answerOne(t *tenant, ctx context.Context, q []float32, k int, f *filter.Expr) (searchResult, BatchMeta, error) {
	key := cacheKey(t.name, f.Canonical(), q, k)
	if res, ok := t.cache.get(key); ok {
		s.stats.CacheHits.Add(1)
		return toSearchResult(res, true), BatchMeta{}, nil
	}
	s.stats.CacheMisses.Add(1)
	fl, leader := t.cache.startFlight(key)
	if !leader {
		s.stats.Coalesced.Add(1)
		res, meta, err := fl.wait(ctx)
		if err != nil {
			return searchResult{}, meta, err
		}
		return toSearchResult(res, false), meta, nil
	}
	res, meta, err := t.batcher.DoFiltered(ctx, q, k, f)
	t.cache.finishFlight(key, fl, res, meta, err)
	if err != nil {
		return searchResult{}, meta, err
	}
	return toSearchResult(res, false), meta, nil
}

func toSearchResult(res []topk.Result, cached bool) searchResult {
	sr := searchResult{
		IDs:    make([]int64, len(res)),
		Dists:  make([]float32, len(res)),
		Cached: cached,
	}
	for i, r := range res {
		sr.IDs[i] = r.ID
		sr.Dists[i] = r.Dist
	}
	return sr
}

// writeBroken returns the error that tripped a tenant's write circuit
// breaker, or nil while its backend's write path is healthy.
func writeBroken(t *tenant) error {
	if wh, ok := t.backend.(WriteHealth); ok {
		return wh.WriteFailed()
	}
	return nil
}

// anyWriteBroken scans every tenant's write path for readiness.
func (s *Server) anyWriteBroken() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, t := range s.tenants {
		if err := writeBroken(t); err != nil {
			return fmt.Errorf("collection %s: %w", name, err)
		}
	}
	return nil
}

// handleHealthz is both probes. Liveness (the default) answers whether
// the process should keep running: 200 unless it is draining away.
// Readiness (?ready=1) answers whether it should receive NEW traffic
// and additionally goes not-ready when any tenant's write circuit
// breaker is open — a storage-degraded replica can finish serving reads
// it already has, but a load balancer should prefer healthy replicas
// for fresh connections and an orchestrator should schedule a restart,
// not a kill.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("ready") != "" {
		if err := s.anyWriteBroken(); err != nil {
			http.Error(w, "not-ready: write path failed: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	// Flatten the traffic snapshot to a map so backend sections can sit
	// alongside it (engine occupancy, WAL/compaction counters).
	doc := map[string]any{}
	if b, err := json.Marshal(s.stats.Snapshot()); err == nil {
		json.Unmarshal(b, &doc)
	}
	s.mu.RLock()
	tenants := make(map[string]*tenant, len(s.tenants))
	for name, t := range s.tenants {
		tenants[name] = t
	}
	s.mu.RUnlock()
	// The default tenant's backend sections stay top-level (the
	// single-backend layout annserve dashboards scrape); every tenant
	// additionally gets its own section under "collections".
	if t, ok := tenants[DefaultCollection]; ok {
		if vp, ok := t.backend.(VarzProvider); ok {
			for k, v := range vp.Varz() {
				doc[k] = v
			}
		}
	}
	cols := map[string]any{}
	var tripped []string
	for name, t := range tenants {
		sec := map[string]any{}
		if vp, ok := t.backend.(VarzProvider); ok {
			for k, v := range vp.Varz() {
				sec[k] = v
			}
		}
		sec["cache_entries"] = t.cache.Len()
		sec["hybrid_cache_entries"] = t.hybrid.Len()
		sec["queue_draining"] = t.batcher.Draining()
		cols[name] = sec
		if err := writeBroken(t); err != nil {
			tripped = append(tripped, fmt.Sprintf("%s: %v", name, err))
		}
	}
	doc["collections"] = cols
	breaker := map[string]any{
		"writes_tripped":  len(tripped) > 0,
		"writes_rejected": s.stats.WritesRejected.Load(),
	}
	if len(tripped) > 0 {
		breaker["reason"] = strings.Join(tripped, "; ")
	}
	doc["breaker"] = breaker
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
