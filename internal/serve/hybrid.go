package serve

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/filter"
)

// Hybrid retrieval endpoint: POST /v1/collections/{name}/hybrid (and
// /v1/hybrid for the default tenant) answers a query with a text leg, a
// vector leg, or both, rank-fused by the backend (core.SearchHybrid).
// Hybrid queries bypass the micro-batcher — each carries its own text,
// so there is nothing to coalesce — but they get their own per-tenant
// LRU cache, purged on every mutation alongside the vector result
// cache.

// hybridRequest is the hybrid POST body. At least one of Query / Text
// must be set.
type hybridRequest struct {
	Query []float32 `json:"query,omitempty"`
	Text  string    `json:"text,omitempty"`
	K     int       `json:"k,omitempty"`
	// Fusion selects the rank-merging scheme: "rrf" (default) or
	// "weighted".
	Fusion string `json:"fusion,omitempty"`
	// RRFK overrides the reciprocal-rank constant (default 60).
	RRFK float64 `json:"rrf_k,omitempty"`
	// VecWeight / LexWeight weigh the legs under weighted fusion
	// (default 0.5 each).
	VecWeight float64 `json:"vec_weight,omitempty"`
	LexWeight float64 `json:"lex_weight,omitempty"`
	// Filter restricts both legs (filter.Parse syntax).
	Filter    string `json:"filter,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// hybridResult is one fused hit. Dist is the exact vector distance,
// present only when the request carried a vector leg and the document's
// vector is known; BM25 is the lexical score, 0 when the document
// missed the lexical leg.
type hybridResult struct {
	ID    int64    `json:"id"`
	Score float64  `json:"score"`
	Dist  *float32 `json:"dist,omitempty"`
	BM25  float64  `json:"bm25,omitempty"`
}

// hybridResponse is the 200 body.
type hybridResponse struct {
	K       int            `json:"k"`
	Fusion  string         `json:"fusion"`
	TookUS  int64          `json:"took_us"`
	Cached  bool           `json:"cached,omitempty"`
	Results []hybridResult `json:"results"`
}

// hybridCacheKey fingerprints the full hybrid request identity:
// collection, canonical filter, query text, vector, k, and every fusion
// parameter — two requests differing in any of them are different
// result sets. Strings are length-prefixed so adjacent fields cannot
// alias.
func hybridCacheKey(tenant, canon, text string, q []float32, k int, fusion string, rrfK, vw, lw float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint32(b[:4], uint32(len(s)))
		h.Write(b[:4])
		h.Write([]byte(s))
	}
	writeStr(tenant)
	writeStr(canon)
	writeStr(text)
	writeStr(fusion)
	binary.LittleEndian.PutUint32(b[:4], uint32(k))
	h.Write(b[:4])
	for _, x := range []float64{rrfK, vw, lw} {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(q)))
	h.Write(b[:4])
	for _, x := range q {
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(x))
		h.Write(b[:4])
	}
	return h.Sum64()
}

// hybridCache is a bounded LRU of fused hybrid rows. Stored slices are
// immutable by convention.
type hybridCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[uint64]*list.Element
}

type hybridEntry struct {
	key uint64
	res []core.HybridResult
}

func newHybridCache(capacity int) *hybridCache {
	return &hybridCache{cap: capacity, ll: list.New(), items: make(map[uint64]*list.Element)}
}

func (c *hybridCache) get(key uint64) ([]core.HybridResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*hybridEntry).res, true
}

func (c *hybridCache) put(key uint64, res []core.HybridResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*hybridEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&hybridEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*hybridEntry).key)
	}
}

func (c *hybridCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[uint64]*list.Element)
}

func (c *hybridCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (s *Server) handleHybrid(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, DefaultCollection)
	if !ok {
		return
	}
	s.hybridTenant(t, w, r)
}

func (s *Server) handleColHybrid(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.hybridTenant(t, w, r)
}

// hybridStatus maps a hybrid search error onto HTTP. The lexical gate
// is a client error (the collection was created without "lexical":
// true); everything else reuses the search-path ranking.
func hybridStatus(err error) (int, string) {
	if errors.Is(err, collection.ErrLexicalDisabled) {
		return http.StatusBadRequest, codeLexicalDisabled
	}
	status, code, _ := failStatus([]error{err})
	return status, code
}

func (s *Server) hybridTenant(t *tenant, w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, ErrDraining.Error())
		return
	}
	var req hybridRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Text == "" && len(req.Query) == 0 {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeMissingLeg,
			"hybrid search needs a text leg, a vector leg, or both")
		return
	}
	if len(req.Query) != 0 {
		if dim := t.backend.Dim(); len(req.Query) != dim {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeDimMismatch,
				fmt.Sprintf("query has dim %d, collection %s has dim %d", len(req.Query), t.name, dim))
			return
		}
	}
	switch req.Fusion {
	case "", core.FusionRRF, core.FusionWeighted:
	default:
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unknown fusion mode %q (want %q or %q)", req.Fusion, core.FusionRRF, core.FusionWeighted))
		return
	}
	f, err := filter.Parse(req.Filter)
	if err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadFilter, err.Error())
		return
	}
	hb, ok := t.backend.(HybridBackend)
	if !ok {
		writeError(w, http.StatusNotImplemented, codeNotImplemented,
			"backend does not support hybrid search")
		return
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	opts := core.HybridOptions{
		Fusion:    req.Fusion,
		RRFK:      req.RRFK,
		VecWeight: req.VecWeight,
		LexWeight: req.LexWeight,
		Filter:    f,
	}
	fusion := req.Fusion
	if fusion == "" {
		fusion = core.FusionRRF
	}

	s.stats.HybridRequests.Add(1)
	key := hybridCacheKey(t.name, f.Canonical(), req.Text, req.Query, k,
		fusion, req.RRFK, req.VecWeight, req.LexWeight)
	if res, ok := t.hybrid.get(key); ok {
		s.stats.HybridCacheHits.Add(1)
		s.stats.RecordLatency(time.Since(t0))
		writeJSON(w, http.StatusOK, toHybridResponse(k, fusion, res, true, t0))
		return
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := hb.SearchHybrid(ctx, req.Query, req.Text, k, opts)
	if err != nil {
		status, code := hybridStatus(err)
		if status == http.StatusBadRequest {
			s.stats.BadRequests.Add(1)
		}
		writeError(w, status, code, err.Error())
		return
	}
	t.hybrid.put(key, res)
	s.stats.RecordLatency(time.Since(t0))
	writeJSON(w, http.StatusOK, toHybridResponse(k, fusion, res, false, t0))
}

func toHybridResponse(k int, fusion string, res []core.HybridResult, cached bool, t0 time.Time) hybridResponse {
	out := hybridResponse{
		K:       k,
		Fusion:  fusion,
		Cached:  cached,
		TookUS:  time.Since(t0).Microseconds(),
		Results: make([]hybridResult, len(res)),
	}
	for i, h := range res {
		hr := hybridResult{ID: h.ID, Score: h.Score, BM25: h.BM25}
		if h.HasDist {
			d := h.Dist
			hr.Dist = &d
		}
		out.Results[i] = hr
	}
	return out
}
