package serve

import (
	"context"
	"net/http"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/vec"
)

// DefaultCollection is the tenant legacy (un-prefixed) routes resolve
// to: /v1/search is an alias for /v1/collections/default/search.
const DefaultCollection = "default"

// tenant is one served collection's vertical slice of the gateway:
// its backend, its micro-batcher (one dispatcher goroutine per tenant,
// so tenants never serialize behind each other), and its result cache.
// Caches being per-tenant makes collection-scoped purge structural: a
// mutation in one collection cannot evict another's entries.
type tenant struct {
	name    string
	backend Backend
	batcher *Batcher
	cache   *resultCache
	// hybrid caches fused hybrid rows; purged wherever cache is.
	hybrid *hybridCache
	// col is set for registry-backed tenants; nil for the plain
	// single-backend "default" tenant.
	col *collection.Collection
}

// CollectionBackend adapts one collection.Collection to the gateway
// Backend contract: searches and mutations go through the collection,
// so they hit its admission quota and its WAL.
type CollectionBackend struct {
	Col *collection.Collection
	// Threads is the worker-pool width per batch (0 = GOMAXPROCS).
	Threads int
}

// Dim implements Backend.
func (b *CollectionBackend) Dim() int { return b.Col.Config().Dim }

// MaxK implements Backend; collections serve any k.
func (b *CollectionBackend) MaxK() int { return 0 }

// SearchBatch implements Backend.
func (b *CollectionBackend) SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error) {
	res, err := b.Col.SearchBatch(ctx, queries, k, b.Threads)
	return BatchOutput{Results: res}, err
}

// SearchBatchFiltered implements FilteredBackend.
func (b *CollectionBackend) SearchBatchFiltered(ctx context.Context, queries *vec.Dataset, k int, f *filter.Expr) (BatchOutput, error) {
	res, err := b.Col.SearchBatchFiltered(ctx, queries, k, f, b.Threads)
	return BatchOutput{Results: res}, err
}

// Upsert implements Mutator.
func (b *CollectionBackend) Upsert(v []float32, id int64) error { return b.Col.Upsert(v, id) }

// UpsertTagged implements TaggedMutator.
func (b *CollectionBackend) UpsertTagged(v []float32, id int64, tags map[string]string) error {
	return b.Col.UpsertTagged(v, id, tags)
}

// UpsertText implements TextMutator; the collection enforces its
// lexical gate and dim check.
func (b *CollectionBackend) UpsertText(v []float32, id int64, text string) error {
	return b.Col.UpsertText(v, id, text)
}

// SearchHybrid implements HybridBackend.
func (b *CollectionBackend) SearchHybrid(ctx context.Context, q []float32, text string, k int, opts core.HybridOptions) ([]core.HybridResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Col.SearchHybrid(q, text, k, opts)
}

// Delete implements Mutator.
func (b *CollectionBackend) Delete(id int64) error { return b.Col.Delete(id) }

// WriteFailed implements WriteHealth over the collection's store.
func (b *CollectionBackend) WriteFailed() error { return b.Col.Store().Failed() }

// Varz implements VarzProvider.
func (b *CollectionBackend) Varz() map[string]any { return b.Col.Varz() }

// newTenant wires one tenant's batcher and cache over its backend.
func (s *Server) newTenant(name string, backend Backend, col *collection.Collection) *tenant {
	t := &tenant{
		name:    name,
		backend: backend,
		batcher: NewBatcher(backend, s.cfg.Batcher, s.stats),
		cache:   newResultCache(s.cfg.CacheSize),
		hybrid:  newHybridCache(s.cfg.CacheSize),
		col:     col,
	}
	// Routed backends report topology transitions (shard-map swaps,
	// replicas dying or recovering); every one invalidates the result
	// cache, so a cached row can never outlive the topology it was
	// computed against.
	if tn, ok := backend.(TopologyNotifier); ok {
		tn.OnTopologyChange(func() {
			t.cache.purge()
			t.hybrid.purge()
			s.stats.TopologyPurges.Add(1)
		})
	}
	return t
}

// tenantFor resolves a collection name to its tenant, answering the
// typed 404 itself when the name is unknown.
func (s *Server) tenantFor(w http.ResponseWriter, name string) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownCollection,
			"unknown collection "+name)
		return nil, false
	}
	return t, true
}
