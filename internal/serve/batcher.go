package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Submission errors, distinguished so the HTTP layer can map them to the
// right status (429 vs 503).
var (
	// ErrOverloaded means the admission queue is full; the caller should
	// retry after backing off (HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining means the gateway is shutting down and admits no new
	// work (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrFilterUnsupported means a filtered search was submitted against
	// a backend without a filtered batch path (HTTP 501).
	ErrFilterUnsupported = errors.New("serve: backend does not support filtered search")
)

// BatcherConfig tunes the micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the most queries coalesced into one backend round
	// (default 64).
	MaxBatch int
	// MaxWait is how long the first request of a round waits for company
	// before dispatching alone (default 2ms). Larger windows trade tail
	// latency for batch size — the knob behind the paper's
	// batch-throughput curve.
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with ErrOverloaded (default 4×MaxBatch).
	QueueDepth int
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
}

// BatchMeta is the per-round health metadata every member of a
// dispatched round shares: whether the round was degraded and which
// partitions failed. The HTTP layer surfaces it to clients; the cache
// refuses to store degraded rows.
type BatchMeta struct {
	Degraded         bool
	FailedPartitions []int
}

// answer is what a pending request eventually receives.
type answer struct {
	results []topk.Result
	meta    BatchMeta
	err     error
}

// pending is one admitted request waiting for its round. Filtered
// requests carry their compiled expression plus its canonical string;
// only entries with the same canonical filter share a backend round.
type pending struct {
	ctx   context.Context
	q     []float32
	k     int
	f     *filter.Expr
	canon string
	done  chan answer // buffered 1: dispatcher never blocks on delivery
}

// Batcher coalesces concurrent single-query submissions into bounded
// backend rounds. One dispatcher goroutine owns the backend, so backends
// need not be concurrency-safe.
type Batcher struct {
	backend Backend
	cfg     BatcherConfig
	stats   *Stats

	mu     sync.Mutex // serializes queue sends against the drain-time close
	closed bool
	queue  chan *pending

	stopped chan struct{} // closed when the dispatcher exits
}

// NewBatcher starts the dispatcher goroutine. Close it with Drain.
func NewBatcher(backend Backend, cfg BatcherConfig, stats *Stats) *Batcher {
	cfg.fill()
	if stats == nil {
		stats = NewStats()
	}
	b := &Batcher{
		backend: backend,
		cfg:     cfg,
		queue:   make(chan *pending, cfg.QueueDepth),
		stats:   stats,
		stopped: make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit admits one query. It never blocks: a full queue is shed
// immediately with ErrOverloaded (admission control), and a draining
// batcher refuses with ErrDraining. On success the returned channel
// delivers exactly one answer.
func (b *Batcher) Submit(ctx context.Context, q []float32, k int) (<-chan answer, error) {
	return b.SubmitFiltered(ctx, q, k, nil)
}

// SubmitFiltered is Submit carrying a tag filter to push into the
// search. A nil filter is an unfiltered submission; a non-nil one
// requires the backend to implement FilteredBackend.
func (b *Batcher) SubmitFiltered(ctx context.Context, q []float32, k int, f *filter.Expr) (<-chan answer, error) {
	if len(q) != b.backend.Dim() {
		return nil, fmt.Errorf("serve: query dim %d, index dim %d", len(q), b.backend.Dim())
	}
	p := &pending{ctx: ctx, q: q, k: k, done: make(chan answer, 1)}
	if !f.Empty() {
		if _, ok := b.backend.(FilteredBackend); !ok {
			return nil, ErrFilterUnsupported
		}
		p.f, p.canon = f, f.Canonical()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrDraining
	}
	select {
	case b.queue <- p:
		b.stats.queueDepth.Add(1)
		return p.done, nil
	default:
		b.stats.Shed.Add(1)
		return nil, ErrOverloaded
	}
}

// Draining reports whether Drain has begun.
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Do submits q and waits for the answer or ctx expiry, whichever comes
// first. This is the call sites' one-stop entry; the single-flight cache
// layers on top of it.
func (b *Batcher) Do(ctx context.Context, q []float32, k int) ([]topk.Result, BatchMeta, error) {
	return b.DoFiltered(ctx, q, k, nil)
}

// DoFiltered is Do with a tag filter pushed down (nil = unfiltered).
func (b *Batcher) DoFiltered(ctx context.Context, q []float32, k int, f *filter.Expr) ([]topk.Result, BatchMeta, error) {
	ch, err := b.SubmitFiltered(ctx, q, k, f)
	if err != nil {
		return nil, BatchMeta{}, err
	}
	select {
	case a := <-ch:
		return a.results, a.meta, a.err
	case <-ctx.Done():
		// The dispatcher will notice the dead context and drop the entry
		// before dispatch (or waste one slot if it already went out).
		return nil, BatchMeta{}, ctx.Err()
	}
}

// Drain stops admission, lets the dispatcher finish everything already
// queued, and waits for it to exit (bounded by ctx). Safe to call more
// than once; only the first call closes the queue.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	select {
	case <-b.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher: collect a round, dispatch it, repeat until the
// queue is closed and empty.
func (b *Batcher) run() {
	defer close(b.stopped)
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		b.stats.queueDepth.Add(-1)
		b.dispatch(b.collect(first))
	}
}

// collect accumulates a round: up to MaxBatch entries, waiting at most
// MaxWait past the first arrival.
func (b *Batcher) collect(first *pending) []*pending {
	batch := []*pending{first}
	if b.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case p, ok := <-b.queue:
			if !ok {
				return batch // draining: dispatch what we have
			}
			b.stats.queueDepth.Add(-1)
			batch = append(batch, p)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// dispatch runs one coalesced round: expired entries are dropped before
// the backend sees them, then the survivors go out grouped by canonical
// filter — entries under the same (possibly empty) filter share one
// backend round, since the whole round runs under one predicate. The
// common all-unfiltered case stays a single round.
func (b *Batcher) dispatch(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			b.stats.DeadlineDrops.Add(1)
			p.done <- answer{err: err}
			continue
		}
		live = append(live, p)
	}
	for len(live) > 0 {
		canon := live[0].canon
		group := live[:0:0]
		rest := live[:0]
		for _, p := range live {
			if p.canon == canon {
				group = append(group, p)
			} else {
				rest = append(rest, p)
			}
		}
		b.dispatchGroup(group)
		live = rest
	}
}

// dispatchGroup runs one backend round over entries sharing a filter:
// bounded by the latest member deadline, each member getting its own
// trimmed result row.
func (b *Batcher) dispatchGroup(live []*pending) {
	qs := vec.NewDataset(b.backend.Dim(), len(live))
	maxK := 0
	var deadline time.Time
	haveDeadline := true
	for i, p := range live {
		qs.Append(p.q, int64(i))
		if p.k > maxK {
			maxK = p.k
		}
		if d, ok := p.ctx.Deadline(); ok {
			if d.After(deadline) {
				deadline = d
			}
		} else {
			haveDeadline = false
		}
	}
	if mk := b.backend.MaxK(); mk > 0 && maxK > mk {
		maxK = mk
	}

	// The round may serve requests with different deadlines; it runs
	// until the *latest* of them (a short-deadline member must not
	// starve the rest), and not at all past that.
	ctx := context.Background()
	if haveDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	var out BatchOutput
	var err error
	if f := live[0].f; f != nil {
		// SubmitFiltered only admits filtered entries when the backend
		// implements FilteredBackend, so this assertion cannot fail.
		out, err = b.backend.(FilteredBackend).SearchBatchFiltered(ctx, qs, maxK, f)
	} else {
		out, err = b.backend.SearchBatch(ctx, qs, maxK)
	}
	b.stats.recordBatch(len(live))
	if err != nil {
		b.stats.BackendErrors.Add(1)
		for _, p := range live {
			p.done <- answer{err: err}
		}
		return
	}
	meta := BatchMeta{Degraded: out.Degraded, FailedPartitions: out.FailedPartitions}
	if meta.Degraded {
		b.stats.DegradedBatches.Add(1)
	}
	for i, p := range live {
		row := out.Results[i]
		if len(row) > p.k {
			row = row[:p.k]
		}
		p.done <- answer{results: row, meta: meta}
	}
}
