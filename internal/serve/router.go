package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Router is the multi-node serving backend: a stateless scatter-gather
// layer over sharded annworker processes reached via the shard RPC
// (cluster.ShardClient). This is the LANNS deployment shape — the
// dataset is split into shards, each shard is an independent engine
// behind a TCP worker, and the gateway fans every query batch out to
// one replica per shard and merges the per-shard top-k (duplicate IDs
// resolved to their best distance).
//
// Availability machinery, reusing the failure model of the distributed
// master (PR 1, Algorithm 5's replication workgroups):
//
//   - each shard has a workgroup of replica addresses; scatters rotate
//     through them for read scaling;
//   - replica health is tracked per address: a connection death (EOF,
//     write failure, heartbeat staleness) marks the replica down, and a
//     down replica is only re-dialed after a cooloff;
//   - a scatter that has not answered within HedgeDelay is hedged to
//     the next replica of the workgroup — first answer wins;
//   - a replica that fails mid-flight is failed over to the next one;
//     when a shard's whole workgroup is exhausted the batch completes
//     anyway, Degraded, with the shard listed in FailedPartitions;
//   - every topology transition (map swap, replica down, replica
//     recovered) notifies the gateway, which purges its result cache.
type Router struct {
	cfg RouterConfig
	dim int

	mu     sync.Mutex
	groups []*shardGroup
	closed bool

	version   atomic.Uint64 // topology version; bumped on every transition
	notifyMu  sync.Mutex
	onChange  []func()
	watcherWG sync.WaitGroup

	// counters for /varz
	scatters      atomic.Int64 // backend rounds scattered
	shardCalls    atomic.Int64 // per-(round, shard) RPCs issued (incl. hedges/failovers)
	hedges        atomic.Int64 // speculative second requests fired by the hedge timer
	failovers     atomic.Int64 // replicas retried after an error
	shardFailures atomic.Int64 // (round, shard) pairs that exhausted their workgroup
	degraded      atomic.Int64 // rounds that returned Degraded
}

// RouterConfig tunes the shard router.
type RouterConfig struct {
	// DialTimeout bounds connect+handshake per replica (default 5s).
	DialTimeout time.Duration
	// SearchTimeout bounds a scatter when the request context carries no
	// deadline of its own (default 10s). Without it a black-holed worker
	// would pin the batch until heartbeat staleness fires.
	SearchTimeout time.Duration
	// HedgeDelay is how long to wait for a shard's first replica before
	// speculatively asking the next one (default 50ms; negative
	// disables hedging).
	HedgeDelay time.Duration
	// ProbeCooloff is how long a down replica stays unprobed before a
	// query is allowed to try re-dialing it (default 500ms).
	ProbeCooloff time.Duration
	// HeartbeatInterval/HeartbeatTimeout tune the per-connection
	// liveness probes (see cluster.ShardClientOptions; zero values take
	// that type's defaults).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SearchTimeout <= 0 {
		c.SearchTimeout = 10 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.ProbeCooloff <= 0 {
		c.ProbeCooloff = 500 * time.Millisecond
	}
	return c
}

// ShardMap assigns each shard (partition of the corpus) its workgroup
// of replica worker addresses. Groups[i] serves shard i; every address
// in a group must hold the same shard data.
type ShardMap struct {
	Groups [][]string
}

// ParseShardMap parses the -shards flag syntax: shard groups separated
// by ';', replica addresses within a group separated by ','.
//
//	"host1:7100;host2:7100;host3:7100"            three shards, no replicas
//	"host1:7100,host1b:7100;host2:7100"           shard 0 has two replicas
func ParseShardMap(spec string) (ShardMap, error) {
	var m ShardMap
	for gi, g := range strings.Split(spec, ";") {
		g = strings.TrimSpace(g)
		if g == "" {
			return ShardMap{}, fmt.Errorf("serve: shard map group %d is empty", gi)
		}
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return ShardMap{}, fmt.Errorf("serve: shard map group %d has an empty replica address", gi)
			}
			addrs = append(addrs, a)
		}
		m.Groups = append(m.Groups, addrs)
	}
	return m, nil
}

func (m ShardMap) validate() error {
	if len(m.Groups) == 0 {
		return errors.New("serve: shard map has no shards")
	}
	for i, g := range m.Groups {
		if len(g) == 0 {
			return fmt.Errorf("serve: shard %d has no replicas", i)
		}
	}
	return nil
}

// shardGroup is one shard's replica workgroup.
type shardGroup struct {
	shard    int
	replicas []*replica
	next     atomic.Uint32 // rotation for read scaling
}

// replica is one worker address and its health state.
type replica struct {
	addr string

	mu        sync.Mutex
	client    *cluster.ShardClient // nil when not connected
	down      bool
	downSince time.Time
}

var errReplicaCooling = errors.New("serve: replica down, probe cooloff active")

// NewRouter dials the shard map and returns the routing backend. Every
// shard group must have at least one reachable replica at startup —
// serving a map that is already degraded is a deployment error worth
// failing loudly on. Replicas beyond the first are dialed lazily.
func NewRouter(m ShardMap, cfg RouterConfig) (*Router, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg.withDefaults()}
	r.groups = buildGroups(m)
	for _, g := range r.groups {
		cl, err := r.firstClient(g)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("serve: shard %d unreachable: %w", g.shard, err)
		}
		info := cl.Info()
		if r.dim == 0 {
			r.dim = info.Dim
		} else if info.Dim != r.dim {
			r.Close()
			return nil, fmt.Errorf("serve: shard %d serves dim %d, shard 0 serves dim %d", g.shard, info.Dim, r.dim)
		}
	}
	return r, nil
}

func buildGroups(m ShardMap) []*shardGroup {
	groups := make([]*shardGroup, len(m.Groups))
	for i, addrs := range m.Groups {
		g := &shardGroup{shard: i, replicas: make([]*replica, len(addrs))}
		for j, a := range addrs {
			g.replicas[j] = &replica{addr: a}
		}
		groups[i] = g
	}
	return groups
}

// firstClient connects the first reachable replica of g.
func (r *Router) firstClient(g *shardGroup) (*cluster.ShardClient, error) {
	var lastErr error
	for _, rep := range g.replicas {
		cl, err := r.replicaClient(g, rep)
		if err != nil {
			lastErr = err
			continue
		}
		return cl, nil
	}
	return nil, lastErr
}

// Dim implements Backend.
func (r *Router) Dim() int { return r.dim }

// MaxK implements Backend; shards serve any k.
func (r *Router) MaxK() int { return 0 }

// OnTopologyChange implements TopologyNotifier.
func (r *Router) OnTopologyChange(fn func()) {
	r.notifyMu.Lock()
	r.onChange = append(r.onChange, fn)
	r.notifyMu.Unlock()
}

// Shards returns the current shard count.
func (r *Router) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.groups)
}

// TopologyVersion returns the number of topology transitions so far
// (map swaps, replicas marked down, replicas recovered).
func (r *Router) TopologyVersion() uint64 { return r.version.Load() }

func (r *Router) topologyChanged() {
	r.version.Add(1)
	r.notifyMu.Lock()
	fns := append([]func(){}, r.onChange...)
	r.notifyMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// SetShardMap swaps the routing topology: new groups are dialed lazily,
// old connections are closed, and the topology-change notification
// fires (purging the gateway's result cache). In-flight scatters finish
// against the snapshot they started with.
func (r *Router) SetShardMap(m ShardMap) error {
	if err := m.validate(); err != nil {
		return err
	}
	groups := buildGroups(m)
	r.mu.Lock()
	old := r.groups
	r.groups = groups
	r.mu.Unlock()
	for _, g := range old {
		closeGroup(g)
	}
	r.topologyChanged()
	return nil
}

func closeGroup(g *shardGroup) {
	for _, rep := range g.replicas {
		rep.mu.Lock()
		if rep.client != nil {
			rep.client.Close()
			rep.client = nil
		}
		rep.mu.Unlock()
	}
}

// Close shuts every connection down. Subsequent SearchBatch calls fail.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	groups := r.groups
	r.mu.Unlock()
	for _, g := range groups {
		closeGroup(g)
	}
	r.watcherWG.Wait()
	return nil
}

// replicaClient returns a live client for rep, dialing if necessary. A
// down replica inside its probe cooloff is not retried; past the
// cooloff one caller's dial doubles as the health probe. Recovery and
// death both fire the topology notification.
func (r *Router) replicaClient(g *shardGroup, rep *replica) (*cluster.ShardClient, error) {
	rep.mu.Lock()
	if rep.client != nil && !rep.client.Down() {
		cl := rep.client
		rep.mu.Unlock()
		return cl, nil
	}
	if rep.down && time.Since(rep.downSince) < r.cfg.ProbeCooloff {
		rep.mu.Unlock()
		return nil, errReplicaCooling
	}
	rep.mu.Unlock()

	cl, err := cluster.DialShardOpts(rep.addr, cluster.ShardClientOptions{
		DialTimeout:       r.cfg.DialTimeout,
		HeartbeatInterval: r.cfg.HeartbeatInterval,
		HeartbeatTimeout:  r.cfg.HeartbeatTimeout,
	})
	if err != nil {
		r.markReplicaDown(rep)
		return nil, err
	}
	info := cl.Info()
	if info.Shard != g.shard {
		cl.Close()
		r.markReplicaDown(rep)
		return nil, fmt.Errorf("serve: %s is mapped as shard %d but announces shard %d", rep.addr, g.shard, info.Shard)
	}
	if r.dim != 0 && info.Dim != r.dim {
		cl.Close()
		r.markReplicaDown(rep)
		return nil, fmt.Errorf("serve: %s serves dim %d, router dim %d", rep.addr, info.Dim, r.dim)
	}

	rep.mu.Lock()
	if rep.client != nil && !rep.client.Down() {
		// Lost a benign dial race; keep the established client.
		winner := rep.client
		rep.mu.Unlock()
		cl.Close()
		return winner, nil
	}
	if rep.client != nil {
		rep.client.Close()
	}
	rep.client = cl
	wasDown := rep.down
	rep.down = false
	rep.mu.Unlock()

	// Watch for connection death so the cache purges when a worker dies
	// between queries, not only when the next scatter trips over it.
	r.watcherWG.Add(1)
	go func() {
		defer r.watcherWG.Done()
		<-cl.DownChan()
		rep.mu.Lock()
		mine := rep.client == cl
		rep.mu.Unlock()
		if mine {
			r.markReplicaDown(rep)
		}
	}()

	if wasDown {
		r.topologyChanged()
	}
	return cl, nil
}

// markReplicaDown transitions rep to down (idempotent) and fires the
// topology notification on the edge.
func (r *Router) markReplicaDown(rep *replica) {
	rep.mu.Lock()
	if rep.down {
		rep.mu.Unlock()
		return
	}
	rep.down = true
	rep.downSince = time.Now()
	if rep.client != nil {
		rep.client.Close()
		rep.client = nil
	}
	rep.mu.Unlock()
	r.topologyChanged()
}

// SearchBatch implements Backend: scatter the batch to one replica per
// shard (hedging and failing over inside each workgroup), gather, and
// merge per-query top-k across shards with duplicate-ID resolution.
func (r *Router) SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return BatchOutput{}, errors.New("serve: router closed")
	}
	groups := r.groups
	r.mu.Unlock()

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.SearchTimeout)
		defer cancel()
	}
	r.scatters.Add(1)

	type groupOutcome struct {
		shard int
		rows  [][]topk.Result
		err   error
	}
	outcomes := make([]groupOutcome, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *shardGroup) {
			defer wg.Done()
			rows, err := r.searchGroup(ctx, g, queries, k)
			outcomes[i] = groupOutcome{shard: g.shard, rows: rows, err: err}
		}(i, g)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return BatchOutput{}, err
	}

	nq := queries.Len()
	out := BatchOutput{Results: make([][]topk.Result, nq)}
	lists := make([][]topk.Result, 0, len(groups))
	ok := 0
	var firstErr error
	for _, oc := range outcomes {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = oc.err
			}
			r.shardFailures.Add(1)
			out.Degraded = true
			out.FailedPartitions = core.UnionPartitions(out.FailedPartitions, []int{oc.shard})
			continue
		}
		ok++
	}
	if ok == 0 {
		return BatchOutput{}, fmt.Errorf("serve: all %d shards failed: %w", len(groups), firstErr)
	}
	if out.Degraded {
		r.degraded.Add(1)
	}
	sort.Ints(out.FailedPartitions)
	for qi := 0; qi < nq; qi++ {
		lists = lists[:0]
		for _, oc := range outcomes {
			if oc.err == nil {
				lists = append(lists, oc.rows[qi])
			}
		}
		out.Results[qi] = topk.Merge(k, lists...)
	}
	return out, nil
}

// searchGroup answers one shard's part of the scatter: ask the rotated
// primary replica, hedge to the next after HedgeDelay, fail over on
// error, first success wins. Returns an error only when every replica
// of the workgroup has been tried and failed (or ctx expired).
func (r *Router) searchGroup(ctx context.Context, g *shardGroup, queries *vec.Dataset, k int) ([][]topk.Result, error) {
	rot := int(g.next.Add(1)-1) % len(g.replicas)
	order := make([]*replica, len(g.replicas))
	for i := range g.replicas {
		order[i] = g.replicas[(rot+i)%len(g.replicas)]
	}

	type outcome struct {
		rows [][]topk.Result
		err  error
		rep  *replica
	}
	resCh := make(chan outcome, len(order))
	nextIdx := 0
	inflight := 0
	var lastErr error

	// launch fires the next launchable candidate, skipping replicas that
	// are cooling off or fail to dial.
	launch := func() bool {
		for nextIdx < len(order) {
			rep := order[nextIdx]
			nextIdx++
			cl, err := r.replicaClient(g, rep)
			if err != nil {
				lastErr = err
				continue
			}
			r.shardCalls.Add(1)
			inflight++
			go func(rep *replica, cl *cluster.ShardClient) {
				rows, err := cl.Search(ctx, queries, k)
				if err == nil && len(rows) != queries.Len() {
					err = fmt.Errorf("serve: shard %d returned %d rows for %d queries", g.shard, len(rows), queries.Len())
				}
				resCh <- outcome{rows: rows, err: err, rep: rep}
			}(rep, cl)
			return true
		}
		return false
	}

	if !launch() {
		if lastErr == nil {
			lastErr = errors.New("serve: no live replica")
		}
		return nil, lastErr
	}

	var hedgeC <-chan time.Time
	if r.cfg.HedgeDelay > 0 && nextIdx < len(order) {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case oc := <-resCh:
			inflight--
			if oc.err == nil {
				return oc.rows, nil
			}
			lastErr = oc.err
			if errors.Is(oc.err, cluster.ErrShardDown) {
				r.markReplicaDown(oc.rep)
			}
			if errors.Is(oc.err, context.Canceled) || errors.Is(oc.err, context.DeadlineExceeded) {
				return nil, oc.err
			}
			// Fail over to the next untried replica right away.
			if launch() {
				r.failovers.Add(1)
			} else if inflight == 0 {
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launch() {
				r.hedges.Add(1)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Varz implements VarzProvider: the router section of /varz — shard
// count, topology version, scatter/hedge/failover counters, and
// per-replica health.
func (r *Router) Varz() map[string]any {
	r.mu.Lock()
	groups := r.groups
	r.mu.Unlock()
	shards := make([]map[string]any, len(groups))
	for i, g := range groups {
		reps := make([]map[string]any, len(g.replicas))
		for j, rep := range g.replicas {
			rep.mu.Lock()
			state := "idle"
			var points int64
			if rep.down {
				state = "down"
			} else if rep.client != nil && !rep.client.Down() {
				state = "up"
				points = rep.client.Info().Points
			}
			reps[j] = map[string]any{
				"addr":   rep.addr,
				"state":  state,
				"points": points,
			}
			rep.mu.Unlock()
		}
		shards[i] = map[string]any{"shard": g.shard, "replicas": reps}
	}
	return map[string]any{
		"router": map[string]any{
			"shards":           len(groups),
			"topology_version": r.version.Load(),
			"scatters":         r.scatters.Load(),
			"shard_calls":      r.shardCalls.Load(),
			"hedges":           r.hedges.Load(),
			"failovers":        r.failovers.Load(),
			"shard_failures":   r.shardFailures.Load(),
			"degraded_batches": r.degraded.Load(),
			"dim":              r.dim,
			"topology":         shards,
		},
	}
}
