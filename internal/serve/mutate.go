package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/collection"
	"repro/internal/store"
)

// Write endpoints. POST /v1/upsert and /v1/delete (and their
// /v1/collections/{name}/ forms) route to the tenant backend's Mutator
// half when it has one (EngineBackend, CollectionBackend; the
// distributed MasterBackend is read-only and answers 501). Every
// successful mutation purges that tenant's result cache — and only
// that tenant's: caches are per-collection, so one collection's writes
// never evict another's entries.

// upsertPoint is one (id, vector) pair, optionally tagged for filtered
// search or carrying document text for hybrid retrieval. Text and tags
// are mutually exclusive per point — the WAL has one record layout per
// upsert kind, so a point picks which sidecar it rides.
type upsertPoint struct {
	ID     int64             `json:"id"`
	Vector []float32         `json:"vector"`
	Tags   map[string]string `json:"tags,omitempty"`
	Text   string            `json:"text,omitempty"`
}

// upsertRequest is the upsert POST body: either a single point
// ({"id":..,"vector":[..],"tags":{..}}) or a batch
// ({"points":[{..},..]}).
type upsertRequest struct {
	ID     *int64            `json:"id,omitempty"`
	Vector []float32         `json:"vector,omitempty"`
	Tags   map[string]string `json:"tags,omitempty"`
	Text   string            `json:"text,omitempty"`
	Points []upsertPoint     `json:"points,omitempty"`
}

// deleteRequest is the delete POST body: {"id":..} or {"ids":[..]}.
type deleteRequest struct {
	ID  *int64  `json:"id,omitempty"`
	IDs []int64 `json:"ids,omitempty"`
}

// mutateResponse is the 200 body of both write endpoints. Applied
// counts how many mutations landed (on a mid-batch failure the error
// response reports the count that made it in).
type mutateResponse struct {
	Upserted int `json:"upserted,omitempty"`
	Deleted  int `json:"deleted,omitempty"`
}

// mutator resolves a tenant backend's write half, answering 501 when
// the backend is read-only and 503 when the write circuit breaker is
// open (the storage layer failed; mutations are refused until a
// restart while searches keep serving).
func (s *Server) mutator(t *tenant, w http.ResponseWriter) (Mutator, bool) {
	m, ok := t.backend.(Mutator)
	if !ok {
		writeError(w, http.StatusNotImplemented, codeNotImplemented, "backend does not support writes")
		return nil, false
	}
	if err := writeBroken(t); err != nil {
		s.stats.WritesRejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, codeWriteFailed,
			"write path failed, mutations rejected until restart: "+err.Error())
		return nil, false
	}
	return m, true
}

// mutationStatus maps a mid-batch mutation error to an HTTP status and
// code: the tenant's admission quota is 429, draining 503, a storage
// failure that tripped the breaker 503 (the replica is degraded, not
// the request), anything else 500.
func (s *Server) mutationStatus(err error) (int, string) {
	switch {
	case errors.Is(err, collection.ErrLexicalDisabled):
		s.stats.BadRequests.Add(1)
		return http.StatusBadRequest, codeLexicalDisabled
	case errors.Is(err, collection.ErrQuota):
		return http.StatusTooManyRequests, codeQuota
	case errors.Is(err, collection.ErrDraining):
		return http.StatusServiceUnavailable, codeDraining
	case errors.Is(err, store.ErrWALFailed):
		s.stats.WritesRejected.Add(1)
		return http.StatusServiceUnavailable, codeWriteFailed
	default:
		return http.StatusInternalServerError, codeInternal
	}
}

func (s *Server) decodeMutation(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "POST only")
		return false
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, ErrDraining.Error())
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, DefaultCollection)
	if !ok {
		return
	}
	s.upsertTenant(t, w, r)
}

func (s *Server) handleColUpsert(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.upsertTenant(t, w, r)
}

func (s *Server) upsertTenant(t *tenant, w http.ResponseWriter, r *http.Request) {
	mut, ok := s.mutator(t, w)
	if !ok {
		return
	}
	var req upsertRequest
	if !s.decodeMutation(w, r, &req) {
		return
	}
	points := req.Points
	if req.Vector != nil {
		if points != nil {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "set vector or points, not both")
			return
		}
		if req.ID == nil {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "upsert needs an id")
			return
		}
		points = []upsertPoint{{ID: *req.ID, Vector: req.Vector, Tags: req.Tags, Text: req.Text}}
	}
	if len(points) == 0 {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "no points")
		return
	}
	if len(points) > s.cfg.MaxQueries {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("%d points exceeds the per-request limit %d", len(points), s.cfg.MaxQueries))
		return
	}
	var (
		tagged TaggedMutator
		texter TextMutator
	)
	dim := t.backend.Dim()
	for i, p := range points {
		if len(p.Vector) != dim {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeDimMismatch,
				fmt.Sprintf("point %d has dim %d, collection %s has dim %d", i, len(p.Vector), t.name, dim))
			return
		}
		if len(p.Tags) > 0 && p.Text != "" {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("point %d carries both tags and text; a point picks one", i))
			return
		}
		if len(p.Tags) > 0 && tagged == nil {
			tm, ok := mut.(TaggedMutator)
			if !ok {
				writeError(w, http.StatusNotImplemented, codeNotImplemented,
					fmt.Sprintf("point %d carries tags but the backend does not support tagged upserts", i))
				return
			}
			tagged = tm
		}
		if p.Text != "" && texter == nil {
			xm, ok := mut.(TextMutator)
			if !ok {
				writeError(w, http.StatusNotImplemented, codeNotImplemented,
					fmt.Sprintf("point %d carries text but the backend does not support text upserts", i))
				return
			}
			texter = xm
		}
	}
	for i, p := range points {
		var err error
		switch {
		case len(p.Tags) > 0:
			err = tagged.UpsertTagged(p.Vector, p.ID, p.Tags)
		case p.Text != "":
			err = texter.UpsertText(p.Vector, p.ID, p.Text)
		default:
			err = mut.Upsert(p.Vector, p.ID)
		}
		if err != nil {
			s.stats.Upserts.Add(int64(i))
			if i > 0 {
				t.cache.purge()
				t.hybrid.purge()
			}
			status, code := s.mutationStatus(err)
			writeError(w, status, code,
				fmt.Sprintf("upsert of point %d (id %d) failed after %d applied: %v", i, p.ID, i, err))
			return
		}
	}
	s.stats.Upserts.Add(int64(len(points)))
	t.cache.purge()
	t.hybrid.purge()
	writeJSON(w, http.StatusOK, mutateResponse{Upserted: len(points)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, DefaultCollection)
	if !ok {
		return
	}
	s.deleteTenant(t, w, r)
}

func (s *Server) handleColDelete(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.deleteTenant(t, w, r)
}

func (s *Server) deleteTenant(t *tenant, w http.ResponseWriter, r *http.Request) {
	mut, ok := s.mutator(t, w)
	if !ok {
		return
	}
	var req deleteRequest
	if !s.decodeMutation(w, r, &req) {
		return
	}
	ids := req.IDs
	if req.ID != nil {
		if ids != nil {
			s.stats.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, codeBadRequest, "set id or ids, not both")
			return
		}
		ids = []int64{*req.ID}
	}
	if len(ids) == 0 {
		s.stats.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, codeBadRequest, "no ids")
		return
	}
	for i, id := range ids {
		if err := mut.Delete(id); err != nil {
			s.stats.Deletes.Add(int64(i))
			if i > 0 {
				t.cache.purge()
				t.hybrid.purge()
			}
			status, code := s.mutationStatus(err)
			writeError(w, status, code,
				fmt.Sprintf("delete of id %d failed after %d applied: %v", id, i, err))
			return
		}
	}
	s.stats.Deletes.Add(int64(len(ids)))
	t.cache.purge()
	t.hybrid.purge()
	writeJSON(w, http.StatusOK, mutateResponse{Deleted: len(ids)})
}
