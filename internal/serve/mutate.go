package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/store"
)

// Write endpoints. POST /v1/upsert and /v1/delete route to the
// backend's Mutator half when it has one (EngineBackend; the
// distributed MasterBackend is read-only and answers 501). Every
// successful mutation purges the result cache: a cached row may now
// contain a deleted ID or miss the fresh insert.

// upsertPoint is one (id, vector) pair.
type upsertPoint struct {
	ID     int64     `json:"id"`
	Vector []float32 `json:"vector"`
}

// upsertRequest is the POST /v1/upsert body: either a single point
// ({"id":..,"vector":[..]}) or a batch ({"points":[{..},..]}).
type upsertRequest struct {
	ID     *int64        `json:"id,omitempty"`
	Vector []float32     `json:"vector,omitempty"`
	Points []upsertPoint `json:"points,omitempty"`
}

// deleteRequest is the POST /v1/delete body: {"id":..} or
// {"ids":[..]}.
type deleteRequest struct {
	ID  *int64  `json:"id,omitempty"`
	IDs []int64 `json:"ids,omitempty"`
}

// mutateResponse is the 200 body of both write endpoints. Applied
// counts how many mutations landed (on a mid-batch failure the error
// response reports the count that made it in).
type mutateResponse struct {
	Upserted int `json:"upserted,omitempty"`
	Deleted  int `json:"deleted,omitempty"`
}

// mutator resolves the backend's write half, answering 501 when the
// backend is read-only and 503 when the write circuit breaker is open
// (the storage layer failed; mutations are refused until a restart
// while searches keep serving).
func (s *Server) mutator(w http.ResponseWriter) (Mutator, bool) {
	m, ok := s.backend.(Mutator)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "backend does not support writes"})
		return nil, false
	}
	if err := s.writeBroken(); err != nil {
		s.stats.WritesRejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: "write path failed, mutations rejected until restart: " + err.Error()})
		return nil, false
	}
	return m, true
}

// mutationStatus maps a mid-batch mutation error to an HTTP status: a
// storage failure that tripped the breaker is 503 (the replica is
// degraded, not the request), anything else 500.
func (s *Server) mutationStatus(err error) int {
	if errors.Is(err, store.ErrWALFailed) {
		s.stats.WritesRejected.Add(1)
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Server) decodeMutation(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return false
	}
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrDraining.Error()})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	mut, ok := s.mutator(w)
	if !ok {
		return
	}
	var req upsertRequest
	if !s.decodeMutation(w, r, &req) {
		return
	}
	points := req.Points
	if req.Vector != nil {
		if points != nil {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "set vector or points, not both"})
			return
		}
		if req.ID == nil {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "upsert needs an id"})
			return
		}
		points = []upsertPoint{{ID: *req.ID, Vector: req.Vector}}
	}
	if len(points) == 0 {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no points"})
		return
	}
	if len(points) > s.cfg.MaxQueries {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("%d points exceeds the per-request limit %d", len(points), s.cfg.MaxQueries)})
		return
	}
	dim := s.backend.Dim()
	for i, p := range points {
		if len(p.Vector) != dim {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("point %d has dim %d, index dim %d", i, len(p.Vector), dim)})
			return
		}
	}
	for i, p := range points {
		if err := mut.Upsert(p.Vector, p.ID); err != nil {
			s.stats.Upserts.Add(int64(i))
			if i > 0 {
				s.cache.purge()
			}
			writeJSON(w, s.mutationStatus(err), errorResponse{
				Error: fmt.Sprintf("upsert of point %d (id %d) failed after %d applied: %v", i, p.ID, i, err)})
			return
		}
	}
	s.stats.Upserts.Add(int64(len(points)))
	s.cache.purge()
	writeJSON(w, http.StatusOK, mutateResponse{Upserted: len(points)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	mut, ok := s.mutator(w)
	if !ok {
		return
	}
	var req deleteRequest
	if !s.decodeMutation(w, r, &req) {
		return
	}
	ids := req.IDs
	if req.ID != nil {
		if ids != nil {
			s.stats.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "set id or ids, not both"})
			return
		}
		ids = []int64{*req.ID}
	}
	if len(ids) == 0 {
		s.stats.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no ids"})
		return
	}
	for i, id := range ids {
		if err := mut.Delete(id); err != nil {
			s.stats.Deletes.Add(int64(i))
			if i > 0 {
				s.cache.purge()
			}
			writeJSON(w, s.mutationStatus(err), errorResponse{
				Error: fmt.Sprintf("delete of id %d failed after %d applied: %v", id, i, err)})
			return
		}
	}
	s.stats.Deletes.Add(int64(len(ids)))
	s.cache.purge()
	writeJSON(w, http.StatusOK, mutateResponse{Deleted: len(ids)})
}
