package serve

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/topk"
	"repro/internal/vec"
)

// startShard runs an in-process shard worker with a scripted handler
// and returns its address and server handle.
func startShard(t *testing.T, shard, dim int, h cluster.ShardHandler) (string, *cluster.ShardServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.NewShardServer(ln, cluster.ShardInfo{Shard: shard, Dim: dim, Points: 1}, h)
	t.Cleanup(func() { s.Close() })
	return s.Addr(), s
}

// constHandler answers every query with the given rows.
func constHandler(rows []topk.Result) cluster.ShardHandler {
	return func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
		out := make([][]topk.Result, queries.Len())
		for i := range out {
			out[i] = append([]topk.Result(nil), rows...)
		}
		return out, nil
	}
}

func oneQuery(dim int) *vec.Dataset {
	ds := vec.NewDataset(dim, 0)
	ds.Append(make([]float32, dim), 0)
	return ds
}

func TestParseShardMap(t *testing.T) {
	m, err := ParseShardMap("a:1,b:2;c:3; d:4 ")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:2"}, {"c:3"}, {"d:4"}}
	if !reflect.DeepEqual(m.Groups, want) {
		t.Fatalf("got %v, want %v", m.Groups, want)
	}
	for _, bad := range []string{"", "a:1;;b:2", "a:1,,b:2"} {
		if _, err := ParseShardMap(bad); err == nil {
			t.Fatalf("spec %q: want error", bad)
		}
	}
}

// TestRouterMergesShards: results from two shards interleave by
// distance, and an ID served by both shards appears once, at its
// smaller distance.
func TestRouterMergesShards(t *testing.T) {
	a0, _ := startShard(t, 0, 4, constHandler([]topk.Result{
		{ID: 1, Dist: 0.1}, {ID: 7, Dist: 0.5}, {ID: 3, Dist: 0.9},
	}))
	a1, _ := startShard(t, 1, 4, constHandler([]topk.Result{
		{ID: 2, Dist: 0.2}, {ID: 7, Dist: 0.3}, {ID: 4, Dist: 1.1},
	}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{a0}, {a1}}}, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	out, err := r.SearchBatch(context.Background(), oneQuery(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded {
		t.Fatalf("unexpected degraded result: %+v", out)
	}
	want := []topk.Result{{ID: 1, Dist: 0.1}, {ID: 2, Dist: 0.2}, {ID: 7, Dist: 0.3}, {ID: 3, Dist: 0.9}}
	if !reflect.DeepEqual(out.Results[0], want) {
		t.Fatalf("merged row = %v, want %v", out.Results[0], want)
	}
}

// TestRouterDegradedOnShardDeath: with one of two shards dead, the
// scatter completes with the survivor's results, Degraded, and the dead
// shard listed in FailedPartitions.
func TestRouterDegradedOnShardDeath(t *testing.T) {
	a0, _ := startShard(t, 0, 4, constHandler([]topk.Result{{ID: 1, Dist: 0.1}}))
	a1, s1 := startShard(t, 1, 4, constHandler([]topk.Result{{ID: 2, Dist: 0.2}}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{a0}, {a1}}}, RouterConfig{ProbeCooloff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s1.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := r.SearchBatch(ctx, oneQuery(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("want Degraded after shard death")
	}
	if !reflect.DeepEqual(out.FailedPartitions, []int{1}) {
		t.Fatalf("FailedPartitions = %v, want [1]", out.FailedPartitions)
	}
	if len(out.Results[0]) != 1 || out.Results[0][0].ID != 1 {
		t.Fatalf("surviving shard's row = %v", out.Results[0])
	}
}

// TestRouterFailsOver: shard 0's primary replica errors; the router
// retries the second replica and the batch succeeds undegraded.
func TestRouterFailsOver(t *testing.T) {
	bad, _ := startShard(t, 0, 4, func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
		return nil, errors.New("disk on fire")
	})
	good, _ := startShard(t, 0, 4, constHandler([]topk.Result{{ID: 5, Dist: 0.5}}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{bad, good}}}, RouterConfig{HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	out, err := r.SearchBatch(context.Background(), oneQuery(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded {
		t.Fatalf("failover should not degrade: %+v", out)
	}
	if out.Results[0][0].ID != 5 {
		t.Fatalf("row = %v, want replica's answer", out.Results[0])
	}
	if got := r.failovers.Load(); got < 1 {
		t.Fatalf("failovers = %d, want >= 1", got)
	}
}

// TestRouterHedges: a slow primary is raced by a hedged request to the
// replica; the fast answer wins well before the primary finishes.
func TestRouterHedges(t *testing.T) {
	slow, _ := startShard(t, 0, 4, func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return constHandler([]topk.Result{{ID: 1, Dist: 0.1}})(ctx, queries, k)
	})
	fast, _ := startShard(t, 0, 4, constHandler([]topk.Result{{ID: 2, Dist: 0.2}}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{slow, fast}}}, RouterConfig{HedgeDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	t0 := time.Now()
	out, err := r.SearchBatch(context.Background(), oneQuery(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("hedge did not win: took %v", d)
	}
	if out.Results[0][0].ID != 2 {
		t.Fatalf("row = %v, want hedged replica's answer", out.Results[0])
	}
	if got := r.hedges.Load(); got < 1 {
		t.Fatalf("hedges = %d, want >= 1", got)
	}
}

// TestRouterAllShardsDead: when every workgroup is exhausted the batch
// fails outright instead of returning an empty "success".
func TestRouterAllShardsDead(t *testing.T) {
	a0, s0 := startShard(t, 0, 4, constHandler([]topk.Result{{ID: 1, Dist: 0.1}}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{a0}}}, RouterConfig{ProbeCooloff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s0.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := r.SearchBatch(ctx, oneQuery(4), 1); err == nil {
		t.Fatal("want error with every shard dead")
	}
}

// TestRouterRejectsMisconfiguredShard: a worker announcing a different
// shard index than its slot in the map is a wiring error, refused at
// dial time.
func TestRouterRejectsMisconfiguredShard(t *testing.T) {
	a0, _ := startShard(t, 3, 4, constHandler(nil))
	if _, err := NewRouter(ShardMap{Groups: [][]string{{a0}}}, RouterConfig{}); err == nil {
		t.Fatal("want error for shard-index mismatch")
	}
}

// TestRouterTopologyNotification: replica death (detected by the
// connection watcher) and shard-map swaps both fire the topology
// callback the gateway uses to purge its result cache.
func TestRouterTopologyNotification(t *testing.T) {
	a0, s0 := startShard(t, 0, 4, constHandler([]topk.Result{{ID: 1, Dist: 0.1}}))
	a1, _ := startShard(t, 1, 4, constHandler([]topk.Result{{ID: 2, Dist: 0.2}}))
	r, err := NewRouter(ShardMap{Groups: [][]string{{a0}, {a1}}}, RouterConfig{ProbeCooloff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	fired := make(chan struct{}, 16)
	r.OnTopologyChange(func() { fired <- struct{}{} })

	// Worker death between queries: the DownChan watcher must notice
	// without any search traffic.
	s0.Close()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("no topology notification after worker death")
	}

	// A shard-map swap notifies too (dialing is lazy, so the swap itself
	// always succeeds; bad wiring would surface on the next search).
	before := r.TopologyVersion()
	if err := r.SetShardMap(ShardMap{Groups: [][]string{{a1}}}); err != nil {
		t.Fatal(err)
	}
	if r.TopologyVersion() == before {
		t.Fatal("SetShardMap did not bump the topology version")
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("no topology notification after shard-map swap")
	}
}
