// Package serve is the online serving gateway: a long-lived HTTP front
// end over the engine's batched search core.
//
// The paper's protocol (Algorithms 3–4) answers *batches* of queries —
// routing, dispatch and result merging all amortize over the batch — but
// online traffic arrives one request at a time. The gateway bridges the
// two with a dynamic micro-batcher: concurrent in-flight requests are
// coalesced into one SearchBatch round (bounded by MaxBatch queries and
// a MaxWait accumulation window), recovering the throughput that
// per-request dispatch would waste, exactly as the request-coalescing
// front ends of web-scale ANN systems (LANNS, HARMONY) do over their
// distributed cores.
//
// Around the batcher sit the production concerns:
//
//   - admission control: a bounded queue sheds load (HTTP 429 +
//     Retry-After) instead of letting latency collapse under overload;
//   - deadlines: each request's context plumbs down to the search call,
//     and requests that expire while queued are dropped before dispatch;
//   - caching: an LRU of recent results with single-flight deduplication,
//     so identical concurrent queries cost one search;
//   - drain: on shutdown the gateway stops admitting, finishes what is
//     queued, and only then returns.
//
// The gateway serves either backend: the single-process core.Engine or
// the distributed core.Master driver (see Backend).
package serve

import (
	"context"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/store"
	"repro/internal/topk"
	"repro/internal/vec"
)

// BatchOutput is one backend round's answer. Results rows align with the
// queries. Degraded reports a partial answer: some partitions (shards in
// routed mode, VP-tree partitions in distributed mode) could not be
// searched, and FailedPartitions identifies them (deduplicated,
// ascending). A degraded round is still a valid answer — the rows just
// may miss neighbors from the listed partitions — so it is delivered
// with HTTP 200 plus degraded markers rather than an error, and it is
// never cached.
type BatchOutput struct {
	Results          [][]topk.Result
	Degraded         bool
	FailedPartitions []int
}

// Backend is the search core the gateway fronts. SearchBatch answers
// every query in queries with k neighbors each, honoring ctx
// cancellation (best-effort: a batch already dispatched to remote
// workers runs to completion). The batcher calls it from a single
// dispatcher goroutine, so implementations need not be safe for
// concurrent SearchBatch calls — which is what lets the single-driver
// core.Master serve here unchanged.
type Backend interface {
	// Dim is the vector dimensionality queries must have.
	Dim() int
	// MaxK bounds the per-query k this backend can return; 0 means
	// unbounded.
	MaxK() int
	SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error)
}

// FilteredBackend is the optional filtered half of a backend: one round
// answering every query under the same tag filter, with the predicate
// pushed into the graph traversal rather than applied to the output.
// Requests whose filter is non-empty are refused with ErrFilterUnsupported
// when the backend lacks it. Like SearchBatch, it is called from the
// single dispatcher goroutine.
type FilteredBackend interface {
	SearchBatchFiltered(ctx context.Context, queries *vec.Dataset, k int, f *filter.Expr) (BatchOutput, error)
}

// TopologyNotifier is implemented by backends whose result-set identity
// can change underneath the gateway — the shard router, whose shard map
// can be swapped and whose replicas go unhealthy and recover. The
// gateway registers a callback and purges its result cache on every
// topology change, so a cached row can never outlive the topology it
// was computed against.
type TopologyNotifier interface {
	// OnTopologyChange registers fn to be called (from any goroutine)
	// after every topology transition: shard-map swap, replica marked
	// down, replica recovered.
	OnTopologyChange(fn func())
}

// Mutator is the optional write half of a backend. Backends that
// implement it get POST /v1/upsert and /v1/delete; the gateway answers
// 501 on those routes otherwise. Unlike SearchBatch, mutations are
// called concurrently from handler goroutines — implementations must be
// thread-safe.
type Mutator interface {
	Upsert(v []float32, id int64) error
	Delete(id int64) error
}

// TaggedMutator is the optional tagged write half: an upsert carrying
// the point's metadata tags for filtered search. Upserts with tags
// against a Mutator lacking it are refused with 501.
type TaggedMutator interface {
	UpsertTagged(v []float32, id int64, tags map[string]string) error
}

// HybridBackend is the optional hybrid-retrieval half of a backend: a
// vector leg and/or a BM25 text leg, rank-fused (see core.SearchHybrid).
// Hybrid queries bypass the micro-batcher — they are per-query by
// nature (each carries its own text) — so implementations are called
// concurrently from handler goroutines and must be thread-safe.
// POST /v1/collections/{name}/hybrid answers 501 when the backend
// lacks this.
type HybridBackend interface {
	SearchHybrid(ctx context.Context, q []float32, text string, k int, opts core.HybridOptions) ([]core.HybridResult, error)
}

// TextMutator is the optional text write half: an upsert carrying the
// point's document text for hybrid retrieval. Upserts with text against
// a backend lacking it are refused with 501.
type TextMutator interface {
	UpsertText(v []float32, id int64, text string) error
}

// VarzProvider lets a backend contribute extra top-level sections to
// /varz (e.g. engine occupancy, WAL and compaction counters).
type VarzProvider interface {
	Varz() map[string]any
}

// WriteHealth is the optional storage-health probe of a backend's write
// path. WriteFailed returns nil while the path is healthy, or the error
// that poisoned it (e.g. a failed WAL fsync). The gateway's circuit
// breaker checks it before every mutation: a failed write path turns
// /v1/upsert and /v1/delete into 503s and flips /healthz?ready=1 to
// not-ready, while searches — which never touch storage — keep serving.
type WriteHealth interface {
	WriteFailed() error
}

// EngineBackend adapts the single-process core.Engine. With Store set,
// mutations go through the durable write-ahead path; otherwise they
// apply to the in-memory engine only and are lost on restart.
type EngineBackend struct {
	Engine *core.Engine
	// Threads is the worker-pool width per batch (0 = GOMAXPROCS).
	Threads int
	// Store, when non-nil, is the durability layer mutations route
	// through (WAL + snapshots + compaction).
	Store *store.Durable
	// Lexical enables text upserts and hybrid search (annserve -lexical).
	// Off by default: the gate mirrors the per-collection "lexical"
	// config flag, keeping tokenization cost and text-sidecar growth
	// opt-in on every serving path.
	Lexical bool
}

// Dim implements Backend.
func (b *EngineBackend) Dim() int { return b.Engine.Dim() }

// MaxK implements Backend; the engine serves any k.
func (b *EngineBackend) MaxK() int { return 0 }

// SearchBatch implements Backend. A single-process engine either
// answers fully or errors; it is never degraded.
func (b *EngineBackend) SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error) {
	res, err := b.Engine.SearchBatchContext(ctx, queries, k, b.Threads)
	return BatchOutput{Results: res}, err
}

// SearchBatchFiltered implements FilteredBackend: the whole round runs
// under one pushed-down predicate.
func (b *EngineBackend) SearchBatchFiltered(ctx context.Context, queries *vec.Dataset, k int, f *filter.Expr) (BatchOutput, error) {
	res, err := b.Engine.SearchBatchFiltered(ctx, queries, k, f, b.Threads)
	return BatchOutput{Results: res}, err
}

// Upsert implements Mutator.
func (b *EngineBackend) Upsert(v []float32, id int64) error {
	if b.Store != nil {
		return b.Store.Upsert(v, id)
	}
	return b.Engine.Add(v, id)
}

// UpsertTagged implements TaggedMutator. Without a store the tags land
// in the in-memory engine only, like the vector itself.
func (b *EngineBackend) UpsertTagged(v []float32, id int64, tags map[string]string) error {
	if b.Store != nil {
		return b.Store.UpsertTagged(v, id, tags)
	}
	if err := b.Engine.Add(v, id); err != nil {
		return err
	}
	b.Engine.SetTags(id, tags)
	return nil
}

// UpsertText implements TextMutator. Requires Lexical.
func (b *EngineBackend) UpsertText(v []float32, id int64, text string) error {
	if !b.Lexical {
		return collection.ErrLexicalDisabled
	}
	if b.Store != nil {
		return b.Store.UpsertText(v, id, text)
	}
	if err := b.Engine.Add(v, id); err != nil {
		return err
	}
	b.Engine.SetText(id, text, v)
	return nil
}

// SearchHybrid implements HybridBackend. Requires Lexical.
func (b *EngineBackend) SearchHybrid(ctx context.Context, q []float32, text string, k int, opts core.HybridOptions) ([]core.HybridResult, error) {
	if !b.Lexical {
		return nil, collection.ErrLexicalDisabled
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Engine.SearchHybrid(q, text, k, opts)
}

// Delete implements Mutator.
func (b *EngineBackend) Delete(id int64) error {
	if b.Store != nil {
		return b.Store.Delete(id)
	}
	b.Engine.Delete(id)
	return nil
}

// WriteFailed implements WriteHealth. A memory-only backend cannot
// fail durably; with a store, a poisoned WAL (failed fsync, ENOSPC)
// breaks the write path until a restart re-reads the log.
func (b *EngineBackend) WriteFailed() error {
	if b.Store != nil {
		return b.Store.Failed()
	}
	return nil
}

// Varz implements VarzProvider: engine occupancy plus, when durable,
// the store's WAL/compaction counters under "ingest".
func (b *EngineBackend) Varz() map[string]any {
	m := map[string]any{
		"engine": map[string]any{
			"points":     b.Engine.Len(),
			"partitions": b.Engine.Partitions(),
			"inserted":   b.Engine.Inserted(),
			"tombstones": b.Engine.Tombstones(),
			"local":      b.Engine.LocalKind(),
		},
	}
	if b.Store != nil {
		m["ingest"] = b.Store.Stats()
	}
	if b.Lexical {
		ls := b.Engine.LexicalStats()
		m["lexical"] = map[string]any{
			"docs":           ls.Docs,
			"terms":          ls.Terms,
			"postings_bytes": ls.PostingsBytes,
			"avg_doc_len":    ls.AvgDocLen,
			"searches":       ls.Searches,
			"k1":             ls.K1,
			"b":              ls.B,
		}
	}
	if fi, ok := b.Engine.FrozenInfo(); ok {
		m["frozen"] = map[string]any{
			"partitions":   fi.Partitions,
			"points":       fi.FrozenLen,
			"tail_points":  fi.TailLen,
			"arena_bytes":  fi.ArenaBytes,
			"sq8":          fi.Quantized,
			"searches":     fi.Searches,
			"quant_scans":  fi.QuantComps,
			"reranked":     fi.Reranked,
			"rerank_ratio": fi.RerankRatio(),
			"tail_scanned": fi.TailScanned,
			"refreezes":    fi.Refreezes,
		}
	}
	return m
}

// MasterBackend adapts the distributed core.Master driver handle. The
// cluster's k is fixed at build time (Config.K); requests asking for
// fewer neighbors are trimmed by the gateway, requests asking for more
// are capped at MaxK by the server.
type MasterBackend struct {
	Master *core.Master
}

// Dim implements Backend.
func (b *MasterBackend) Dim() int { return b.Master.Dim() }

// MaxK implements Backend.
func (b *MasterBackend) MaxK() int { return b.Master.K() }

// SearchBatch implements Backend. The distributed protocol has its own
// deadline machinery (Config.QueryTimeout failover); ctx is checked
// before dispatch so queue-expired batches never reach the wire. A
// batch the master finished Degraded (replica failover exhausted)
// surfaces as a degraded BatchOutput with the failed VP-tree
// partitions listed.
func (b *MasterBackend) SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error) {
	if err := ctx.Err(); err != nil {
		return BatchOutput{}, err
	}
	res, err := b.Master.Search(queries)
	if err != nil {
		return BatchOutput{}, err
	}
	out := res.Results
	for i := range out {
		if len(out[i]) > k {
			out[i] = out[i][:k]
		}
	}
	return BatchOutput{
		Results:          out,
		Degraded:         res.Degraded,
		FailedPartitions: res.FailedPartitions,
	}, nil
}
