package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/collection"
)

// hybridServer spins a registry-backed gateway with a lexical
// collection "docs" plus the non-lexical "default".
func hybridServer(t *testing.T) (*Server, string, *http.Client) {
	t.Helper()
	s, ts, reg := testCollectionServer(t, ServerConfig{})
	if _, err := reg.Create("docs", collection.Config{Dim: 8, Lexical: true}); err != nil {
		t.Fatal(err)
	}
	// The server was built before "docs" existed; register the tenant the
	// way handleColCreate does.
	col, err := reg.Get("docs")
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.tenants["docs"] = s.newTenant("docs", &CollectionBackend{Col: col}, col)
	s.mu.Unlock()
	return s, ts.URL, ts.Client()
}

func decodeHybrid(t *testing.T, data []byte) hybridResponse {
	t.Helper()
	var hr hybridResponse
	if err := json.Unmarshal(data, &hr); err != nil {
		t.Fatalf("hybrid body not JSON: %v: %s", err, data)
	}
	return hr
}

func TestHybridEndpoint(t *testing.T) {
	s, url, client := hybridServer(t)
	rng := rand.New(rand.NewSource(11))

	// Ingest text points through the upsert route, one rare keyword doc.
	var pts []map[string]any
	for id := 0; id < 40; id++ {
		text := "common body of words"
		if id == 7 {
			text = "rare xylophone solo"
		}
		v := make([]float32, 8)
		for j := range v {
			v[j] = rng.Float32()
		}
		pts = append(pts, map[string]any{"id": id, "vector": v, "text": text})
	}
	resp, data := postJSON(t, client, url, "/v1/collections/docs/upsert", map[string]any{"points": pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text upsert: %d %s", resp.StatusCode, data)
	}

	// Hybrid query with both legs: the keyword doc must surface.
	q := make([]float32, 8)
	for j := range q {
		q[j] = 0.5
	}
	body := map[string]any{"query": q, "text": "xylophone", "k": 5}
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hybrid: %d %s", resp.StatusCode, data)
	}
	hr := decodeHybrid(t, data)
	if hr.Fusion != "rrf" {
		t.Fatalf("default fusion = %q", hr.Fusion)
	}
	found := false
	for _, r := range hr.Results {
		if r.ID == 7 {
			found = true
			if r.BM25 <= 0 || r.Dist == nil {
				t.Fatalf("keyword hit missing bm25/dist: %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("keyword doc missing: %s", data)
	}

	// Second identical request is a cache hit.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid", body)
	if resp.StatusCode != http.StatusOK || !decodeHybrid(t, data).Cached {
		t.Fatalf("repeat hybrid not cached: %d %s", resp.StatusCode, data)
	}
	if s.Stats().HybridCacheHits.Load() != 1 {
		t.Fatalf("HybridCacheHits = %d", s.Stats().HybridCacheHits.Load())
	}

	// A mutation purges the hybrid cache.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/delete", map[string]any{"id": 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid", body)
	if resp.StatusCode != http.StatusOK || decodeHybrid(t, data).Cached {
		t.Fatalf("hybrid cached across mutation: %d %s", resp.StatusCode, data)
	}

	// Text-only and vector-only legs both work.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid",
		map[string]any{"text": "xylophone", "k": 3, "fusion": "weighted"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text-only hybrid: %d %s", resp.StatusCode, data)
	}
	if hr := decodeHybrid(t, data); hr.Fusion != "weighted" || len(hr.Results) == 0 || hr.Results[0].ID != 7 {
		t.Fatalf("text-only weighted hybrid: %s", data)
	}
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid",
		map[string]any{"query": q, "k": 3})
	if resp.StatusCode != http.StatusOK || len(decodeHybrid(t, data).Results) != 3 {
		t.Fatalf("vector-only hybrid: %d %s", resp.StatusCode, data)
	}
}

func TestHybridTypedErrors(t *testing.T) {
	_, url, client := hybridServer(t)
	q := make([]float32, 8)

	// No legs at all.
	resp, data := postJSON(t, client, url, "/v1/collections/docs/hybrid", map[string]any{"k": 5})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeMissingLeg {
		t.Fatalf("no legs: %d %s", resp.StatusCode, data)
	}
	// Wrong dim.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid",
		map[string]any{"query": []float32{1, 2}, "text": "x"})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeDimMismatch {
		t.Fatalf("bad dim: %d %s", resp.StatusCode, data)
	}
	// Unknown fusion mode.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid",
		map[string]any{"text": "x", "fusion": "borda"})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeBadRequest {
		t.Fatalf("bad fusion: %d %s", resp.StatusCode, data)
	}
	// Bad filter expression.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid",
		map[string]any{"text": "x", "filter": "a=="})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeBadFilter {
		t.Fatalf("bad filter: %d %s", resp.StatusCode, data)
	}
	// Hybrid search against a non-lexical collection.
	resp, data = postJSON(t, client, url, "/v1/collections/default/hybrid",
		map[string]any{"query": q, "text": "x"})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeLexicalDisabled {
		t.Fatalf("lexical disabled search: %d %s", resp.StatusCode, data)
	}
	// Text upsert against a non-lexical collection.
	resp, data = postJSON(t, client, url, "/v1/collections/default/upsert",
		map[string]any{"id": 1, "vector": q, "text": "hello"})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeLexicalDisabled {
		t.Fatalf("lexical disabled upsert: %d %s", resp.StatusCode, data)
	}
	// Text and tags on one point is a 400.
	resp, data = postJSON(t, client, url, "/v1/collections/docs/upsert",
		map[string]any{"points": []map[string]any{
			{"id": 1, "vector": q, "text": "hello", "tags": map[string]string{"a": "b"}},
		}})
	if resp.StatusCode != http.StatusBadRequest || decodeErr(t, data).Code != codeBadRequest {
		t.Fatalf("text+tags upsert: %d %s", resp.StatusCode, data)
	}
	// Unknown collection is still 404.
	resp, data = postJSON(t, client, url, "/v1/collections/nope/hybrid", map[string]any{"text": "x"})
	if resp.StatusCode != http.StatusNotFound || decodeErr(t, data).Code != codeUnknownCollection {
		t.Fatalf("unknown collection: %d %s", resp.StatusCode, data)
	}
}

// TestHybridVarz checks the per-collection lexical /varz section.
func TestHybridVarz(t *testing.T) {
	_, url, client := hybridServer(t)
	v := make([]float32, 8)
	resp, data := postJSON(t, client, url, "/v1/collections/docs/upsert",
		map[string]any{"id": 1, "vector": v, "text": "alpha beta gamma"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert: %d %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, url, "/v1/collections/docs/hybrid", map[string]any{"text": "alpha"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hybrid: %d %s", resp.StatusCode, data)
	}
	vresp, err := client.Get(url + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(vresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	cols := doc["collections"].(map[string]any)
	docsSec := cols["docs"].(map[string]any)
	lz, ok := docsSec["lexical"].(map[string]any)
	if !ok {
		t.Fatalf("docs varz missing lexical section: %v", docsSec)
	}
	if lz["docs"].(float64) != 1 || lz["terms"].(float64) != 3 {
		t.Fatalf("lexical varz: %v", lz)
	}
	if lz["hybrid_rrf"].(float64) != 1 {
		t.Fatalf("hybrid_rrf = %v", lz["hybrid_rrf"])
	}
	if doc["hybrid_requests"].(float64) < 1 {
		t.Fatalf("hybrid_requests = %v", doc["hybrid_requests"])
	}
	if _, ok := docsSec["hybrid_cache_entries"]; !ok {
		t.Fatal("varz missing hybrid_cache_entries")
	}
}
