package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/topk"
	"repro/internal/vec"
)

func postJSON(t *testing.T, client *http.Client, url, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestMutationEndpoints drives the write path end to end over a durable
// store: upsert, search-sees-it, delete, search-stops-seeing-it, cache
// invalidation in between, and /varz exposing the ingest counters.
func TestMutationEndpoints(t *testing.T) {
	e := testEngine(t)
	d, err := store.Create(t.TempDir(), e, store.Options{SyncEvery: 1, CompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := NewServer(&EngineBackend{Engine: e, Store: d}, ServerConfig{
		Batcher:   BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond, QueueDepth: 64},
		CacheSize: 64,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A far-away point only the new insert can be nearest to.
	target := []float32{9, 9, 9, 9, 9, 9, 9, 9}

	// Warm the cache with the pre-insert answer.
	resp, data := postSearch(t, ts.Client(), ts.URL, map[string]any{"query": target, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}

	// Single-point upsert.
	resp, data = postJSON(t, ts.Client(), ts.URL, "/v1/upsert",
		map[string]any{"id": 9001, "vector": target})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert: %d %s", resp.StatusCode, data)
	}
	var mr mutateResponse
	json.Unmarshal(data, &mr)
	if mr.Upserted != 1 {
		t.Fatalf("upserted %d, want 1", mr.Upserted)
	}

	// The cache was purged: the same query now finds the new point.
	resp, data = postSearch(t, ts.Client(), ts.URL, map[string]any{"query": target, "k": 1})
	var sr searchResponse
	json.Unmarshal(data, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Results) != 1 {
		t.Fatalf("post-upsert search: %d %s", resp.StatusCode, data)
	}
	if sr.Results[0].Cached || sr.Results[0].IDs[0] != 9001 {
		t.Fatalf("post-upsert search did not surface the insert: %s", data)
	}

	// Batch upsert.
	resp, data = postJSON(t, ts.Client(), ts.URL, "/v1/upsert", map[string]any{
		"points": []map[string]any{
			{"id": 9002, "vector": []float32{8, 8, 8, 8, 8, 8, 8, 8}},
			{"id": 9003, "vector": []float32{7, 7, 7, 7, 7, 7, 7, 7}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch upsert: %d %s", resp.StatusCode, data)
	}

	// Delete the first insert; the target query falls back to 9002.
	resp, data = postJSON(t, ts.Client(), ts.URL, "/v1/delete", map[string]any{"id": 9001})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	json.Unmarshal(data, &mr)
	if mr.Deleted != 1 {
		t.Fatalf("deleted %d, want 1", mr.Deleted)
	}
	resp, data = postSearch(t, ts.Client(), ts.URL, map[string]any{"query": target, "k": 1})
	json.Unmarshal(data, &sr)
	if resp.StatusCode != http.StatusOK || sr.Results[0].IDs[0] != 9002 {
		t.Fatalf("post-delete search still returns the tombstoned id: %s", data)
	}

	// Validation errors.
	for _, bad := range []map[string]any{
		{"vector": target},                   // id missing
		{"id": 1, "vector": []float32{1, 2}}, // wrong dim
		{},                                   // empty
	} {
		resp, _ = postJSON(t, ts.Client(), ts.URL, "/v1/upsert", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad upsert %v: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// /varz carries the engine and ingest sections with live counters.
	vresp, err := ts.Client().Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	vdata, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	var varz struct {
		Requests int64 `json:"requests"`
		Engine   *struct {
			Points     int   `json:"points"`
			Inserted   int64 `json:"inserted"`
			Tombstones int   `json:"tombstones"`
		} `json:"engine"`
		Ingest *store.Snapshot `json:"ingest"`
	}
	if err := json.Unmarshal(vdata, &varz); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, vdata)
	}
	if varz.Engine == nil || varz.Ingest == nil {
		t.Fatalf("varz missing engine/ingest sections: %s", vdata)
	}
	if varz.Engine.Inserted != 3 || varz.Engine.Tombstones != 1 {
		t.Errorf("varz engine inserted=%d tombstones=%d, want 3/1", varz.Engine.Inserted, varz.Engine.Tombstones)
	}
	if varz.Ingest.Upserts != 3 || varz.Ingest.Deletes != 1 || varz.Ingest.WALAppends != 4 {
		t.Errorf("varz ingest %+v, want upserts=3 deletes=1 wal_appends=4", varz.Ingest)
	}
	if got := s.Stats().Upserts.Load(); got != 3 {
		t.Errorf("server upsert counter %d, want 3", got)
	}

	// Drain refuses further writes.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL, "/v1/delete", map[string]any{"id": 9002})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain delete: %d, want 503", resp.StatusCode)
	}
}

// readOnlyBackend implements Backend but not Mutator.
type readOnlyBackend struct{}

func (readOnlyBackend) Dim() int  { return 4 }
func (readOnlyBackend) MaxK() int { return 0 }
func (readOnlyBackend) SearchBatch(ctx context.Context, queries *vec.Dataset, k int) (BatchOutput, error) {
	return BatchOutput{Results: make([][]topk.Result, queries.Len())}, nil
}

func TestMutationNotImplemented(t *testing.T) {
	s := NewServer(readOnlyBackend{}, ServerConfig{
		Batcher: BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 8},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.Client(), ts.URL, "/v1/upsert",
		map[string]any{"id": 1, "vector": []float32{1, 2, 3, 4}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("upsert on read-only backend: %d, want 501", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL, "/v1/delete", map[string]any{"id": 1})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("delete on read-only backend: %d, want 501", resp.StatusCode)
	}
}

// TestEngineBackendWithoutStore: mutations still work, applied to the
// in-memory engine only.
func TestEngineBackendWithoutStore(t *testing.T) {
	e := testEngine(t)
	b := &EngineBackend{Engine: e}
	rng := rand.New(rand.NewSource(3))
	if err := b.Upsert(randQuery(rng, 8), 777); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(777); err != nil {
		t.Fatal(err)
	}
	if e.Inserted() != 1 || e.Tombstones() != 1 {
		t.Fatalf("engine inserted=%d tombstones=%d, want 1/1", e.Inserted(), e.Tombstones())
	}
	if v := b.Varz(); v["ingest"] != nil {
		t.Error("varz ingest section present without a store")
	}
}
