package clustertest

import (
	"testing"
	"time"

	"repro/internal/serve"
)

// TestCacheInvalidatedOnTopologyChange is the regression test for the
// stale-cache bug: the gateway's result cache must not serve rows
// computed against a topology that no longer exists. Marking a shard
// unhealthy and swapping the shard map must both purge it, and degraded
// rows must never enter it.
func TestCacheInvalidatedOnTopologyChange(t *testing.T) {
	c := Start(t, Options{
		Shards: 2,
		Dim:    8,
		N:      600,
		Seed:   11,
		Router: serve.RouterConfig{ProbeCooloff: time.Hour},
		Server: serve.ServerConfig{CacheSize: 1024},
	})
	q := Rows(RandomQueries(8, 1, 12))
	const k = 5

	// Warm the cache: second identical query is a hit.
	first := c.Search(t, q, k)
	if first.Degraded {
		t.Fatalf("healthy cluster answered degraded: %+v", first)
	}
	warm := c.Search(t, q, k)
	if !warm.Results[0].Cached {
		t.Fatal("identical repeat query was not served from cache")
	}

	// Shard 1 dies; the connection watcher marks it unhealthy and the
	// topology purge must evict the cached full-topology row. The next
	// identical query re-searches and comes back degraded — if it were
	// still served from cache it would be a stale, silently-complete
	// answer.
	v := c.Router.TopologyVersion()
	c.Workers[1][0].Kill()
	c.WaitTopologyVersion(t, v+1, 5*time.Second)
	after := c.Search(t, q, k)
	if after.Results[0].Cached {
		t.Fatal("cache served a row computed before the shard died")
	}
	if !after.Degraded || len(after.FailedPartitions) != 1 || after.FailedPartitions[0] != 1 {
		t.Fatalf("post-death answer not degraded on shard 1: %+v", after)
	}

	// Degraded rows must not have been cached either: the same query
	// again still misses.
	again := c.Search(t, q, k)
	if again.Results[0].Cached {
		t.Fatal("a degraded row was cached")
	}

	// Recovery via shard-map swap: purge again, then the first full
	// answer is a miss and the second a hit — on post-recovery data.
	spare := StartWorker(t, 1, c.Workers[1][0].Engine)
	if err := c.Router.SetShardMap(serve.ShardMap{Groups: [][]string{
		{c.Workers[0][0].Addr}, {spare.Addr},
	}}); err != nil {
		t.Fatal(err)
	}
	rec := c.Search(t, q, k)
	if rec.Degraded {
		t.Fatalf("still degraded after recovery: %+v", rec)
	}
	if rec.Results[0].Cached {
		t.Fatal("cache survived the shard-map swap")
	}
	rewarm := c.Search(t, q, k)
	if !rewarm.Results[0].Cached {
		t.Fatal("recovered topology's answer was not cached")
	}
	if rewarm.Degraded {
		t.Fatalf("cached recovered answer is degraded: %+v", rewarm)
	}

	// The purges are accounted on /varz.
	varz := c.Varz(t)
	if n, _ := varz["topology_purges"].(float64); n < 2 {
		t.Fatalf("varz topology_purges = %v, want >= 2", varz["topology_purges"])
	}
}
