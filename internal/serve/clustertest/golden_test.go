package clustertest

import (
	"fmt"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

// respRows converts a gateway response to result rows for recall math.
func respRows(resp SearchResponse) [][]topk.Result {
	rows := make([][]topk.Result, len(resp.Results))
	for i, r := range resp.Results {
		row := make([]topk.Result, len(r.IDs))
		for j := range r.IDs {
			row[j] = topk.Result{ID: r.IDs[j], Dist: r.Dists[j]}
		}
		rows[i] = row
	}
	return rows
}

// TestShardedGoldenEquivalence is the recall-regression gate for the
// sharded path: across k, efSearch, and shard-count settings, the
// gateway's merged answer must be bit-identical to merging the same
// shard engines locally, and its recall against brute-force truth must
// not trail an equivalently configured single-node engine by more than
// epsilon. A merge bug (dropped shard, bad dedup, wrong ordering) fails
// the exact check; a routing/quality regression fails the recall check.
func TestShardedGoldenEquivalence(t *testing.T) {
	const (
		dim     = 8
		n       = 900
		nq      = 25
		epsilon = 0.05
	)
	queries := RandomQueries(dim, nq, 4242)

	cases := []struct {
		shards, k, ef int
	}{
		{shards: 2, k: 1, ef: 0},
		{shards: 2, k: 10, ef: 0},
		{shards: 3, k: 10, ef: 0},
		{shards: 3, k: 10, ef: 128},
		{shards: 4, k: 25, ef: 0},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("shards=%d/k=%d/ef=%d", tc.shards, tc.k, tc.ef)
		t.Run(name, func(t *testing.T) {
			c := Start(t, Options{Shards: tc.shards, Dim: dim, N: n, Seed: 31})
			if tc.ef > 0 {
				for _, reps := range c.Workers {
					reps[0].Engine.SetEfSearch(tc.ef)
				}
			}
			resp := c.Search(t, Rows(queries), tc.k)
			if resp.Degraded {
				t.Fatalf("healthy cluster answered degraded: %+v", resp)
			}
			got := respRows(resp)

			// Exact gate: the gateway must reproduce a local merge of the
			// very same shard engines — distances cross the wire as raw
			// float32 bits, so equality is exact, not approximate.
			for qi := 0; qi < nq; qi++ {
				lists := make([][]topk.Result, len(c.Workers))
				for s, reps := range c.Workers {
					rows, err := reps[0].Engine.Search(queries.At(qi), tc.k)
					if err != nil {
						t.Fatal(err)
					}
					lists[s] = rows
				}
				want := topk.Merge(tc.k, lists...)
				if len(got[qi]) != len(want) {
					t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want))
				}
				for j := range want {
					if got[qi][j] != want[j] {
						t.Fatalf("query %d result %d: got %+v, want %+v",
							qi, j, got[qi][j], want[j])
					}
				}
			}

			// Recall gate vs an independent single-node engine over the
			// full corpus.
			cfg := core.Config{Partitions: 2, Seed: 32}
			single, err := core.NewEngine(c.Corpus.Clone(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.ef > 0 {
				single.SetEfSearch(tc.ef)
			}
			singleRows, err := single.SearchBatch(queries, tc.k, 0)
			if err != nil {
				t.Fatal(err)
			}
			truth := bruteforce.GroundTruth(c.Corpus, queries, tc.k, vec.L2)
			shardedRecall := metrics.MeanRecall(got, truth)
			singleRecall := metrics.MeanRecall(singleRows, truth)
			t.Logf("recall: sharded %.4f, single-node %.4f", shardedRecall, singleRecall)
			if shardedRecall < singleRecall-epsilon {
				t.Fatalf("sharded recall %.4f trails single-node %.4f by more than %.2f",
					shardedRecall, singleRecall, epsilon)
			}
		})
	}
}

// TestShardedDuplicateIDMerge stages shards whose contents overlap —
// the same global ID served by two workers, as happens mid-resharding
// or with replicated boundary rows. The merged answer must contain each
// ID at most once, at its best distance, in sorted order.
func TestShardedDuplicateIDMerge(t *testing.T) {
	const dim = 8
	base := RandomDataset(dim, 300, 17)
	// Shard 0: rows [0,200); shard 1: rows [100,300) — IDs 100..199
	// live on both shards with identical vectors.
	shard0 := base.Slice(0, 200)
	shard1 := base.Slice(100, 300)
	c := Start(t, Options{ShardData: []*vec.Dataset{shard0, shard1}, Corpus: base})

	queries := RandomQueries(dim, 20, 18)
	const k = 15
	resp := c.Search(t, Rows(queries), k)
	if resp.Degraded {
		t.Fatalf("healthy cluster answered degraded: %+v", resp)
	}
	for qi, r := range resp.Results {
		if len(r.IDs) != k {
			t.Fatalf("query %d: %d results, want %d", qi, len(r.IDs), k)
		}
		seen := make(map[int64]bool, k)
		for j, id := range r.IDs {
			if seen[id] {
				t.Fatalf("query %d: duplicate ID %d survived the merge: %v", qi, id, r.IDs)
			}
			seen[id] = true
			if j > 0 && r.Dists[j] < r.Dists[j-1] {
				t.Fatalf("query %d: results out of order at %d: %v", qi, j, r.Dists)
			}
		}
		// The overlap region must still be reachable: against the local
		// merge of both shard engines the row is exact.
		l0, err := c.Workers[0][0].Engine.Search(queries.At(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := c.Workers[1][0].Engine.Search(queries.At(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		want := topk.Merge(k, l0, l1)
		for j := range want {
			if r.IDs[j] != want[j].ID || r.Dists[j] != want[j].Dist {
				t.Fatalf("query %d result %d: got (%d,%g), want (%d,%g)",
					qi, j, r.IDs[j], r.Dists[j], want[j].ID, want[j].Dist)
			}
		}
	}
}
