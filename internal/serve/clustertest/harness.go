// Package clustertest is the reusable in-repo cluster harness: it
// spawns a gateway plus N worker shards (with optional replicas) in one
// process, wired over real loopback TCP, so end-to-end multi-node
// behavior — scatter-gather merging, shard death mid-query, replica
// takeover, cache invalidation on topology change — is testable under
// `go test -race` with no external processes or ports.
package clustertest

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/vec"
)

// Worker is one shard process stand-in: an engine over its slice of
// the corpus, served on loopback TCP via the shard RPC.
type Worker struct {
	Shard  int
	Addr   string
	Engine *core.Engine
	srv    *cluster.ShardServer
}

// Kill tears the worker's listener and connections down, simulating a
// process crash. Idempotent.
func (w *Worker) Kill() { w.srv.Close() }

// StartWorker serves eng as shard index `shard` on a fresh loopback
// port and returns the running worker.
func StartWorker(tb testing.TB, shard int, eng *core.Engine) *Worker {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := cluster.NewShardServer(ln, cluster.ShardInfo{
		Shard:  shard,
		Dim:    eng.Dim(),
		Points: int64(eng.Len()),
	}, eng.ShardHandler(0))
	w := &Worker{Shard: shard, Addr: srv.Addr(), Engine: eng, srv: srv}
	tb.Cleanup(w.Kill)
	return w
}

// Options configures a test cluster.
type Options struct {
	// Shards is the number of data shards (default 2).
	Shards int
	// Replicas is the number of workers per shard (default 1).
	Replicas int
	// Dim and N shape the synthetic corpus (defaults 8 and 600) when
	// Corpus is nil.
	Dim, N int
	// Seed makes the corpus and the shard engines reproducible.
	Seed int64
	// Corpus overrides the synthetic corpus; it is sharded contiguously
	// with global IDs preserved.
	Corpus *vec.Dataset
	// ShardData overrides sharding entirely: ShardData[i] is shard i's
	// dataset. Shards/Corpus/Dim/N are ignored. Lets tests stage
	// duplicate-ID layouts where shards overlap.
	ShardData []*vec.Dataset
	// EngineConfig builds each shard's engine; zero Partitions defaults
	// to 2.
	EngineConfig core.Config
	// Router tunes the gateway's shard router.
	Router serve.RouterConfig
	// Server tunes the HTTP gateway.
	Server serve.ServerConfig
}

// Cluster is a running gateway plus its worker fleet.
type Cluster struct {
	// Workers[s][r] is replica r of shard s, in shard-map order.
	Workers [][]*Worker
	// Corpus is the full dataset the shards jointly serve.
	Corpus *vec.Dataset
	Router *serve.Router
	Server *serve.Server
	HTTP   *httptest.Server
}

// RandomDataset builds a reproducible uniform corpus with IDs 0..n-1.
func RandomDataset(dim, n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := vec.NewDataset(dim, n)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		ds.Append(v, int64(i))
	}
	return ds
}

// RandomQueries builds nq query vectors from seed.
func RandomQueries(dim, nq int, seed int64) *vec.Dataset {
	return RandomDataset(dim, nq, seed)
}

// ShardDatasets splits ds into n contiguous shards (global IDs
// preserved), the layout annbuild/annworker would produce.
func ShardDatasets(ds *vec.Dataset, n int) []*vec.Dataset {
	out := make([]*vec.Dataset, n)
	per := (ds.Len() + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if hi > ds.Len() {
			hi = ds.Len()
		}
		out[i] = ds.Slice(lo, hi)
	}
	return out
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Dim <= 0 {
		o.Dim = 8
	}
	if o.N <= 0 {
		o.N = 600
	}
	if o.EngineConfig.Partitions <= 0 {
		o.EngineConfig.Partitions = 2
	}
	if o.EngineConfig.Seed == 0 {
		o.EngineConfig.Seed = o.Seed + 1
	}
	if o.Server.Batcher.MaxBatch == 0 {
		o.Server.Batcher = serve.BatcherConfig{
			MaxBatch: 32, MaxWait: 2 * time.Millisecond, QueueDepth: 256,
		}
	}
}

// Start brings up the cluster: shard engines, one worker per replica,
// the router dialed over loopback TCP, and the HTTP gateway. Cleanup is
// registered on tb.
func Start(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	opts.fill()

	shardData := opts.ShardData
	corpus := opts.Corpus
	if shardData == nil {
		if corpus == nil {
			corpus = RandomDataset(opts.Dim, opts.N, opts.Seed)
		}
		shardData = ShardDatasets(corpus, opts.Shards)
	} else if corpus == nil {
		corpus = vec.NewDataset(shardData[0].Dim, 0)
		for _, sd := range shardData {
			corpus.AppendAll(sd)
		}
	}

	c := &Cluster{Corpus: corpus}
	groups := make([][]string, len(shardData))
	for s, sd := range shardData {
		if sd.Len() == 0 {
			tb.Fatalf("shard %d is empty; use a bigger corpus or fewer shards", s)
		}
		eng, err := core.NewEngine(sd.Clone(), opts.EngineConfig)
		if err != nil {
			tb.Fatalf("shard %d engine: %v", s, err)
		}
		reps := make([]*Worker, opts.Replicas)
		for r := 0; r < opts.Replicas; r++ {
			// Replicas share the built engine — same data, separate
			// listener, exactly what a restarted copy would serve.
			reps[r] = StartWorker(tb, s, eng)
			groups[s] = append(groups[s], reps[r].Addr)
		}
		c.Workers = append(c.Workers, reps)
	}

	router, err := serve.NewRouter(serve.ShardMap{Groups: groups}, opts.Router)
	if err != nil {
		tb.Fatalf("router: %v", err)
	}
	tb.Cleanup(func() { router.Close() })
	c.Router = router

	c.Server = serve.NewServer(router, opts.Server)
	c.HTTP = httptest.NewServer(c.Server.Handler())
	tb.Cleanup(c.HTTP.Close)
	return c
}

// SearchResponse mirrors the gateway's /v1/search JSON body.
type SearchResponse struct {
	K                int   `json:"k"`
	Degraded         bool  `json:"degraded"`
	FailedPartitions []int `json:"failed_partitions"`
	Results          []struct {
		IDs    []int64   `json:"ids"`
		Dists  []float32 `json:"dists"`
		Cached bool      `json:"cached"`
	} `json:"results"`
}

// Search POSTs queries to the gateway and decodes the response; non-200
// statuses fail the test.
func (c *Cluster) Search(tb testing.TB, queries [][]float32, k int) SearchResponse {
	tb.Helper()
	resp, body := c.SearchRaw(tb, queries, k)
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("search: HTTP %d: %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		tb.Fatalf("search: bad body %q: %v", body, err)
	}
	return out
}

// SearchRaw POSTs queries and returns the raw response for tests that
// assert on status codes.
func (c *Cluster) SearchRaw(tb testing.TB, queries [][]float32, k int) (*http.Response, []byte) {
	tb.Helper()
	req := map[string]any{"queries": queries, "k": k}
	b, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := c.HTTP.Client().Post(c.HTTP.URL+"/v1/search", "application/json", bytes.NewReader(b))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, body
}

// Varz fetches and decodes the gateway's /varz document.
func (c *Cluster) Varz(tb testing.TB) map[string]any {
	tb.Helper()
	resp, err := c.HTTP.Client().Get(c.HTTP.URL + "/varz")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("varz: HTTP %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		tb.Fatal(err)
	}
	return doc
}

// WaitTopologyVersion blocks until the router's topology version
// reaches at least v (worker deaths are detected asynchronously by the
// connection watchers).
func (c *Cluster) WaitTopologyVersion(tb testing.TB, v uint64, timeout time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Router.TopologyVersion() >= v {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("topology version still %d, want >= %d after %v",
		c.Router.TopologyVersion(), v, timeout)
}

// Rows converts a query dataset into the [][]float32 the HTTP API takes.
func Rows(ds *vec.Dataset) [][]float32 {
	rows := make([][]float32, ds.Len())
	for i := range rows {
		rows[i] = ds.At(i)
	}
	return rows
}
