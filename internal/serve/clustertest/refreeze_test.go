package clustertest

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hnsw"
)

// TestShardedRefreezeMidTraffic: shard engines serving from frozen+SQ8
// layouts are re-frozen over and over while the gateway scatter-gathers
// queries across them. The corpus never changes, so every response must
// be byte-identical to the pre-traffic baseline — a torn arena, a
// half-installed frozen view, or a codec retrained against partial data
// would all surface as a diff (and as a race under -race, which is how
// tier1-cluster runs this).
func TestShardedRefreezeMidTraffic(t *testing.T) {
	cfg := core.DefaultConfig(2)
	cfg.Seed = 1
	cfg.Frozen, cfg.SQ8 = true, true
	c := Start(t, Options{
		Shards:       3,
		Dim:          8,
		N:            1200,
		Seed:         5,
		EngineConfig: cfg,
	})

	queries := Rows(RandomQueries(8, 16, 77))
	const k = 10
	baseline := c.Search(t, queries, k)
	if baseline.Degraded || len(baseline.Results) != len(queries) {
		t.Fatalf("bad baseline: %+v", baseline)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, 8)

	// Traffic: keep replaying the baseline queries and demand identical
	// answers while the shards re-freeze underneath.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := c.Search(t, queries, k)
				if got.Degraded {
					errCh <- "degraded response on a healthy cluster"
					return
				}
				for i := range baseline.Results {
					if !reflect.DeepEqual(got.Results[i].IDs, baseline.Results[i].IDs) ||
						!reflect.DeepEqual(got.Results[i].Dists, baseline.Results[i].Dists) {
						errCh <- "mid-refreeze response diverged from baseline"
						return
					}
				}
			}
		}()
	}

	// Re-freezer: every shard engine gets re-frozen with the same
	// options, repeatedly, mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eng := c.Workers[i%len(c.Workers)][0].Engine
			if err := eng.Freeze(hnsw.FreezeOptions{SQ8: true}); err != nil {
				errCh <- err.Error()
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case msg := <-errCh:
		close(stop)
		<-done
		t.Fatal(msg)
	case <-time.After(1200 * time.Millisecond):
		close(stop)
		<-done
	}
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}

	// The workers really are serving frozen quantized views: one more
	// scatter-gather touches every shard (each re-freeze resets the
	// per-view counters, so count after the churn stops).
	final := c.Search(t, queries, k)
	for i := range baseline.Results {
		if !reflect.DeepEqual(final.Results[i].IDs, baseline.Results[i].IDs) {
			t.Fatalf("post-refreeze response diverged from baseline at query %d", i)
		}
	}
	for s, reps := range c.Workers {
		fi, ok := reps[0].Engine.FrozenInfo()
		if !ok || !fi.Quantized || fi.Searches == 0 || fi.QuantComps == 0 {
			t.Errorf("shard %d frozen path unexercised: %+v ok=%v", s, fi, ok)
		}
	}
}
