package clustertest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/topk"
)

// TestClusterEndToEnd is the multi-node acceptance scenario: a gateway
// scatter-gathering over three worker shards (two replicas each) on
// real loopback TCP.
//
//  1. a merged top-k answer matches the per-shard engines' results
//     merged locally;
//  2. killing one replica of a shard mid-traffic is absorbed by
//     failover — no 500s, no hangs, service stays undegraded;
//  3. killing the whole workgroup yields HTTP 200 Degraded partial
//     results naming exactly the dead shard in failed_partitions;
//  4. installing a replacement worker via a shard-map swap restores
//     full, undegraded service.
func TestClusterEndToEnd(t *testing.T) {
	c := Start(t, Options{
		Shards:   3,
		Replicas: 2,
		Dim:      8,
		N:        900,
		Seed:     7,
		Router:   serve.RouterConfig{ProbeCooloff: time.Hour},
	})
	queries := RandomQueries(8, 8, 99)
	const k = 10

	// Phase 1: merged result correctness against a local merge of the
	// same shard engines.
	resp := c.Search(t, Rows(queries), k)
	if resp.Degraded {
		t.Fatalf("healthy cluster answered degraded: %+v", resp)
	}
	for qi := 0; qi < queries.Len(); qi++ {
		lists := make([][]topk.Result, len(c.Workers))
		for s, reps := range c.Workers {
			rows, err := reps[0].Engine.Search(queries.At(qi), k)
			if err != nil {
				t.Fatal(err)
			}
			lists[s] = rows
		}
		want := topk.Merge(k, lists...)
		got := resp.Results[qi]
		if len(got.IDs) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got.IDs), len(want))
		}
		for j, w := range want {
			if got.IDs[j] != w.ID || got.Dists[j] != w.Dist {
				t.Fatalf("query %d result %d: got (%d,%g), want (%d,%g)",
					qi, j, got.IDs[j], got.Dists[j], w.ID, w.Dist)
			}
		}
	}

	// Phase 2: kill shard 1's primary replica while queries stream.
	// Failover to the second replica must keep every response 200 and
	// the post-kill steady state undegraded.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := RandomQueries(8, 1, int64(1000+i))
			resp, body := c.SearchRaw(t, Rows(q), k)
			if resp.StatusCode != 200 {
				t.Errorf("during replica kill: HTTP %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	v := c.Router.TopologyVersion()
	c.Workers[1][0].Kill()
	c.WaitTopologyVersion(t, v+1, 5*time.Second)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	after := c.Search(t, Rows(RandomQueries(8, 2, 555)), k)
	if after.Degraded {
		t.Fatalf("replica takeover left the service degraded: %+v", after)
	}

	// Phase 3: kill the surviving replica — shard 1's workgroup is gone.
	// The gateway must answer 200 with a partial, Degraded result naming
	// shard 1, not hang and not 500.
	v = c.Router.TopologyVersion()
	c.Workers[1][1].Kill()
	c.WaitTopologyVersion(t, v+1, 5*time.Second)
	deg := c.Search(t, Rows(RandomQueries(8, 2, 777)), k)
	if !deg.Degraded {
		t.Fatalf("whole-workgroup death not surfaced: %+v", deg)
	}
	if len(deg.FailedPartitions) != 1 || deg.FailedPartitions[0] != 1 {
		t.Fatalf("failed_partitions = %v, want [1]", deg.FailedPartitions)
	}
	for _, r := range deg.Results {
		if len(r.IDs) == 0 {
			t.Fatal("degraded response carried an empty row; survivors should still answer")
		}
	}

	// The degraded state is visible on /varz too.
	varz := c.Varz(t)
	if n, _ := varz["degraded_responses"].(float64); n < 1 {
		t.Fatalf("varz degraded_responses = %v, want >= 1", varz["degraded_responses"])
	}
	router, _ := varz["router"].(map[string]any)
	if router == nil {
		t.Fatal("varz has no router section")
	}
	if n, _ := router["shard_failures"].(float64); n < 1 {
		t.Fatalf("varz router.shard_failures = %v, want >= 1", router["shard_failures"])
	}

	// Phase 4: recovery — a replacement worker for shard 1 joins via a
	// shard-map swap and service returns to full answers.
	spare := StartWorker(t, 1, c.Workers[1][0].Engine)
	groups := [][]string{
		{c.Workers[0][0].Addr, c.Workers[0][1].Addr},
		{spare.Addr},
		{c.Workers[2][0].Addr, c.Workers[2][1].Addr},
	}
	if err := c.Router.SetShardMap(serve.ShardMap{Groups: groups}); err != nil {
		t.Fatal(err)
	}
	rec := c.Search(t, Rows(RandomQueries(8, 2, 888)), k)
	if rec.Degraded {
		t.Fatalf("service still degraded after replacement joined: %+v", rec)
	}
}
