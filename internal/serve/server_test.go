package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// testEngine builds a small real engine: 400 points, dim 8, 4
// partitions.
func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ds := vec.NewDataset(8, 400)
	for i := 0; i < 400; i++ {
		v := make([]float32, 8)
		for j := range v {
			v[j] = rng.Float32()
		}
		ds.Append(v, int64(i))
	}
	cfg := core.DefaultConfig(4)
	e, err := core.NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func postSearch(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/search", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func randQuery(rng *rand.Rand, dim int) []float32 {
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	return q
}

// TestServerEndToEnd is the acceptance scenario: an annserve-style
// gateway over a real engine coalesces concurrent requests into
// multi-query batches, answers repeated queries from the cache, and
// drains cleanly on shutdown.
func TestServerEndToEnd(t *testing.T) {
	e := testEngine(t)
	s := NewServer(&EngineBackend{Engine: e}, ServerConfig{
		Batcher:   BatcherConfig{MaxBatch: 64, MaxWait: 40 * time.Millisecond, QueueDepth: 256},
		CacheSize: 1024,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Phase 1: concurrent load coalesces. Distinct queries fired together
	// must share backend rounds.
	const n = 24
	rng := rand.New(rand.NewSource(7))
	queries := make([][]float32, n)
	for i := range queries {
		queries[i] = randQuery(rng, 8)
	}
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postSearch(t, ts.Client(), ts.URL, map[string]any{"query": queries[i], "k": 5})
			codes[i], bodies[i] = resp.StatusCode, data
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		var sr searchResponse
		if err := json.Unmarshal(bodies[i], &sr); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(sr.Results) != 1 || len(sr.Results[0].IDs) != 5 {
			t.Fatalf("request %d: malformed results %s", i, bodies[i])
		}
		for j := 1; j < len(sr.Results[0].Dists); j++ {
			if sr.Results[0].Dists[j] < sr.Results[0].Dists[j-1] {
				t.Fatalf("request %d: distances not ascending: %v", i, sr.Results[0].Dists)
			}
		}
	}
	snap := s.Stats().Snapshot()
	if snap.Batches >= int64(n) {
		t.Fatalf("no coalescing: %d batches for %d requests", snap.Batches, n)
	}
	if snap.BatchSize.Max < 2 {
		t.Fatalf("max batch size %v, want >= 2", snap.BatchSize.Max)
	}
	t.Logf("served %d requests in %d batches (max batch %v)", n, snap.Batches, snap.BatchSize.Max)

	// Phase 2: a repeated query is answered from the cache.
	resp, data := postSearch(t, ts.Client(), ts.URL, map[string]any{"query": queries[0], "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat query: status %d: %s", resp.StatusCode, data)
	}
	var sr searchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Results[0].Cached {
		t.Fatalf("repeat query not served from cache: %s", data)
	}
	if hits := s.Stats().CacheHits.Load(); hits < 1 {
		t.Fatalf("CacheHits = %d, want >= 1", hits)
	}

	// Phase 3: multi-query POST body.
	resp, data = postSearch(t, ts.Client(), ts.URL, map[string]any{
		"queries": [][]float32{randQuery(rng, 8), randQuery(rng, 8), randQuery(rng, 8)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch request: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("batch request: %d results, want 3", len(sr.Results))
	}

	// Phase 4: introspection endpoints.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
	vresp, err := ts.Client().Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	vdata, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	var varz map[string]any
	if err := json.Unmarshal(vdata, &varz); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, vdata)
	}
	for _, key := range []string{"requests", "batches", "cache_hits", "latency_us", "runtime"} {
		if _, ok := varz[key]; !ok {
			t.Fatalf("varz missing %q: %s", key, vdata)
		}
	}

	// Phase 5: graceful drain — in-flight work completes, new work is
	// refused, health flips.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, data = postSearch(t, ts.Client(), ts.URL, map[string]any{"query": queries[1]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain search: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("post-drain 503 missing Retry-After")
	}
	hresp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d, want 503", hresp.StatusCode)
	}
}

// TestServerSheds429: with a wedged backend and a tiny admission queue,
// excess load is refused with 429 + Retry-After, and admitted requests
// complete once the backend recovers.
func TestServerSheds429(t *testing.T) {
	fb := &fakeBackend{dim: 4, block: make(chan struct{}), entered: make(chan struct{}, 8)}
	s := NewServer(fb, ServerConfig{
		Batcher:   BatcherConfig{MaxBatch: 1, MaxWait: time.Millisecond, QueueDepth: 1},
		CacheSize: 0,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wedge the dispatcher on the first query.
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		resp, data := postSearch(t, ts.Client(), ts.URL, map[string]any{"query": []float32{0, 0, 0, 0}, "k": 1})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("wedged request finished %d: %s", resp.StatusCode, data)
		}
	}()
	<-fb.entered

	// One more fits the queue; distinct queries beyond it must shed.
	// (Identical queries would coalesce via single-flight instead.)
	statuses := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postSearch(t, ts.Client(), ts.URL,
				map[string]any{"query": []float32{float32(i + 1), 0, 0, 0}, "k": 1, "timeout_ms": 500})
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 missing Retry-After")
			}
		}(i)
	}
	wg.Wait()
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no load shed under overload: statuses %v", statuses)
	}
	if shed := s.Stats().Shed.Load(); shed == 0 {
		t.Fatal("Shed counter is zero")
	}
	t.Logf("overload statuses: %v", statuses)

	// Recovery: unblock the backend and the wedged request completes.
	close(fb.block)
	<-done1
}

// TestServerSingleFlight: identical concurrent queries produce one
// backend search; the rest join it or hit the cache.
func TestServerSingleFlight(t *testing.T) {
	fb := &fakeBackend{dim: 4, delay: 20 * time.Millisecond}
	s := NewServer(fb, ServerConfig{
		Batcher:   BatcherConfig{MaxBatch: 16, MaxWait: time.Millisecond, QueueDepth: 64},
		CacheSize: 64,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	q := []float32{3, 1, 4, 1}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postSearch(t, ts.Client(), ts.URL, map[string]any{"query": q, "k": 2})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	if _, queries := fb.snapshot(); queries != 1 {
		t.Fatalf("backend saw %d searches for %d identical requests, want 1", queries, n)
	}
	snap := s.Stats().Snapshot()
	if snap.Coalesced+snap.CacheHits != n-1 {
		t.Fatalf("coalesced %d + cache hits %d, want %d combined", snap.Coalesced, snap.CacheHits, n-1)
	}
}

// TestServerDeadline: a request whose timeout_ms expires mid-search gets
// 504, not a hang.
func TestServerDeadline(t *testing.T) {
	fb := &fakeBackend{dim: 4, delay: 200 * time.Millisecond}
	s := NewServer(fb, ServerConfig{
		Batcher: BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 8},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postSearch(t, ts.Client(), ts.URL,
		map[string]any{"query": []float32{1, 2, 3, 4}, "timeout_ms": 10})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
}

// TestServerBadRequests: malformed inputs are rejected with 400-class
// statuses and counted.
func TestServerBadRequests(t *testing.T) {
	e := testEngine(t)
	s := NewServer(&EngineBackend{Engine: e}, ServerConfig{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"wrong dim", map[string]any{"query": []float32{1, 2}}, http.StatusBadRequest},
		{"no queries", map[string]any{"k": 5}, http.StatusBadRequest},
		{"both forms", map[string]any{"query": randQuery(rand.New(rand.NewSource(1)), 8),
			"queries": [][]float32{randQuery(rand.New(rand.NewSource(2)), 8)}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postSearch(t, ts.Client(), ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, data)
		}
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Fatalf("%s: error body not descriptive: %s", tc.name, data)
		}
	}
	// Raw garbage body.
	resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = ts.Client().Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search: status %d", resp.StatusCode)
	}
	if bad := s.Stats().BadRequests.Load(); bad < int64(len(cases))+1 {
		t.Fatalf("BadRequests = %d, want >= %d", bad, len(cases)+1)
	}
}
