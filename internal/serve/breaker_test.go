package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fsx"
	"repro/internal/store"
)

// TestWriteCircuitBreaker is the storage-failure serving scenario: the
// WAL's disk dies mid-ingest, the store poisons itself, and the gateway
// opens the write circuit breaker — mutations 503 with a reason,
// searches keep answering 200, liveness stays up, readiness goes
// not-ready, and /varz names the breaker state.
func TestWriteCircuitBreaker(t *testing.T) {
	e := testEngine(t)
	// The 6th fsync under wal/ fails AFTER completing — the fsyncgate
	// shape. Everything before it succeeds.
	fs := fsx.NewFaulty(fsx.OS{}, 1, fsx.Rule{Op: fsx.OpSync, Nth: 6, After: true, Path: "wal"})
	d, err := store.Create(t.TempDir(), e, store.Options{
		SyncEvery: 1, SyncInterval: -1, CompactRatio: -1, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	s := NewServer(&EngineBackend{Engine: d.Engine(), Store: d}, ServerConfig{
		Batcher: BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond, QueueDepth: 64},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	rng := rand.New(rand.NewSource(7))

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Healthy: writes land, both probes pass.
	resp, _ := postJSON(t, client, ts.URL, "/v1/upsert", map[string]any{"id": 9001, "vector": randQuery(rng, 8)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy upsert: %d", resp.StatusCode)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthy liveness: %d", code)
	}
	if code, body := get("/healthz?ready=1"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("healthy readiness: %d %q", code, body)
	}

	// Ingest until the injected fsync failure trips the breaker. The
	// failing request itself must already surface as 503, not 500: the
	// replica is degraded, the request was fine.
	tripped := false
	for i := 0; i < 10; i++ {
		resp, body := postJSON(t, client, ts.URL, "/v1/upsert", map[string]any{"id": int64(9100 + i), "vector": randQuery(rng, 8)})
		if resp.StatusCode == http.StatusOK {
			continue
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("tripping upsert: %d %s, want 503", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "WAL failed") {
			t.Fatalf("tripping upsert body gives no reason: %s", body)
		}
		tripped = true
		break
	}
	if !tripped {
		t.Fatal("injected fsync failure never tripped the breaker")
	}

	// Open breaker: every mutation is rejected up front with 503...
	resp, body := postJSON(t, client, ts.URL, "/v1/upsert", map[string]any{"id": 9900, "vector": randQuery(rng, 8)})
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "write path failed") {
		t.Fatalf("upsert with open breaker: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL, "/v1/delete", map[string]any{"id": 9001})
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "write path failed") {
		t.Fatalf("delete with open breaker: %d %s", resp.StatusCode, body)
	}

	// ...searches keep serving...
	sresp, sbody := postSearch(t, client, ts.URL, map[string]any{"query": randQuery(rng, 8), "k": 5})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("search with open breaker: %d %s", sresp.StatusCode, sbody)
	}

	// ...liveness stays up (restart is an operator decision), readiness
	// drops out of the load-balancer pool.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("liveness with open breaker: %d", code)
	}
	if code, body := get("/healthz?ready=1"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not-ready") {
		t.Fatalf("readiness with open breaker: %d %q", code, body)
	}

	// /varz names the breaker and the store's failure state.
	_, vbody := get("/varz")
	var doc map[string]any
	if err := json.Unmarshal([]byte(vbody), &doc); err != nil {
		t.Fatalf("varz not JSON: %v", err)
	}
	breaker, ok := doc["breaker"].(map[string]any)
	if !ok {
		t.Fatalf("varz has no breaker section: %s", vbody)
	}
	if breaker["writes_tripped"] != true {
		t.Fatalf("breaker not tripped in varz: %v", breaker)
	}
	if reason, _ := breaker["reason"].(string); !strings.Contains(reason, "injected") {
		t.Fatalf("breaker reason does not name the cause: %v", breaker)
	}
	if n, _ := breaker["writes_rejected"].(float64); n < 2 {
		t.Fatalf("writes_rejected = %v, want >= 2", breaker["writes_rejected"])
	}
	ingest, ok := doc["ingest"].(map[string]any)
	if !ok || ingest["wal_failed"] != true {
		t.Fatalf("ingest section does not report wal_failed: %v", doc["ingest"])
	}
	if s.Stats().WritesRejected.Load() < 2 {
		t.Fatalf("WritesRejected = %d, want >= 2", s.Stats().WritesRejected.Load())
	}
}
