package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// Figure 4: replication-based load balancing on a skewed query batch.
// The paper runs SIFT1B on 8192 cores with replication factors 1..5 and
// reports (a) total query time dropping by up to 11% and (b) the
// per-process query-count distribution tightening around the optimum.
//
// Queries localised to one cluster (the paper's query protocol for the
// synthetic sets, and the realistic hard case for routing skew) hammer
// one region of the VP tree; the workgroup round-robin of Algorithm 5
// spreads those hits over r cores.

const fig4Workers = 64 // stand-in core count feasible in-process

// fig4PaperN sizes the modelled partitions to match the paper's
// 8192-core SIFT1B run (~122k points per partition).
const fig4PaperN = int64(122_000) * fig4Workers

func fig4Workload(o Options) (*workload, error) {
	// The paper's Figure 4 runs the real ANN_SIFT1B query set: naturally
	// skewed (queries follow the data's cluster structure) but not
	// degenerate. Mirror that with the SIFT stand-in and a query mix of
	// mostly natural (perturbed-point) queries plus a hot-cluster
	// minority, which reproduces the moderate imbalance of Fig 4(b).
	ds, err := dataset.Named("sift", o.Points, o.Seed)
	if err != nil {
		return nil, err
	}
	natural := dataset.PerturbedQueries(ds, o.Queries*3/4, 4, o.Seed+5)
	hotBase := dataset.PerturbedQueries(ds, 1, 0, o.Seed+6).At(0)
	qs := vec.NewDataset(ds.Dim, o.Queries)
	qs.AppendAll(natural)
	v := make([]float32, ds.Dim)
	rng := rand.New(rand.NewSource(o.Seed + 7))
	for qs.Len() < o.Queries {
		for j := range v {
			v[j] = hotBase[j] + float32(rng.NormFloat64()*2)
		}
		qs.Append(v, int64(qs.Len()))
	}
	return &workload{name: "sift+hotspot", data: ds, queries: qs}, nil
}

func runFig4(o Options) (map[int]*core.BatchResult, []int, error) {
	w, err := fig4Workload(o)
	if err != nil {
		return nil, nil, err
	}
	factors := []int{1, 2, 3, 4, 5}
	if o.Quick {
		factors = []int{1, 3, 5}
	}
	out := make(map[int]*core.BatchResult)
	for _, r := range factors {
		cfg := core.DefaultConfig(fig4Workers)
		cfg.K = o.K
		cfg.NProbe = 3
		cfg.Replication = r
		cfg.Seed = o.Seed
		cfg.HNSW.M = 8
		cfg.HNSW.EfConstruction = 48 // light build; tasks are model-priced
		pre, _, err := prebuild(w.data.Clone(), fig4Workers, cfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := runPrebuilt(pre, w.queries, cfg)
		if err != nil {
			return nil, nil, err
		}
		out[r] = res
	}
	return out, factors, nil
}

// RunFig4a regenerates Figure 4(a): total querying time per replication
// factor.
func RunFig4a(o Options) error {
	o.fill()
	header(o.Out, "Figure 4(a): total query time vs replication factor (skewed batch)")
	results, factors, err := runFig4(o)
	if err != nil {
		return err
	}
	params := paperParams(64)
	var base float64
	for _, r := range factors {
		res := results[r]
		dc, hp := paperTaskCost(fig4PaperN, fig4Workers)
		for i, tasks := range res.PerWorkerQueries {
			res.PerWorkerDistComps[i] = tasks * dc
			res.PerWorkerHops[i] = tasks * hp
		}
		est := model(params, res, fig4Workers, 64, o.K, o.Queries)
		secs := est.Total.Seconds()
		if r == factors[0] {
			base = secs
		}
		fmt.Fprintf(o.Out, "  r=%d  modelled query time=%9.4fs  improvement vs r=1: %5.1f%%\n",
			r, secs, 100*(base-secs)/base)
	}
	fmt.Fprintln(o.Out, "paper: up to 11% improvement at r=5 on 8192 cores")
	return nil
}

// RunFig4b regenerates Figure 4(b): the distribution of per-process
// query counts for each replication factor, with the optimal-balance
// line.
func RunFig4b(o Options) error {
	o.fill()
	header(o.Out, "Figure 4(b): per-process query distribution vs replication factor")
	results, factors, err := runFig4(o)
	if err != nil {
		return err
	}
	for _, r := range factors {
		res := results[r]
		h := metrics.NewHistogram(res.PerWorkerQueries)
		mn, q1, med, q3, mx := h.Quartiles()
		_, _, imb := h.Spread()
		fmt.Fprintf(o.Out, "  r=%d  queries/process: min=%5.0f q1=%5.0f med=%5.0f q3=%5.0f max=%5.0f  imbalance(max/mean)=%.2f\n",
			r, mn, q1, med, q3, mx, imb)
	}
	optimal := float64(results[factors[0]].Dispatched) / float64(fig4Workers)
	fmt.Fprintf(o.Out, "  optimal balance (red dotted line): %.1f queries/process\n", optimal)
	fmt.Fprintln(o.Out, "paper: the range compacts toward the optimum as r grows")
	return nil
}
