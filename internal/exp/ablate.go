package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// Ablations for the design choices DESIGN.md calls out.

// RunAblateRMA compares the one-sided result path (Section IV-C1's
// MPI_Get_accumulate) with plain two-sided result messages. The paper
// motivated one-sided communication by the master's receive bottleneck;
// here we report both the wall time and the master-side receive count
// that the window eliminates.
func RunAblateRMA(o Options) error {
	o.fill()
	header(o.Out, "Ablation: one-sided accumulate vs two-sided result messages")
	w, err := descriptorWorkload("sift", o, false)
	if err != nil {
		return err
	}
	const parts = 16
	for _, oneSided := range []bool{false, true} {
		cfg := core.DefaultConfig(parts)
		cfg.K = o.K
		cfg.NProbe = 2
		cfg.OneSided = oneSided
		cfg.Seed = o.Seed
		pre, _, err := prebuild(w.data.Clone(), parts, cfg)
		if err != nil {
			return err
		}
		t0 := time.Now()
		res, err := runPrebuilt(pre, w.queries, cfg)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		masterRecvs := res.Dispatched // two-sided: one receive per routed task
		if oneSided {
			masterRecvs = 0 // workers write straight into the window
		}
		fmt.Fprintf(o.Out, "  one-sided=%-5v  wall=%-9s  master receives=%6d  msgs=%d\n",
			oneSided, fmtDur(elapsed), masterRecvs, res.Work.Messages)
	}
	fmt.Fprintln(o.Out, "paper: one-sided accumulation removes the master's receive bottleneck;\nthe benefit grows with core count and small k")
	return nil
}

// flatRouter is the comparison scheme of reference [16]: P pivots are
// drawn at random, every point joins its nearest pivot's partition, and
// queries are routed to the partitions of their m nearest pivots. The
// paper credits its 8X win over [16] largely to the load imbalance this
// scheme suffers; the ablation quantifies partition imbalance and
// recall at equal nprobe.
type flatRouter struct {
	pivots *vec.Dataset
}

func buildFlat(ds *vec.Dataset, p int, seed int64) (*flatRouter, []*vec.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.Len())[:p]
	pivots := ds.Select(perm)
	parts := make([]*vec.Dataset, p)
	for i := range parts {
		parts[i] = vec.NewDataset(ds.Dim, ds.Len()/p+1)
	}
	for i := 0; i < ds.Len(); i++ {
		best, bestD := 0, float32(0)
		for j := 0; j < p; j++ {
			d := vec.SquaredL2Distance(ds.At(i), pivots.At(j))
			if j == 0 || d < bestD {
				best, bestD = j, d
			}
		}
		parts[best].Append(ds.At(i), ds.ID(i))
	}
	return &flatRouter{pivots: pivots}, parts
}

func (f *flatRouter) route(q []float32, m int) []int {
	type pd struct {
		p int
		d float32
	}
	ds := make([]pd, f.pivots.Len())
	for j := 0; j < f.pivots.Len(); j++ {
		ds[j] = pd{j, vec.SquaredL2Distance(q, f.pivots.At(j))}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = ds[i].p
	}
	return out
}

// RunAblateRouting compares VP-tree routing against flat random-pivot
// partitioning at equal nprobe: recall of the true neighbors' partitions
// and the partition-size imbalance that wrecks load balance.
func RunAblateRouting(o Options) error {
	o.fill()
	header(o.Out, "Ablation: VP-tree routing vs flat random pivots (ref [16])")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}
	const parts = 32
	const nprobe = 3

	// VP scheme
	cfg := core.DefaultConfig(parts)
	cfg.K = o.K
	cfg.NProbe = nprobe
	cfg.Seed = o.Seed
	eng, err := core.NewEngine(w.data.Clone(), cfg)
	if err != nil {
		return err
	}
	res, err := eng.SearchBatch(w.queries, o.K, 0)
	if err != nil {
		return err
	}
	vpRecall := metrics.MeanRecall(res, w.truth)

	// flat scheme: same local index algorithm (exact scan for routing
	// quality isolation), measure oracle routing recall: fraction of
	// true neighbors whose partition is among the routed ones.
	flat, fparts := buildFlat(w.data, parts, o.Seed)
	home := make(map[int64]int)
	sizes := make([]int64, parts)
	for pi, part := range fparts {
		sizes[pi] = int64(part.Len())
		for i := 0; i < part.Len(); i++ {
			home[part.ID(i)] = pi
		}
	}
	hits, total := 0, 0
	for qi := 0; qi < w.queries.Len(); qi++ {
		routed := map[int]bool{}
		for _, p := range flat.route(w.queries.At(qi), nprobe) {
			routed[p] = true
		}
		for _, id := range w.truth[qi] {
			total++
			if routed[home[int64(id)]] {
				hits++
			}
		}
	}
	flatRouteRecall := float64(hits) / float64(total)

	// the same oracle number for the VP tree
	vpHome := make(map[int64]int)
	vpSizes := make([]int64, parts)
	{
		// recover VP partition membership through the tree
		tree := eng.Tree()
		for i := 0; i < w.data.Len(); i++ {
			p := tree.Home(w.data.At(i))
			vpHome[w.data.ID(i)] = p
			vpSizes[p]++
		}
	}
	vhits := 0
	for qi := 0; qi < w.queries.Len(); qi++ {
		routed := map[int]bool{}
		for _, rt := range eng.Tree().RouteTop(w.queries.At(qi), nprobe) {
			routed[rt.Partition] = true
		}
		for _, id := range w.truth[qi] {
			if routed[vpHome[int64(id)]] {
				vhits++
			}
		}
	}
	vpRouteRecall := float64(vhits) / float64(total)

	_, _, vpImb := metrics.NewHistogram(vpSizes).Spread()
	_, _, flatImb := metrics.NewHistogram(sizes).Spread()
	fmt.Fprintf(o.Out, "  VP tree   : end-to-end recall=%.3f  routing recall=%.3f  partition imbalance=%.2f\n",
		vpRecall, vpRouteRecall, vpImb)
	fmt.Fprintf(o.Out, "  flat pivot:                         routing recall=%.3f  partition imbalance=%.2f\n",
		flatRouteRecall, flatImb)
	fmt.Fprintln(o.Out, "paper: flat randomized pivots (ref [16]) cause significant load imbalance;\nthe VP tree equipartitions by construction")
	return nil
}
