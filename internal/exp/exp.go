// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section V). Each experiment
//
//  1. generates the (scaled) workload of the corresponding paper
//     experiment,
//  2. executes the full distributed protocol in-process — routing,
//     dispatch, local HNSW searches, one-sided accumulation — collecting
//     real work counts per rank, and
//  3. where the paper's processor counts exceed this machine, prices the
//     measured work with the calibrated cost model (internal/costmodel)
//     and reports modelled times alongside the raw measurements.
//
// EXPERIMENTS.md records paper-reported vs regenerated values; the
// annbench binary and the root bench_test.go both drive this package.
package exp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/vec"
)

// Options configure an experiment run. Zero values select defaults
// suitable for a laptop-scale run (minutes, not hours).
type Options struct {
	// Points is the dataset size stand-in for the paper's billion-scale
	// corpora (default 100_000; the paper's ratios survive scaling, see
	// DESIGN.md).
	Points int
	// Queries is the query-batch size (default 2000; paper uses 10^4 for
	// the billion-scale sets, 10^3 for GIST).
	Queries int
	// K is neighbors per query (paper: 10).
	K int
	// Seed drives all generators.
	Seed int64
	// Out receives the formatted tables (default io.Discard-like noop
	// guarded by caller; annbench passes os.Stdout).
	Out io.Writer
	// Quick shrinks everything further for smoke tests and testing.B.
	Quick bool
}

func (o *Options) fill() {
	if o.Points <= 0 {
		o.Points = 100_000
	}
	if o.Queries <= 0 {
		o.Queries = 2000
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Quick {
		if o.Points > 20_000 {
			o.Points = 20_000
		}
		if o.Queries > 300 {
			o.Queries = 300
		}
	}
	if o.Out == nil {
		o.Out = nopWriter{}
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// Experiment is a registered table/figure regenerator.
type Experiment struct {
	Name  string
	Paper string // which table/figure of the paper it regenerates
	Run   func(Options) error
}

// All returns the registry of experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3a", "Figure 3(a): strong scaling, SYN_1M and SYN_10M", RunFig3a},
		{"fig3b", "Figure 3(b): strong scaling, ANN_SIFT1B and DEEP1B", RunFig3b},
		{"table2", "Table II: construction times for ANN_SIFT1B", RunTable2},
		{"fig4a", "Figure 4(a): query time vs replication factor", RunFig4a},
		{"fig4b", "Figure 4(b): query distribution vs replication factor", RunFig4b},
		{"table3", "Table III: total search times vs distributed KD tree", RunTable3},
		{"fig5", "Figure 5: search time breakdown", RunFig5},
		{"fig6", "Figure 6: recall vs query time for HNSW M", RunFig6},
		{"owners", "Section IV: master-worker vs multiple-owner", RunOwners},
		{"ablate-rma", "Ablation: one-sided vs two-sided results", RunAblateRMA},
		{"ablate-routing", "Ablation: VP routing vs flat random pivots", RunAblateRouting},
		{"ablate-local", "Extensibility: HNSW vs exact local indexes", RunAblateLocal},
		{"nsw", "Background III-A: NSW vs HNSW search cost", RunNSW},
		{"compressed", "Figure 6 discussion: IVF-PQ recall ceiling", RunCompressed},
		{"baselines", "Section II: LSH vs PQ vs graph on one workload", RunBaselines},
		{"grip", "Section II: GRIP-style two-layer multi-store index", RunGrip},
	}
}

// Find locates an experiment by name.
func Find(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", name, names())
}

func names() string {
	var ns []string
	for _, e := range All() {
		ns = append(ns, e.Name)
	}
	sort.Strings(ns)
	s := ""
	for i, n := range ns {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// workload bundles a dataset with its query set and ground truth.
type workload struct {
	name    string
	data    *vec.Dataset
	queries *vec.Dataset
	truth   [][]int32
}

// descriptorWorkload builds a scaled stand-in for one of the paper's
// descriptor datasets with perturbed-point queries.
func descriptorWorkload(name string, o Options, withTruth bool) (*workload, error) {
	ds, err := dataset.Named(name, o.Points, o.Seed)
	if err != nil {
		return nil, err
	}
	qs := dataset.PerturbedQueries(ds, o.Queries, perturbScale(name), o.Seed+1)
	if name == "deep" {
		// DEEP1B vectors and queries are L2-normalised CNN embeddings;
		// perturbation pushes points off the sphere, which mis-routes
		// them systematically. Re-normalise, as the real query set is.
		for i := 0; i < qs.Len(); i++ {
			vec.Normalize(qs.At(i))
		}
	}
	w := &workload{name: name, data: ds, queries: qs}
	if withTruth {
		w.truth = groundTruth(ds, qs, o.K)
	}
	return w, nil
}

func perturbScale(name string) float64 {
	switch name {
	case "sift":
		return 4 // integer-quantised descriptors: perturb a few counts
	case "deep":
		return 0.05
	case "gist":
		return 0.01
	default:
		return 0.5
	}
}

// fmtDur renders a duration with 3 significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
