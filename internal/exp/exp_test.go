package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quick options shared by the smoke tests; every experiment must run end
// to end and produce non-empty output at reduced scale.
func quickOpts(buf *bytes.Buffer) Options {
	return Options{Points: 6000, Queries: 100, K: 10, Seed: 1, Out: buf, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3a", "fig3b", "table2", "fig4a", "fig4b", "table3", "fig5", "fig6", "owners", "ablate-rma", "ablate-routing", "ablate-local", "nsw", "compressed", "baselines", "grip"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries", len(all))
	}
	for i, n := range want {
		if all[i].Name != n {
			t.Errorf("entry %d = %s want %s", i, all[i].Name, n)
		}
		if all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("entry %s incomplete", n)
		}
	}
	if _, err := Find("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestOptionsFill(t *testing.T) {
	o := Options{}
	o.fill()
	if o.Points != 100_000 || o.Queries != 2000 || o.K != 10 || o.Seed != 1 || o.Out == nil {
		t.Errorf("%+v", o)
	}
	q := Options{Points: 999_999, Queries: 99_999, Quick: true}
	q.fill()
	if q.Points != 20_000 || q.Queries != 300 {
		t.Errorf("quick clamp: %+v", q)
	}
}

func runSmoke(t *testing.T, name string, wantSubstr string) {
	t.Helper()
	var buf bytes.Buffer
	e, err := Find(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(quickOpts(&buf)); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if !strings.Contains(out, wantSubstr) {
		t.Fatalf("%s output missing %q:\n%s", name, wantSubstr, out)
	}
}

func TestFig3aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "fig3a", "speedup")
}

func TestFig3bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "fig3b", "speedup")
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "table2", "modelled")
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "fig4a", "improvement")
	runSmoke(t, "fig4b", "imbalance")
}

func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "table3", "speedup")
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "fig5", "comm")
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "fig6", "recall")
}

func TestOwnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "owners", "master-worker")
}

func TestAblateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "ablate-rma", "one-sided")
	runSmoke(t, "ablate-routing", "imbalance")
}

func TestAblateLocalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "ablate-local", "recall")
}

func TestNSWSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "nsw", "hops")
}

func TestCompressedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "compressed", "recall")
}

func TestBaselinesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "baselines", "vp+hnsw")
}

func TestGripSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	runSmoke(t, "grip", "GRIP")
}

func TestFmtDur(t *testing.T) {
	for _, tc := range []struct {
		ns   time.Duration
		want string
	}{
		{90 * time.Second, "1.5min"},
		{1500 * time.Millisecond, "1.50s"},
		{1500 * time.Microsecond, "1.50ms"},
		{900 * time.Nanosecond, "0µs"},
	} {
		if got := fmtDur(tc.ns); got != tc.want {
			t.Errorf("fmtDur(%v) = %q want %q", tc.ns, got, tc.want)
		}
	}
}
