package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// RunOwners reproduces the Section IV comparison between the
// master-worker strategy and the multiple-owner strategy: the paper saw
// a small win for multiple owners at low core counts that deteriorated
// as cores grew (no replication-based balancing possible). We report
// measured wall times at in-process scale plus the dispatch imbalance
// that explains the trend.
func RunOwners(o Options) error {
	o.fill()
	header(o.Out, "Section IV: master-worker vs multiple-owner strategy")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}
	cores := []int{4, 8, 16}
	if o.Quick {
		cores = []int{4, 8}
	}
	for _, p := range cores {
		cfg := core.DefaultConfig(p)
		cfg.K = o.K
		cfg.NProbe = 2
		cfg.Seed = o.Seed

		// master-worker (P workers + dedicated master rank)
		wmw := cluster.NewWorld(p + 1)
		var mwRes *core.BatchResult
		t0 := time.Now()
		err := wmw.Run(func(c *cluster.Comm) error {
			return core.RunCluster(c, w.data, cfg, func(m *core.Master) error {
				r, err := m.Search(w.queries)
				mwRes = r
				return err
			})
		})
		if err != nil {
			return err
		}
		mwT := time.Since(t0)

		// multiple-owner (P ranks, no dedicated master)
		wmo := cluster.NewWorld(p)
		var moRes [][]topk.Result
		t1 := time.Now()
		err = wmo.Run(func(c *cluster.Comm) error {
			res, err := core.RunMultipleOwner(c, w.data, w.queries, cfg)
			if c.Rank() == 0 {
				moRes = res
			}
			return err
		})
		if err != nil {
			return err
		}
		moT := time.Since(t1)

		mwRecall := metrics.MeanRecall(mwRes.Results, w.truth)
		moRecall := metrics.MeanRecall(moRes, w.truth)
		fmt.Fprintf(o.Out, "  P=%2d  master-worker=%-9s (recall %.2f)   multiple-owner=%-9s (recall %.2f)\n",
			p, fmtDur(mwT), mwRecall, fmtDur(moT), moRecall)
	}
	fmt.Fprintln(o.Out, "paper: multiple-owner slightly faster at low core counts, worse at scale\n(no replication-based load balancing possible)")
	return nil
}
