package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ivfpq"
	"repro/internal/lsh"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// RunBaselines quantifies the Section II survey on one workload: the
// three approximate-method families the paper positions proximity
// graphs against — locality-sensitive hashing [9], product quantization
// [10] and the graph-based approach it adopts — under identical data and
// query sets. The expected shape: graphs dominate the recall/time
// frontier on high-dimensional data, PQ is compact but recall-capped,
// LSH needs many tables for competitive recall.
func RunBaselines(o Options) error {
	o.fill()
	header(o.Out, "Section II: approximate k-NN families on one workload (SIFT-like)")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}
	type row struct {
		name    string
		build   time.Duration
		batch   time.Duration
		recall  float64
		comment string
	}
	var rows []row

	{ // ours: VP + HNSW
		cfg := core.DefaultConfig(16)
		cfg.K = o.K
		cfg.NProbe = 4
		cfg.Seed = o.Seed
		t0 := time.Now()
		e, err := core.NewEngine(w.data.Clone(), cfg)
		if err != nil {
			return err
		}
		bt := time.Since(t0)
		t1 := time.Now()
		res, err := e.SearchBatch(w.queries, o.K, 0)
		if err != nil {
			return err
		}
		rows = append(rows, row{"vp+hnsw", bt, time.Since(t1), metrics.MeanRecall(res, w.truth), "the paper's engine"})
	}
	{ // IVF-PQ
		t0 := time.Now()
		x, err := ivfpq.Build(w.data, ivfpq.Config{M: 16, Seed: o.Seed})
		if err != nil {
			return err
		}
		bt := time.Since(t0)
		t1 := time.Now()
		res := make([][]topk.Result, w.queries.Len())
		for qi := range res {
			rs, _, err := x.SearchNProbe(w.queries.At(qi), o.K, 16)
			if err != nil {
				return err
			}
			res[qi] = rs
		}
		rows = append(rows, row{"ivf-pq", bt, time.Since(t1), metrics.MeanRecall(res, w.truth),
			fmt.Sprintf("%.0fx compressed", float64(w.data.Bytes())/float64(x.MemoryBytes()))})
	}
	{ // LSH
		t0 := time.Now()
		x, err := lsh.Build(w.data, lsh.Config{Tables: 16, Hashes: 10, Seed: o.Seed})
		if err != nil {
			return err
		}
		bt := time.Since(t0)
		t1 := time.Now()
		res := make([][]topk.Result, w.queries.Len())
		var cands int
		for qi := range res {
			rs, st, err := x.Search(w.queries.At(qi), o.K)
			if err != nil {
				return err
			}
			res[qi] = rs
			cands += st.Candidates
		}
		rows = append(rows, row{"lsh", bt, time.Since(t1), metrics.MeanRecall(res, w.truth),
			fmt.Sprintf("%.0f candidates/query", float64(cands)/float64(w.queries.Len()))})
	}
	for _, r := range rows {
		fmt.Fprintf(o.Out, "  %-8s build=%-9s batch=%-9s recall@%d=%.3f  (%s)\n",
			r.name, fmtDur(r.build), fmtDur(r.batch), o.K, r.recall, r.comment)
	}
	fmt.Fprintln(o.Out, "paper: proximity graphs scale best with dimension, motivating HNSW locally")
	return nil
}
