package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hnsw"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// RunFig6 regenerates Figure 6: search recall against total query time
// for the HNSW construction parameter M in {8, 16, 32, 64} on the SIFT
// stand-in. Higher M buys recall with time and memory; the paper reaches
// near-perfect recall at M=64.
func RunFig6(o Options) error {
	o.fill()
	header(o.Out, "Figure 6: recall vs total query time for HNSW M (SIFT-like)")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}
	const parts = 16
	for _, M := range []int{8, 16, 32, 64} {
		cfg := core.DefaultConfig(parts)
		cfg.K = o.K
		cfg.NProbe = 8
		cfg.Seed = o.Seed
		cfg.HNSW = hnsw.DefaultConfig(vec.L2)
		cfg.HNSW.M = M
		cfg.HNSW.EfConstruction = 4 * M
		if cfg.HNSW.EfConstruction < 100 {
			cfg.HNSW.EfConstruction = 100
		}
		e, err := core.NewEngine(w.data.Clone(), cfg)
		if err != nil {
			return err
		}
		e.SetEfSearch(2 * M)
		t0 := time.Now()
		res, err := e.SearchBatch(w.queries, o.K, 0)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		recall := metrics.MeanRecall(res, w.truth)
		fmt.Fprintf(o.Out, "  M=%2d  total query time=%-9s recall@%d=%.3f\n", M, fmtDur(elapsed), o.K, recall)
	}
	fmt.Fprintln(o.Out, "paper: recall rises with M; near-perfect recall at M=64 (10^4 queries in 167s on 1024 cores)")
	return nil
}
