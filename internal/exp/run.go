package exp

import (
	"repro/internal/bruteforce"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/hnsw"
	"repro/internal/index"
	"repro/internal/vec"
	"repro/internal/vptree"
)

// groundTruth computes exact neighbor lists.
func groundTruth(ds, qs *vec.Dataset, k int) [][]int32 {
	return bruteforce.GroundTruth(ds, qs, k, vec.L2)
}

// prebuild partitions ds and builds the per-partition HNSW indexes once;
// scaling sweeps reuse them across worker counts that divide evenly.
func prebuild(ds *vec.Dataset, p int, cfg core.Config) (*core.Prebuilt, hnsw.Stats, error) {
	res, err := vptree.BuildPartitions(ds, p, vptree.PartitionConfig{Metric: cfg.Metric, Seed: cfg.Seed})
	if err != nil {
		return nil, hnsw.Stats{}, err
	}
	pre := &core.Prebuilt{Tree: res.Tree, Indexes: make([]index.Local, p)}
	errs := make([]error, p)
	stats := make([]hnsw.Stats, p)
	parallelFor(p, func(i int) {
		hcfg := cfg.HNSW
		if hcfg.M == 0 {
			hcfg = hnsw.DefaultConfig(cfg.Metric)
		}
		hcfg.Seed = cfg.Seed + int64(i)
		g, st, err := hnsw.Build(res.Partitions[i], hcfg, 1)
		if err != nil {
			errs[i] = err
			return
		}
		pre.Indexes[i] = index.WrapHNSW(g)
		stats[i] = st
	})
	var total hnsw.Stats
	for i := range stats {
		if errs[i] != nil {
			return nil, total, errs[i]
		}
		total = total.Add(stats[i])
	}
	return pre, total, nil
}

// runPrebuilt executes one batched search against a prebuilt index set
// with P = len(pre.Indexes) workers and returns the batch result.
func runPrebuilt(pre *core.Prebuilt, queries *vec.Dataset, cfg core.Config) (*core.BatchResult, error) {
	p := len(pre.Indexes)
	w := cluster.NewWorld(p + 1)
	var out *core.BatchResult
	err := w.Run(func(c *cluster.Comm) error {
		return core.RunClusterPrebuilt(c, pre, cfg, func(m *core.Master) error {
			res, err := m.Search(queries)
			out = res
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	out.Work.Messages = w.Stats().Messages()
	out.Work.Bytes = w.Stats().Bytes()
	return out, nil
}

// model prices a batch result for the given core count. The master's
// routing load is the measured best-first node-visit count (O(m log P)
// per query), not a full-tree walk.
func model(params costmodel.Params, res *core.BatchResult, p, dim, k, nq int) costmodel.Estimate {
	routePerQuery := res.RouteNodes / int64(maxI(nq, 1))
	if routePerQuery == 0 {
		routePerQuery = int64(2 * log2ceilInt(p)) // custom routing paths: estimate
	}
	return params.Estimate(costmodel.Run{
		P: p, Dim: dim, K: k,
		NQueries:               nq,
		Dispatched:             res.Dispatched,
		PerWorkerDistComps:     res.PerWorkerDistComps,
		PerWorkerHops:          res.PerWorkerHops,
		PerWorkerTasks:         res.PerWorkerQueries,
		RouteDistCompsPerQuery: routePerQuery,
	})
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func parallelFor(n int, f func(i int)) {
	const maxPar = 8
	sem := make(chan struct{}, maxPar)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- struct{}{} }()
			f(i)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
