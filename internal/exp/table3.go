package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kdtree"
	"repro/internal/metrics"
)

// RunTable3 regenerates Table III: total search time of the paper's
// method vs the PANDA-style distributed KD tree on SIFT-like, DEEP-like
// and GIST-like workloads, plus the recall of the approximate method.
//
// Both engines run in-process over identical partition counts with the
// same thread pool, so the ratio isolates the algorithms: approximate
// HNSW + selective VP routing vs exact KD search that must visit almost
// every partition in high dimension.
//
// Paper numbers: 13.6X (SIFT1B, recall 0.88), 11.4X (DEEP1B, 0.85),
// 8.5X (GIST1M @24 cores, 0.91).
func RunTable3(o Options) error {
	o.fill()
	header(o.Out, "Table III: ours vs distributed KD tree (PANDA-style)")
	type row struct {
		name  string
		parts int
	}
	rows := []row{{"sift", 32}, {"deep", 32}, {"gist", 24}}
	if o.Quick {
		rows = rows[:2]
	}
	for _, r := range rows {
		opts := o
		if r.name == "gist" {
			// GIST is 960-d; keep the point count smaller like the
			// paper's 1M (vs 1B) and the query count at 1/10th.
			opts.Points = o.Points / 4
			opts.Queries = o.Queries / 2
		}
		w, err := descriptorWorkload(r.name, opts, true)
		if err != nil {
			return err
		}

		// ours: VP + HNSW engine, tuned to the paper's operating point
		// (recall 0.85-0.91) on a held-out validation prefix, then timed
		// on the full batch — the comparison the paper reports is "time
		// at the achieved recall", not exactness.
		cfg := core.DefaultConfig(r.parts)
		cfg.K = opts.K
		cfg.Seed = opts.Seed
		ours, err := core.NewEngine(w.data.Clone(), cfg)
		if err != nil {
			return err
		}
		target := 0.85
		if r.name == "gist" {
			target = 0.91
		}
		nv := w.queries.Len() / 5
		if nv < 20 {
			nv = w.queries.Len()
		}
		if _, terr := ours.Tune(w.queries.Slice(0, nv), w.truth[:nv], opts.K, target); terr != nil {
			fmt.Fprintf(o.Out, "  (%s: %v)\n", r.name, terr)
		}
		t0 := time.Now()
		oursRes, err := ours.SearchBatch(w.queries, opts.K, 0)
		if err != nil {
			return err
		}
		oursT := time.Since(t0)
		recall := metrics.MeanRecall(oursRes, w.truth)

		// baseline: exact KD engine
		kd, err := kdtree.NewEngine(w.data.Clone(), r.parts)
		if err != nil {
			return err
		}
		t1 := time.Now()
		_, kdStats, err := kd.SearchBatch(w.queries, opts.K, 0)
		if err != nil {
			return err
		}
		kdT := time.Since(t1)

		speedup := float64(kdT) / float64(oursT)
		fmt.Fprintf(o.Out,
			"  %-5s (%d pts, %d-d, %d parts): ours=%-9s kd=%-9s speedup=%5.1fX recall=%.2f  kd visited %.1f/%d partitions/query\n",
			r.name, w.data.Len(), w.data.Dim, r.parts,
			fmtDur(oursT), fmtDur(kdT), speedup, recall,
			float64(kdStats.PartitionsVisited)/float64(w.queries.Len()), r.parts)
	}
	fmt.Fprintln(o.Out, "paper: 13.6X @0.88 (SIFT1B), 11.4X @0.85 (DEEP1B), 8.5X @0.91 (GIST1M)")
	return nil
}
