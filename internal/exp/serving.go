package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// ServingResult is the machine-readable output of ServingBench — the
// numbers a CI job or regression tracker wants without parsing tables:
// recall against brute-force ground truth, sustained throughput, and
// the per-query latency tail. Written by annbench -json as
// BENCH_results.json.
type ServingResult struct {
	Dataset    string  `json:"dataset"`
	Points     int     `json:"points"`
	Queries    int     `json:"queries"`
	Dim        int     `json:"dim"`
	K          int     `json:"k"`
	Partitions int     `json:"partitions"`
	NProbe     int     `json:"nprobe"`
	Threads    int     `json:"threads"`
	Shards     int     `json:"shards,omitempty"` // 0 = single-process; >0 = scatter-gather over TCP workers
	Seed       int64   `json:"seed"`
	BuildSec   float64 `json:"build_sec"`

	Recall     float64 `json:"recall"`
	QPS        float64 `json:"qps"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	MeanMicros float64 `json:"mean_us"`
	MaxMicros  float64 `json:"max_us"`
}

// ServingBench builds a single-process engine over the SIFT stand-in and
// drives every query through the serving path one at a time, the way the
// gateway's micro-batcher sees them, measuring end-to-end per-query
// latency. Recall is computed against exact brute-force ground truth.
func ServingBench(o Options) (*ServingResult, error) {
	o.fill()
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig(runtime.GOMAXPROCS(0))
	cfg.K = o.K
	cfg.Seed = o.Seed
	t0 := time.Now()
	e, err := core.NewEngine(w.data, cfg)
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(t0).Seconds()

	n := w.queries.Len()
	results := make([][]topk.Result, n)
	lats := make([]float64, n)
	run0 := time.Now()
	for i := 0; i < n; i++ {
		q0 := time.Now()
		rs, err := e.Search(w.queries.At(i), o.K)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		lats[i] = float64(time.Since(q0).Microseconds())
		results[i] = rs
	}
	wall := time.Since(run0).Seconds()

	sum := metrics.Summarize(lats)
	res := &ServingResult{
		Dataset:    w.name,
		Points:     w.data.Len(),
		Queries:    n,
		Dim:        w.data.Dim,
		K:          o.K,
		Partitions: e.Partitions(),
		NProbe:     cfg.NProbe,
		Threads:    1,
		Seed:       o.Seed,
		BuildSec:   buildSec,
		Recall:     metrics.MeanRecall(results, w.truth),
		QPS:        float64(n) / wall,
		P50Micros:  sum.P50,
		P90Micros:  sum.P90,
		P99Micros:  sum.P99,
		MeanMicros: sum.Mean,
		MaxMicros:  sum.Max,
	}

	header(o.Out, "Serving benchmark (single-process search path)")
	fmt.Fprintf(o.Out, "%s: %d points dim %d, %d queries, k=%d, %d partitions\n",
		w.name, res.Points, res.Dim, n, o.K, res.Partitions)
	fmt.Fprintf(o.Out, "build %.2fs | recall %.4f | %.0f QPS | p50 %.0fµs p90 %.0fµs p99 %.0fµs\n",
		buildSec, res.Recall, res.QPS, res.P50Micros, res.P90Micros, res.P99Micros)
	return res, nil
}
