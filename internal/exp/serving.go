package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/hnsw"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// ServingResult is the machine-readable output of the serving benchmarks
// — the numbers a CI job or regression tracker wants without parsing
// tables: recall against brute-force ground truth, sustained throughput,
// and the per-query latency tail. Written by annbench -json as
// BENCH_results.json, one entry per serving variant.
type ServingResult struct {
	Variant    string  `json:"variant"` // scalar | frozen | frozen_sq8 | sharded
	Dataset    string  `json:"dataset"`
	Points     int     `json:"points"`
	Queries    int     `json:"queries"`
	Dim        int     `json:"dim"`
	K          int     `json:"k"`
	Partitions int     `json:"partitions"`
	NProbe     int     `json:"nprobe"`
	Threads    int     `json:"threads"`
	Shards     int     `json:"shards,omitempty"` // 0 = single-process; >0 = scatter-gather over TCP workers
	Seed       int64   `json:"seed"`
	BuildSec   float64 `json:"build_sec"`

	// Frozen-path shape (zero for the scalar variant).
	ArenaBytes  int64   `json:"arena_bytes,omitempty"`
	RerankRatio float64 `json:"rerank_ratio,omitempty"`

	// Filtered-search shape (zero for unfiltered variants). Recall is
	// the pushdown recall against exact filtered ground truth;
	// PostFilterRecall is the baseline that runs the unfiltered search
	// and drops non-matching hits afterwards — the number pushdown has
	// to beat at low selectivity.
	Selectivity      float64 `json:"selectivity,omitempty"`
	Filter           string  `json:"filter,omitempty"`
	PostFilterRecall float64 `json:"post_filter_recall,omitempty"`

	// Hybrid-retrieval shape (zero for non-hybrid variants). Recall is
	// fused recall against exact hybrid ground truth (exact vector leg +
	// exact BM25 leg, same fusion); VectorOnlyRecall is the vector-only
	// baseline against the SAME truth — the number hybrid has to beat on
	// a keyword-skewed workload.
	Fusion           string  `json:"fusion,omitempty"`
	VectorOnlyRecall float64 `json:"vector_only_recall,omitempty"`
	KeywordQueries   int     `json:"keyword_queries,omitempty"`

	Recall     float64 `json:"recall"`
	QPS        float64 `json:"qps"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	MeanMicros float64 `json:"mean_us"`
	MaxMicros  float64 `json:"max_us"`
}

// ServingBench builds a single-process engine over the SIFT stand-in and
// drives every query through the serving path one at a time, the way the
// gateway's micro-batcher sees them, measuring end-to-end per-query
// latency. Recall is computed against exact brute-force ground truth.
func ServingBench(o Options) (*ServingResult, error) {
	o.fill()
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return nil, err
	}
	e, buildSec, err := servingEngine(w, o)
	if err != nil {
		return nil, err
	}
	res, err := measureServing(e, w, o, "scalar", buildSec)
	if err != nil {
		return nil, err
	}
	header(o.Out, "Serving benchmark (single-process search path)")
	printServing(o, w, res)
	return res, nil
}

// ServingBenchVariants runs the same workload through the three
// single-process serving paths — scalar (dynamic HNSW, float32
// throughout), frozen (flat layout, float32 scoring), and frozen_sq8
// (flat layout, SQ8 quantized first pass + exact re-rank) — over ONE
// engine build, so the variants differ only in serving layout. This is
// the recall/perf regression surface bench-smoke gates on.
func ServingBenchVariants(o Options) (map[string]*ServingResult, error) {
	o.fill()
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return nil, err
	}
	e, buildSec, err := servingEngine(w, o)
	if err != nil {
		return nil, err
	}
	header(o.Out, "Serving benchmark (scalar vs frozen vs frozen+SQ8)")
	out := make(map[string]*ServingResult, 3)
	for _, v := range []struct {
		name   string
		freeze bool
		sq8    bool
	}{
		{"scalar", false, false},
		{"frozen", true, false},
		{"frozen_sq8", true, true},
	} {
		if v.freeze {
			if err := e.Freeze(hnsw.FreezeOptions{SQ8: v.sq8}); err != nil {
				return nil, fmt.Errorf("%s: %w", v.name, err)
			}
		}
		res, err := measureServing(e, w, o, v.name, buildSec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		out[v.name] = res
		printServing(o, w, res)
	}
	return out, nil
}

// servingEngine builds the single-process engine the serving benchmarks
// share.
func servingEngine(w *workload, o Options) (*core.Engine, float64, error) {
	cfg := core.DefaultConfig(runtime.GOMAXPROCS(0))
	cfg.K = o.K
	cfg.Seed = o.Seed
	t0 := time.Now()
	e, err := core.NewEngine(w.data, cfg)
	if err != nil {
		return nil, 0, err
	}
	return e, time.Since(t0).Seconds(), nil
}

// measureServing drives every query through e one at a time and scores
// recall against the workload's brute-force ground truth.
func measureServing(e *core.Engine, w *workload, o Options, variant string, buildSec float64) (*ServingResult, error) {
	n := w.queries.Len()
	results := make([][]topk.Result, n)
	lats := make([]float64, n)
	run0 := time.Now()
	for i := 0; i < n; i++ {
		q0 := time.Now()
		rs, err := e.Search(w.queries.At(i), o.K)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		lats[i] = float64(time.Since(q0).Microseconds())
		results[i] = rs
	}
	wall := time.Since(run0).Seconds()

	sum := metrics.Summarize(lats)
	res := &ServingResult{
		Variant:    variant,
		Dataset:    w.name,
		Points:     w.data.Len(),
		Queries:    n,
		Dim:        w.data.Dim,
		K:          o.K,
		Partitions: e.Partitions(),
		NProbe:     2,
		Threads:    1,
		Seed:       o.Seed,
		BuildSec:   buildSec,
		Recall:     metrics.MeanRecall(results, w.truth),
		QPS:        float64(n) / wall,
		P50Micros:  sum.P50,
		P90Micros:  sum.P90,
		P99Micros:  sum.P99,
		MeanMicros: sum.Mean,
		MaxMicros:  sum.Max,
	}
	if fi, ok := e.FrozenInfo(); ok {
		res.ArenaBytes = fi.ArenaBytes
		res.RerankRatio = fi.RerankRatio()
	}
	return res, nil
}

func printServing(o Options, w *workload, res *ServingResult) {
	fmt.Fprintf(o.Out, "%-10s %s: %d points dim %d, %d queries, k=%d, %d partitions\n",
		res.Variant, w.name, res.Points, res.Dim, res.Queries, o.K, res.Partitions)
	fmt.Fprintf(o.Out, "%-10s build %.2fs | recall %.4f | %.0f QPS | p50 %.0fµs p90 %.0fµs p99 %.0fµs\n",
		res.Variant, res.BuildSec, res.Recall, res.QPS, res.P50Micros, res.P90Micros, res.P99Micros)
}
