package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/hnsw"
)

// Strong scaling (Figure 3). Each sweep point executes the full search
// protocol at core count P — real routing decisions, real per-worker
// task assignment (the load balance that determines the curve), real
// message counts — and prices the run with the cost model.
//
// Scale bridging: the paper searches partitions of N_paper/P points
// (N_paper = 10^9 for Fig 3b); this machine holds ~10^5. A task's local
// HNSW search cost grows logarithmically in partition size (Malkov &
// Yashunin; Section III-A), so the model prices each *measured* task at
// ef * (log2(N_paper/P) + 1) distance computations — the paper-scale
// partition — while the task-to-worker distribution, routing work and
// message counts stay exactly as measured. EXPERIMENTS.md documents this
// extrapolation.
//
// The shape to reproduce: near-linear speedup on the billion-scale sets
// (~25x at 8192/256 cores), sublinear on the small synthetic sets (~13x
// and ~18x at 1024/32 cores) where the serial master and task
// granularity bite sooner.

// scalingResult is one point of a strong-scaling curve.
type scalingResult struct {
	P       int
	Seconds float64
	Speedup float64
}

// paperTaskCost prices one local search on a paper-scale partition.
// High recall at billion scale needs a wide beam (ef ~ 512, as hnswlib
// users run for recall ~0.9 at 10^8-10^9 points); a beam expansion
// touches ~M neighbors per hop, plus the upper-layer descent.
func paperTaskCost(paperN int64, p int) (distComps, hops int64) {
	partition := float64(paperN) / float64(p)
	if partition < 2 {
		partition = 2
	}
	depth := math.Log2(partition) + 1
	// A beam of ef pops evaluates ~M neighbors each (layer 0 degree is
	// 2M, roughly half already visited), plus the upper-layer descent.
	const efPaper, mPaper = 512, 16
	return int64(efPaper*mPaper + mPaper*depth), int64(efPaper)
}

// paperParams adapts the calibrated constants to billion-scale
// partitions: vectors no longer fit in cache, so one 128-d distance
// computation is memory-bound (~2 cache lines missed) rather than the
// cache-hot kernel the calibration measures. EXPERIMENTS.md documents
// this adjustment.
func paperParams(dim int) costmodel.Params {
	params := costmodel.Calibrate(dim)
	params.RouteNsPerDim = params.DistNsPerDim // routing stays cache-hot
	if params.DistNsPerDim < 1.5 {
		params.DistNsPerDim = 1.5 // billion-scale scans are memory-bound
	}
	return params
}

// runScaling sweeps worker counts for one workload. paperN > 0 prices
// tasks at paper-scale partitions; paperN == 0 uses raw measured work.
// adaptive selects ball routing (the paper's exact F(q) definition) over
// fixed-width top-m routing; high-dimensional tight query clusters need
// it to spread across partitions at all.
func runScaling(w *workload, cores []int, o Options, nprobe int, paperN int64, adaptive bool) ([]scalingResult, error) {
	params := costmodel.Calibrate(w.data.Dim)
	if paperN > 0 {
		params = paperParams(w.data.Dim)
	}
	var out []scalingResult
	var base float64
	for _, p := range cores {
		cfg := core.DefaultConfig(p)
		cfg.K = o.K
		cfg.NProbe = nprobe
		if adaptive {
			cfg.Routing = core.RouteAdaptive
		}
		cfg.Seed = o.Seed
		if paperN > 0 {
			// Task costs are priced synthetically at paper scale, so the
			// stand-in indexes only need to exist, not to be high-recall:
			// a light build keeps the 512-d sweeps fast.
			cfg.HNSW = hnsw.DefaultConfig(cfg.Metric)
			cfg.HNSW.M = 8
			cfg.HNSW.EfConstruction = 48
		}
		pre, _, err := prebuild(w.data.Clone(), p, cfg)
		if err != nil {
			return nil, err
		}
		res, err := runPrebuilt(pre, w.queries, cfg)
		if err != nil {
			return nil, err
		}
		if paperN > 0 {
			dc, hp := paperTaskCost(paperN, p)
			for i, tasks := range res.PerWorkerQueries {
				res.PerWorkerDistComps[i] = tasks * dc
				res.PerWorkerHops[i] = tasks * hp
			}
		}
		est := model(params, res, p, w.data.Dim, o.K, w.queries.Len())
		secs := est.Total.Seconds()
		if base == 0 {
			base = secs
		}
		out = append(out, scalingResult{P: p, Seconds: secs, Speedup: base / secs})
	}
	return out, nil
}

func printScaling(o Options, name string, rs []scalingResult) {
	fmt.Fprintf(o.Out, "%s (speedup normalised to P=%d):\n", name, rs[0].P)
	for _, r := range rs {
		fmt.Fprintf(o.Out, "  P=%5d  modelled query time=%9.4fs  speedup=%6.2fx\n", r.P, r.Seconds, r.Speedup)
	}
}

// RunFig3a regenerates Figure 3(a): SYN_1M and SYN_10M, cores 32..1024.
func RunFig3a(o Options) error {
	o.fill()
	header(o.Out, "Figure 3(a): strong scaling on SYN_1M / SYN_10M")
	cores := []int{32, 64, 128, 256, 512, 1024}
	if o.Quick {
		cores = []int{32, 64, 128}
	}
	type syn struct {
		name   string
		cfg    dataset.ClusterConfig
		paperN int64
	}
	syns := []syn{
		{"SYN_1M (512-d)", dataset.SYN1MConfig(float64(o.Points)/1_000_000, o.Seed), 1_000_000},
		{"SYN_10M (256-d)", dataset.SYN10MConfig(float64(o.Points)*2/10_000_000, o.Seed+7), 10_000_000},
	}
	for _, s := range syns {
		g, err := dataset.GenerateClusters(s.cfg)
		if err != nil {
			return err
		}
		// Query interpretation: the paper says queries are "generated
		// using uniform distribution in a single cluster with a
		// compactness factor of 0.01". Taken literally (a tight ball
		// inside one cluster), every query shares one home partition at
		// every P and no strong scaling could exist — for the paper's
		// 13-18x the query load must spread across partitions. We use
		// data-distributed queries (perturbed dataset points), the same
		// protocol as Figure 3(b); see EXPERIMENTS.md.
		qs := dataset.PerturbedQueries(g.Data, o.Queries, 0.5, o.Seed+2)
		w := &workload{name: s.name, data: g.Data, queries: qs}
		rs, err := runScaling(w, cores, o, 4, s.paperN, false)
		if err != nil {
			return err
		}
		printScaling(o, s.name, rs)
	}
	fmt.Fprintln(o.Out, "paper: speedup ~13x (SYN_1M) and ~18x (SYN_10M) at 1024 cores vs 32")
	return nil
}

// RunFig3b regenerates Figure 3(b): SIFT-like and DEEP-like stand-ins
// priced at 1B points, cores 256..8192, speedups normalised to 256.
func RunFig3b(o Options) error {
	o.fill()
	header(o.Out, "Figure 3(b): strong scaling on ANN_SIFT1B / DEEP1B stand-ins")
	cores := []int{256, 512, 1024, 2048, 4096, 8192}
	if o.Quick {
		cores = []int{256, 512, 1024}
	}
	for _, name := range []string{"sift", "deep"} {
		w, err := descriptorWorkload(name, o, false)
		if err != nil {
			return err
		}
		rs, err := runScaling(w, cores, o, 8, 1_000_000_000, false)
		if err != nil {
			return err
		}
		printScaling(o, name, rs)
	}
	fmt.Fprintln(o.Out, "paper: speedup ~25x for both datasets at 8192 cores vs 256 (near-linear)")
	return nil
}
