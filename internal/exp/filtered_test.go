package exp

import (
	"bytes"
	"testing"
)

func TestServingBenchFilteredSmoke(t *testing.T) {
	var buf bytes.Buffer
	out, err := ServingBenchFiltered(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"filtered_1.00", "filtered_0.10", "filtered_0.01"} {
		res, ok := out[key]
		if !ok {
			t.Fatalf("missing result %q (have %d entries)", key, len(out))
		}
		if res.Recall <= 0.5 || res.Recall > 1 {
			t.Errorf("%s: pushdown recall = %v, want (0.5, 1]", key, res.Recall)
		}
		if res.QPS <= 0 {
			t.Errorf("%s: QPS = %v", key, res.QPS)
		}
		if res.Filter == "" || res.Selectivity <= 0 {
			t.Errorf("%s: filter metadata missing: %+v", key, res)
		}
	}
	// At full selectivity post-filtering drops nothing, so the two
	// strategies see the same candidates.
	full := out["filtered_1.00"]
	if full.PostFilterRecall < full.Recall-0.05 {
		t.Errorf("full selectivity: post-filter recall %.4f far below pushdown %.4f",
			full.PostFilterRecall, full.Recall)
	}
	// At 1% selectivity the naive baseline must be measurably worse:
	// the unfiltered top-k rarely contains matching points, so after
	// dropping non-matches few valid hits remain.
	narrow := out["filtered_0.01"]
	if narrow.PostFilterRecall >= narrow.Recall {
		t.Errorf("1%% selectivity: post-filter recall %.4f not below pushdown %.4f",
			narrow.PostFilterRecall, narrow.Recall)
	}
	if buf.Len() == 0 {
		t.Error("no human-readable output")
	}
}
