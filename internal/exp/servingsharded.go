package exp

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/topk"
)

// ServingBenchSharded is ServingBench's multi-node counterpart: the
// same workload split across `shards` worker engines, each served on
// loopback TCP by the shard RPC, queried one at a time through the
// gateway's scatter-gather router. The numbers therefore include real
// framing, socket, and merge costs — what an annserve -shards
// deployment pays on one machine. Recall is against the same
// brute-force ground truth as the single-node run, so the two results
// are directly comparable in BENCH_results.json.
func ServingBenchSharded(o Options, shards int) (*ServingResult, error) {
	o.fill()
	if shards < 1 {
		return nil, fmt.Errorf("sharded serving bench needs shards >= 1, got %d", shards)
	}
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return nil, err
	}

	// Keep total partition count comparable to the single-node bench:
	// each shard gets its proportional slice of the machine.
	perShardParts := runtime.GOMAXPROCS(0) / shards
	if perShardParts < 1 {
		perShardParts = 1
	}

	t0 := time.Now()
	groups := make([][]string, shards)
	per := (w.data.Len() + shards - 1) / shards
	var servers []*cluster.ShardServer
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	totalParts := 0
	for s := 0; s < shards; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > w.data.Len() {
			hi = w.data.Len()
		}
		if lo >= hi {
			return nil, fmt.Errorf("shard %d is empty: %d points over %d shards", s, w.data.Len(), shards)
		}
		cfg := core.DefaultConfig(perShardParts)
		cfg.K = o.K
		cfg.Seed = o.Seed + int64(s)
		eng, err := core.NewEngine(w.data.Slice(lo, hi).Clone(), cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		totalParts += eng.Partitions()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := cluster.NewShardServer(ln, cluster.ShardInfo{
			Shard:  s,
			Dim:    eng.Dim(),
			Points: int64(eng.Len()),
		}, eng.ShardHandler(0))
		servers = append(servers, srv)
		groups[s] = []string{srv.Addr()}
	}
	buildSec := time.Since(t0).Seconds()

	router, err := serve.NewRouter(serve.ShardMap{Groups: groups}, serve.RouterConfig{})
	if err != nil {
		return nil, err
	}
	defer router.Close()

	n := w.queries.Len()
	results := make([][]topk.Result, n)
	lats := make([]float64, n)
	ctx := context.Background()
	run0 := time.Now()
	for i := 0; i < n; i++ {
		q0 := time.Now()
		out, err := router.SearchBatch(ctx, w.queries.Slice(i, i+1), o.K)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		if out.Degraded {
			return nil, fmt.Errorf("query %d: degraded answer on a healthy loopback cluster (failed partitions %v)",
				i, out.FailedPartitions)
		}
		lats[i] = float64(time.Since(q0).Microseconds())
		results[i] = out.Results[0]
	}
	wall := time.Since(run0).Seconds()

	sum := metrics.Summarize(lats)
	res := &ServingResult{
		Variant:    "sharded",
		Dataset:    w.name,
		Points:     w.data.Len(),
		Queries:    n,
		Dim:        w.data.Dim,
		K:          o.K,
		Partitions: totalParts,
		NProbe:     core.DefaultConfig(perShardParts).NProbe,
		Threads:    1,
		Shards:     shards,
		Seed:       o.Seed,
		BuildSec:   buildSec,
		Recall:     metrics.MeanRecall(results, w.truth),
		QPS:        float64(n) / wall,
		P50Micros:  sum.P50,
		P90Micros:  sum.P90,
		P99Micros:  sum.P99,
		MeanMicros: sum.Mean,
		MaxMicros:  sum.Max,
	}

	header(o.Out, fmt.Sprintf("Serving benchmark (sharded: %d TCP workers, scatter-gather gateway)", shards))
	fmt.Fprintf(o.Out, "%s: %d points dim %d over %d shards, %d queries, k=%d\n",
		w.name, res.Points, res.Dim, shards, n, o.K)
	fmt.Fprintf(o.Out, "build %.2fs | recall %.4f | %.0f QPS | p50 %.0fµs p90 %.0fµs p99 %.0fµs\n",
		buildSec, res.Recall, res.QPS, res.P50Micros, res.P90Micros, res.P99Micros)
	return res, nil
}
