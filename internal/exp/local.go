package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hnsw"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// RunAblateLocal exercises the paper's extensibility claim (Section VI:
// "any algorithm can be used for local indexing and searching instead of
// HNSW"): identical VP-tree routing with four interchangeable local
// indexes — HNSW (approximate), exact VP tree, exact KD tree, and a flat
// scan — comparing batch time and recall.
func RunAblateLocal(o Options) error {
	o.fill()
	header(o.Out, "Extensibility: local index algorithms under identical VP routing")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}
	const parts = 16
	for _, kind := range []string{"hnsw", "vp", "kd", "flat"} {
		cfg := core.DefaultConfig(parts)
		cfg.K = o.K
		cfg.NProbe = 3
		cfg.LocalIndex = kind
		cfg.Seed = o.Seed
		tb := time.Now()
		e, err := core.NewEngine(w.data.Clone(), cfg)
		if err != nil {
			return err
		}
		buildT := time.Since(tb)
		tq := time.Now()
		res, err := e.SearchBatch(w.queries, o.K, 0)
		if err != nil {
			return err
		}
		queryT := time.Since(tq)
		fmt.Fprintf(o.Out, "  local=%-5s build=%-9s batch=%-9s recall@%d=%.3f\n",
			kind, fmtDur(buildT), fmtDur(queryT), o.K, metrics.MeanRecall(res, w.truth))
	}
	fmt.Fprintln(o.Out, "HNSW trades a little recall for much lower query time in high dimension;\nthe exact locals bound what routing alone loses")
	return nil
}

// RunNSW compares plain NSW graphs (no hierarchy) with HNSW across
// dataset sizes — the Section III-A background claim that the hierarchy
// improves search from O(log^2 n) toward O(log n). We report hops and
// distance computations per query at matched recall budgets.
func RunNSW(o Options) error {
	o.fill()
	header(o.Out, "Background III-A: NSW (flat) vs HNSW (hierarchical) search cost")
	sizes := []int{5_000, 20_000, 80_000}
	if o.Quick {
		sizes = []int{4_000, 16_000}
	}
	for _, n := range sizes {
		opt := o
		opt.Points = n
		w, err := descriptorWorkload("deep", opt, false)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("  n=%-7d", n)
		for _, flat := range []bool{true, false} {
			cfg := hnsw.DefaultConfig(vec.L2)
			cfg.Flat = flat
			cfg.EfConstruction = 100 // lighter build; the comparison is search cost
			g, _, err := hnsw.Build(w.data, cfg, 0)
			if err != nil {
				return err
			}
			var hops, dcs int64
			nq := w.queries.Len()
			for qi := 0; qi < nq; qi++ {
				_, st, err := g.SearchEf(w.queries.At(qi), o.K, 64)
				if err != nil {
					return err
				}
				hops += st.Hops
				dcs += st.DistComps
			}
			name := "hnsw"
			if flat {
				name = "nsw "
			}
			line += fmt.Sprintf("  %s: %5.1f hops %7.1f dists/query", name,
				float64(hops)/float64(nq), float64(dcs)/float64(nq))
		}
		fmt.Fprintln(o.Out, line)
	}
	fmt.Fprintln(o.Out, "the hierarchy's advantage grows with n (greedy entry walk shortens)")
	return nil
}
