package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
)

// RunTable2 regenerates Table II: distributed construction times for the
// ANN_SIFT1B stand-in across core counts, split into the total and the
// HNSW portion.
//
// Two parts:
//
//   - measured: the real distributed construction protocol (Algorithms
//     1–2: distributed vantage selection, distributed median, AlltoAllv
//     shuffle, communicator splits, local HNSW build) runs at core
//     counts feasible in-process, reporting wall times;
//   - modelled: the measured per-point HNSW work and the shuffle
//     volumes are priced at the paper's 1B points / 256..8192 cores.
//
// Shape to reproduce: the total shrinks slowly with P while the HNSW
// phase (the "primary core of the construction") shrinks near-linearly —
// at 8192 cores the VP phase dominates (paper: 14.7 total vs 4.3 HNSW
// minutes).
func RunTable2(o Options) error {
	o.fill()
	header(o.Out, "Table II: construction times (SIFT-like)")

	w, err := descriptorWorkload("sift", o, false)
	if err != nil {
		return err
	}
	ds := w.data

	// --- measured at feasible scale ---
	fmt.Fprintf(o.Out, "measured (in-process ranks, %d points, 128-d):\n", ds.Len())
	cores := []int{4, 8, 16, 32}
	if o.Quick {
		cores = []int{4, 8}
	}
	var perPointDC float64
	for _, p := range cores {
		world := cluster.NewWorld(p)
		var agg core.ConstructStats
		collect := make(chan core.ConstructStats, p)
		t0 := time.Now()
		err := world.Run(func(c *cluster.Comm) error {
			shard, err := core.ScatterDataset(c, 0, ds, o.Seed)
			if err != nil {
				return err
			}
			cfg := core.DefaultConfig(p)
			cfg.Seed = o.Seed
			b, err := core.BuildDistributed(c, shard, cfg)
			if err != nil {
				return err
			}
			collect <- b.Stats
			return nil
		})
		if err != nil {
			return err
		}
		total := time.Since(t0)
		close(collect)
		var hnswDC int64
		for st := range collect {
			if st.HNSW > agg.HNSW {
				agg.HNSW = st.HNSW
			}
			if st.VPTree > agg.VPTree {
				agg.VPTree = st.VPTree
			}
			hnswDC += st.HNSWWork.DistComps
		}
		perPointDC = float64(hnswDC) / float64(ds.Len())
		fmt.Fprintf(o.Out, "  P=%3d  total=%-9s hnsw(max rank)=%-9s vptree(max rank)=%s\n",
			p, fmtDur(total), fmtDur(agg.HNSW), fmtDur(agg.VPTree))
	}

	// --- modelled at paper scale: 1B points, 128-d ---
	fmt.Fprintf(o.Out, "modelled (1B points, 128-d, measured %.0f HNSW dist-comps/point):\n", perPointDC)
	params := costmodel.Calibrate(128)
	const billion = 1_000_000_000
	fmt.Fprintf(o.Out, "  %-7s %-14s %-14s %-14s   (paper: total / hnsw minutes)\n", "cores", "total", "hnsw", "vptree")
	paper := map[int][2]float64{
		256: {21.5, 17.6}, 512: {20.1, 14.8}, 1024: {18.3, 12.4},
		2048: {16.5, 9.8}, 4096: {15.2, 7.8}, 8192: {14.7, 4.3},
	}
	for _, p := range []int{256, 512, 1024, 2048, 4096, 8192} {
		pts := int64(billion / p)
		est := params.EstimateConstruction(costmodel.ConstructionRun{
			P: p, Dim: 128,
			PointsPerRank:        pts,
			HNSWDistCompsPerRank: int64(float64(pts) * perPointDC),
			HNSWHopsPerRank:      int64(float64(pts) * perPointDC / 16),
			Levels:               log2ceilInt(p),
			ShuffleBytesPerRank:  pts * (128*4 + 8),
		})
		pp := paper[p]
		fmt.Fprintf(o.Out, "  %-7d %-14s %-14s %-14s   (%.1f / %.1f)\n",
			p, fmtDur(est.Total), fmtDur(est.HNSW), fmtDur(est.VPTree), pp[0], pp[1])
	}
	fmt.Fprintln(o.Out, "shape check: the HNSW phase shrinks near-linearly, as in the paper; the\nmodelled VP phase underestimates the paper's (their non-HNSW share is\nI/O- and fabric-bound at 1B points), so our modelled total keeps\nshrinking where the paper's saturates — see EXPERIMENTS.md")
	return nil
}

func log2ceilInt(x int) int {
	n := 0
	for p := 1; p < x; p *= 2 {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}
