package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/lexical"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Hybrid serving benchmark: the SIFT stand-in corpus with synthetic
// document text, searched through Engine.SearchHybrid and scored
// against exact hybrid ground truth — the exact vector leg (brute
// force) fused with the exact BM25 leg by the same formula the engine
// uses. The workload is keyword-skewed on purpose: one query in five
// asks for a rare token planted on a document that is NOT among the
// query's vector neighbors, so a vector-only search cannot find it.
// The headline number is fused recall@k vs the vector-only baseline
// against the same truth; bench-smoke gates on hybrid >= vector-only.

// hybridVocab is the shared vocabulary common documents draw from.
// Small enough that common terms have high document frequency (low
// idf), so planted rare tokens dominate BM25 when asked for.
var hybridVocab = []string{
	"amber", "basalt", "cedar", "delta", "ember", "fjord", "garnet",
	"harbor", "indigo", "juniper", "krill", "lumen", "marble", "nectar",
	"onyx", "pumice", "quartz", "raven", "slate", "tundra", "umber",
	"violet", "willow", "xenon", "yarrow", "zephyr",
}

// hybridText returns document i's synthetic text: 4–8 common words
// drawn deterministically from the vocabulary.
func hybridText(rng *rand.Rand) string {
	n := 4 + rng.Intn(5)
	out := make([]byte, 0, 64)
	for j := 0; j < n; j++ {
		if j > 0 {
			out = append(out, ' ')
		}
		out = append(out, hybridVocab[rng.Intn(len(hybridVocab))]...)
	}
	return string(out)
}

// hybridWorkload is the text side of the benchmark: per-document texts
// aligned with dataset positions, per-query texts, and which queries
// are keyword-only (answerable lexically, invisible to vectors).
type hybridWorkload struct {
	texts      []string // by dataset position
	queryTexts []string
	keyword    int // how many queries carry a planted rare token
}

// buildHybridTexts assigns every document its text and plants one
// unique rare token per keyword query on a vector-unrelated document.
// Queries are perturbed copies of data point i%N (see
// dataset.PerturbedQueries), so planting on a hashed far-away position
// keeps the keyword target out of the query's true neighborhood.
func buildHybridTexts(w *workload, o Options) *hybridWorkload {
	n := w.data.Len()
	rng := rand.New(rand.NewSource(o.Seed + 97))
	hw := &hybridWorkload{
		texts:      make([]string, n),
		queryTexts: make([]string, w.queries.Len()),
	}
	for i := 0; i < n; i++ {
		hw.texts[i] = hybridText(rng)
	}
	for i := 0; i < w.queries.Len(); i++ {
		if i%5 == 0 {
			// Keyword-only query: a unique token planted on one far doc.
			pos := int((int64(i)*2654435761 + 12345) % int64(n))
			if pos == i%n {
				pos = (pos + n/2) % n
			}
			token := fmt.Sprintf("needle%d", i)
			hw.texts[pos] = hw.texts[pos] + " " + token
			hw.queryTexts[i] = token
			hw.keyword++
		} else {
			// Plain hybrid query: two common words.
			hw.queryTexts[i] = hybridVocab[rng.Intn(len(hybridVocab))] + " " +
				hybridVocab[rng.Intn(len(hybridVocab))]
		}
	}
	return hw
}

// hybridTruth fuses the EXACT legs — brute-force vector top-legK and
// exact BM25 top-legK — with the same formula and parameters the engine
// uses, yielding the fused top-k every measured variant is scored
// against.
func hybridTruth(w *workload, hw *hybridWorkload, idx *lexical.Index, o Options, legK int, weighted bool) [][]int32 {
	vecLegs := bruteforce.SearchBatch(w.data, w.queries, legK, vec.L2)
	out := make([][]int32, w.queries.Len())
	for i := range out {
		vl := make([]fusion.Candidate, len(vecLegs[i]))
		for j, r := range vecLegs[i] {
			vl[j] = fusion.Candidate{ID: r.ID, Score: -float64(r.Dist)}
		}
		fusion.Sort(vl)
		scored := idx.Search(hw.queryTexts[i], legK, nil)
		ll := make([]fusion.Candidate, len(scored))
		for j, s := range scored {
			ll[j] = fusion.Candidate{ID: s.ID, Score: s.Score}
		}
		var fused []fusion.Candidate
		if weighted {
			fused = fusion.WeightedMinMax([]float64{0.5, 0.5}, o.K, vl, ll)
		} else {
			fused = fusion.RRF(0, o.K, vl, ll)
		}
		row := make([]int32, len(fused))
		for j, c := range fused {
			row[j] = int32(c.ID)
		}
		out[i] = row
	}
	return out
}

// ServingBenchHybrid builds one engine over the text-augmented SIFT
// stand-in and measures Engine.SearchHybrid under both fusion modes
// against exact hybrid truth. Results are keyed "hybrid_rrf" and
// "hybrid_weighted".
func ServingBenchHybrid(o Options) (map[string]*ServingResult, error) {
	o.fill()
	w, err := descriptorWorkload("sift", o, false)
	if err != nil {
		return nil, err
	}
	hw := buildHybridTexts(w, o)
	e, buildSec, err := servingEngine(w, o)
	if err != nil {
		return nil, err
	}
	// Index texts on the engine and on the exact-truth index. Both
	// tokenize identically, so the lexical legs agree exactly.
	truthIdx := lexical.NewIndex(lexical.Config{})
	for i := 0; i < w.data.Len(); i++ {
		id := w.data.ID(i)
		e.SetText(id, hw.texts[i], w.data.At(i))
		truthIdx.Set(id, hw.texts[i], nil)
	}
	// The engine defaults LegK to 4k (core.HybridOptions.fill); the
	// truth must fuse legs of the same depth.
	legK := 4 * o.K
	if legK < 10 {
		legK = 10
	}

	header(o.Out, "Hybrid serving benchmark (BM25 + vector rank fusion)")
	out := make(map[string]*ServingResult, 2)
	for _, mode := range []string{core.FusionRRF, core.FusionWeighted} {
		truth := hybridTruth(w, hw, truthIdx, o, legK, mode == core.FusionWeighted)
		res, err := measureHybrid(e, w, hw, o, mode, truth, buildSec)
		if err != nil {
			return nil, fmt.Errorf("hybrid %s: %w", mode, err)
		}
		out[res.Variant] = res
		printHybrid(o, w, res)
	}
	return out, nil
}

// measureHybrid times the fused path and computes the vector-only
// baseline recall against the same hybrid truth.
func measureHybrid(e *core.Engine, w *workload, hw *hybridWorkload, o Options, mode string, truth [][]int32, buildSec float64) (*ServingResult, error) {
	n := w.queries.Len()
	results := make([][]topk.Result, n)
	lats := make([]float64, n)
	run0 := time.Now()
	for i := 0; i < n; i++ {
		q0 := time.Now()
		rs, err := e.SearchHybrid(w.queries.At(i), hw.queryTexts[i], o.K, core.HybridOptions{Fusion: mode})
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		lats[i] = float64(time.Since(q0).Microseconds())
		row := make([]topk.Result, len(rs))
		for j, h := range rs {
			row[j] = topk.Result{ID: h.ID, Dist: h.Dist}
		}
		results[i] = row
	}
	wall := time.Since(run0).Seconds()

	// Vector-only baseline: the regular ANN search scored against the
	// SAME fused truth. Untimed — only its recall matters.
	vecOnly := make([][]topk.Result, n)
	for i := 0; i < n; i++ {
		rs, err := e.Search(w.queries.At(i), o.K)
		if err != nil {
			return nil, fmt.Errorf("baseline query %d: %w", i, err)
		}
		vecOnly[i] = rs
	}

	sum := metrics.Summarize(lats)
	return &ServingResult{
		Variant:          "hybrid_" + mode,
		Dataset:          w.name,
		Points:           w.data.Len(),
		Queries:          n,
		Dim:              w.data.Dim,
		K:                o.K,
		Partitions:       e.Partitions(),
		NProbe:           2,
		Threads:          1,
		Seed:             o.Seed,
		BuildSec:         buildSec,
		Fusion:           mode,
		KeywordQueries:   hw.keyword,
		Recall:           metrics.MeanRecall(results, truth),
		VectorOnlyRecall: metrics.MeanRecall(vecOnly, truth),
		QPS:              float64(n) / wall,
		P50Micros:        sum.P50,
		P90Micros:        sum.P90,
		P99Micros:        sum.P99,
		MeanMicros:       sum.Mean,
		MaxMicros:        sum.Max,
	}, nil
}

func printHybrid(o Options, w *workload, res *ServingResult) {
	fmt.Fprintf(o.Out, "%-15s %s: %d points dim %d, %d queries (%d keyword-only), k=%d\n",
		res.Variant, w.name, res.Points, res.Dim, res.Queries, res.KeywordQueries, o.K)
	fmt.Fprintf(o.Out, "%-15s fused recall %.4f vs vector-only %.4f | %.0f QPS | p50 %.0fµs p99 %.0fµs\n",
		res.Variant, res.Recall, res.VectorOnlyRecall, res.QPS, res.P50Micros, res.P99Micros)
}
