package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hnsw"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

// RunCompressed reproduces the claim the paper attaches to Figure 6:
// compressed single-node indexes (IVF + product quantization, the family
// of references [13] and [14]) answer quickly and fit billion-scale data
// in one node, but their recall *plateaus* as the search budget grows —
// quantization error, not search effort, becomes the binding constraint
// — while the paper's uncompressed engine reaches near-perfect recall at
// M=64.
func RunCompressed(o Options) error {
	o.fill()
	header(o.Out, "Compressed baseline: IVF-PQ recall ceiling vs uncompressed engine")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}

	// IVF-PQ at increasing nprobe: the recall curve must flatten.
	pq, err := ivfpq.Build(w.data, ivfpq.Config{M: 16, Seed: o.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "IVF-PQ (16-byte codes, %.1f MB vs %.1f MB raw):\n",
		float64(pq.MemoryBytes())/(1<<20), float64(w.data.Bytes())/(1<<20))
	probes := []int{1, 4, 16, 64, 256}
	if o.Quick {
		probes = []int{1, 8, 64}
	}
	var last float64
	for _, np := range probes {
		t0 := time.Now()
		res := make([][]topk.Result, w.queries.Len())
		for qi := 0; qi < w.queries.Len(); qi++ {
			rs, _, err := pq.SearchNProbe(w.queries.At(qi), o.K, np)
			if err != nil {
				return err
			}
			res[qi] = rs
		}
		elapsed := time.Since(t0)
		r := metrics.MeanRecall(res, w.truth)
		fmt.Fprintf(o.Out, "  nprobe=%4d  batch=%-9s recall@%d=%.3f  (Δ=%+.3f)\n",
			np, fmtDur(elapsed), o.K, r, r-last)
		last = r
	}

	// The paper's engine at growing budget: recall keeps climbing toward 1.
	fmt.Fprintln(o.Out, "uncompressed VP+HNSW engine:")
	for _, M := range []int{16, 64} {
		cfg := core.DefaultConfig(16)
		cfg.K = o.K
		cfg.NProbe = 4
		cfg.Seed = o.Seed
		cfg.HNSW = hnsw.DefaultConfig(vec.L2)
		cfg.HNSW.M = M
		e, err := core.NewEngine(w.data.Clone(), cfg)
		if err != nil {
			return err
		}
		e.SetEfSearch(4 * M)
		t0 := time.Now()
		res, err := e.SearchBatch(w.queries, o.K, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "  M=%2d ef=%3d  batch=%-9s recall@%d=%.3f\n",
			M, 4*M, fmtDur(time.Since(t0)), o.K, metrics.MeanRecall(res, w.truth))
	}
	fmt.Fprintln(o.Out, "paper: compressed indexes' recall plateaus; ours reaches near-perfect recall")
	return nil
}
