package exp

import (
	"bytes"
	"testing"
)

func TestServingBenchHybridSmoke(t *testing.T) {
	var buf bytes.Buffer
	out, err := ServingBenchHybrid(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hybrid_rrf", "hybrid_weighted"} {
		res, ok := out[key]
		if !ok {
			t.Fatalf("missing result %q (have %d entries)", key, len(out))
		}
		if res.Recall <= 0.5 || res.Recall > 1 {
			t.Errorf("%s: fused recall = %v, want (0.5, 1]", key, res.Recall)
		}
		if res.QPS <= 0 {
			t.Errorf("%s: QPS = %v", key, res.QPS)
		}
		if res.KeywordQueries == 0 || res.Fusion == "" {
			t.Errorf("%s: hybrid metadata missing: %+v", key, res)
		}
		// The workload is keyword-skewed: one query in five is
		// answerable only through the lexical leg, so the vector-only
		// baseline must trail fused recall strictly.
		if res.VectorOnlyRecall >= res.Recall {
			t.Errorf("%s: vector-only recall %.4f not below fused %.4f",
				key, res.VectorOnlyRecall, res.Recall)
		}
	}
	if buf.Len() == 0 {
		t.Error("no human-readable output")
	}
}
