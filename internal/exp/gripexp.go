package exp

import (
	"fmt"
	"os"
	"time"

	"repro/internal/grip"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/topk"
)

// RunGrip reproduces the Section II characterisation of GRIP (reference
// [15]): a two-layer multi-store index reaches high recall with very low
// memory — the full-precision vectors live in a slower store and only
// validate candidates — unlike the bare compressed index whose recall is
// capped by quantisation error. The r sweep shows validation closing the
// gap the paper describes.
func RunGrip(o Options) error {
	o.fill()
	header(o.Out, "Section II: GRIP-style two-layer index (ref [15])")
	w, err := descriptorWorkload("sift", o, true)
	if err != nil {
		return err
	}

	// bare compressed index (first layer only)
	pq, err := ivfpq.Build(w.data, ivfpq.Config{M: 16, Seed: o.Seed})
	if err != nil {
		return err
	}
	pqRes := make([][]topk.Result, w.queries.Len())
	for qi := range pqRes {
		rs, _, err := pq.SearchNProbe(w.queries.At(qi), o.K, 32)
		if err != nil {
			return err
		}
		pqRes[qi] = rs
	}
	fmt.Fprintf(o.Out, "  bare IVF-PQ:      memory=%6.1f MB  recall@%d=%.3f\n",
		float64(pq.MemoryBytes())/(1<<20), o.K, metrics.MeanRecall(pqRes, w.truth))

	// GRIP: compressed graph in memory + full-precision file store
	path := fmt.Sprintf("%s/grip-store.bin", tempDirOf(o))
	if err := grip.WriteStoreFile(path, w.data); err != nil {
		return err
	}
	fs, err := grip.OpenFileStore(path, w.data.Dim)
	if err != nil {
		return err
	}
	defer fs.Close()
	g, err := grip.Build(w.data.Clone(), fs, grip.Config{PQ: ivfpq.Config{M: 16}, Seed: o.Seed})
	if err != nil {
		return err
	}
	for _, r := range []int{o.K, 4 * o.K, 16 * o.K} {
		t0 := time.Now()
		res := make([][]topk.Result, w.queries.Len())
		for qi := range res {
			rs, _, err := g.Search(w.queries.At(qi), o.K, r)
			if err != nil {
				return err
			}
			res[qi] = rs
		}
		fmt.Fprintf(o.Out, "  GRIP r=%4d:      memory=%6.1f MB  recall@%d=%.3f  batch=%s (disk-validated)\n",
			r, float64(g.CompressedBytes)/(1<<20), o.K,
			metrics.MeanRecall(res, w.truth), fmtDur(time.Since(t0)))
	}
	fmt.Fprintf(o.Out, "  raw vectors:      memory=%6.1f MB (what the uncompressed engine holds in RAM)\n",
		float64(w.data.Bytes())/(1<<20))
	fmt.Fprintln(o.Out, "paper: GRIP gets high recall at low memory but is bound to one node;\nthe paper's answer is distribution instead of compression")
	return nil
}

// tempDirOf gives experiments a scratch directory.
func tempDirOf(_ Options) string { return os.TempDir() }
