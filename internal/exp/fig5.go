package exp

import (
	"fmt"

	"repro/internal/core"
)

// RunFig5 regenerates Figure 5: the breakdown of total search time into
// computation and MPI communication across core counts for the SIFT
// stand-in. The paper's finding: communication stays a small slice
// (computation+overlap >= 90% in most configurations) thanks to
// non-blocking sends and one-sided accumulation.
func RunFig5(o Options) error {
	o.fill()
	header(o.Out, "Figure 5: search time breakdown (SIFT-like)")
	w, err := descriptorWorkload("sift", o, false)
	if err != nil {
		return err
	}
	params := paperParams(128)
	cores := []int{256, 512, 1024, 2048, 4096, 8192}
	if o.Quick {
		cores = []int{256, 512}
	}
	fmt.Fprintf(o.Out, "  %-7s %-12s %-11s %-11s %-9s\n", "cores", "total", "compute", "comm", "comm%")
	for _, p := range cores {
		cfg := core.DefaultConfig(p)
		cfg.K = o.K
		cfg.NProbe = 8
		cfg.Seed = o.Seed
		pre, _, err := prebuild(w.data.Clone(), p, cfg)
		if err != nil {
			return err
		}
		res, err := runPrebuilt(pre, w.queries, cfg)
		if err != nil {
			return err
		}
		// price tasks at 1B-point partitions, like Figure 3(b)
		dc, hp := paperTaskCost(1_000_000_000, p)
		for i, tasks := range res.PerWorkerQueries {
			res.PerWorkerDistComps[i] = tasks * dc
			res.PerWorkerHops[i] = tasks * hp
		}
		est := model(params, res, p, 128, o.K, w.queries.Len())
		// "MPI time" in the paper's breakdown = message handling + wire
		// time; routing and local search are computation.
		comm := est.Comm + est.Dispatch
		if comm > est.Total {
			comm = est.Total
		}
		compute := est.Total - comm
		fmt.Fprintf(o.Out, "  %-7d %-12s %-11s %-11s %6.1f%%\n",
			p, fmtDur(est.Total), fmtDur(compute), fmtDur(comm),
			100*float64(comm)/float64(est.Total))
	}
	fmt.Fprintln(o.Out, "paper: computation(+overlap) >= 90% of total in most configurations")
	return nil
}
