package exp

import (
	"fmt"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Filtered serving benchmark: the same SIFT stand-in workload tagged so
// that filter expressions select a deterministic fraction of the corpus,
// swept across selectivities 100%, 10% and 1%. Each tier measures two
// strategies against exact filtered ground truth (brute force restricted
// to matching IDs):
//
//   - pushdown: the predicate rides inside the graph traversal
//     (Engine.SearchFiltered), so exploration continues through
//     non-matching candidates and the collector only admits matches;
//   - post-filter: the unfiltered search runs as usual and non-matching
//     hits are dropped afterwards — the naive baseline, which at low
//     selectivity returns far fewer than k valid hits.
//
// The recall gap between the two at 1% selectivity is the headline
// number for the filtered-search subsystem.

// selTier is one selectivity step of the sweep. Tags are assigned by
// global ID so membership is deterministic and reproducible: every point
// carries t100, every 10th t10, every 100th t1.
type selTier struct {
	Selectivity float64
	Filter      string
	match       func(id int64) bool
}

var selTiers = []selTier{
	{1.00, "t100=1", func(int64) bool { return true }},
	{0.10, "t10=1", func(id int64) bool { return id%10 == 0 }},
	{0.01, "t1=1", func(id int64) bool { return id%100 == 0 }},
}

// tagsFor returns the tag map the benchmark attaches to a point; the
// filtered ground truth uses the same ID rules, so the two can never
// drift apart.
func tagsFor(id int64) map[string]string {
	t := map[string]string{"t100": "1"}
	if id%10 == 0 {
		t["t10"] = "1"
	}
	if id%100 == 0 {
		t["t1"] = "1"
	}
	return t
}

// ServingBenchFiltered builds one engine over the SIFT stand-in, tags
// every point, and sweeps the selectivity tiers. Results are keyed
// "filtered_1.00", "filtered_0.10", "filtered_0.01" — the entries
// annbench -json merges into BENCH_results.json next to the unfiltered
// serving variants.
func ServingBenchFiltered(o Options) (map[string]*ServingResult, error) {
	o.fill()
	w, err := descriptorWorkload("sift", o, false)
	if err != nil {
		return nil, err
	}
	e, buildSec, err := servingEngine(w, o)
	if err != nil {
		return nil, err
	}
	for i := 0; i < w.data.Len(); i++ {
		id := w.data.ID(i)
		e.SetTags(id, tagsFor(id))
	}
	header(o.Out, "Filtered serving benchmark (pushdown vs post-filter)")
	out := make(map[string]*ServingResult, len(selTiers))
	for _, tier := range selTiers {
		res, err := measureFiltered(e, w, o, tier, buildSec)
		if err != nil {
			return nil, fmt.Errorf("selectivity %.2f: %w", tier.Selectivity, err)
		}
		out[res.Variant] = res
		printFiltered(o, w, res)
	}
	return out, nil
}

// filteredTruth computes exact ground truth restricted to the points the
// tier's filter matches, by brute-force scan over the matching subset.
func filteredTruth(w *workload, tier selTier, k int) [][]int32 {
	idx := make([]int, 0, w.data.Len())
	for i := 0; i < w.data.Len(); i++ {
		if tier.match(w.data.ID(i)) {
			idx = append(idx, i)
		}
	}
	return bruteforce.GroundTruth(w.data.Select(idx), w.queries, k, vec.L2)
}

// measureFiltered runs one selectivity tier: pushdown recall/latency
// plus the post-filter baseline recall over the same queries and truth.
func measureFiltered(e *core.Engine, w *workload, o Options, tier selTier, buildSec float64) (*ServingResult, error) {
	truth := filteredTruth(w, tier, o.K)
	f, err := filter.Parse(tier.Filter)
	if err != nil {
		return nil, err
	}
	n := w.queries.Len()

	// Pushdown: the timed path.
	results := make([][]topk.Result, n)
	lats := make([]float64, n)
	run0 := time.Now()
	for i := 0; i < n; i++ {
		q0 := time.Now()
		rs, err := e.SearchFiltered(w.queries.At(i), o.K, f)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		lats[i] = float64(time.Since(q0).Microseconds())
		results[i] = rs
	}
	wall := time.Since(run0).Seconds()

	// Post-filter baseline: unfiltered search, then drop non-matching
	// hits. Untimed — only its recall matters here.
	post := make([][]topk.Result, n)
	for i := 0; i < n; i++ {
		rs, err := e.Search(w.queries.At(i), o.K)
		if err != nil {
			return nil, fmt.Errorf("baseline query %d: %w", i, err)
		}
		kept := rs[:0]
		for _, r := range rs {
			if tier.match(r.ID) {
				kept = append(kept, r)
			}
		}
		post[i] = kept
	}

	sum := metrics.Summarize(lats)
	return &ServingResult{
		Variant:          fmt.Sprintf("filtered_%.2f", tier.Selectivity),
		Dataset:          w.name,
		Points:           w.data.Len(),
		Queries:          n,
		Dim:              w.data.Dim,
		K:                o.K,
		Partitions:       e.Partitions(),
		NProbe:           2,
		Threads:          1,
		Seed:             o.Seed,
		BuildSec:         buildSec,
		Selectivity:      tier.Selectivity,
		Filter:           tier.Filter,
		Recall:           metrics.MeanRecall(results, truth),
		PostFilterRecall: metrics.MeanRecall(post, truth),
		QPS:              float64(n) / wall,
		P50Micros:        sum.P50,
		P90Micros:        sum.P90,
		P99Micros:        sum.P99,
		MeanMicros:       sum.Mean,
		MaxMicros:        sum.Max,
	}, nil
}

func printFiltered(o Options, w *workload, res *ServingResult) {
	fmt.Fprintf(o.Out, "%-14s %s: %d points dim %d, %d queries, k=%d, filter %q (%.0f%% match)\n",
		res.Variant, w.name, res.Points, res.Dim, res.Queries, o.K, res.Filter, res.Selectivity*100)
	fmt.Fprintf(o.Out, "%-14s pushdown recall %.4f vs post-filter %.4f | %.0f QPS | p50 %.0fµs p99 %.0fµs\n",
		res.Variant, res.Recall, res.PostFilterRecall, res.QPS, res.P50Micros, res.P99Micros)
}
