package exp

import (
	"bytes"
	"testing"
)

func TestServingBenchSmoke(t *testing.T) {
	var buf bytes.Buffer
	res, err := ServingBench(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall <= 0.5 || res.Recall > 1 {
		t.Errorf("recall = %v, want (0.5, 1]", res.Recall)
	}
	if res.QPS <= 0 {
		t.Errorf("QPS = %v", res.QPS)
	}
	if res.P50Micros <= 0 || res.P99Micros < res.P50Micros {
		t.Errorf("latency percentiles inconsistent: p50=%v p99=%v", res.P50Micros, res.P99Micros)
	}
	if res.Queries != 100 || res.Dataset != "sift" {
		t.Errorf("workload fields: %+v", res)
	}
	if buf.Len() == 0 {
		t.Error("no human-readable output")
	}
}
