package lexical

import (
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize asserts the tokenizer's contract on arbitrary input: no
// panic, no empty or over-long terms, lowercase letter/digit runes
// only, and stability under re-tokenization (the property crash
// recovery depends on — a rebuilt index must tokenize identically).
func FuzzTokenize(f *testing.F) {
	f.Add("Hello, World!")
	f.Add("")
	f.Add("foo_bar 123 ÅNGSTRÖM")
	f.Add(strings.Repeat("x", 200))
	f.Add("\xff\xfe broken utf8 \x80")
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("empty term from %q", s)
			}
			n := 0
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("non-alphanumeric rune %q in term %q", r, tok)
				}
				if r != unicode.ToLower(r) {
					t.Fatalf("non-lowercase rune %q in term %q", r, tok)
				}
				n++
			}
			if n > MaxTermRunes {
				t.Fatalf("term %q exceeds %d runes", tok, MaxTermRunes)
			}
		}
		again := Tokenize(strings.Join(toks, " "))
		if !reflect.DeepEqual(again, toks) {
			t.Fatalf("unstable: %q -> %v -> %v", s, toks, again)
		}
	})
}
