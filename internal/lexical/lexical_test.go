package lexical

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   \t\n", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"foo_bar-baz.qux", []string{"foo", "bar", "baz", "qux"}},
		{"ANN search 2026", []string{"ann", "search", "2026"}},
		{"Caffè Ünïcode Ω", []string{"caffè", "ünïcode", "ω"}},
		{"a1b2", []string{"a1b2"}},
		{"--!!--", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Tokenization must be a fixed point under re-tokenization and never
// emit empty terms — the durability layer depends on the tokenizer
// being a pure deterministic function of the text.
func TestTokenizeStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abcXYZ 0189,.;!帽子ångström-\t\n_ω")
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := rng.Intn(120)
		for i := 0; i < n; i++ {
			b.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		s := b.String()
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("empty term for input %q", s)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("non-lowercase term %q for input %q", tok, s)
			}
		}
		again := Tokenize(strings.Join(toks, " "))
		if !reflect.DeepEqual(again, toks) {
			t.Fatalf("unstable tokenization of %q: %v then %v", s, toks, again)
		}
	}
}

func TestTokenizeLongRunSplits(t *testing.T) {
	s := strings.Repeat("a", MaxTermRunes*2+3)
	toks := Tokenize(s)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	for i, tok := range toks[:2] {
		if len(tok) != MaxTermRunes {
			t.Fatalf("token %d has %d runes", i, len(tok))
		}
	}
	if len(toks[2]) != 3 {
		t.Fatalf("tail token has %d runes, want 3", len(toks[2]))
	}
}

func TestStopwords(t *testing.T) {
	x := NewIndex(Config{Stopwords: DefaultStopwords})
	x.Set(1, "the quick brown fox", nil)
	if got := x.Search("the", 10, nil); got != nil {
		t.Fatalf("stopword query returned %v", got)
	}
	if got := x.Search("the quick", 10, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("mixed query returned %v", got)
	}
}

func TestBM25RankingBasics(t *testing.T) {
	x := NewIndex(Config{})
	x.Set(1, "vector search engine", nil)
	x.Set(2, "vector vector vector quantization", nil)
	x.Set(3, "lexical inverted index", nil)
	x.Set(4, "search quality metrics", nil)

	got := x.Search("vector", 10, nil)
	if len(got) != 2 {
		t.Fatalf("got %d hits, want 2: %v", len(got), got)
	}
	// Doc 2 has tf=3 for "vector": higher BM25 despite longer doc.
	if got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("ranking %v, want [2 1]", got)
	}
	if got[0].Score <= got[1].Score {
		t.Fatalf("scores not descending: %v", got)
	}

	// A rarer term outranks a common one for a doc containing both.
	got = x.Search("lexical search", 10, nil)
	if len(got) == 0 || got[0].ID != 3 {
		t.Fatalf("rare-term ranking %v, want doc 3 first", got)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	x := NewIndex(Config{})
	x.Set(1, "alpha beta", []float32{1, 2})
	x.Set(1, "gamma delta", []float32{3, 4})
	if got := x.Search("alpha", 10, nil); got != nil {
		t.Fatalf("stale posting scored: %v", got)
	}
	if got := x.Search("gamma", 10, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("overwritten doc not found: %v", got)
	}
	if v, ok := x.Vector(1); !ok || !reflect.DeepEqual(v, []float32{3, 4}) {
		t.Fatalf("vector = %v, %v", v, ok)
	}
	if txt, ok := x.Text(1); !ok || txt != "gamma delta" {
		t.Fatalf("text = %q, %v", txt, ok)
	}
	x.Delete(1)
	if got := x.Search("gamma", 10, nil); got != nil {
		t.Fatalf("deleted doc scored: %v", got)
	}
	if x.Docs() != 0 {
		t.Fatalf("docs = %d, want 0", x.Docs())
	}
}

func TestAllowPredicate(t *testing.T) {
	x := NewIndex(Config{})
	for i := int64(0); i < 10; i++ {
		x.Set(i, "shared term", nil)
	}
	got := x.Search("shared", 20, func(id int64) bool { return id%2 == 0 })
	if len(got) != 5 {
		t.Fatalf("got %d hits, want 5", len(got))
	}
	for _, s := range got {
		if s.ID%2 != 0 {
			t.Fatalf("predicate leaked id %d", s.ID)
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	x := NewIndex(Config{})
	// Identical docs -> identical scores -> ascending-ID order.
	for _, id := range []int64{9, 3, 7, 1, 5} {
		x.Set(id, "same text here", nil)
	}
	got := x.Search("same text", 3, nil)
	want := []int64{1, 3, 5}
	for i, s := range got {
		if s.ID != want[i] {
			t.Fatalf("tie-break order %v, want %v", got, want)
		}
	}
}

// Restore must reproduce rankings and the canonical dump exactly, even
// when the source index accumulated stale postings from overwrites.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	x := NewIndex(Config{K1: 1.4, B: 0.6})
	rng := rand.New(rand.NewSource(42))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < 300; i++ {
		id := int64(rng.Intn(80))
		var b strings.Builder
		for j := 0; j < 1+rng.Intn(8); j++ {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		x.Set(id, b.String(), []float32{float32(id)})
	}
	for i := 0; i < 10; i++ {
		x.Delete(int64(rng.Intn(80)))
	}

	y := NewIndex(Config{K1: 1.4, B: 0.6})
	y.Restore(x.Snapshot())

	var bx, by bytes.Buffer
	if err := x.DumpPostings(&bx); err != nil {
		t.Fatal(err)
	}
	if err := y.DumpPostings(&by); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bx.Bytes(), by.Bytes()) {
		t.Fatalf("canonical dumps differ:\n%s\n---\n%s", bx.String(), by.String())
	}
	for _, q := range []string{"alpha", "beta gamma", "theta alpha zeta", "delta delta"} {
		a, b := x.Search(q, 10, nil), y.Search(q, 10, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %q: %v vs %v", q, a, b)
		}
	}
}

// Lock-free readers vs a writer under the race detector.
func TestConcurrentSearchAndSet(t *testing.T) {
	x := NewIndex(Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x.Search(fmt.Sprintf("word%d common", r), 5, nil)
				x.Stats()
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		x.Set(int64(i%100), fmt.Sprintf("word%d common filler%d", i%8, i), nil)
		if i%17 == 0 {
			x.Delete(int64(i % 100))
		}
	}
	close(stop)
	wg.Wait()
}

func TestStats(t *testing.T) {
	x := NewIndex(Config{})
	x.Set(1, "one two three", nil)
	x.Set(2, "one", nil)
	x.Search("one", 5, nil)
	st := x.Stats()
	if st.Docs != 2 || st.Terms != 3 || st.Searches != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgDocLen != 2 {
		t.Fatalf("avg doc len %v, want 2", st.AvgDocLen)
	}
	if st.PostingsBytes != 4*postingBytes {
		t.Fatalf("postings bytes %d, want %d", st.PostingsBytes, 4*postingBytes)
	}
	if st.K1 != DefaultK1 || st.B != DefaultB {
		t.Fatalf("params %+v", st)
	}
}
