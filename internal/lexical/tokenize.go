// Package lexical implements the keyword half of hybrid retrieval: a
// deterministic unicode tokenizer and an in-memory inverted index with
// BM25 scoring. The index follows the same concurrency discipline as
// the engine's tagStore — readers are lock-free over immutable
// published values, a single mutex serializes writers — so the hybrid
// search hot path can score while upserts stream in.
//
// Durability is owned by the store layer: raw document text rides a
// dedicated WAL record and a CRC-checked text-<seq>.json checkpoint
// sidecar, and the index is rebuilt by re-tokenizing on recovery. The
// tokenizer is therefore part of the durability contract: it must be a
// pure function of its input so a rebuilt index scores identically to
// the one that crashed.
package lexical

import (
	"strings"
	"unicode"
)

// MaxTermRunes bounds a single term. Runs of letters/digits longer than
// this are split deterministically, so adversarial inputs (one giant
// token) cannot create unbounded map keys.
const MaxTermRunes = 64

// Tokenize lowercases s and segments it into maximal runs of unicode
// letters and digits; everything else is a separator. It never emits an
// empty term, and it is stable under re-tokenization:
// Tokenize(strings.Join(Tokenize(s), " ")) == Tokenize(s).
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	n := 0
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
			n = 0
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			n++
			if n == MaxTermRunes {
				flush()
			}
			continue
		}
		flush()
	}
	flush()
	return out
}

// DefaultStopwords is the optional English stopword set collections can
// opt into. Deliberately tiny: stopword removal mostly trims postings
// for glue words; recall-critical terms must never appear here.
var DefaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
	"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
	"such", "that", "the", "their", "then", "there", "these", "they",
	"this", "to", "was", "will", "with",
}

// stopSet builds the filter set; empty input disables filtering.
func stopSet(words []string) map[string]struct{} {
	if len(words) == 0 {
		return nil
	}
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		for _, t := range Tokenize(w) {
			m[t] = struct{}{}
		}
	}
	return m
}
