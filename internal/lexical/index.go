package lexical

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// BM25 defaults (the standard Robertson/Walker settings).
const (
	DefaultK1 = 1.2
	DefaultB  = 0.75
)

// postingBytes is the in-memory footprint of one posting entry,
// reported under /varz so operators can see what the lexical index
// costs.
const postingBytes = 8 + 8 + 4 // id + version + tf

// Config parameterizes an Index. Zero values select the defaults
// (K1=1.2, B=0.75, no stopwords); B is clamped to [0,1].
type Config struct {
	K1        float64
	B         float64
	Stopwords []string
}

func (c Config) withDefaults() Config {
	if c.K1 <= 0 {
		c.K1 = DefaultK1
	}
	if c.B <= 0 {
		c.B = 0
	}
	if c.B > 1 {
		c.B = 1
	}
	if c.B == 0 {
		c.B = DefaultB
	}
	return c
}

// Doc is the durable unit the store persists per document: the raw text
// (the index is rebuilt by re-tokenizing it) and a copy of the vector it
// was upserted with, kept so fused candidates can be re-scored with
// exact float32 distances regardless of which approximate leg produced
// them.
type Doc struct {
	Text string    `json:"t"`
	Vec  []float32 `json:"v,omitempty"`
}

// Scored is one BM25 hit, higher score = better match.
type Scored struct {
	ID    int64
	Score float64
}

// posting records that a document contained a term tf times at a given
// document version. Postings are append-only; superseded versions stay
// in place and scoring skips any entry whose version no longer matches
// the document's current version.
type posting struct {
	id  int64
	ver uint64
	tf  uint32
}

// postingList is the immutable published view of one term's postings.
// Writers may append into spare capacity beyond the published length
// (readers never index past their header's len) and then publish a new
// header, so growth is amortized without copying the whole list.
type postingList struct {
	entries []posting
}

// docEntry is the current state of one document. Entries are immutable
// once published.
type docEntry struct {
	ver    uint64
	tokens int
	text   string
	vec    []float32
}

// Stats is a point-in-time summary for /varz.
type Stats struct {
	Docs          int     `json:"docs"`
	Terms         int     `json:"terms"`
	PostingsBytes int64   `json:"postings_bytes"`
	Searches      int64   `json:"searches"`
	AvgDocLen     float64 `json:"avg_doc_len"`
	K1            float64 `json:"k1"`
	B             float64 `json:"b"`
}

// Index is the BM25 inverted index. Reads (Search, Text, Vector, Stats)
// are lock-free; writes (Set, Delete, Restore) are serialized by an
// internal mutex.
type Index struct {
	cfg  Config
	stop map[string]struct{}

	mu  sync.Mutex // serializes writers
	ver uint64     // last assigned document version (mu-guarded)

	postings sync.Map // string -> *postingList
	docs     sync.Map // int64 -> *docEntry

	ndocs    atomic.Int64
	totalTok atomic.Int64
	terms    atomic.Int64
	pbytes   atomic.Int64
	searches atomic.Int64
}

// NewIndex returns an empty index with cfg's BM25 parameters and
// stopword set.
func NewIndex(cfg Config) *Index {
	cfg = cfg.withDefaults()
	return &Index{cfg: cfg, stop: stopSet(cfg.Stopwords)}
}

// Params returns the effective BM25 parameters.
func (x *Index) Params() (k1, b float64) { return x.cfg.K1, x.cfg.B }

// tokenize applies the index's stopword filter on top of Tokenize.
func (x *Index) tokenize(s string) []string {
	toks := Tokenize(s)
	if x.stop == nil {
		return toks
	}
	kept := toks[:0]
	for _, t := range toks {
		if _, drop := x.stop[t]; !drop {
			kept = append(kept, t)
		}
	}
	return kept
}

// Set indexes text under id, replacing any previous document. The
// vector is copied and retained for exact re-scoring of fused results.
func (x *Index) Set(id int64, text string, vec []float32) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.setLocked(id, text, vec)
}

func (x *Index) setLocked(id int64, text string, vec []float32) {
	toks := x.tokenize(text)
	x.ver++
	ver := x.ver

	// Term frequencies in first-occurrence order so postings append
	// deterministically for a given document text.
	tf := make(map[string]uint32, len(toks))
	order := make([]string, 0, len(toks))
	for _, t := range toks {
		if tf[t] == 0 {
			order = append(order, t)
		}
		tf[t]++
	}
	for _, t := range order {
		x.appendPosting(t, posting{id: id, ver: ver, tf: tf[t]})
	}

	var old *docEntry
	if v, ok := x.docs.Load(id); ok {
		old = v.(*docEntry)
	}
	vcp := append([]float32(nil), vec...)
	x.docs.Store(id, &docEntry{ver: ver, tokens: len(toks), text: text, vec: vcp})
	if old == nil {
		x.ndocs.Add(1)
	} else {
		x.totalTok.Add(-int64(old.tokens))
	}
	x.totalTok.Add(int64(len(toks)))
}

// appendPosting publishes term's list with p appended. Must hold mu.
func (x *Index) appendPosting(term string, p posting) {
	var entries []posting
	if v, ok := x.postings.Load(term); ok {
		entries = v.(*postingList).entries
	} else {
		x.terms.Add(1)
	}
	// append may write into spare capacity past the published length;
	// concurrent readers hold the old header and never index that far.
	entries = append(entries, p)
	x.postings.Store(term, &postingList{entries: entries})
	x.pbytes.Add(postingBytes)
}

// Delete removes id's document. Its postings stay behind as stale
// versions that scoring skips.
func (x *Index) Delete(id int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if v, ok := x.docs.Load(id); ok {
		e := v.(*docEntry)
		x.docs.Delete(id)
		x.ndocs.Add(-1)
		x.totalTok.Add(-int64(e.tokens))
	}
}

// Text returns id's stored raw text.
func (x *Index) Text(id int64) (string, bool) {
	v, ok := x.docs.Load(id)
	if !ok {
		return "", false
	}
	return v.(*docEntry).text, true
}

// Vector returns the vector id was last upserted with. The slice is
// shared and must not be mutated.
func (x *Index) Vector(id int64) ([]float32, bool) {
	v, ok := x.docs.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*docEntry).vec, true
}

// Docs returns the number of live documents.
func (x *Index) Docs() int { return int(x.ndocs.Load()) }

// Stats summarizes the index for /varz.
func (x *Index) Stats() Stats {
	n := x.ndocs.Load()
	avg := 0.0
	if n > 0 {
		avg = float64(x.totalTok.Load()) / float64(n)
	}
	return Stats{
		Docs:          int(n),
		Terms:         int(x.terms.Load()),
		PostingsBytes: x.pbytes.Load(),
		Searches:      x.searches.Load(),
		AvgDocLen:     avg,
		K1:            x.cfg.K1,
		B:             x.cfg.B,
	}
}

// Search scores the live corpus with BM25 and returns the top k,
// best-first. allow (optional) restricts the candidate set — hybrid
// search passes tombstone + filter predicates through it, and document
// frequencies are computed over the allowed live set so scores describe
// the corpus actually being searched. Ties break on ascending ID, and
// score accumulation order is fixed (query-term order), so rankings are
// bit-reproducible for equal index contents — in particular before and
// after crash recovery.
func (x *Index) Search(query string, k int, allow func(int64) bool) []Scored {
	x.searches.Add(1)
	if k <= 0 {
		return nil
	}
	toks := x.tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(toks))
	terms := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	n := float64(x.ndocs.Load())
	if n == 0 {
		return nil
	}
	avgdl := float64(x.totalTok.Load()) / n
	if avgdl <= 0 {
		avgdl = 1
	}

	type hit struct {
		id int64
		tf uint32
		dl float64
	}
	scores := make(map[int64]float64)
	var hits []hit
	for _, t := range terms {
		v, ok := x.postings.Load(t)
		if !ok {
			continue
		}
		entries := v.(*postingList).entries
		hits = hits[:0]
		for i := range entries {
			p := entries[i]
			dv, ok := x.docs.Load(p.id)
			if !ok {
				continue
			}
			d := dv.(*docEntry)
			if d.ver != p.ver {
				continue // superseded by a newer Set
			}
			if allow != nil && !allow(p.id) {
				continue
			}
			hits = append(hits, hit{id: p.id, tf: p.tf, dl: float64(d.tokens)})
		}
		df := float64(len(hits))
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, h := range hits {
			tf := float64(h.tf)
			norm := tf * (x.cfg.K1 + 1) / (tf + x.cfg.K1*(1-x.cfg.B+x.cfg.B*h.dl/avgdl))
			scores[h.id] += idf * norm
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Snapshot returns a point-in-time view of every live document; the
// durability layer persists it alongside each engine snapshot. Vec
// slices are shared and must not be mutated.
func (x *Index) Snapshot() map[int64]Doc {
	out := make(map[int64]Doc, x.Docs())
	x.docs.Range(func(k, v any) bool {
		e := v.(*docEntry)
		out[k.(int64)] = Doc{Text: e.text, Vec: e.vec}
		return true
	})
	return out
}

// Restore replaces the whole index with docs — the recovery half of
// Snapshot, called after LoadEngine before WAL tail replay. Documents
// are re-tokenized in ascending ID order, so two restores of equal
// contents produce identical indexes. The maps are cleared in place
// (the Index pointer is never reassigned), matching the tagStore
// recovery discipline.
func (x *Index) Restore(docs map[int64]Doc) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.docs.Range(func(k, _ any) bool {
		x.docs.Delete(k)
		return true
	})
	x.postings.Range(func(k, _ any) bool {
		x.postings.Delete(k)
		return true
	})
	x.ver = 0
	x.ndocs.Store(0)
	x.totalTok.Store(0)
	x.terms.Store(0)
	x.pbytes.Store(0)
	ids := make([]int64, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := docs[id]
		x.setLocked(id, d.Text, d.Vec)
	}
}

// DumpPostings writes the live index in a canonical text form: a header
// with corpus totals, then one line per live posting sorted by (term,
// ID). Stale entries are excluded, so any two indexes holding the same
// live documents dump identical bytes regardless of construction
// history — full WAL replay, sidecar restore, or live writes. The
// crash-recovery tests diff this against an oracle.
func (x *Index) DumpPostings(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "docs=%d tokens=%d k1=%g b=%g\n", x.ndocs.Load(), x.totalTok.Load(), x.cfg.K1, x.cfg.B)
	var terms []string
	x.postings.Range(func(k, _ any) bool {
		terms = append(terms, k.(string))
		return true
	})
	sort.Strings(terms)
	type row struct {
		id int64
		tf uint32
		dl int
	}
	for _, t := range terms {
		v, ok := x.postings.Load(t)
		if !ok {
			continue
		}
		entries := v.(*postingList).entries
		var rows []row
		for i := range entries {
			p := entries[i]
			dv, ok := x.docs.Load(p.id)
			if !ok {
				continue
			}
			d := dv.(*docEntry)
			if d.ver != p.ver {
				continue
			}
			rows = append(rows, row{id: p.id, tf: p.tf, dl: d.tokens})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
		for _, r := range rows {
			fmt.Fprintf(bw, "%s\t%d\t%d\t%d\n", t, r.id, r.tf, r.dl)
		}
	}
	return bw.Flush()
}
