// Package ivfpq implements an inverted-file index with product
// quantization — the compressed single-node baseline family the paper
// positions itself against (references [13], [14]; discussed with
// Figure 6: "Compression methods, even though capable of building an
// index for billion-scale datasets that can be fit into the memory of a
// single node and perform search faster, cannot achieve near perfect
// recalls").
//
// The index follows the classic IVFADC design (Jégou et al., "Product
// quantization for nearest neighbor search", TPAMI 2011):
//
//   - a coarse k-means quantizer assigns each vector to one of nlist
//     inverted lists;
//   - residuals (vector minus its coarse centroid) are product-quantized:
//     the dimension is split into M subspaces, each encoded by one byte
//     against a 256-entry subspace codebook;
//   - queries scan the nprobe closest lists using asymmetric distance
//     computation (ADC): a per-query lookup table of subspace distances
//     makes scoring one code M table lookups.
//
// The compressed experiment compares its recall ceiling against the
// paper's uncompressed engine.
package ivfpq

import (
	"math/rand"

	"repro/internal/vec"
)

// kmeans runs Lloyd's algorithm and returns k centroids over ds rows.
// Empty clusters are reseeded from the farthest points of the largest
// cluster, keeping exactly k non-degenerate centroids.
func kmeans(ds *vec.Dataset, k, iters int, rng *rand.Rand) *vec.Dataset {
	n, dim := ds.Len(), ds.Dim
	if k > n {
		k = n
	}
	cents := vec.NewDataset(dim, k)
	for _, i := range rng.Perm(n)[:k] {
		cents.Append(ds.At(i), int64(cents.Len()))
	}
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dim)
	for it := 0; it < iters; it++ {
		changed := 0
		for i := 0; i < n; i++ {
			best, bestD := 0, float32(0)
			v := ds.At(i)
			for c := 0; c < k; c++ {
				d := vec.SquaredL2Distance(v, cents.At(c))
				if c == 0 || d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			v := ds.At(i)
			for j := 0; j < dim; j++ {
				sums[c*dim+j] += float64(v[j])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// reseed from a random point
				copy(cents.At(c), ds.At(rng.Intn(n)))
				continue
			}
			cc := cents.At(c)
			for j := 0; j < dim; j++ {
				cc[j] = float32(sums[c*dim+j] / float64(counts[c]))
			}
		}
		if changed == 0 {
			break
		}
	}
	return cents
}

// nearest returns the index of the centroid closest to v.
func nearest(cents *vec.Dataset, v []float32) int {
	best, bestD := 0, float32(0)
	for c := 0; c < cents.Len(); c++ {
		d := vec.SquaredL2Distance(v, cents.At(c))
		if c == 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
