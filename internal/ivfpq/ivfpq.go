package ivfpq

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Config sizes the IVFADC index.
type Config struct {
	// NList is the number of coarse inverted lists (default sqrt(n)-ish,
	// min 16).
	NList int
	// M is the number of PQ subquantizers; must divide the dimension
	// (default: largest divisor of dim that is <= dim/4 and <= 64).
	M int
	// Ks is the per-subspace codebook size (default 256, one byte).
	Ks int
	// TrainIters bounds the k-means iterations (default 12).
	TrainIters int
	// NProbe is the default number of lists scanned per query (default 8).
	NProbe int
	Seed   int64
}

func (c *Config) fill(n, dim int) error {
	if c.NList <= 0 {
		c.NList = 16
		for c.NList*c.NList < n && c.NList < 1024 {
			c.NList *= 2
		}
	}
	if c.M == 0 {
		for _, m := range []int{64, 48, 32, 24, 16, 12, 8, 6, 4, 3, 2, 1} {
			if m <= dim && dim%m == 0 {
				c.M = m
				break
			}
		}
	}
	if dim%c.M != 0 {
		return fmt.Errorf("ivfpq: M=%d does not divide dim=%d", c.M, dim)
	}
	if c.Ks <= 0 {
		c.Ks = 256
	}
	if c.Ks > 256 {
		return fmt.Errorf("ivfpq: Ks=%d exceeds one byte", c.Ks)
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 12
	}
	if c.NProbe <= 0 {
		c.NProbe = 8
	}
	return nil
}

// Index is a trained IVFADC index.
type Index struct {
	cfg  Config
	dim  int
	dsub int // dim / M

	coarse    *vec.Dataset   // NList x dim
	codebooks []*vec.Dataset // M books, each Ks x dsub (residual space)

	lists [][]entry // per coarse list
}

type entry struct {
	id   int64
	code []byte // M bytes
}

// Stats reports the work of one search.
type Stats struct {
	Lists     int   // inverted lists scanned
	Codes     int64 // PQ codes scored
	DistComps int64 // full-precision distance computations (training-free here)
}

// Build trains the quantizers on ds and encodes every row.
func Build(ds *vec.Dataset, cfg Config) (*Index, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("ivfpq: empty dataset")
	}
	if err := cfg.fill(ds.Len(), ds.Dim); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	idx := &Index{cfg: cfg, dim: ds.Dim, dsub: ds.Dim / cfg.M}

	// coarse quantizer
	idx.coarse = vec.KMeans(ds, cfg.NList, cfg.TrainIters, rng)
	cfg.NList = idx.coarse.Len()
	idx.cfg.NList = cfg.NList

	// residuals for PQ training
	assign := make([]int, ds.Len())
	residuals := vec.NewDataset(ds.Dim, ds.Len())
	r := make([]float32, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		assign[i] = vec.NearestCentroid(idx.coarse, ds.At(i))
		cent := idx.coarse.At(assign[i])
		v := ds.At(i)
		for j := range r {
			r[j] = v[j] - cent[j]
		}
		residuals.Append(r, ds.ID(i))
	}

	// per-subspace codebooks
	idx.codebooks = make([]*vec.Dataset, cfg.M)
	for m := 0; m < cfg.M; m++ {
		sub := vec.NewDataset(idx.dsub, residuals.Len())
		for i := 0; i < residuals.Len(); i++ {
			row := residuals.At(i)
			sub.Append(row[m*idx.dsub:(m+1)*idx.dsub], int64(i))
		}
		ks := cfg.Ks
		if ks > sub.Len() {
			ks = sub.Len()
		}
		idx.codebooks[m] = vec.KMeans(sub, ks, cfg.TrainIters, rng)
	}

	// encode
	idx.lists = make([][]entry, cfg.NList)
	for i := 0; i < residuals.Len(); i++ {
		row := residuals.At(i)
		code := make([]byte, cfg.M)
		for m := 0; m < cfg.M; m++ {
			code[m] = byte(vec.NearestCentroid(idx.codebooks[m], row[m*idx.dsub:(m+1)*idx.dsub]))
		}
		li := assign[i]
		idx.lists[li] = append(idx.lists[li], entry{id: ds.ID(i), code: code})
	}
	return idx, nil
}

// Len returns the number of encoded vectors.
func (x *Index) Len() int {
	n := 0
	for _, l := range x.lists {
		n += len(l)
	}
	return n
}

// MemoryBytes estimates the index payload: codes + centroids.
func (x *Index) MemoryBytes() int64 {
	var b int64
	for _, l := range x.lists {
		b += int64(len(l)) * int64(8+x.cfg.M)
	}
	b += x.coarse.Bytes()
	for _, cb := range x.codebooks {
		b += cb.Bytes()
	}
	return b
}

// Search returns the approximate k nearest neighbors of q scanning the
// default NProbe lists.
func (x *Index) Search(q []float32, k int) ([]topk.Result, Stats, error) {
	return x.SearchNProbe(q, k, x.cfg.NProbe)
}

// SearchNProbe scans the nprobe closest inverted lists with ADC.
func (x *Index) SearchNProbe(q []float32, k, nprobe int) ([]topk.Result, Stats, error) {
	if len(q) != x.dim {
		return nil, Stats{}, fmt.Errorf("ivfpq: query dim %d, index dim %d", len(q), x.dim)
	}
	if nprobe <= 0 {
		nprobe = x.cfg.NProbe
	}
	if nprobe > x.cfg.NList {
		nprobe = x.cfg.NList
	}
	var st Stats

	// rank coarse centroids
	type cd struct {
		c int
		d float32
	}
	cds := make([]cd, x.coarse.Len())
	for c := 0; c < x.coarse.Len(); c++ {
		cds[c] = cd{c, vec.SquaredL2Distance(q, x.coarse.At(c))}
	}
	st.DistComps += int64(x.coarse.Len())
	sort.Slice(cds, func(i, j int) bool { return cds[i].d < cds[j].d })

	col := topk.New(k)
	table := make([]float32, x.cfg.M*x.cfg.Ks)
	res := make([]float32, x.dim)
	for pi := 0; pi < nprobe; pi++ {
		li := cds[pi].c
		if len(x.lists[li]) == 0 {
			continue
		}
		st.Lists++
		// residual of q against this centroid, then the ADC table
		cent := x.coarse.At(li)
		for j := range res {
			res[j] = q[j] - cent[j]
		}
		for m := 0; m < x.cfg.M; m++ {
			sub := res[m*x.dsub : (m+1)*x.dsub]
			book := x.codebooks[m]
			for kk := 0; kk < book.Len(); kk++ {
				table[m*x.cfg.Ks+kk] = vec.SquaredL2Distance(sub, book.At(kk))
			}
			st.DistComps += int64(book.Len())
		}
		for _, e := range x.lists[li] {
			var d float32
			for m, c := range e.code {
				d += table[m*x.cfg.Ks+int(c)]
			}
			col.Push(e.id, d)
			st.Codes++
		}
	}
	rs := col.Results()
	for i := range rs {
		rs[i].Dist = sqrt32(rs[i].Dist)
	}
	return rs, st, nil
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// ReconstructAll decodes every stored code back into its approximate
// vector (coarse centroid + subspace codewords). GRIP-style two-layer
// indexes build their in-memory graph over these reconstructions.
func (x *Index) ReconstructAll() (*vec.Dataset, error) {
	out := vec.NewDataset(x.dim, x.Len())
	v := make([]float32, x.dim)
	for li, list := range x.lists {
		cent := x.coarse.At(li)
		for _, e := range list {
			copy(v, cent)
			for m, c := range e.code {
				book := x.codebooks[m]
				if int(c) >= book.Len() {
					return nil, fmt.Errorf("ivfpq: corrupt code %d in subspace %d", c, m)
				}
				cw := book.At(int(c))
				for j, w := range cw {
					v[m*x.dsub+j] += w
				}
			}
			out.Append(v, e.id)
		}
	}
	return out, nil
}
