package ivfpq

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/vec"
)

func workload(t testing.TB, n int) (*vec.Dataset, *vec.Dataset, [][]int32) {
	t.Helper()
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: n, Dim: 32, Clusters: 10, Outliers: n / 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.PerturbedQueries(g.Data, 50, 0.1, 2)
	truth := bruteforce.GroundTruth(g.Data, qs, 10, vec.L2)
	return g.Data, qs, truth
}

func TestBuildShape(t *testing.T) {
	ds, _, _ := workload(t, 3000)
	x, err := Build(ds, Config{NList: 32, M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != ds.Len() {
		t.Fatalf("encoded %d of %d", x.Len(), ds.Len())
	}
	if x.MemoryBytes() <= 0 {
		t.Error("no memory estimate")
	}
	// compression: codes must be much smaller than the raw vectors
	raw := ds.Bytes()
	if x.MemoryBytes() > raw/2 {
		t.Errorf("index %d bytes not compressed vs raw %d", x.MemoryBytes(), raw)
	}
}

func TestConfigErrors(t *testing.T) {
	ds, _, _ := workload(t, 500)
	if _, err := Build(ds, Config{M: 7}); err == nil {
		t.Error("want error: M does not divide dim")
	}
	if _, err := Build(ds, Config{Ks: 999}); err == nil {
		t.Error("want error: Ks too large")
	}
	if _, err := Build(vec.NewDataset(4, 0), Config{}); err == nil {
		t.Error("want error: empty dataset")
	}
}

func TestRecallImprovesWithNProbe(t *testing.T) {
	ds, qs, truth := workload(t, 5000)
	x, err := Build(ds, Config{NList: 64, M: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(nprobe int) float64 {
		var acc float64
		for i := 0; i < qs.Len(); i++ {
			got, _, err := x.SearchNProbe(qs.At(i), 10, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			acc += metrics.Recall(got, truth[i])
		}
		return acc / float64(qs.Len())
	}
	r1 := recall(1)
	r8 := recall(8)
	r64 := recall(64)
	if r8 < r1 {
		t.Errorf("recall should improve with nprobe: %v -> %v", r1, r8)
	}
	if r64 < 0.5 {
		t.Errorf("full-probe recall %v too low", r64)
	}
	// the paper's point: quantization caps recall below near-perfect
	if r64 > 0.995 {
		t.Logf("note: recall ceiling unexpectedly high (%v) on this easy workload", r64)
	}
}

func TestSearchErrors(t *testing.T) {
	ds, _, _ := workload(t, 400)
	x, _ := Build(ds, Config{NList: 16, M: 8, Seed: 3})
	if _, _, err := x.Search(make([]float32, 3), 5); err == nil {
		t.Error("want dim error")
	}
	// nprobe clamping
	if _, _, err := x.SearchNProbe(ds.At(0), 5, 10_000); err != nil {
		t.Errorf("clamped nprobe should work: %v", err)
	}
	if _, _, err := x.SearchNProbe(ds.At(0), 5, 0); err != nil {
		t.Errorf("default nprobe should work: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	ds, qs, _ := workload(t, 1000)
	x, _ := Build(ds, Config{NList: 16, M: 8, Seed: 4})
	_, st, err := x.SearchNProbe(qs.At(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lists == 0 || st.Codes == 0 || st.DistComps == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestReconstructAll(t *testing.T) {
	ds, _, _ := workload(t, 1500)
	x, err := Build(ds, Config{NList: 16, M: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := x.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	if recon.Len() != ds.Len() || recon.Dim != ds.Dim {
		t.Fatalf("shape %d x %d", recon.Len(), recon.Dim)
	}
	// reconstruction error must be far below the data spread
	byID := make(map[int64][]float32, recon.Len())
	for i := 0; i < recon.Len(); i++ {
		byID[recon.ID(i)] = recon.At(i)
	}
	var reconErr, spread float64
	for i := 0; i < ds.Len(); i++ {
		r, ok := byID[ds.ID(i)]
		if !ok {
			t.Fatalf("row %d missing from reconstruction", i)
		}
		reconErr += float64(vec.L2Distance(ds.At(i), r))
		if i > 0 {
			spread += float64(vec.L2Distance(ds.At(i), ds.At(i-1)))
		}
	}
	if reconErr/float64(ds.Len()) > 0.5*spread/float64(ds.Len()-1) {
		t.Errorf("reconstruction error %.2f too large vs spread %.2f",
			reconErr/float64(ds.Len()), spread/float64(ds.Len()-1))
	}
}
