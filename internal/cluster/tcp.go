package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// TCP transport: each rank is an OS process reachable at a known
// address. This is the deployment path of cmd/annmaster and
// cmd/annworker — the same Comm API (point-to-point, collectives,
// windows in message-emulation mode) over real sockets, so the engine
// code is byte-for-byte identical in-process and across machines.
//
// Wire format per envelope, little-endian:
//
//	u64 commID | u32 from | i32 tag | u32 payloadLen | payload
//
// Connections are full-mesh and lazy: rank i dials rank j on first send
// and keeps the connection; every rank runs an accept loop feeding its
// mailbox. Per-pair FIFO holds because each ordered pair uses one
// stream.
//
// Failure detection: every connection (dialed and accepted) runs a read
// loop, and a heartbeat goroutine writes empty probe frames (commID 0,
// tag tagHeartbeat) on all of them at HeartbeatInterval. A peer is
// declared dead on read-loop EOF/error, on a heartbeat-write error, or
// when nothing (heartbeat or data) has been seen from it within
// HeartbeatTimeout. Death marks the rank down in the mailbox, failing
// pending matching receives with ErrPeerDown, and makes later sends to
// it fail fast.

// TCPOptions tunes a TCP rank beyond the defaults.
type TCPOptions struct {
	// DialTimeout bounds the total dial-with-retry on first send to a
	// peer. Default 30s.
	DialTimeout time.Duration
	// HeartbeatInterval is the probe period. 0 means the 1s default; a
	// negative value disables heartbeats (liveness then relies on
	// read-loop EOF only).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the staleness bound: a peer we have a
	// connection to, but have heard nothing from for this long, is
	// declared dead. 0 means the 10s default.
	HeartbeatTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	return o
}

// TCPNode is one rank of a TCP world.
type TCPNode struct {
	rank  int
	addrs []string
	ln    net.Listener
	mbox  *mailbox
	st    Stats
	opts  TCPOptions

	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []*tcpConn
	lastSeen map[int]time.Time
	downs    map[int]bool
	done     chan struct{}
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// JoinTCP starts rank's listener and returns the node and its world
// communicator. addrs lists every rank's listen address in rank order;
// peers may come up in any order (dials retry until dialTimeout).
func JoinTCP(rank int, addrs []string, dialTimeout time.Duration) (*TCPNode, *Comm, error) {
	return JoinTCPOpts(rank, addrs, TCPOptions{DialTimeout: dialTimeout})
}

// JoinTCPOpts is JoinTCP with full control over the liveness knobs.
func JoinTCPOpts(rank int, addrs []string, opts TCPOptions) (*TCPNode, *Comm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, nil, fmt.Errorf("cluster: rank %d out of range for %d addrs", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	n := &TCPNode{
		rank:     rank,
		addrs:    addrs,
		ln:       ln,
		conns:    make(map[int]*tcpConn),
		lastSeen: make(map[int]time.Time),
		downs:    make(map[int]bool),
		done:     make(chan struct{}),
		opts:     opts.withDefaults(),
	}
	n.mbox = newMailbox(&n.st)
	n.wg.Add(1)
	go n.acceptLoop()
	if n.opts.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	group := make([]int, len(addrs))
	for i := range group {
		group[i] = i
	}
	comm := &Comm{t: n, id: 1, rank: rank, group: group}
	return n, comm, nil
}

// Addr returns the actual listen address (useful with ":0" ports).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	backoff := 5 * time.Millisecond
	fails := 0
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Persistent accept failure (fd exhaustion and the like):
			// back off instead of busy-spinning, and give up after
			// enough consecutive failures rather than burning a core
			// forever on a listener that will never recover.
			fails++
			if fails >= 100 {
				log.Printf("cluster: rank %d accept failing persistently, stopping listener: %v", n.rank, err)
				return
			}
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		fails = 0
		backoff = 5 * time.Millisecond
		tc := &tcpConn{c: c}
		n.mu.Lock()
		n.accepted = append(n.accepted, tc)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c, -1)
	}
}

// heartbeatFrame builds the 20-byte liveness probe: commID 0 never
// matches a real communicator, so probes are filtered in readLoop and
// never enter a mailbox.
func (n *TCPNode) heartbeatFrame() []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(n.rank))
	hbTag := int32(tagHeartbeat)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(hbTag))
	return buf
}

func (n *TCPNode) heartbeatLoop() {
	defer n.wg.Done()
	hb := n.heartbeatFrame()
	tick := time.NewTicker(n.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case now := <-tick.C:
			// Snapshot under the lock, write outside it.
			n.mu.Lock()
			type target struct {
				tc   *tcpConn
				peer int // -1 for accepted conns (peer unknown here)
			}
			var targets []target
			for p, tc := range n.conns {
				targets = append(targets, target{tc, p})
			}
			for _, tc := range n.accepted {
				targets = append(targets, target{tc, -1})
			}
			var stale []int
			for p, t := range n.lastSeen {
				if !n.downs[p] && now.Sub(t) > n.opts.HeartbeatTimeout {
					stale = append(stale, p)
				}
			}
			n.mu.Unlock()
			for _, p := range stale {
				n.peerDown(p)
			}
			for _, t := range targets {
				t.tc.mu.Lock()
				t.tc.c.SetWriteDeadline(now.Add(n.opts.HeartbeatTimeout))
				_, err := t.tc.c.Write(hb)
				t.tc.c.SetWriteDeadline(time.Time{})
				t.tc.mu.Unlock()
				if err != nil && t.peer >= 0 {
					select {
					case <-n.done:
					default:
						n.peerDown(t.peer)
					}
				}
			}
		}
	}
}

// peerDown records that a peer rank died: once per rank it bumps the
// counter and marks the rank down in the mailbox, failing pending
// matching receives with ErrPeerDown.
func (n *TCPNode) peerDown(r int) {
	if r < 0 || r == n.rank {
		return
	}
	n.mu.Lock()
	if n.downs[r] {
		n.mu.Unlock()
		return
	}
	n.downs[r] = true
	n.mu.Unlock()
	n.st.peerDowns.Add(1)
	n.mbox.markDown(int32(r))
}

// readLoop drains one connection into the mailbox. peerHint is the rank
// this conn reaches if known (dialed conns), else -1; either way the
// peer is identified from the From field of the frames it sends, so an
// EOF can be attributed and the peer declared dead.
func (n *TCPNode) readLoop(c net.Conn, peerHint int) {
	defer n.wg.Done()
	defer c.Close()
	peer := peerHint
	note := func() {
		if peer >= 0 && peer < len(n.addrs) {
			n.mu.Lock()
			n.lastSeen[peer] = time.Now()
			n.mu.Unlock()
		}
	}
	note()
	hdr := make([]byte, 20)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			select {
			case <-n.done:
			default:
				n.peerDown(peer)
			}
			return
		}
		e := Envelope{
			Comm: binary.LittleEndian.Uint64(hdr[0:8]),
			From: int32(binary.LittleEndian.Uint32(hdr[8:12])),
			Tag:  int32(binary.LittleEndian.Uint32(hdr[12:16])),
		}
		ln := binary.LittleEndian.Uint32(hdr[16:20])
		if ln > 1<<30 {
			// Implausible frame length: the stream is corrupt and no
			// frame boundary can be recovered, so the connection must
			// drop — but record why instead of dying silently.
			n.st.badFrames.Add(1)
			log.Printf("cluster: rank %d dropping connection from rank %d: implausible frame length %d (tag %d)",
				n.rank, e.From, ln, e.Tag)
			select {
			case <-n.done:
			default:
				n.peerDown(peer)
			}
			return
		}
		if int(e.From) >= 0 && int(e.From) < len(n.addrs) {
			peer = int(e.From)
		}
		note()
		if e.Comm == 0 && e.Tag == tagHeartbeat {
			continue // liveness probe only; never enters the mailbox
		}
		if ln > 0 {
			e.Payload = make([]byte, ln)
			if _, err := io.ReadFull(c, e.Payload); err != nil {
				select {
				case <-n.done:
				default:
					n.peerDown(peer)
				}
				return
			}
			note()
		}
		n.mbox.put(e)
	}
}

var _ transport = (*TCPNode)(nil)

func (n *TCPNode) send(to int, e Envelope) error {
	if to == n.rank {
		n.mbox.put(e)
		return nil
	}
	if n.mbox.isDown(int32(to)) {
		return &PeerDownError{Rank: to}
	}
	tc, err := n.conn(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 20+len(e.Payload))
	binary.LittleEndian.PutUint64(buf[0:8], e.Comm)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(e.From))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(e.Tag))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(e.Payload)))
	copy(buf[20:], e.Payload)
	tc.mu.Lock()
	_, err = tc.c.Write(buf)
	tc.mu.Unlock()
	if err != nil {
		select {
		case <-n.done:
			return err
		default:
		}
		n.peerDown(to)
		return &PeerDownError{Rank: to}
	}
	return nil
}

func (n *TCPNode) conn(to int) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	// Dial outside the lock; last writer wins benignly.
	deadline := time.Now().Add(n.opts.DialTimeout)
	var raw net.Conn
	var err error
	for {
		raw, err = net.DialTimeout("tcp", n.addrs[to], 2*time.Second)
		if err == nil {
			break
		}
		if n.mbox.isDown(int32(to)) {
			return nil, &PeerDownError{Rank: to}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: rank %d cannot reach rank %d at %s: %w",
				n.rank, to, n.addrs[to], err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if t, ok := raw.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		raw.Close()
		return c, nil
	}
	c := &tcpConn{c: raw}
	n.conns[to] = c
	n.lastSeen[to] = time.Now()
	n.mu.Unlock()
	// Dialed connections are read too: the peer heartbeats back on
	// them, and an EOF here is the fastest death signal we get.
	n.wg.Add(1)
	go n.readLoop(raw, to)
	return c, nil
}

func (n *TCPNode) box() *mailbox       { return n.mbox }
func (n *TCPNode) registry() *registry { return nil } // windows emulate via messages
func (n *TCPNode) stats() *Stats       { return &n.st }

// Stats exposes this process's traffic counters.
func (n *TCPNode) Stats() *Stats { return &n.st }

// Close shuts the node down: stops accepting, closes connections, and
// unblocks local receivers with ErrClosed.
func (n *TCPNode) Close() error {
	close(n.done)
	err := n.ln.Close()
	n.mu.Lock()
	for _, c := range n.conns {
		c.c.Close()
	}
	for _, c := range n.accepted {
		c.c.Close()
	}
	n.mu.Unlock()
	n.mbox.close()
	n.wg.Wait()
	return err
}
