package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP transport: each rank is an OS process reachable at a known
// address. This is the deployment path of cmd/annmaster and
// cmd/annworker — the same Comm API (point-to-point, collectives,
// windows in message-emulation mode) over real sockets, so the engine
// code is byte-for-byte identical in-process and across machines.
//
// Wire format per envelope, little-endian:
//
//	u64 commID | u32 from | i32 tag | u32 payloadLen | payload
//
// Connections are full-mesh and lazy: rank i dials rank j on first send
// and keeps the connection; every rank runs an accept loop feeding its
// mailbox. Per-pair FIFO holds because each ordered pair uses one
// stream.

// TCPNode is one rank of a TCP world.
type TCPNode struct {
	rank  int
	addrs []string
	ln    net.Listener
	mbox  *mailbox
	st    Stats

	dialTimeout time.Duration

	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []net.Conn
	done     chan struct{}
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// JoinTCP starts rank's listener and returns the node and its world
// communicator. addrs lists every rank's listen address in rank order;
// peers may come up in any order (dials retry until dialTimeout).
func JoinTCP(rank int, addrs []string, dialTimeout time.Duration) (*TCPNode, *Comm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, nil, fmt.Errorf("cluster: rank %d out of range for %d addrs", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	n := &TCPNode{
		rank:  rank,
		addrs: addrs,
		ln:    ln,
		mbox:  newMailbox(),
		conns: make(map[int]*tcpConn),
		done:  make(chan struct{}),
	}
	if dialTimeout <= 0 {
		dialTimeout = 30 * time.Second
	}
	n.dialTimeout = dialTimeout
	n.wg.Add(1)
	go n.acceptLoop()
	group := make([]int, len(addrs))
	for i := range group {
		group[i] = i
	}
	comm := &Comm{t: n, id: 1, rank: rank, group: group}
	return n, comm, nil
}

// Addr returns the actual listen address (useful with ":0" ports).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.mu.Lock()
		n.accepted = append(n.accepted, c)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

func (n *TCPNode) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer c.Close()
	hdr := make([]byte, 20)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			return
		}
		e := Envelope{
			Comm: binary.LittleEndian.Uint64(hdr[0:8]),
			From: int32(binary.LittleEndian.Uint32(hdr[8:12])),
			Tag:  int32(binary.LittleEndian.Uint32(hdr[12:16])),
		}
		ln := binary.LittleEndian.Uint32(hdr[16:20])
		if ln > 1<<30 {
			return // implausible frame; drop the connection
		}
		if ln > 0 {
			e.Payload = make([]byte, ln)
			if _, err := io.ReadFull(c, e.Payload); err != nil {
				return
			}
		}
		n.mbox.put(e)
	}
}

var _ transport = (*TCPNode)(nil)

func (n *TCPNode) send(to int, e Envelope) error {
	if to == n.rank {
		n.mbox.put(e)
		return nil
	}
	tc, err := n.conn(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 20+len(e.Payload))
	binary.LittleEndian.PutUint64(buf[0:8], e.Comm)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(e.From))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(e.Tag))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(e.Payload)))
	copy(buf[20:], e.Payload)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	_, err = tc.c.Write(buf)
	return err
}

func (n *TCPNode) conn(to int) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	// Dial outside the lock; last writer wins benignly.
	deadline := time.Now().Add(n.dialTimeout)
	var raw net.Conn
	var err error
	for {
		raw, err = net.DialTimeout("tcp", n.addrs[to], 2*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: rank %d cannot reach rank %d at %s: %w",
				n.rank, to, n.addrs[to], err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if t, ok := raw.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[to]; ok {
		raw.Close()
		return c, nil
	}
	c := &tcpConn{c: raw}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) box() *mailbox       { return n.mbox }
func (n *TCPNode) registry() *registry { return nil } // windows emulate via messages
func (n *TCPNode) stats() *Stats       { return &n.st }

// Stats exposes this process's traffic counters.
func (n *TCPNode) Stats() *Stats { return &n.st }

// Close shuts the node down: stops accepting, closes connections, and
// unblocks local receivers with ErrClosed.
func (n *TCPNode) Close() error {
	close(n.done)
	err := n.ln.Close()
	n.mu.Lock()
	for _, c := range n.conns {
		c.c.Close()
	}
	for _, c := range n.accepted {
		c.Close()
	}
	n.mu.Unlock()
	n.mbox.close()
	n.wg.Wait()
	return err
}
