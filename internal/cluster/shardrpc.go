package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/topk"
	"repro/internal/vec"
)

// Shard RPC: the gateway-to-worker search protocol.
//
// The master/worker protocol above (Comm, tagQuery/tagResult) is a
// rank-addressed collective world: every process knows every address and
// joins one fixed communicator. The serving tier needs something
// different — a stateless router opening point-to-point connections to
// whichever shard workers its shard map names, with request/response
// semantics, per-request deadlines, and fast failure detection. This
// file is that protocol: a single TCP connection per (gateway, worker)
// pair carrying multiplexed search requests, with the same
// heartbeat-staleness liveness rule the rank transport uses (PR 1), so
// a silent worker is declared down instead of hanging the scatter.
//
// Wire format, little-endian. Connection setup:
//
//	client -> server: "ANNS" | u16 version
//	server -> client: "ANNR" | u16 version | u32 shard | u32 dim | u64 points
//
// then length-prefixed frames in both directions:
//
//	u8 type | u64 reqID | u32 payloadLen | payload
//
// Frame types: search request (k + query block), result (per-query
// id/dist rows), error (utf-8 message), ping/pong (liveness probes,
// reqID 0, never surfaced to callers).

const (
	shardMagicReq  = "ANNS"
	shardMagicResp = "ANNR"
	shardVersion   = 1

	frameSearch  = 1 // client -> server: u32 k | u32 nq | nq*dim f32
	frameResults = 2 // server -> client: u32 nq | nq * (u32 n | n*(u64 id, f32 dist))
	frameError   = 3 // server -> client: utf-8 message
	framePing    = 4 // client -> server: empty
	framePong    = 5 // server -> client: empty

	// maxShardFrame bounds one frame payload; anything larger means the
	// stream is corrupt (same bound as the rank transport).
	maxShardFrame = 1 << 30
)

// ErrShardDown reports that the shard connection died (EOF, write error,
// or heartbeat staleness) while requests were outstanding.
var ErrShardDown = errors.New("cluster: shard connection down")

// ShardInfo is what a worker announces in its handshake: which shard of
// the map it serves and the index behind it.
type ShardInfo struct {
	Shard  int
	Dim    int
	Points int64
}

// ShardHandler answers one search request. It is called from a
// per-request goroutine (concurrent across requests and connections) and
// must honor ctx, which is canceled when the requesting connection dies.
type ShardHandler func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error)

// ShardServer serves shard searches on a listener. One server typically
// fronts one engine; several servers may share an engine to act as
// replicas of the same shard.
type ShardServer struct {
	ln      net.Listener
	info    ShardInfo
	handler ShardHandler

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	done    chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// NewShardServer starts serving immediately and returns. Close stops the
// listener and every open connection.
func NewShardServer(ln net.Listener, info ShardInfo, h ShardHandler) *ShardServer {
	s := &ShardServer{
		ln:      ln,
		info:    info,
		handler: h,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address (useful with ":0" ports).
func (s *ShardServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, drops every connection, and waits for the
// per-connection goroutines to exit. Safe to call more than once.
func (s *ShardServer) Close() error {
	var err error
	s.closeMu.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

func (s *ShardServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // Close, or a listener error we cannot recover from
		}
		if t, ok := c.(*net.TCPConn); ok {
			t.SetNoDelay(true)
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			c.Close()
			return
		default:
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *ShardServer) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *ShardServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(c)

	// Handshake: validate the client hello, announce the shard.
	hello := make([]byte, 6)
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, hello); err != nil {
		return
	}
	c.SetReadDeadline(time.Time{})
	if string(hello[:4]) != shardMagicReq || binary.LittleEndian.Uint16(hello[4:]) != shardVersion {
		return
	}
	resp := make([]byte, 6+16)
	copy(resp, shardMagicResp)
	binary.LittleEndian.PutUint16(resp[4:], shardVersion)
	binary.LittleEndian.PutUint32(resp[6:], uint32(s.info.Shard))
	binary.LittleEndian.PutUint32(resp[10:], uint32(s.info.Dim))
	binary.LittleEndian.PutUint64(resp[14:], uint64(s.info.Points))
	if _, err := c.Write(resp); err != nil {
		return
	}

	// ctx scopes every in-flight handler to the connection: when the
	// gateway goes away (or Close fires), handlers may stop early.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wmu sync.Mutex // serializes response frames from request goroutines

	for {
		typ, reqID, payload, err := readShardFrame(c)
		if err != nil {
			return
		}
		switch typ {
		case framePing:
			wmu.Lock()
			err := writeShardFrame(c, framePong, reqID, nil)
			wmu.Unlock()
			if err != nil {
				return
			}
		case frameSearch:
			queries, k, derr := decodeShardSearch(payload, s.info.Dim)
			if derr != nil {
				wmu.Lock()
				writeShardFrame(c, frameError, reqID, []byte(derr.Error()))
				wmu.Unlock()
				continue
			}
			s.wg.Add(1)
			go func(reqID uint64, queries *vec.Dataset, k int) {
				defer s.wg.Done()
				res, herr := s.handler(ctx, queries, k)
				wmu.Lock()
				defer wmu.Unlock()
				if herr != nil {
					writeShardFrame(c, frameError, reqID, []byte(herr.Error()))
					return
				}
				writeShardFrame(c, frameResults, reqID, encodeShardResults(res))
			}(reqID, queries, k)
		default:
			// Unknown frame type: protocol skew; drop the connection.
			return
		}
	}
}

func readShardFrame(c net.Conn) (typ byte, reqID uint64, payload []byte, err error) {
	hdr := make([]byte, 13)
	if _, err = io.ReadFull(c, hdr); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	reqID = binary.LittleEndian.Uint64(hdr[1:9])
	ln := binary.LittleEndian.Uint32(hdr[9:13])
	if ln > maxShardFrame {
		return 0, 0, nil, fmt.Errorf("cluster: implausible shard frame length %d", ln)
	}
	if ln > 0 {
		payload = make([]byte, ln)
		if _, err = io.ReadFull(c, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, reqID, payload, nil
}

func writeShardFrame(c net.Conn, typ byte, reqID uint64, payload []byte) error {
	buf := make([]byte, 13+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint64(buf[1:9], reqID)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(payload)))
	copy(buf[13:], payload)
	_, err := c.Write(buf)
	return err
}

func encodeShardSearch(queries *vec.Dataset, k int) []byte {
	nq := queries.Len()
	dim := queries.Dim
	buf := make([]byte, 8+4*nq*dim)
	binary.LittleEndian.PutUint32(buf[0:], uint32(k))
	binary.LittleEndian.PutUint32(buf[4:], uint32(nq))
	off := 8
	for i := 0; i < nq; i++ {
		for _, x := range queries.At(i) {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(x))
			off += 4
		}
	}
	return buf
}

func decodeShardSearch(b []byte, dim int) (*vec.Dataset, int, error) {
	if len(b) < 8 {
		return nil, 0, fmt.Errorf("cluster: short shard search frame (%d bytes)", len(b))
	}
	k := int(binary.LittleEndian.Uint32(b[0:]))
	nq := int(binary.LittleEndian.Uint32(b[4:]))
	if k <= 0 || nq < 0 || len(b) != 8+4*nq*dim {
		return nil, 0, fmt.Errorf("cluster: malformed shard search frame (k=%d nq=%d len=%d dim=%d)", k, nq, len(b), dim)
	}
	ds := vec.NewDataset(dim, nq)
	row := make([]float32, dim)
	off := 8
	for i := 0; i < nq; i++ {
		for j := 0; j < dim; j++ {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
			off += 4
		}
		ds.Append(row, int64(i))
	}
	return ds, k, nil
}

func encodeShardResults(res [][]topk.Result) []byte {
	size := 4
	for _, row := range res {
		size += 4 + 12*len(row)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(res)))
	off := 4
	for _, row := range res {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(row)))
		off += 4
		for _, r := range row {
			binary.LittleEndian.PutUint64(buf[off:], uint64(r.ID))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(r.Dist))
			off += 12
		}
	}
	return buf
}

func decodeShardResults(b []byte) ([][]topk.Result, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cluster: short shard result frame (%d bytes)", len(b))
	}
	nq := int(binary.LittleEndian.Uint32(b[0:]))
	if nq < 0 || nq > maxShardFrame/4 {
		return nil, fmt.Errorf("cluster: malformed shard result frame (nq=%d)", nq)
	}
	out := make([][]topk.Result, nq)
	off := 4
	for i := 0; i < nq; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("cluster: truncated shard result frame (query %d)", i)
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if n < 0 || off+12*n > len(b) {
			return nil, fmt.Errorf("cluster: truncated shard result frame (query %d, n=%d)", i, n)
		}
		row := make([]topk.Result, n)
		for j := 0; j < n; j++ {
			row[j] = topk.Result{
				ID:   int64(binary.LittleEndian.Uint64(b[off:])),
				Dist: math.Float32frombits(binary.LittleEndian.Uint32(b[off+8:])),
			}
			off += 12
		}
		out[i] = row
	}
	if off != len(b) {
		return nil, fmt.Errorf("cluster: trailing bytes in shard result frame")
	}
	return out, nil
}

// ShardClientOptions tune a gateway-side shard connection.
type ShardClientOptions struct {
	// DialTimeout bounds connect + handshake. Default 5s.
	DialTimeout time.Duration
	// HeartbeatInterval is the ping period. 0 means the 1s default; a
	// negative value disables pings (liveness then relies on read-loop
	// EOF only).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares the worker dead when nothing (pong or
	// result) has been read for this long. 0 means the 10s default.
	HeartbeatTimeout time.Duration
}

func (o ShardClientOptions) withDefaults() ShardClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	return o
}

// ShardClient is one gateway-side connection to a shard worker. Search
// calls multiplex over it concurrently; the read loop routes responses
// back by request ID. Once the connection dies the client is dead for
// good (every call returns ErrShardDown) — the router layer decides
// when to dial a replacement.
type ShardClient struct {
	c    net.Conn
	info ShardInfo
	opts ShardClientOptions

	wmu sync.Mutex // frame writes

	mu       sync.Mutex
	pending  map[uint64]chan shardReply
	nextID   uint64
	down     bool
	downC    chan struct{} // closed when the connection dies
	lastSeen time.Time

	done    chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

type shardReply struct {
	res [][]topk.Result
	err error
}

// DialShard connects and handshakes with default options.
func DialShard(addr string) (*ShardClient, error) {
	return DialShardOpts(addr, ShardClientOptions{})
}

// DialShardOpts connects, handshakes, and starts the read and heartbeat
// loops.
func DialShardOpts(addr string, opts ShardClientOptions) (*ShardClient, error) {
	opts = opts.withDefaults()
	raw, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if t, ok := raw.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	hello := make([]byte, 6)
	copy(hello, shardMagicReq)
	binary.LittleEndian.PutUint16(hello[4:], shardVersion)
	raw.SetDeadline(time.Now().Add(opts.DialTimeout))
	if _, err := raw.Write(hello); err != nil {
		raw.Close()
		return nil, fmt.Errorf("cluster: shard handshake write to %s: %w", addr, err)
	}
	resp := make([]byte, 6+16)
	if _, err := io.ReadFull(raw, resp); err != nil {
		raw.Close()
		return nil, fmt.Errorf("cluster: shard handshake read from %s: %w", addr, err)
	}
	raw.SetDeadline(time.Time{})
	if string(resp[:4]) != shardMagicResp {
		raw.Close()
		return nil, fmt.Errorf("cluster: %s is not a shard worker (bad magic %q)", addr, resp[:4])
	}
	if v := binary.LittleEndian.Uint16(resp[4:]); v != shardVersion {
		raw.Close()
		return nil, fmt.Errorf("cluster: shard %s speaks protocol v%d, want v%d", addr, v, shardVersion)
	}
	cl := &ShardClient{
		c: raw,
		info: ShardInfo{
			Shard:  int(binary.LittleEndian.Uint32(resp[6:])),
			Dim:    int(binary.LittleEndian.Uint32(resp[10:])),
			Points: int64(binary.LittleEndian.Uint64(resp[14:])),
		},
		opts:     opts,
		pending:  make(map[uint64]chan shardReply),
		lastSeen: time.Now(),
		downC:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	cl.wg.Add(1)
	go cl.readLoop()
	if opts.HeartbeatInterval > 0 {
		cl.wg.Add(1)
		go cl.heartbeatLoop()
	}
	return cl, nil
}

// Info returns the worker's handshake announcement.
func (cl *ShardClient) Info() ShardInfo { return cl.info }

// Down reports whether the connection has died.
func (cl *ShardClient) Down() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.down
}

// DownChan is closed when the connection dies (EOF, write error, or
// heartbeat staleness) — the router watches it to react to worker death
// between queries, not just on the next search.
func (cl *ShardClient) DownChan() <-chan struct{} { return cl.downC }

// markDown fails every pending request with ErrShardDown, exactly once.
func (cl *ShardClient) markDown() {
	cl.mu.Lock()
	if cl.down {
		cl.mu.Unlock()
		return
	}
	cl.down = true
	close(cl.downC)
	pend := cl.pending
	cl.pending = make(map[uint64]chan shardReply)
	cl.mu.Unlock()
	cl.c.Close()
	for _, ch := range pend {
		ch <- shardReply{err: ErrShardDown}
	}
}

func (cl *ShardClient) readLoop() {
	defer cl.wg.Done()
	for {
		typ, reqID, payload, err := readShardFrame(cl.c)
		if err != nil {
			cl.markDown()
			return
		}
		cl.mu.Lock()
		cl.lastSeen = time.Now()
		cl.mu.Unlock()
		switch typ {
		case framePong:
			// liveness only
		case frameResults, frameError:
			cl.mu.Lock()
			ch, ok := cl.pending[reqID]
			delete(cl.pending, reqID)
			cl.mu.Unlock()
			if !ok {
				continue // caller gave up (deadline) before the answer came
			}
			if typ == frameError {
				ch <- shardReply{err: fmt.Errorf("cluster: shard %d: %s", cl.info.Shard, payload)}
				continue
			}
			res, derr := decodeShardResults(payload)
			if derr != nil {
				ch <- shardReply{err: derr}
				continue
			}
			ch <- shardReply{res: res}
		default:
			cl.markDown()
			return
		}
	}
}

func (cl *ShardClient) heartbeatLoop() {
	defer cl.wg.Done()
	tick := time.NewTicker(cl.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-cl.done:
			return
		case now := <-tick.C:
			cl.mu.Lock()
			stale := now.Sub(cl.lastSeen) > cl.opts.HeartbeatTimeout
			cl.mu.Unlock()
			if stale {
				cl.markDown()
				return
			}
			cl.wmu.Lock()
			cl.c.SetWriteDeadline(now.Add(cl.opts.HeartbeatTimeout))
			err := writeShardFrame(cl.c, framePing, 0, nil)
			cl.c.SetWriteDeadline(time.Time{})
			cl.wmu.Unlock()
			if err != nil {
				cl.markDown()
				return
			}
		}
	}
}

// Search sends one batch and waits for the shard's answer, ctx expiry,
// or connection death, whichever is first. Row IDs are the worker's
// global vector IDs; rows align with queries.
func (cl *ShardClient) Search(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
	if queries.Dim != cl.info.Dim {
		return nil, fmt.Errorf("cluster: query dim %d, shard %d dim %d", queries.Dim, cl.info.Shard, cl.info.Dim)
	}
	ch := make(chan shardReply, 1)
	cl.mu.Lock()
	if cl.down {
		cl.mu.Unlock()
		return nil, ErrShardDown
	}
	cl.nextID++
	id := cl.nextID
	cl.pending[id] = ch
	cl.mu.Unlock()

	cl.wmu.Lock()
	err := writeShardFrame(cl.c, frameSearch, id, encodeShardSearch(queries, k))
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pending, id)
		cl.mu.Unlock()
		cl.markDown()
		return nil, ErrShardDown
	}
	select {
	case r := <-ch:
		return r.res, r.err
	case <-ctx.Done():
		cl.mu.Lock()
		delete(cl.pending, id)
		cl.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close shuts the connection down; pending requests fail with
// ErrShardDown.
func (cl *ShardClient) Close() error {
	cl.closeMu.Do(func() { close(cl.done) })
	cl.markDown()
	cl.wg.Wait()
	return nil
}
