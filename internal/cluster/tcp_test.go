package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n loopback ports and returns their addresses. The
// listeners are closed immediately; the tiny race window is acceptable
// in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runTCPWorld runs fn on n TCP ranks within one process (each over real
// sockets) and fails the test on any rank error.
func runTCPWorld(t *testing.T, n int, fn func(c *Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	nodes := make([]*TCPNode, n)
	var mu sync.Mutex
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, comm, err := JoinTCP(rank, addrs, 10*time.Second)
			if err != nil {
				errs[rank] = err
				return
			}
			mu.Lock()
			nodes[rank] = node
			mu.Unlock()
			errs[rank] = fn(comm)
		}(r)
	}
	wg.Wait()
	for _, node := range nodes {
		if node != nil {
			node.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("over the wire"))
		}
		p, st, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(p) != "over the wire" || st.Source != 0 {
			return fmt.Errorf("got %q %+v", p, st)
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := c.Bcast(2, pick(c.Rank() == 2, []byte("hello"), nil))
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("bcast got %q", got)
		}
		sum, err := c.Allreduce(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("sum %v", sum)
		}
		out := make([][]byte, 4)
		for i := range out {
			out[i] = []byte{byte(c.Rank()*10 + i)}
		}
		in, err := c.AlltoAllv(out)
		if err != nil {
			return err
		}
		for i := range in {
			if in[i][0] != byte(i*10+c.Rank()) {
				return fmt.Errorf("a2a in[%d]=%d", i, in[i][0])
			}
		}
		return nil
	})
}

func TestTCPSplitAndWindow(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("split size %d", sub.Size())
		}
		// window over TCP uses the message-emulated path
		win, err := NewWindow(c, 0, 1, func(cur, u []byte) []byte {
			out := append([]byte(nil), cur...)
			return append(out, u...)
		})
		if err != nil {
			return err
		}
		if err := win.Accumulate(0, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			win.WaitApplied(4)
			if got := win.Read(0); len(got) != 4 {
				return fmt.Errorf("window has %d bytes", len(got))
			}
		}
		return win.Free()
	})
}

func TestTCPJoinErrors(t *testing.T) {
	if _, _, err := JoinTCP(5, []string{"127.0.0.1:0"}, time.Second); err == nil {
		t.Error("want rank range error")
	}
	if _, _, err := JoinTCP(0, []string{"256.0.0.1:99999"}, time.Second); err == nil {
		t.Error("want listen error")
	}
}

func TestTCPDialTimeout(t *testing.T) {
	addrs := freeAddrs(t, 2)
	node, comm, err := JoinTCP(0, addrs, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// rank 1 never comes up; send must fail after the timeout
	if err := comm.Send(1, 0, nil); err == nil {
		t.Error("want dial timeout error")
	}
}

func pick(cond bool, a, b []byte) []byte {
	if cond {
		return a
	}
	return b
}
