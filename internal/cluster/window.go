package cluster

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Window is the one-sided communication primitive standing in for
// MPI_Win_create + MPI_Win_lock(shared) + MPI_Get_accumulate, the
// optimisation of Section IV-C1 of the paper: the master exposes a slot
// per query; workers atomically merge their local k-NN results into the
// slots without the master posting receives.
//
// Two execution paths, chosen automatically:
//
//   - shared address space (in-process transport): Accumulate locks the
//     slot mutex and applies the merge function directly on the owner's
//     memory — the moral equivalent of RMA over Cray Aries;
//   - message emulation (TCP transport): Accumulate sends the update to
//     the owner, where a service goroutine applies it; this is exactly
//     how MPI implements one-sided ops on networks without native RMA.
//
// The merge function must be pure with respect to its inputs (it may
// return either argument or fresh memory).
type Window struct {
	c     *Comm
	owner int // communicator rank owning the memory
	merge MergeFunc
	key   string // registry key (shared path)

	shared *sharedWin // non-nil on the shared path

	// owner-side message-emulation state
	svcDone chan struct{}
	applied atomic.Int64
	slots   [][]byte
	slotMu  []sync.Mutex
}

// MergeFunc combines the current slot contents (nil if empty) with an
// update and returns the new contents.
type MergeFunc func(cur, update []byte) []byte

type sharedWin struct {
	slots   [][]byte
	mu      []sync.Mutex
	applied atomic.Int64
}

// poisonSlot shuts down the owner's service loop on the emulated path.
const poisonSlot = ^uint32(0)

// NewWindow collectively creates a window with nSlots byte-slice slots
// owned by communicator rank owner. Every rank must call it with the
// same arguments and a semantically identical merge function.
func NewWindow(c *Comm, owner, nSlots int, merge MergeFunc) (*Window, error) {
	if owner < 0 || owner >= c.Size() {
		return nil, fmt.Errorf("cluster: window owner %d out of range", owner)
	}
	c.winSeq++
	w := &Window{c: c, owner: owner, merge: merge}
	if reg := c.t.registry(); reg != nil {
		w.key = fmt.Sprintf("win/%d/%d", c.id, c.winSeq)
		w.shared = reg.getOrStore(w.key, func() any {
			return &sharedWin{slots: make([][]byte, nSlots), mu: make([]sync.Mutex, nSlots)}
		}).(*sharedWin)
		// Barrier so no rank accumulates before every rank has joined.
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		return w, nil
	}
	if c.rank == owner {
		w.slots = make([][]byte, nSlots)
		w.slotMu = make([]sync.Mutex, nSlots)
		w.svcDone = make(chan struct{})
		go w.service()
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return w, nil
}

// service applies accumulate messages at the owner until poisoned.
func (w *Window) service() {
	defer close(w.svcDone)
	for {
		p, _, err := w.c.Recv(Any, tagWindow)
		if err != nil {
			return // world torn down
		}
		if binary.LittleEndian.Uint32(p[:4]) == poisonSlot {
			return
		}
		w.applyLocal(p)
	}
}

func (w *Window) applyLocal(p []byte) {
	slot := int(binary.LittleEndian.Uint32(p[:4]))
	data := p[4:]
	w.slotMu[slot].Lock()
	w.slots[slot] = w.merge(w.slots[slot], data)
	w.slotMu[slot].Unlock()
	w.applied.Add(1)
}

// Accumulate atomically merges data into the owner's slot. Callable from
// any rank, including the owner.
func (w *Window) Accumulate(slot int, data []byte) error {
	if w.shared != nil {
		s := w.shared
		if slot < 0 || slot >= len(s.slots) {
			return fmt.Errorf("cluster: window slot %d out of range", slot)
		}
		// Meter like a send: one-sided ops still cross the interconnect.
		w.c.t.stats().count(len(data))
		s.mu[slot].Lock()
		s.slots[slot] = w.merge(s.slots[slot], data)
		s.mu[slot].Unlock()
		s.applied.Add(1)
		return nil
	}
	buf := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(buf[:4], uint32(slot))
	copy(buf[4:], data)
	if w.c.rank == w.owner {
		w.applyLocal(buf)
		return nil
	}
	return w.c.sendInternal(w.owner, tagWindow, buf)
}

// Applied returns how many accumulates have been applied at the owner.
func (w *Window) Applied() int64 {
	if w.shared != nil {
		return w.shared.applied.Load()
	}
	return w.applied.Load()
}

// Read returns the owner's current contents of slot. Only meaningful at
// the owner after synchronisation (WaitApplied).
func (w *Window) Read(slot int) []byte {
	if w.shared != nil {
		s := w.shared
		s.mu[slot].Lock()
		defer s.mu[slot].Unlock()
		return s.slots[slot]
	}
	w.slotMu[slot].Lock()
	defer w.slotMu[slot].Unlock()
	return w.slots[slot]
}

// WaitApplied blocks until at least n accumulates have been applied at
// the owner. Workers report how many accumulates they issued via
// ordinary messages; the master passes the total here before reading the
// window — the passive-target synchronisation step of the paper.
func (w *Window) WaitApplied(n int64) {
	for w.Applied() < n {
		runtime.Gosched()
	}
}

// Free releases the window. Collective.
func (w *Window) Free() error {
	if w.shared != nil {
		if err := w.c.Barrier(); err != nil {
			return err
		}
		if w.c.rank == w.owner {
			if reg := w.c.t.registry(); reg != nil {
				reg.delete(w.key)
			}
		}
		return nil
	}
	// Quiesce remote accumulates before poisoning the service loop: the
	// barrier guarantees every rank is done issuing accumulates, and
	// per-pair FIFO guarantees they were delivered before the poison.
	if err := w.c.Barrier(); err != nil {
		return err
	}
	if w.c.rank == w.owner {
		poison := make([]byte, 4)
		binary.LittleEndian.PutUint32(poison, poisonSlot)
		if err := w.c.sendInternal(w.owner, tagWindow, poison); err != nil {
			return err
		}
		<-w.svcDone
	}
	return nil
}
