package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Collective operations. Every rank of the communicator must call the
// same collective in the same order (the usual MPI contract); matching
// relies on per-pair FIFO delivery, which both transports guarantee.

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	for step := 1; step < n; step *= 2 {
		to := (c.rank + step) % n
		from := (c.rank - step + n) % n
		if err := c.sendInternal(to, tagBarrier, nil); err != nil {
			return err
		}
		if _, _, err := c.Recv(from, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank and returns it (binomial
// tree). Non-root callers may pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	// rotate so the root is virtual rank 0
	vrank := (c.rank - root + n) % n
	if vrank != 0 {
		p, _, err := c.Recv(Any, tagBcast)
		if err != nil {
			return nil, err
		}
		data = p
	}
	// forward to children in the binomial tree
	for step := nextPow2(vrank + 1); vrank+step < n; step *= 2 {
		child := (vrank + step + root) % n
		if err := c.sendInternal(child, tagBcast, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

func lowestPow2(x int) int { return x & (-x) }

func nextPow2(x int) int {
	p := 1
	for p < x {
		p *= 2
	}
	return p
}

// Gatherv collects one payload from every rank at root, ordered by rank.
// Non-root callers receive nil.
func (c *Comm) Gatherv(root int, data []byte) ([][]byte, error) {
	if c.rank != root {
		return nil, c.sendInternal(root, tagGather, data)
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		p, _, err := c.Recv(i, tagGather)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Scatterv distributes chunks[i] from root to rank i and returns the
// caller's chunk. Non-root callers pass nil.
func (c *Comm) Scatterv(root int, chunks [][]byte) ([]byte, error) {
	if c.rank == root {
		if len(chunks) != c.Size() {
			return nil, fmt.Errorf("cluster: Scatterv needs %d chunks, got %d", c.Size(), len(chunks))
		}
		for i, ch := range chunks {
			if i == root {
				continue
			}
			if err := c.sendInternal(i, tagScatter, ch); err != nil {
				return nil, err
			}
		}
		return chunks[root], nil
	}
	p, _, err := c.Recv(root, tagScatter)
	return p, err
}

// AlltoAllv sends out[i] to rank i and returns in[i] = the payload rank i
// sent to the caller — MPI_Alltoallv, the primitive Algorithm 2 uses to
// shuffle points between the halves during VP-tree construction.
func (c *Comm) AlltoAllv(out [][]byte) ([][]byte, error) {
	if len(out) != c.Size() {
		return nil, fmt.Errorf("cluster: AlltoAllv needs %d chunks, got %d", c.Size(), len(out))
	}
	in := make([][]byte, c.Size())
	in[c.rank] = out[c.rank]
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		if err := c.sendInternal(i, tagA2A, out[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		p, _, err := c.Recv(i, tagA2A)
		if err != nil {
			return nil, err
		}
		in[i] = p
	}
	return in, nil
}

// ReduceOp combines two accumulator values.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
)

// Allreduce combines x across all ranks with op and returns the result on
// every rank (gather at 0, reduce, broadcast).
func (c *Comm) Allreduce(x float64, op ReduceOp) (float64, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	parts, err := c.Gatherv(0, buf)
	if err != nil {
		return 0, err
	}
	var res float64
	if c.rank == 0 {
		res = x
		for i, p := range parts {
			if i == 0 {
				continue
			}
			res = op(res, math.Float64frombits(binary.LittleEndian.Uint64(p)))
		}
		binary.LittleEndian.PutUint64(buf, math.Float64bits(res))
	}
	out, err := c.Bcast(0, buf)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(out)), nil
}

// AllreduceInt64 is Allreduce for integer counters (exact).
func (c *Comm) AllreduceInt64(x int64, op func(a, b int64) int64) (int64, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(x))
	parts, err := c.Gatherv(0, buf)
	if err != nil {
		return 0, err
	}
	res := x
	if c.rank == 0 {
		for i, p := range parts {
			if i == 0 {
				continue
			}
			res = op(res, int64(binary.LittleEndian.Uint64(p)))
		}
		binary.LittleEndian.PutUint64(buf, uint64(res))
	}
	out, err := c.Bcast(0, buf)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out)), nil
}

// Allgatherv gathers one payload from every rank on every rank.
func (c *Comm) Allgatherv(data []byte) ([][]byte, error) {
	parts, err := c.Gatherv(0, data)
	if err != nil {
		return nil, err
	}
	// flatten with length prefixes for the broadcast
	var flat []byte
	if c.rank == 0 {
		for _, p := range parts {
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
			flat = append(flat, hdr[:]...)
			flat = append(flat, p...)
		}
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, c.Size())
	for off := 0; off < len(flat); {
		n := int(binary.LittleEndian.Uint32(flat[off:]))
		off += 4
		out = append(out, flat[off:off+n])
		off += n
	}
	if len(out) != c.Size() {
		return nil, fmt.Errorf("cluster: Allgatherv decoded %d parts, want %d", len(out), c.Size())
	}
	return out, nil
}

// Split partitions the communicator by color: ranks passing the same
// color form a new communicator, ordered by (key, old rank). Every rank
// must call Split; the returned communicator is never nil. This is
// MPI_Comm_split, used to halve the process group at each level of the
// distributed VP-tree construction.
func (c *Comm) Split(color, key int) (*Comm, error) {
	c.splitSeq++
	// exchange (color, key) tuples
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(int64(color)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(key)))
	parts, err := c.Allgatherv(buf)
	if err != nil {
		return nil, err
	}
	type member struct{ color, key, rank int }
	var ms []member
	for r, p := range parts {
		ms = append(ms, member{
			color: int(int64(binary.LittleEndian.Uint64(p[0:8]))),
			key:   int(int64(binary.LittleEndian.Uint64(p[8:16]))),
			rank:  r,
		})
	}
	var mine []member
	for _, m := range ms {
		if m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.rank {
			newRank = i
		}
	}
	return &Comm{
		t:     c.t,
		id:    hash64(c.id, c.splitSeq, uint64(int64(color))+1<<32),
		rank:  newRank,
		group: group,
	}, nil
}
