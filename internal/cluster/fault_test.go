package cluster

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// TestRecvTimeout checks the deadline receive both ways: expiry with no
// traffic, and normal delivery well inside the deadline.
func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.Comm(0)
	c1 := w.Comm(1)

	start := time.Now()
	_, _, err := c0.RecvTimeout(1, 7, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > 2*time.Second {
		t.Fatalf("timeout fired after %v", el)
	}

	if err := c1.Send(0, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	p, st, err := c0.RecvTimeout(1, 7, 5*time.Second)
	if err != nil || string(p) != "x" || st.Source != 1 {
		t.Fatalf("got %q %+v %v", p, st, err)
	}
}

// TestRecvPeerDownWorld asserts that a Recv blocked on a rank killed via
// KillRank fails promptly with ErrPeerDown instead of blocking forever.
func TestRecvPeerDownWorld(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	c0 := w.Comm(0)

	type out struct {
		err error
		el  time.Duration
	}
	ch := make(chan out, 1)
	start := time.Now()
	go func() {
		_, _, err := c0.Recv(2, 9)
		ch <- out{err, time.Since(start)}
	}()
	time.Sleep(20 * time.Millisecond) // let the receiver block
	w.KillRank(2)
	select {
	case o := <-ch:
		if !errors.Is(o.err, ErrPeerDown) {
			t.Fatalf("want ErrPeerDown, got %v", o.err)
		}
		var pd *PeerDownError
		if !errors.As(o.err, &pd) || pd.Rank != 2 {
			t.Fatalf("want PeerDownError{Rank:2}, got %#v", o.err)
		}
		if o.el > 2*time.Second {
			t.Fatalf("peer-down detection took %v", o.el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after KillRank")
	}
	if !c0.IsDown(2) {
		t.Error("IsDown(2) = false after KillRank")
	}
	if d := c0.Down(); len(d) != 1 || d[0] != 2 {
		t.Errorf("Down() = %v, want [2]", d)
	}
	// Sends to the dead rank fail fast with the typed error.
	if err := c0.Send(2, 1, nil); !errors.Is(err, ErrPeerDown) {
		t.Errorf("send to dead rank: %v", err)
	}
}

// TestRecvTagsWatch asserts the master-style wildcard receive aborts as
// soon as a watched rank dies even though other senders are still alive.
func TestRecvTagsWatch(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	c0 := w.Comm(0)

	ch := make(chan error, 1)
	go func() {
		_, _, err := c0.RecvTagsWatch(Any, 5*time.Second, []int{2}, 3, 4)
		ch <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.KillRank(2)
	select {
	case err := <-ch:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Rank != 2 {
			t.Fatalf("want PeerDownError{Rank:2}, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watched receive did not abort on peer death")
	}
}

// TestTCPPeerDown kills one TCP rank and asserts the surviving rank's
// blocked Recv fails promptly via read-loop EOF detection.
func TestTCPPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	n0, c0, err := JoinTCP(0, addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, c1, err := JoinTCP(1, addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Establish the connection (and let rank 0 identify the peer).
	if err := c1.Send(0, 3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c0.Recv(1, 3); err != nil {
		t.Fatal(err)
	}

	ch := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := c0.Recv(1, 3)
		ch <- err
	}()
	time.Sleep(20 * time.Millisecond)
	n1.Close() // rank 1 dies

	select {
	case err := <-ch:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("want ErrPeerDown, got %v", err)
		}
		if el := time.Since(start); el > 3*time.Second {
			t.Fatalf("EOF detection took %v", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after peer close")
	}
	if n0.Stats().PeerDowns() == 0 {
		t.Error("PeerDowns counter not bumped")
	}
	// Sends to the dead peer fail fast, without a dial timeout.
	start = time.Now()
	if err := c0.Send(1, 3, nil); !errors.Is(err, ErrPeerDown) {
		t.Errorf("send to dead peer: %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("send to dead peer took %v", el)
	}
}

// TestTCPHeartbeatDetectsSilentPeer covers the staleness path: the peer
// process stays connected but silent (its heartbeats disabled and paused
// traffic), so only the heartbeat timeout can declare it dead... here we
// simulate by stopping the peer's heartbeats entirely.
func TestTCPHeartbeatDetectsSilentPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent heartbeat test")
	}
	addrs := freeAddrs(t, 2)
	n0, c0, err := JoinTCPOpts(0, addrs, TCPOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	// Peer with heartbeats disabled: it will never probe back.
	n1, c1, err := JoinTCPOpts(1, addrs, TCPOptions{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	if err := c1.Send(0, 3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c0.Recv(1, 3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c0.IsDown(1) {
		if time.Now().After(deadline) {
			t.Fatal("silent peer never declared dead by heartbeat timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWithFaultsDrop checks deterministic drops: with DropProb 1 on one
// tag, that tag never arrives while other tags pass through.
func TestWithFaultsDrop(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := WithFaults(w.Comm(0), FaultPlan{Seed: 42, DropProb: 1, Tags: map[int]bool{5: true}})
	c1 := w.Comm(1)

	if err := c0.Send(1, 5, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(1, 6, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	p, _, err := c1.Recv(0, 6)
	if err != nil || string(p) != "kept" {
		t.Fatalf("tag 6: %q %v", p, err)
	}
	if _, _, ok, _ := c1.TryRecv(0, 5); ok {
		t.Fatal("dropped message arrived")
	}
	if w.Stats().FaultDropped() != 1 {
		t.Errorf("FaultDropped = %d, want 1", w.Stats().FaultDropped())
	}
}

// TestWithFaultsDelay checks that delays are injected and counted but
// messages still arrive in FIFO order.
func TestWithFaultsDelay(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := WithFaults(w.Comm(0), FaultPlan{Seed: 1, DelayProb: 1, MaxDelay: 5 * time.Millisecond})
	c1 := w.Comm(1)
	for i := 0; i < 5; i++ {
		if err := c0.Send(1, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		p, _, err := c1.Recv(0, 2)
		if err != nil || p[0] != byte(i) {
			t.Fatalf("msg %d: got %v %v", i, p, err)
		}
	}
	if w.Stats().FaultDelayed() != 5 {
		t.Errorf("FaultDelayed = %d, want 5", w.Stats().FaultDelayed())
	}
}

// TestMailboxDepthStats checks the operator-facing queue gauges.
func TestMailboxDepthStats(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.Comm(0)
	c1 := w.Comm(1)
	for i := 0; i < 10; i++ {
		if err := c0.Send(1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if hw := w.Stats().MailboxHighWater(); hw < 10 {
		t.Errorf("high-water %d, want >= 10", hw)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := c1.Recv(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d := w.Stats().MailboxDepth(); d != 0 {
		t.Errorf("depth %d after draining, want 0", d)
	}
}

// TestTCPBadFrameCounted writes a frame with an implausible length to a
// node and asserts the drop is counted instead of being silent.
func TestTCPBadFrameCounted(t *testing.T) {
	addrs := freeAddrs(t, 1)
	n0, _, err := JoinTCP(0, addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()

	conn, err := net.Dial("tcp", n0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := make([]byte, 20)
	binary.LittleEndian.PutUint64(frame[0:8], 1)       // commID
	binary.LittleEndian.PutUint32(frame[8:12], 99)     // from (bogus)
	binary.LittleEndian.PutUint32(frame[12:16], 1)     // tag
	binary.LittleEndian.PutUint32(frame[16:20], 1<<31) // implausible length
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n0.Stats().BadFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad frame never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
