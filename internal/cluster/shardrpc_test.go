package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/topk"
	"repro/internal/vec"
)

// echoHandler answers each query with one result: (query index offset by
// base, first coordinate as distance). Distinctive enough to verify
// alignment and float fidelity across the wire.
func echoHandler(base int64) ShardHandler {
	return func(ctx context.Context, queries *vec.Dataset, k int) ([][]topk.Result, error) {
		out := make([][]topk.Result, queries.Len())
		for i := range out {
			out[i] = []topk.Result{{ID: base + int64(i), Dist: queries.At(i)[0]}}
		}
		return out, nil
	}
}

func startShard(t *testing.T, info ShardInfo, h ShardHandler) *ShardServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewShardServer(ln, info, h)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestShardRPCRoundTrip(t *testing.T) {
	s := startShard(t, ShardInfo{Shard: 3, Dim: 4, Points: 99}, echoHandler(100))
	cl, err := DialShard(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if got := cl.Info(); got.Shard != 3 || got.Dim != 4 || got.Points != 99 {
		t.Fatalf("handshake info = %+v", got)
	}
	qs := vec.NewDataset(4, 2)
	qs.Append([]float32{1.5, 0, 0, 0}, 0)
	qs.Append([]float32{-2.25, 0, 0, 0}, 1)
	res, err := cl.Search(context.Background(), qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d rows, want 2", len(res))
	}
	if res[0][0].ID != 100 || res[0][0].Dist != 1.5 {
		t.Fatalf("row 0 = %+v", res[0])
	}
	if res[1][0].ID != 101 || res[1][0].Dist != -2.25 {
		t.Fatalf("row 1 = %+v", res[1])
	}
}

func TestShardRPCConcurrentRequests(t *testing.T) {
	s := startShard(t, ShardInfo{Shard: 0, Dim: 2}, echoHandler(0))
	cl, err := DialShard(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make([]error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := vec.NewDataset(2, 1)
			qs.Append([]float32{float32(g), 0}, 0)
			res, err := cl.Search(context.Background(), qs, 1)
			if err != nil {
				errs[g] = err
				return
			}
			if res[0][0].Dist != float32(g) {
				errs[g] = fmt.Errorf("goroutine %d got dist %v", g, res[0][0].Dist)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardRPCHandlerError(t *testing.T) {
	s := startShard(t, ShardInfo{Shard: 1, Dim: 2}, func(ctx context.Context, q *vec.Dataset, k int) ([][]topk.Result, error) {
		return nil, errors.New("index exploded")
	})
	cl, err := DialShard(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	qs := vec.NewDataset(2, 1)
	qs.Append([]float32{0, 0}, 0)
	if _, err := cl.Search(context.Background(), qs, 1); err == nil {
		t.Fatal("want handler error, got nil")
	}
}

func TestShardRPCServerDeathFailsPending(t *testing.T) {
	block := make(chan struct{})
	s := startShard(t, ShardInfo{Shard: 2, Dim: 2}, func(ctx context.Context, q *vec.Dataset, k int) ([][]topk.Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	cl, err := DialShard(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	defer close(block)

	done := make(chan error, 1)
	go func() {
		qs := vec.NewDataset(2, 1)
		qs.Append([]float32{0, 0}, 0)
		_, err := cl.Search(context.Background(), qs, 1)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrShardDown) {
			t.Fatalf("want ErrShardDown, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request hung after server death")
	}
	if !cl.Down() {
		t.Fatal("client should be marked down")
	}
	qs := vec.NewDataset(2, 1)
	qs.Append([]float32{0, 0}, 0)
	if _, err := cl.Search(context.Background(), qs, 1); !errors.Is(err, ErrShardDown) {
		t.Fatalf("post-death search: want ErrShardDown, got %v", err)
	}
}

func TestShardRPCDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s := startShard(t, ShardInfo{Shard: 0, Dim: 2}, func(ctx context.Context, q *vec.Dataset, k int) ([][]topk.Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return [][]topk.Result{nil}, nil
	})
	cl, err := DialShard(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	qs := vec.NewDataset(2, 1)
	qs.Append([]float32{0, 0}, 0)
	if _, err := cl.Search(ctx, qs, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if cl.Down() {
		t.Fatal("a caller deadline must not kill the connection")
	}
}

func TestShardRPCHeartbeatDetectsSilentPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	// A "black hole" worker: accepts and handshakes, then never reads or
	// writes again. Heartbeat staleness must declare it down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		hello := make([]byte, 6)
		if _, err := readFull(c, hello); err != nil {
			return
		}
		resp := make([]byte, 22)
		copy(resp, shardMagicResp)
		resp[4] = shardVersion
		c.Write(resp)
		// now go silent, keeping the connection open
		select {}
	}()
	cl, err := DialShardOpts(ln.Addr().String(), ShardClientOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !cl.Down() {
		if time.Now().After(deadline) {
			t.Fatal("silent peer never declared down")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := c.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
