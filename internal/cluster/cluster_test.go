package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("hello"))
		}
		p, st, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(p) != "hello" || st.Source != 0 || st.Tag != 5 || st.Bytes != 5 {
			return fmt.Errorf("got %q %+v", p, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardRecv(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), []byte{byte(c.Rank())})
		}
		seen := make(map[int]bool)
		for i := 0; i < 3; i++ {
			p, st, err := c.Recv(Any, Any)
			if err != nil {
				return err
			}
			if int(p[0]) != st.Source || st.Tag != st.Source {
				return fmt.Errorf("mismatched envelope: %v %+v", p, st)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
			return nil
		}
		// receive tag 2 first even though tag 1 arrived first
		p2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		p1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(p1) != "one" || string(p2) != "two" {
			return fmt.Errorf("got %q %q", p1, p2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return fmt.Errorf("want range error")
		}
		if err := c.Send(0, -3, nil); err == nil {
			return fmt.Errorf("want negative-tag error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAndProbe(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if _, _, ok, _ := c.TryRecv(1, 9); ok {
				return fmt.Errorf("TryRecv matched nothing sent yet?")
			}
			c.Send(1, 0, nil) // release peer
			p, _, err := c.Recv(1, 9)
			if err != nil || string(p) != "x" {
				return fmt.Errorf("recv: %q %v", p, err)
			}
			return nil
		}
		c.Recv(0, 0)
		if c.Probe(0, 9) {
			return fmt.Errorf("probe true before send")
		}
		c.Send(0, 9, []byte("x"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvTestWaitCancel(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 1) // wait for go-ahead
			return c.Send(1, 7, []byte("payload"))
		}
		req := c.Irecv(0, 7)
		if req.Test() {
			return fmt.Errorf("Test true before send")
		}
		c.Send(0, 1, nil)
		p, st, err := req.Wait()
		if err != nil || string(p) != "payload" || st.Tag != 7 {
			return fmt.Errorf("wait: %q %+v %v", p, st, err)
		}
		// a second request can be cancelled
		r2 := c.Irecv(0, 8)
		r2.Cancel()
		if r2.Test() {
			return fmt.Errorf("cancelled request completed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(n)
		var mu sync.Mutex
		phase := make(map[int]int)
		err := w.Run(func(c *Comm) error {
			for it := 0; it < 3; it++ {
				mu.Lock()
				phase[c.Rank()] = it
				// nobody may be more than one phase away
				for r, p := range phase {
					if p < it-1 || p > it+1 {
						mu.Unlock()
						return fmt.Errorf("rank %d at %d while rank %d at %d", c.Rank(), it, r, p)
					}
				}
				mu.Unlock()
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastAllRootsAndSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 9} {
		for root := 0; root < n; root++ {
			w := NewWorld(n)
			err := w.Run(func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte(fmt.Sprintf("from-%d", root))
				}
				got, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("from-%d", root)
				if string(got) != want {
					return fmt.Errorf("rank %d got %q want %q", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestGathervScatterv(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		parts, err := c.Gatherv(2, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i, p := range parts {
				if len(p) != 1 || p[0] != byte(i*10) {
					return fmt.Errorf("gather[%d] = %v", i, p)
				}
			}
		} else if parts != nil {
			return fmt.Errorf("non-root got parts")
		}
		var chunks [][]byte
		if c.Rank() == 1 {
			chunks = [][]byte{{0}, {1}, {2}, {3}}
		}
		got, err := c.Scatterv(1, chunks)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != byte(c.Rank()) {
			return fmt.Errorf("scatter got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScattervWrongChunkCount(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatterv(0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("want chunk count error")
			}
			// unblock peer with the real thing
			_, err := c.Scatterv(0, [][]byte{{1}, {2}})
			return err
		}
		_, err := c.Scatterv(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllv(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6} {
		w := NewWorld(n)
		err := w.Run(func(c *Comm) error {
			out := make([][]byte, n)
			for i := range out {
				out[i] = []byte(fmt.Sprintf("%d->%d", c.Rank(), i))
			}
			in, err := c.AlltoAllv(out)
			if err != nil {
				return err
			}
			for i := range in {
				want := fmt.Sprintf("%d->%d", i, c.Rank())
				if string(in[i]) != want {
					return fmt.Errorf("in[%d] = %q want %q", i, in[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Property: AlltoAllv conserves total bytes for random payload shapes.
func TestAlltoAllvConservationQuick(t *testing.T) {
	err := quick.Check(func(sizes [3][3]uint8) bool {
		w := NewWorld(3)
		var mu sync.Mutex
		sent, recvd := 0, 0
		err := w.Run(func(c *Comm) error {
			out := make([][]byte, 3)
			for i := range out {
				out[i] = bytes.Repeat([]byte{1}, int(sizes[c.Rank()][i]))
				mu.Lock()
				sent += len(out[i])
				mu.Unlock()
			}
			in, err := c.AlltoAllv(out)
			if err != nil {
				return err
			}
			for i := range in {
				mu.Lock()
				recvd += len(in[i])
				mu.Unlock()
				if len(in[i]) != int(sizes[i][c.Rank()]) {
					return fmt.Errorf("size mismatch")
				}
			}
			return nil
		})
		return err == nil && sent == recvd
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestAllreduce(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		sum, err := c.Allreduce(float64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 15 {
			return fmt.Errorf("sum = %v", sum)
		}
		mn, _ := c.Allreduce(float64(c.Rank()), OpMin)
		mx, _ := c.Allreduce(float64(c.Rank()), OpMax)
		if mn != 0 || mx != 4 {
			return fmt.Errorf("min/max = %v/%v", mn, mx)
		}
		cnt, err := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if err != nil || cnt != 10 {
			return fmt.Errorf("int sum = %v err %v", cnt, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		parts, err := c.Allgatherv([]byte{byte(c.Rank()), byte(c.Rank() * 2)})
		if err != nil {
			return err
		}
		if len(parts) != 4 {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if p[0] != byte(i) || p[1] != byte(i*2) {
				return fmt.Errorf("parts[%d] = %v", i, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRecursiveHalving(t *testing.T) {
	// The VP-tree construction pattern: repeatedly halve until singleton.
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		cur := c
		expect := 8
		for cur.Size() > 1 {
			half := cur.Size() / 2
			color := 0
			if cur.Rank() >= half {
				color = 1
			}
			next, err := cur.Split(color, cur.Rank())
			if err != nil {
				return err
			}
			wantSize := half
			if color == 1 {
				wantSize = cur.Size() - half
			}
			if next.Size() != wantSize {
				return fmt.Errorf("split size %d want %d", next.Size(), wantSize)
			}
			// sub-communicator must be isolated: a broadcast within it
			// only reaches members
			v, err := next.Bcast(0, []byte{byte(next.Size())})
			if err != nil {
				return err
			}
			if v[0] != byte(next.Size()) {
				return fmt.Errorf("sub-bcast wrong")
			}
			cur = next
			expect /= 2
		}
		if cur.Rank() != 0 || cur.Size() != 1 {
			return fmt.Errorf("final comm %d/%d", cur.Rank(), cur.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitPreservesWorldRank(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(c *Comm) error {
		// odd/even split, keyed by rank
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("size %d", sub.Size())
		}
		if got := sub.WorldRank(sub.Rank()); got != c.Rank() {
			return fmt.Errorf("WorldRank %d want %d", got, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowSharedAccumulate(t *testing.T) {
	w := NewWorld(4)
	const perRank = 100
	sum := func(cur, upd []byte) []byte {
		var c uint64
		if cur != nil {
			c = binary.LittleEndian.Uint64(cur)
		}
		c += binary.LittleEndian.Uint64(upd)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, c)
		return out
	}
	err := w.Run(func(c *Comm) error {
		win, err := NewWindow(c, 0, 2, sum)
		if err != nil {
			return err
		}
		one := make([]byte, 8)
		binary.LittleEndian.PutUint64(one, 1)
		for i := 0; i < perRank; i++ {
			if err := win.Accumulate(i%2, one); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			win.WaitApplied(4 * perRank)
			total := binary.LittleEndian.Uint64(win.Read(0)) + binary.LittleEndian.Uint64(win.Read(1))
			if total != 4*perRank {
				return fmt.Errorf("total %d want %d", total, 4*perRank)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowSlotRangeAndOwnerErrors(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if _, err := NewWindow(c, 9, 1, nil); err == nil {
			return fmt.Errorf("want owner range error")
		}
		win, err := NewWindow(c, 0, 1, func(cur, u []byte) []byte { return u })
		if err != nil {
			return err
		}
		if err := win.Accumulate(3, nil); err == nil {
			return fmt.Errorf("want slot range error")
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 100))
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Messages() < 1 || w.Stats().Bytes() < 100 {
		t.Errorf("stats: %d msgs %d bytes", w.Stats().Messages(), w.Stats().Bytes())
	}
	w.Stats().Reset()
	if w.Stats().Messages() != 0 {
		t.Error("reset failed")
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// rank 0 blocks forever on a message that never comes; the
		// panic-induced close must unblock it with ErrClosed.
		_, _, err := c.Recv(1, 0)
		return err
	})
	if err == nil {
		t.Fatal("want error from panic")
	}
}

func TestWorldCloseUnblocksRecv(t *testing.T) {
	w := NewWorld(2)
	errc := make(chan error, 1)
	go func() {
		errc <- w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return nil // exits immediately
			}
			_, _, err := c.Recv(0, 42)
			if err != ErrClosed {
				return fmt.Errorf("want ErrClosed, got %v", err)
			}
			return nil
		})
	}()
	// Run closes the world only after all ranks return, so close it from
	// outside to unblock rank 1.
	w.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewWorld(0)
}

func TestRecvTags(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("five"))
			c.Send(1, 7, []byte("seven"))
			return nil
		}
		// match either tag; order of arrival decides
		p1, st1, err := c.RecvTags(Any, 5, 7)
		if err != nil {
			return err
		}
		p2, st2, err := c.RecvTags(0, 5, 7)
		if err != nil {
			return err
		}
		got := map[int]string{st1.Tag: string(p1), st2.Tag: string(p2)}
		if got[5] != "five" || got[7] != "seven" {
			return fmt.Errorf("got %v", got)
		}
		// non-listed tags must not match: nothing else queued
		if _, _, ok, _ := c.TryRecv(Any, 5); ok {
			return fmt.Errorf("message double-delivered")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagsSourceFilter(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(2, 4, []byte("from0"))
		case 1:
			return c.Send(2, 4, []byte("from1"))
		default:
			p, st, err := c.RecvTags(1, 4)
			if err != nil {
				return err
			}
			if string(p) != "from1" || st.Source != 1 {
				return fmt.Errorf("source filter broken: %q %+v", p, st)
			}
			// the other message is still there
			p2, _, err := c.Recv(0, 4)
			if err != nil || string(p2) != "from0" {
				return fmt.Errorf("remaining message lost: %q %v", p2, err)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8)
	done := make(chan error, 1)
	start := make(chan struct{})
	go func() {
		done <- w.Run(func(c *Comm) error {
			<-start
			for i := 0; i < b.N; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAlltoAllv8(b *testing.B) {
	w := NewWorld(8)
	payload := make([]byte, 1024)
	done := make(chan error, 1)
	start := make(chan struct{})
	go func() {
		done <- w.Run(func(c *Comm) error {
			<-start
			out := make([][]byte, 8)
			for i := range out {
				out[i] = payload
			}
			for i := 0; i < b.N; i++ {
				if _, err := c.AlltoAllv(out); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWindowAccumulate(b *testing.B) {
	w := NewWorld(4)
	done := make(chan error, 1)
	start := make(chan struct{})
	go func() {
		done <- w.Run(func(c *Comm) error {
			win, err := NewWindow(c, 0, 64, func(cur, u []byte) []byte { return u })
			if err != nil {
				return err
			}
			<-start
			payload := make([]byte, 128)
			for i := 0; i < b.N; i++ {
				if err := win.Accumulate(i%64, payload); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return win.Free()
		})
	}()
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func TestRequestPayloadAccessor(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("zz"))
		}
		req := c.Irecv(0, 3)
		for !req.Test() {
		}
		p, st, err := req.Payload()
		if err != nil || string(p) != "zz" || st.Tag != 3 {
			return fmt.Errorf("payload: %q %+v %v", p, st, err)
		}
		// Wait after completion returns the same data
		p2, _, err := req.Wait()
		if err != nil || string(p2) != "zz" {
			return fmt.Errorf("wait-after-test: %q %v", p2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCancelledRequestWaitErrors(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		req := c.Irecv(0, 9)
		req.Cancel()
		if _, _, err := req.Wait(); err == nil {
			return fmt.Errorf("want cancelled error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldAccessors(t *testing.T) {
	w := NewWorld(3)
	if w.Size() != 3 {
		t.Errorf("Size %d", w.Size())
	}
	c := w.Comm(1)
	if c.Rank() != 1 || c.Size() != 3 || c.WorldRank(2) != 2 {
		t.Error("Comm accessors wrong")
	}
	w.Close()
}

func TestWindowReadOwnerAccumulate(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		win, err := NewWindow(c, 1, 2, func(cur, u []byte) []byte { return append(cur, u...) })
		if err != nil {
			return err
		}
		// the owner can accumulate into its own window
		if c.Rank() == 1 {
			if err := win.Accumulate(1, []byte{9}); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			win.WaitApplied(1)
			if got := win.Read(1); len(got) != 1 || got[0] != 9 {
				return fmt.Errorf("owner accumulate lost: %v", got)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
