package cluster

import (
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Stats meters world traffic: the cost model prices communication from
// these counters the way the paper's Figure 5 breaks down MPI time. It
// also carries the health counters the fault-tolerance layer exposes to
// operators: dropped frames, detected peer deaths, injected faults, and
// mailbox depth (current + high-water) so a stuck consumer is visible
// before the unbounded queue OOMs.
type Stats struct {
	msgs  atomic.Int64
	bytes atomic.Int64

	badFrames    atomic.Int64 // TCP frames dropped for implausible length
	peerDowns    atomic.Int64 // peer-death detections on this rank
	faultDropped atomic.Int64 // messages dropped by fault injection
	faultDelayed atomic.Int64 // messages delayed by fault injection
	depth        atomic.Int64 // current mailbox depth (gauge)
	highWater    atomic.Int64 // max mailbox depth observed
}

func (s *Stats) count(n int) {
	s.msgs.Add(1)
	s.bytes.Add(int64(n))
}

// noteDepth records the mailbox depth after an enqueue/dequeue and keeps
// the high-water mark.
func (s *Stats) noteDepth(d int64) {
	s.depth.Store(d)
	for {
		hw := s.highWater.Load()
		if d <= hw || s.highWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

// Messages returns the total number of messages sent in the world.
func (s *Stats) Messages() int64 { return s.msgs.Load() }

// Bytes returns the total payload bytes sent in the world.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// BadFrames returns the number of TCP frames dropped for an implausible
// length header.
func (s *Stats) BadFrames() int64 { return s.badFrames.Load() }

// PeerDowns returns how many peer deaths this rank has detected.
func (s *Stats) PeerDowns() int64 { return s.peerDowns.Load() }

// FaultDropped returns the messages dropped by the fault-injection
// wrapper (tests only).
func (s *Stats) FaultDropped() int64 { return s.faultDropped.Load() }

// FaultDelayed returns the messages delayed by the fault-injection
// wrapper (tests only).
func (s *Stats) FaultDelayed() int64 { return s.faultDelayed.Load() }

// MailboxDepth returns the current depth of the rank's mailbox (for the
// in-process world, the depth most recently updated by any rank's box).
func (s *Stats) MailboxDepth() int64 { return s.depth.Load() }

// MailboxHighWater returns the deepest any mailbox sharing these stats
// has been.
func (s *Stats) MailboxHighWater() int64 { return s.highWater.Load() }

// Reset zeroes the traffic counters (health counters are left alone so
// failures spanning a Reset stay visible).
func (s *Stats) Reset() { s.msgs.Store(0); s.bytes.Store(0) }

// registry is the shared-object rendezvous used by one-sided windows on
// the in-process transport (all ranks share an address space, like RMA
// over a real interconnect).
type registry struct {
	mu sync.Mutex
	m  map[string]any
}

func (r *registry) getOrStore(key string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[key]; ok {
		return v
	}
	v := mk()
	r.m[key] = v
	return v
}

func (r *registry) delete(key string) {
	r.mu.Lock()
	delete(r.m, key)
	r.mu.Unlock()
}

// World is an in-process group of ranks (goroutines). It implements the
// role MPI_COMM_WORLD plays in the paper's runs: one rank per processing
// core.
type World struct {
	n     int
	boxes []*mailbox
	reg   registry
	st    Stats
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("cluster: world size must be positive")
	}
	w := &World{n: n, boxes: make([]*mailbox, n), reg: registry{m: make(map[string]any)}}
	for i := range w.boxes {
		w.boxes[i] = newMailbox(&w.st)
	}
	return w
}

// KillRank simulates the death of a rank: its mailbox closes and drops
// its queued messages (pending receives there fail with ErrClosed, like
// a process losing its memory) and every other rank's failure detector
// marks it down, failing their pending matching receives with
// ErrPeerDown — the in-process analogue of a worker process dying.
func (w *World) KillRank(r int) {
	if r < 0 || r >= w.n {
		return
	}
	b := w.boxes[r]
	b.mu.Lock()
	b.closed = true
	b.q = nil
	b.mu.Unlock()
	b.cond.Broadcast()
	w.st.peerDowns.Add(1)
	for i, b := range w.boxes {
		if i != r {
			b.markDown(int32(r))
		}
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Stats returns the world's traffic counters.
func (w *World) Stats() *Stats { return &w.st }

// localTransport binds one rank to the world.
type localTransport struct {
	w    *World
	rank int
}

func (t *localTransport) send(to int, e Envelope) error {
	if to < 0 || to >= t.w.n {
		return fmt.Errorf("cluster: world rank %d out of range", to)
	}
	if t.w.boxes[t.rank].isDown(int32(to)) {
		return &PeerDownError{Rank: to}
	}
	t.w.boxes[to].put(e)
	return nil
}

func (t *localTransport) box() *mailbox       { return t.w.boxes[t.rank] }
func (t *localTransport) registry() *registry { return &t.w.reg }
func (t *localTransport) stats() *Stats       { return &t.w.st }

// Comm returns the world communicator for the given rank. Typically used
// through Run; exposed for tests that drive ranks manually.
func (w *World) Comm(rank int) *Comm {
	group := make([]int, w.n)
	for i := range group {
		group[i] = i
	}
	return &Comm{t: &localTransport{w: w, rank: rank}, id: 1, rank: rank, group: group}
}

// Run spawns one goroutine per rank executing fn and waits for all of
// them. The first error (or converted panic) is returned; afterwards all
// mailboxes are closed, which unblocks any rank still waiting in Recv
// with ErrClosed.
//
// A rank that PANICS aborts the whole world immediately (the MPI_Abort
// semantic): other ranks blocked in receives fail with ErrClosed rather
// than deadlocking. A rank that merely returns an error does not abort
// the others — the engine's failure handling relies on degraded protocol
// completion (workers always report Done).
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("cluster: rank %d panicked: %v\n%s", rank, p, debug.Stack())
					w.Close()
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	w.Close()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close tears the world down; subsequent receives fail with ErrClosed.
func (w *World) Close() {
	for _, b := range w.boxes {
		b.close()
	}
}

// hash64 derives deterministic child-communicator IDs.
func hash64(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		h.Write(buf[:])
	}
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}
