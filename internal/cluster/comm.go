// Package cluster is the communication substrate that replaces MPI in
// this reproduction. The paper's engine is a hybrid MPI-OpenMP program;
// Go has neither, so cluster provides the same message-passing semantics
// on two transports:
//
//   - an in-process transport where every rank is a goroutine and message
//     delivery is a queue append (used for all experiments; goroutines
//     stand in for MPI ranks and worker-pool goroutines for OpenMP
//     threads);
//   - a TCP transport (see tcp.go) where each rank is an OS process,
//     used by cmd/annmaster and cmd/annworker for real multi-machine
//     deployments.
//
// The API mirrors the MPI subset the paper uses: Send/Recv with tags and
// wildcards, non-blocking Isend/Irecv with Test/Wait (Algorithm 4's
// polling loop), collectives (Barrier, Bcast, Gatherv, AlltoAllv,
// Allreduce — Algorithm 2's shuffle is an AlltoAllv), communicator Split
// for the recursive halving in the distributed VP-tree construction, and
// one-sided windows with atomic accumulate (window.go) standing in for
// MPI_Win_lock/MPI_Get_accumulate.
//
// All traffic is metered (message and byte counters per world) so the
// cost model can price communication the way Figure 5 of the paper does.
package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Any is the wildcard source or tag for Recv/Irecv/Probe, mirroring
// MPI_ANY_SOURCE / MPI_ANY_TAG.
const Any = -1

// Reserved internal tags. User tags must be non-negative.
const (
	tagBarrier = -2
	tagBcast   = -3
	tagGather  = -4
	tagScatter = -5
	tagA2A     = -6
	tagReduce  = -7
	tagWindow  = -8
	tagSplit   = -9
)

// Envelope is one message in flight.
type Envelope struct {
	Comm    uint64 // communicator ID: messages only match within a communicator
	From    int32  // world rank of the sender
	Tag     int32
	Payload []byte
}

// mailbox is one rank's incoming queue: an unbounded FIFO with
// predicate-matching receive, which is what lets wildcard and tagged
// receives coexist (collectives, window traffic and user messages all
// flow through the same box, matched by communicator and tag).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e Envelope) {
	m.mu.Lock()
	if !m.closed {
		m.q = append(m.q, e)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first queued envelope matching pred. With
// block=false it returns ok=false immediately when nothing matches; with
// block=true it waits. A closed mailbox yields err.
func (m *mailbox) take(pred func(*Envelope) bool, block bool) (Envelope, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.q {
			if pred(&m.q[i]) {
				e := m.q[i]
				m.q = append(m.q[:i], m.q[i+1:]...)
				return e, true, nil
			}
		}
		if m.closed {
			return Envelope{}, false, ErrClosed
		}
		if !block {
			return Envelope{}, false, nil
		}
		m.cond.Wait()
	}
}

// ErrClosed is returned when communicating on a torn-down world.
var ErrClosed = errors.New("cluster: world closed")

// transport delivers envelopes between world ranks.
type transport interface {
	// send delivers e to world rank "to".
	send(to int, e Envelope) error
	// box returns this rank's mailbox.
	box() *mailbox
	// registry returns the shared-object registry if all ranks share an
	// address space (in-process transport), else nil.
	registry() *registry
	// stats returns the world-level traffic accounting.
	stats() *Stats
}

// Comm is a communicator: a group of ranks that can exchange messages
// isolated from other communicators, like an MPI_Comm.
type Comm struct {
	t     transport
	id    uint64
	rank  int   // rank within this communicator
	group []int // group[i] = world rank of communicator rank i

	splitSeq uint64 // per-instance collective-order counter for Split/Window IDs
	winSeq   uint64
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the world rank behind communicator rank r.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// localOf maps a world rank to a communicator rank (-1 if absent).
func (c *Comm) localOf(world int32) int {
	for i, w := range c.group {
		if w == int(world) {
			return i
		}
	}
	return -1
}

// Status describes a received message.
type Status struct {
	Source int // communicator rank of the sender
	Tag    int
	Bytes  int
}

// Send delivers payload to communicator rank "to" with the given tag.
// It corresponds to MPI_Send; with the unbounded mailboxes of this
// runtime it never blocks, so MPI_Isend maps to it too.
func (c *Comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= len(c.group) {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, c.Size())
	}
	if tag < 0 {
		return fmt.Errorf("cluster: user tags must be non-negative, got %d", tag)
	}
	return c.sendInternal(to, tag, payload)
}

func (c *Comm) sendInternal(to, tag int, payload []byte) error {
	s := c.t.stats()
	s.count(len(payload))
	return c.t.send(c.group[to], Envelope{
		Comm:    c.id,
		From:    int32(c.group[c.rank]),
		Tag:     int32(tag),
		Payload: payload,
	})
}

// match builds the receive predicate for (from, tag) with wildcards.
func (c *Comm) match(from, tag int) func(*Envelope) bool {
	return func(e *Envelope) bool {
		if e.Comm != c.id {
			return false
		}
		if tag != Any && int(e.Tag) != tag {
			return false
		}
		if from != Any {
			return int(e.From) == c.group[from]
		}
		// wildcard source: sender must still be a member
		return c.localOf(e.From) >= 0
	}
}

// Recv blocks until a message from "from" (or Any) with tag "tag" (or
// Any) arrives and returns its payload.
func (c *Comm) Recv(from, tag int) ([]byte, Status, error) {
	e, _, err := c.t.box().take(c.match(from, tag), true)
	if err != nil {
		return nil, Status{}, err
	}
	return e.Payload, c.status(e), nil
}

// RecvTags blocks until a message from "from" (or Any) carrying any of
// the listed user tags arrives. Worker threads use it to wait for either
// a query or the End-of-Queries command with one blocking call instead
// of an MPI_Test poll loop.
func (c *Comm) RecvTags(from int, tags ...int) ([]byte, Status, error) {
	pred := func(e *Envelope) bool {
		if e.Comm != c.id {
			return false
		}
		hit := false
		for _, t := range tags {
			if int(e.Tag) == t {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
		if from != Any {
			return int(e.From) == c.group[from]
		}
		return c.localOf(e.From) >= 0
	}
	e, _, err := c.t.box().take(pred, true)
	if err != nil {
		return nil, Status{}, err
	}
	return e.Payload, c.status(e), nil
}

// TryRecv is a non-blocking Recv: ok=false when no matching message is
// queued (MPI_Iprobe + MPI_Recv).
func (c *Comm) TryRecv(from, tag int) ([]byte, Status, bool, error) {
	e, ok, err := c.t.box().take(c.match(from, tag), false)
	if err != nil {
		return nil, Status{}, false, err
	}
	if !ok {
		return nil, Status{}, false, nil
	}
	return e.Payload, c.status(e), true, nil
}

// Probe reports whether a matching message is queued without consuming
// it.
func (c *Comm) Probe(from, tag int) bool {
	box := c.t.box()
	box.mu.Lock()
	defer box.mu.Unlock()
	pred := c.match(from, tag)
	for i := range box.q {
		if pred(&box.q[i]) {
			return true
		}
	}
	return false
}

func (c *Comm) status(e Envelope) Status {
	return Status{Source: c.localOf(e.From), Tag: int(e.Tag), Bytes: len(e.Payload)}
}

// Request is a non-blocking receive in progress, in the style of
// MPI_Irecv + MPI_Test/MPI_Wait. (Sends complete immediately in this
// runtime, so only receives need requests.)
type Request struct {
	c         *Comm
	from, tag int
	done      bool
	payload   []byte
	status    Status
	err       error
	cancelled bool
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{c: c, from: from, tag: tag}
}

// Test polls the request; it returns true once a message has been
// matched (payload available via Payload).
func (r *Request) Test() bool {
	if r.done || r.cancelled {
		return r.done
	}
	p, st, ok, err := r.c.TryRecv(r.from, r.tag)
	if err != nil {
		r.err, r.done = err, true
		return true
	}
	if ok {
		r.payload, r.status, r.done = p, st, true
	}
	return r.done
}

// Wait blocks until the request completes.
func (r *Request) Wait() ([]byte, Status, error) {
	if r.cancelled {
		return nil, Status{}, errors.New("cluster: request cancelled")
	}
	if !r.done {
		p, st, err := r.c.Recv(r.from, r.tag)
		r.payload, r.status, r.err, r.done = p, st, err, true
	}
	return r.payload, r.status, r.err
}

// Cancel abandons an incomplete request (MPI_Cancel); the message, if it
// ever arrives, stays in the mailbox for other receivers.
func (r *Request) Cancel() {
	if !r.done {
		r.cancelled = true
	}
}

// Payload returns the received bytes after Test reported completion.
func (r *Request) Payload() ([]byte, Status, error) { return r.payload, r.status, r.err }
