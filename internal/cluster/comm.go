// Package cluster is the communication substrate that replaces MPI in
// this reproduction. The paper's engine is a hybrid MPI-OpenMP program;
// Go has neither, so cluster provides the same message-passing semantics
// on two transports:
//
//   - an in-process transport where every rank is a goroutine and message
//     delivery is a queue append (used for all experiments; goroutines
//     stand in for MPI ranks and worker-pool goroutines for OpenMP
//     threads);
//   - a TCP transport (see tcp.go) where each rank is an OS process,
//     used by cmd/annmaster and cmd/annworker for real multi-machine
//     deployments.
//
// The API mirrors the MPI subset the paper uses: Send/Recv with tags and
// wildcards, non-blocking Isend/Irecv with Test/Wait (Algorithm 4's
// polling loop), collectives (Barrier, Bcast, Gatherv, AlltoAllv,
// Allreduce — Algorithm 2's shuffle is an AlltoAllv), communicator Split
// for the recursive halving in the distributed VP-tree construction, and
// one-sided windows with atomic accumulate (window.go) standing in for
// MPI_Win_lock/MPI_Get_accumulate.
//
// All traffic is metered (message and byte counters per world) so the
// cost model can price communication the way Figure 5 of the paper does.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Any is the wildcard source or tag for Recv/Irecv/Probe, mirroring
// MPI_ANY_SOURCE / MPI_ANY_TAG.
const Any = -1

// Reserved internal tags. User tags must be non-negative.
const (
	tagBarrier   = -2
	tagBcast     = -3
	tagGather    = -4
	tagScatter   = -5
	tagA2A       = -6
	tagReduce    = -7
	tagWindow    = -8
	tagSplit     = -9
	tagHeartbeat = -10 // TCP liveness probe; never enters a mailbox
)

// Envelope is one message in flight.
type Envelope struct {
	Comm    uint64 // communicator ID: messages only match within a communicator
	From    int32  // world rank of the sender
	Tag     int32
	Payload []byte
}

// mailbox is one rank's incoming queue: an unbounded FIFO with
// predicate-matching receive, which is what lets wildcard and tagged
// receives coexist (collectives, window traffic and user messages all
// flow through the same box, matched by communicator and tag). It also
// carries this rank's local view of peer liveness: transports mark world
// ranks down, which wakes waiting receivers so pending matching receives
// can fail fast with ErrPeerDown instead of blocking forever.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Envelope
	closed bool
	down   map[int32]bool // world ranks this rank believes dead
	st     *Stats         // depth accounting; may be nil in unit tests
}

func newMailbox(st *Stats) *mailbox {
	m := &mailbox{st: st}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e Envelope) {
	m.mu.Lock()
	if !m.closed {
		m.q = append(m.q, e)
		if m.st != nil {
			m.st.noteDepth(int64(len(m.q)))
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// markDown records that a world rank died and wakes every waiter so
// receives that can no longer complete fail promptly.
func (m *mailbox) markDown(rank int32) {
	m.mu.Lock()
	if m.down == nil {
		m.down = make(map[int32]bool)
	}
	m.down[rank] = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) isDown(rank int32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[rank]
}

// downSet returns a snapshot of the dead world ranks.
func (m *mailbox) downSet() []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int32, 0, len(m.down))
	for r := range m.down {
		out = append(out, r)
	}
	return out
}

// takeOpts controls a matching receive beyond the basic block/poll pair:
// an absolute deadline, the set of world ranks that could still produce a
// match (all dead -> ErrPeerDown), and extra ranks to watch (any dead ->
// ErrPeerDown, used by the master to react to a worker death while
// receiving from the wildcard source).
type takeOpts struct {
	block    bool
	deadline time.Time // zero means no deadline
	senders  []int32   // candidate sender world ranks; nil = unconstrained
	watch    []int32   // world ranks whose death aborts the receive
}

// take removes and returns the first queued envelope matching pred. With
// block=false it returns ok=false immediately when nothing matches; with
// block=true it waits. A closed mailbox yields err.
func (m *mailbox) take(pred func(*Envelope) bool, block bool) (Envelope, bool, error) {
	return m.takeWith(pred, takeOpts{block: block})
}

func (m *mailbox) takeWith(pred func(*Envelope) bool, o takeOpts) (Envelope, bool, error) {
	if !o.deadline.IsZero() {
		if d := time.Until(o.deadline); d > 0 {
			// The callback locks the mutex so the broadcast cannot slip
			// into the window between a deadline check and cond.Wait.
			timer := time.AfterFunc(d, func() {
				m.mu.Lock()
				defer m.mu.Unlock()
				m.cond.Broadcast()
			})
			defer timer.Stop()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.q {
			if pred(&m.q[i]) {
				e := m.q[i]
				m.q = append(m.q[:i], m.q[i+1:]...)
				if m.st != nil {
					m.st.noteDepth(int64(len(m.q)))
				}
				return e, true, nil
			}
		}
		if m.closed {
			return Envelope{}, false, ErrClosed
		}
		if len(m.down) > 0 {
			for _, w := range o.watch {
				if m.down[w] {
					return Envelope{}, false, &PeerDownError{Rank: int(w)}
				}
			}
			if len(o.senders) > 0 {
				allDown, first := true, int32(-1)
				for _, s := range o.senders {
					if !m.down[s] {
						allDown = false
						break
					}
					if first < 0 {
						first = s
					}
				}
				if allDown {
					return Envelope{}, false, &PeerDownError{Rank: int(first)}
				}
			}
		}
		if !o.deadline.IsZero() && !time.Now().Before(o.deadline) {
			return Envelope{}, false, ErrTimeout
		}
		if !o.block {
			return Envelope{}, false, nil
		}
		m.cond.Wait()
	}
}

// ErrClosed is returned when communicating on a torn-down world.
var ErrClosed = errors.New("cluster: world closed")

// ErrTimeout is returned by deadline receives when the deadline expires
// before a matching message arrives.
var ErrTimeout = errors.New("cluster: receive timed out")

// ErrPeerDown is the sentinel matched (via errors.Is) by PeerDownError,
// the typed error deadline- and liveness-aware operations return when a
// peer has been detected dead.
var ErrPeerDown = errors.New("cluster: peer down")

// PeerDownError reports that a peer rank was detected dead (read-loop
// EOF, heartbeat timeout, or explicit kill). Rank is a communicator rank
// when returned from a Comm receive, and a world rank when surfaced
// straight from a transport send.
type PeerDownError struct {
	Rank int
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("cluster: peer rank %d is down", e.Rank)
}

// Is makes errors.Is(err, ErrPeerDown) succeed.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// transport delivers envelopes between world ranks.
type transport interface {
	// send delivers e to world rank "to".
	send(to int, e Envelope) error
	// box returns this rank's mailbox.
	box() *mailbox
	// registry returns the shared-object registry if all ranks share an
	// address space (in-process transport), else nil.
	registry() *registry
	// stats returns the world-level traffic accounting.
	stats() *Stats
}

// Comm is a communicator: a group of ranks that can exchange messages
// isolated from other communicators, like an MPI_Comm.
type Comm struct {
	t     transport
	id    uint64
	rank  int   // rank within this communicator
	group []int // group[i] = world rank of communicator rank i

	splitSeq uint64 // per-instance collective-order counter for Split/Window IDs
	winSeq   uint64
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the world rank behind communicator rank r.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// localOf maps a world rank to a communicator rank (-1 if absent).
func (c *Comm) localOf(world int32) int {
	for i, w := range c.group {
		if w == int(world) {
			return i
		}
	}
	return -1
}

// Status describes a received message.
type Status struct {
	Source int // communicator rank of the sender
	Tag    int
	Bytes  int
}

// Send delivers payload to communicator rank "to" with the given tag.
// It corresponds to MPI_Send; with the unbounded mailboxes of this
// runtime it never blocks, so MPI_Isend maps to it too.
func (c *Comm) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= len(c.group) {
		return fmt.Errorf("cluster: send to invalid rank %d (size %d)", to, c.Size())
	}
	if tag < 0 {
		return fmt.Errorf("cluster: user tags must be non-negative, got %d", tag)
	}
	return c.sendInternal(to, tag, payload)
}

func (c *Comm) sendInternal(to, tag int, payload []byte) error {
	s := c.t.stats()
	s.count(len(payload))
	err := c.t.send(c.group[to], Envelope{
		Comm:    c.id,
		From:    int32(c.group[c.rank]),
		Tag:     int32(tag),
		Payload: payload,
	})
	if err != nil {
		return c.mapDown(err)
	}
	return nil
}

// match builds the receive predicate for (from, tag) with wildcards.
func (c *Comm) match(from, tag int) func(*Envelope) bool {
	return func(e *Envelope) bool {
		if e.Comm != c.id {
			return false
		}
		if tag != Any && int(e.Tag) != tag {
			return false
		}
		if from != Any {
			return int(e.From) == c.group[from]
		}
		// wildcard source: sender must still be a member
		return c.localOf(e.From) >= 0
	}
}

// matchTags builds the receive predicate for (from, any of tags).
func (c *Comm) matchTags(from int, tags []int) func(*Envelope) bool {
	return func(e *Envelope) bool {
		if e.Comm != c.id {
			return false
		}
		hit := false
		for _, t := range tags {
			if int(e.Tag) == t {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
		if from != Any {
			return int(e.From) == c.group[from]
		}
		return c.localOf(e.From) >= 0
	}
}

// sendersOf lists the world ranks that could satisfy a receive from
// "from": the one rank, or every other member for the wildcard source.
func (c *Comm) sendersOf(from int) []int32 {
	if from != Any {
		return []int32{int32(c.group[from])}
	}
	out := make([]int32, 0, len(c.group)-1)
	for i, w := range c.group {
		if i != c.rank {
			out = append(out, int32(w))
		}
	}
	return out
}

// mapDown rewrites a transport-level PeerDownError (world rank) into the
// caller's communicator rank space.
func (c *Comm) mapDown(err error) error {
	var pd *PeerDownError
	if errors.As(err, &pd) {
		if l := c.localOf(int32(pd.Rank)); l >= 0 {
			return &PeerDownError{Rank: l}
		}
	}
	return err
}

// Recv blocks until a message from "from" (or Any) with tag "tag" (or
// Any) arrives and returns its payload. It fails with ErrPeerDown when
// every rank that could produce a match has been detected dead.
func (c *Comm) Recv(from, tag int) ([]byte, Status, error) {
	e, _, err := c.t.box().takeWith(c.match(from, tag), takeOpts{block: true, senders: c.sendersOf(from)})
	if err != nil {
		return nil, Status{}, c.mapDown(err)
	}
	return e.Payload, c.status(e), nil
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout when no
// matching message arrives within timeout (timeout <= 0 means no
// deadline) and ErrPeerDown when the sender is detected dead.
func (c *Comm) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, Status, error) {
	o := takeOpts{block: true, senders: c.sendersOf(from)}
	if timeout > 0 {
		o.deadline = time.Now().Add(timeout)
	}
	e, _, err := c.t.box().takeWith(c.match(from, tag), o)
	if err != nil {
		return nil, Status{}, c.mapDown(err)
	}
	return e.Payload, c.status(e), nil
}

// RecvTags blocks until a message from "from" (or Any) carrying any of
// the listed user tags arrives. Worker threads use it to wait for either
// a query or the End-of-Queries command with one blocking call instead
// of an MPI_Test poll loop.
func (c *Comm) RecvTags(from int, tags ...int) ([]byte, Status, error) {
	return c.RecvTagsWatch(from, 0, nil, tags...)
}

// RecvTagsTimeout is RecvTags with a deadline (timeout <= 0 disables it).
func (c *Comm) RecvTagsTimeout(from int, timeout time.Duration, tags ...int) ([]byte, Status, error) {
	return c.RecvTagsWatch(from, timeout, nil, tags...)
}

// RecvTagsWatch is the deadline- and failure-aware receive the serving
// protocol is built on: it waits for a message from "from" (or Any)
// carrying one of tags, for at most timeout (<= 0 means forever), and
// additionally aborts with a *PeerDownError as soon as any of the
// watched communicator ranks is detected dead — even if other senders
// could still produce messages. The master watches the workers it is
// collecting from; workers watch the master.
func (c *Comm) RecvTagsWatch(from int, timeout time.Duration, watch []int, tags ...int) ([]byte, Status, error) {
	o := takeOpts{block: true, senders: c.sendersOf(from)}
	if timeout > 0 {
		o.deadline = time.Now().Add(timeout)
	}
	for _, w := range watch {
		o.watch = append(o.watch, int32(c.group[w]))
	}
	e, _, err := c.t.box().takeWith(c.matchTags(from, tags), o)
	if err != nil {
		return nil, Status{}, c.mapDown(err)
	}
	return e.Payload, c.status(e), nil
}

// IsDown reports whether the given communicator rank has been detected
// dead by this rank's failure detector.
func (c *Comm) IsDown(rank int) bool {
	return c.t.box().isDown(int32(c.group[rank]))
}

// Down returns the communicator ranks currently believed dead, sorted.
func (c *Comm) Down() []int {
	var out []int
	for _, w := range c.t.box().downSet() {
		if l := c.localOf(w); l >= 0 {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

// TryRecv is a non-blocking Recv: ok=false when no matching message is
// queued (MPI_Iprobe + MPI_Recv).
func (c *Comm) TryRecv(from, tag int) ([]byte, Status, bool, error) {
	e, ok, err := c.t.box().take(c.match(from, tag), false)
	if err != nil {
		return nil, Status{}, false, err
	}
	if !ok {
		return nil, Status{}, false, nil
	}
	return e.Payload, c.status(e), true, nil
}

// Probe reports whether a matching message is queued without consuming
// it.
func (c *Comm) Probe(from, tag int) bool {
	box := c.t.box()
	box.mu.Lock()
	defer box.mu.Unlock()
	pred := c.match(from, tag)
	for i := range box.q {
		if pred(&box.q[i]) {
			return true
		}
	}
	return false
}

func (c *Comm) status(e Envelope) Status {
	return Status{Source: c.localOf(e.From), Tag: int(e.Tag), Bytes: len(e.Payload)}
}

// Request is a non-blocking receive in progress, in the style of
// MPI_Irecv + MPI_Test/MPI_Wait. (Sends complete immediately in this
// runtime, so only receives need requests.)
type Request struct {
	c         *Comm
	from, tag int
	done      bool
	payload   []byte
	status    Status
	err       error
	cancelled bool
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{c: c, from: from, tag: tag}
}

// Test polls the request; it returns true once a message has been
// matched (payload available via Payload).
func (r *Request) Test() bool {
	if r.done || r.cancelled {
		return r.done
	}
	p, st, ok, err := r.c.TryRecv(r.from, r.tag)
	if err != nil {
		r.err, r.done = err, true
		return true
	}
	if ok {
		r.payload, r.status, r.done = p, st, true
	}
	return r.done
}

// Wait blocks until the request completes.
func (r *Request) Wait() ([]byte, Status, error) {
	if r.cancelled {
		return nil, Status{}, errors.New("cluster: request cancelled")
	}
	if !r.done {
		p, st, err := r.c.Recv(r.from, r.tag)
		r.payload, r.status, r.err, r.done = p, st, err, true
	}
	return r.payload, r.status, r.err
}

// Cancel abandons an incomplete request (MPI_Cancel); the message, if it
// ever arrives, stays in the mailbox for other receivers.
func (r *Request) Cancel() {
	if !r.done {
		r.cancelled = true
	}
}

// Payload returns the received bytes after Test reported completion.
func (r *Request) Payload() ([]byte, Status, error) { return r.payload, r.status, r.err }
