package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Fault injection: a transport wrapper that drops or delays outgoing
// messages according to a seeded plan, so failure-handling code paths
// can be exercised deterministically on either transport (the in-process
// World or TCP). Combined with World.KillRank / TCPNode.Close it covers
// the failure modes the serving protocol must survive: lost messages,
// slow links, and dead ranks.

// FaultPlan describes which sends are disturbed and how.
type FaultPlan struct {
	// Seed makes the drop/delay decisions reproducible.
	Seed int64
	// DropProb is the probability an eligible message is silently
	// dropped (never delivered).
	DropProb float64
	// DelayProb is the probability an eligible message is delayed by a
	// uniform random duration in (0, MaxDelay] before delivery.
	DelayProb float64
	// MaxDelay bounds injected delays; default 10ms when DelayProb > 0.
	MaxDelay time.Duration
	// Tags restricts injection to the listed user tags. Nil means all
	// user messages are eligible. Internal (negative) tags are never
	// disturbed: faulting a collective or window message models a
	// transport bug, not a process failure.
	Tags map[int]bool
}

type faultTransport struct {
	inner transport
	plan  FaultPlan

	mu  sync.Mutex
	rng *rand.Rand
}

// WithFaults returns a Comm whose sends pass through a fault-injecting
// wrapper around c's transport. Receives and liveness are untouched; the
// returned Comm shares c's mailbox, registry, and stats, so the wrapped
// and unwrapped communicators are interchangeable on the same rank.
func WithFaults(c *Comm, plan FaultPlan) *Comm {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 10 * time.Millisecond
	}
	ft := &faultTransport{
		inner: c.t,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
	group := make([]int, len(c.group))
	copy(group, c.group)
	return &Comm{t: ft, id: c.id, rank: c.rank, group: group}
}

func (f *faultTransport) send(to int, e Envelope) error {
	if e.Tag >= 0 && (f.plan.Tags == nil || f.plan.Tags[int(e.Tag)]) {
		f.mu.Lock()
		drop := f.rng.Float64() < f.plan.DropProb
		var delay time.Duration
		if !drop && f.rng.Float64() < f.plan.DelayProb {
			delay = time.Duration(1 + f.rng.Int63n(int64(f.plan.MaxDelay)))
		}
		f.mu.Unlock()
		if drop {
			f.inner.stats().faultDropped.Add(1)
			return nil
		}
		if delay > 0 {
			f.inner.stats().faultDelayed.Add(1)
			// Sleeping inline (rather than handing off to a goroutine)
			// preserves the per-pair FIFO guarantee the protocol
			// depends on.
			time.Sleep(delay)
		}
	}
	return f.inner.send(to, e)
}

func (f *faultTransport) box() *mailbox       { return f.inner.box() }
func (f *faultTransport) registry() *registry { return f.inner.registry() }
func (f *faultTransport) stats() *Stats       { return f.inner.stats() }
