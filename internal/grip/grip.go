// Package grip implements a GRIP-style multi-store k-NN index (Zhang &
// He, CIKM 2019 — reference [15] of the paper): a two-layer design whose
// first layer is a memory-resident graph index over compressed
// (product-quantised) vectors that fetches r > k candidates, and whose
// second layer validates those candidates against the full-precision
// vectors kept in a larger, slower store (disk in GRIP; a file-backed or
// in-memory Store here).
//
// The paper positions its distributed engine against this single-node
// capacity-optimised design: GRIP reaches high recall with very low
// memory, but is bounded by one machine's resources. The grip experiment
// quantifies the recall-vs-r trade-off the two-layer validation buys
// over the bare compressed index.
package grip

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/hnsw"
	"repro/internal/ivfpq"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Store supplies full-precision vectors by row for second-layer
// validation. Implementations: MemStore (tests, small data) and
// FileStore (the "disk" of the multi-store design).
type Store interface {
	// Vector reads row i into dst (len dim) and returns dst.
	Vector(i int64, dst []float32) ([]float32, error)
	// Len returns the number of stored vectors.
	Len() int
	io.Closer
}

// MemStore keeps the full-precision vectors in memory.
type MemStore struct{ ds *vec.Dataset }

// NewMemStore wraps a dataset.
func NewMemStore(ds *vec.Dataset) *MemStore { return &MemStore{ds: ds} }

// Vector implements Store.
func (m *MemStore) Vector(i int64, dst []float32) ([]float32, error) {
	if i < 0 || int(i) >= m.ds.Len() {
		return nil, fmt.Errorf("grip: row %d out of range", i)
	}
	copy(dst, m.ds.At(int(i)))
	return dst, nil
}

// Len implements Store.
func (m *MemStore) Len() int { return m.ds.Len() }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore reads full-precision vectors from a flat binary file of
// float32 rows — real second-layer IO, like GRIP's SSD store.
type FileStore struct {
	f   *os.File
	dim int
	n   int
}

// WriteStoreFile writes ds as a flat row-major float32 file usable by
// OpenFileStore.
func WriteStoreFile(path string, ds *vec.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	row := make([]byte, 4*ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		for j, x := range ds.At(i) {
			binary.LittleEndian.PutUint32(row[4*j:], math.Float32bits(x))
		}
		if _, err := bw.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenFileStore opens a file written by WriteStoreFile.
func OpenFileStore(path string, dim int) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	rowBytes := int64(4 * dim)
	if st.Size()%rowBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("grip: file size %d not a multiple of row size %d", st.Size(), rowBytes)
	}
	return &FileStore{f: f, dim: dim, n: int(st.Size() / rowBytes)}, nil
}

// Vector implements Store with one positioned read.
func (s *FileStore) Vector(i int64, dst []float32) ([]float32, error) {
	if i < 0 || int(i) >= s.n {
		return nil, fmt.Errorf("grip: row %d out of range", i)
	}
	buf := make([]byte, 4*s.dim)
	if _, err := s.f.ReadAt(buf, i*int64(4*s.dim)); err != nil {
		return nil, err
	}
	for j := 0; j < s.dim; j++ {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
	}
	return dst, nil
}

// Len implements Store.
func (s *FileStore) Len() int { return s.n }

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Config sizes the two layers.
type Config struct {
	// PQ configures the compression of the in-memory layer.
	PQ ivfpq.Config
	// HNSW configures the graph over the reconstructed vectors.
	HNSW hnsw.Config
	// R is the default first-layer candidate count (r > k; default 4*k
	// at search time if zero).
	R    int
	Seed int64
}

// Index is a built GRIP-style index. The graph layer holds only
// PQ-reconstructed vectors; full precision lives in the Store.
type Index struct {
	cfg   Config
	dim   int
	graph *hnsw.Graph // over reconstructed vectors; IDs are store rows
	store Store
	// CompressedBytes approximates the memory footprint of layer one.
	CompressedBytes int64
}

// Stats reports one search's work.
type Stats struct {
	GraphDistComps int64 // approximate-layer distance computations
	Validations    int64 // full-precision re-ranks (store reads)
}

// Build trains PQ on ds, reconstructs every vector from its code, builds
// the HNSW layer over the reconstructions, and attaches store for
// validation. IDs in ds must equal store rows (0..n-1 order preserved).
func Build(ds *vec.Dataset, store Store, cfg Config) (*Index, error) {
	if ds.Len() != store.Len() {
		return nil, fmt.Errorf("grip: dataset has %d rows, store %d", ds.Len(), store.Len())
	}
	if cfg.PQ.Seed == 0 {
		cfg.PQ.Seed = cfg.Seed
	}
	// Train PQ (coarse layer unused here: one list keeps the
	// reconstruction machinery simple and faithful to "PQ-compressed
	// vectors + graph" of GRIP's first layer).
	cfg.PQ.NList = 1
	pq, err := ivfpq.Build(ds, cfg.PQ)
	if err != nil {
		return nil, err
	}
	recon, err := pq.ReconstructAll()
	if err != nil {
		return nil, err
	}
	if cfg.HNSW.M == 0 {
		cfg.HNSW = hnsw.DefaultConfig(vec.L2)
	}
	cfg.HNSW.Seed = cfg.Seed
	g, _, err := hnsw.Build(recon, cfg.HNSW, 0)
	if err != nil {
		return nil, err
	}
	return &Index{
		cfg:             cfg,
		dim:             ds.Dim,
		graph:           g,
		store:           store,
		CompressedBytes: pq.MemoryBytes(),
	}, nil
}

// Search fetches r first-layer candidates and validates them against the
// full-precision store, returning the exact-reranked top k.
func (x *Index) Search(q []float32, k, r int) ([]topk.Result, Stats, error) {
	if len(q) != x.dim {
		return nil, Stats{}, fmt.Errorf("grip: query dim %d, index dim %d", len(q), x.dim)
	}
	if r <= 0 {
		r = x.cfg.R
	}
	if r <= 0 {
		r = 4 * k
	}
	if r < k {
		r = k
	}
	var st Stats
	cands, gst, err := x.graph.SearchEf(q, r, 2*r)
	if err != nil {
		return nil, st, err
	}
	st.GraphDistComps = gst.DistComps

	col := topk.New(k)
	buf := make([]float32, x.dim)
	for _, c := range cands {
		full, err := x.store.Vector(c.ID, buf)
		if err != nil {
			return nil, st, err
		}
		st.Validations++
		col.Push(c.ID, vec.L2Distance(q, full))
	}
	return col.Results(), st, nil
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return x.graph.Len() }
