package grip

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vec"
)

func workload(t testing.TB, n int) (*vec.Dataset, *vec.Dataset, [][]int32) {
	t.Helper()
	g, err := dataset.GenerateClusters(dataset.ClusterConfig{
		N: n, Dim: 32, Clusters: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.PerturbedQueries(g.Data, 40, 0.1, 2)
	truth := bruteforce.GroundTruth(g.Data, qs, 10, vec.L2)
	return g.Data, qs, truth
}

func recallAt(t *testing.T, x *Index, qs *vec.Dataset, truth [][]int32, r int) float64 {
	t.Helper()
	res := make([][]topk.Result, qs.Len())
	for i := 0; i < qs.Len(); i++ {
		rs, _, err := x.Search(qs.At(i), 10, r)
		if err != nil {
			t.Fatal(err)
		}
		res[i] = rs
	}
	return metrics.MeanRecall(res, truth)
}

func TestMemStoreRoundtrip(t *testing.T) {
	ds, _, _ := workload(t, 100)
	s := NewMemStore(ds)
	if s.Len() != 100 {
		t.Fatalf("Len %d", s.Len())
	}
	buf := make([]float32, ds.Dim)
	got, err := s.Vector(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if got[j] != ds.At(7)[j] {
			t.Fatal("vector mismatch")
		}
	}
	if _, err := s.Vector(-1, buf); err == nil {
		t.Error("want range error")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	ds, _, _ := workload(t, 200)
	path := t.TempDir() + "/store.bin"
	if err := WriteStoreFile(path, ds); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(path, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 200 {
		t.Fatalf("Len %d", s.Len())
	}
	buf := make([]float32, ds.Dim)
	for _, i := range []int64{0, 42, 199} {
		got, err := s.Vector(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != ds.At(int(i))[j] {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
	if _, err := s.Vector(200, buf); err == nil {
		t.Error("want range error")
	}
	if _, err := OpenFileStore(path, ds.Dim+1); err == nil {
		t.Error("want size-mismatch error")
	}
	if _, err := OpenFileStore(t.TempDir()+"/missing", 4); err == nil {
		t.Error("want open error")
	}
}

func TestValidationLiftsRecall(t *testing.T) {
	ds, qs, truth := workload(t, 5000)
	x, err := Build(ds.Clone(), NewMemStore(ds), Config{
		PQ:   ivfpq.Config{M: 8},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != ds.Len() {
		t.Fatalf("Len %d", x.Len())
	}
	if x.CompressedBytes <= 0 || x.CompressedBytes > ds.Bytes()/2 {
		t.Errorf("compression: %d vs raw %d", x.CompressedBytes, ds.Bytes())
	}
	rSmall := recallAt(t, x, qs, truth, 10)
	rBig := recallAt(t, x, qs, truth, 100)
	if rBig < rSmall {
		t.Errorf("more candidates should not hurt: r=10 %.3f, r=100 %.3f", rSmall, rBig)
	}
	if rBig < 0.8 {
		t.Errorf("validated recall %.3f too low", rBig)
	}
}

func TestSearchWithFileStore(t *testing.T) {
	ds, qs, truth := workload(t, 2000)
	path := t.TempDir() + "/fs.bin"
	if err := WriteStoreFile(path, ds); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileStore(path, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	x, err := Build(ds.Clone(), fs, Config{PQ: ivfpq.Config{M: 8}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallAt(t, x, qs, truth, 80); r < 0.7 {
		t.Errorf("file-store recall %.3f", r)
	}
	// stats populated
	_, st, err := x.Search(qs.At(0), 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.GraphDistComps == 0 || st.Validations == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestBuildErrors(t *testing.T) {
	ds, _, _ := workload(t, 100)
	small, _, _ := workload(t, 50)
	if _, err := Build(ds, NewMemStore(small), Config{PQ: ivfpq.Config{M: 8}}); err == nil {
		t.Error("want length-mismatch error")
	}
	x, err := Build(ds.Clone(), NewMemStore(ds), Config{PQ: ivfpq.Config{M: 8}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Search(make([]float32, 3), 5, 10); err == nil {
		t.Error("want dim error")
	}
	// default r paths
	if _, _, err := x.Search(ds.At(0), 5, 0); err != nil {
		t.Error(err)
	}
}

func TestDefaultRFallbacks(t *testing.T) {
	ds, _, _ := workload(t, 300)
	// configured default R
	x, err := Build(ds.Clone(), NewMemStore(ds), Config{PQ: ivfpq.Config{M: 8}, R: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rs, st, err := x.Search(ds.At(0), 5, 0) // r=0 -> cfg.R
	if err != nil || len(rs) == 0 {
		t.Fatalf("%v %v", rs, err)
	}
	if st.Validations == 0 || st.Validations > 25 {
		t.Errorf("validations %d, want <= 25", st.Validations)
	}
	// r < k clamps up to k
	rs, _, err = x.Search(ds.At(0), 10, 3)
	if err != nil || len(rs) != 10 {
		t.Fatalf("clamp: %d results, %v", len(rs), err)
	}
}

func TestWriteStoreFileErrors(t *testing.T) {
	ds, _, _ := workload(t, 10)
	if err := WriteStoreFile("/nonexistent-dir/x.bin", ds); err == nil {
		t.Error("want create error")
	}
}
