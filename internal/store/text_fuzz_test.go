package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzTextRecord round-trips RecordUpsertText through the WAL codec
// with fuzzed fields: encode → decode must recover every field exactly,
// and re-encoding the decoded record must reproduce the original frame
// byte-for-byte (the crash-recovery exactness argument leans on replay
// seeing precisely what was written).
func FuzzTextRecord(f *testing.F) {
	f.Add(uint64(1), int64(42), 2, uint8(1), "hello bm25 world", []byte{0, 0, 128, 63})
	f.Add(uint64(9), int64(-7), 0, uint8(0), "", []byte{})
	f.Add(uint64(1<<40), int64(math.MaxInt64), 65535, uint8(255), "ünïcode Ω 帽子\x00\xff", []byte{1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, seq uint64, id int64, part int, level uint8, text string, vecBytes []byte) {
		if len(text) > MaxTextBytes {
			text = text[:MaxTextBytes]
		}
		vec := make([]float32, len(vecBytes)/4)
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(vecBytes[4*i:]))
		}
		r := Record{
			Seq:   seq,
			Type:  RecordUpsertText,
			Part:  part & 0xFFFF,
			Level: int(level),
			ID:    id,
			Vec:   vec,
			Text:  text,
		}
		frame := encodeRecord(r)
		got, err := decodePayload(frame[8:])
		if err != nil {
			t.Fatalf("decode of freshly encoded record failed: %v", err)
		}
		if got.Seq != r.Seq || got.Type != r.Type || got.Part != r.Part ||
			got.Level != r.Level || got.ID != r.ID || got.Text != r.Text {
			t.Fatalf("field round-trip: %+v -> %+v", r, got)
		}
		if len(got.Vec) != len(r.Vec) {
			t.Fatalf("vec length %d -> %d", len(r.Vec), len(got.Vec))
		}
		for i := range r.Vec {
			if math.Float32bits(got.Vec[i]) != math.Float32bits(r.Vec[i]) {
				t.Fatalf("vec[%d] bits %08x -> %08x", i,
					math.Float32bits(r.Vec[i]), math.Float32bits(got.Vec[i]))
			}
		}
		if again := encodeRecord(got); !bytes.Equal(again, frame) {
			t.Fatal("re-encode of decoded record is not byte-identical")
		}

		// Truncating or extending the payload must be rejected: the text
		// length field makes the record size exact, not a minimum.
		if len(frame) > 8 {
			if _, err := decodePayload(frame[8 : len(frame)-1]); err == nil {
				t.Fatal("truncated payload decoded without error")
			}
		}
		padded := append(append([]byte(nil), frame[8:]...), 0)
		if _, err := decodePayload(padded); err == nil {
			t.Fatal("padded payload decoded without error")
		}
	})
}
