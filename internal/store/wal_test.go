package store

import (
	"os"
	"path/filepath"
	"repro/internal/fsx"
	"testing"
	"time"
)

func walOpts() Options {
	o := Options{SyncEvery: 1, SyncInterval: -1, SegmentBytes: 1 << 20, CompactRatio: -1}
	o.fill()
	return o
}

func testLogf(t *testing.T) func(string, ...any) {
	return func(f string, args ...any) { t.Logf(f, args...) }
}

func appendN(t *testing.T, w *wal, from, n int, dim int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(from+i) + float32(j)/10
		}
		rec := Record{Seq: uint64(from + i), Type: RecordUpsert, Part: i % 3, Level: i % 2, ID: int64(1000 + from + i), Vec: v}
		if i%4 == 3 {
			rec = Record{Seq: uint64(from + i), Type: RecordDelete, ID: int64(from + i)}
		}
		if err := w.append(rec); err != nil {
			t.Fatalf("append seq %d: %v", from+i, err)
		}
	}
}

func collect(t *testing.T, dir string) []Record {
	t.Helper()
	var recs []Record
	if err := ScanWAL(dir, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs
}

func TestWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(filepath.Join(dir, "wal"), 1, walOpts(), nil, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 20, 4)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir)
	if len(recs) != 20 {
		t.Fatalf("got %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	// spot-check an upsert payload
	r := recs[0]
	if r.Type != RecordUpsert || r.ID != 1001 || len(r.Vec) != 4 || r.Vec[1] != 1.1 {
		t.Fatalf("bad upsert roundtrip: %+v", r)
	}
	if recs[3].Type != RecordDelete || recs[3].ID != 4 {
		t.Fatalf("bad delete roundtrip: %+v", recs[3])
	}
}

func TestWALTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := openWAL(walDir, 1, walOpts(), nil, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 10, 8)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(fsx.OS{}, walDir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	// Tear the final record: chop a few bytes off the tail.
	fi, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0].path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	// A raw scan reports the tear...
	err = ScanWAL(dir, func(Record) error { return nil })
	if _, ok := err.(*CorruptError); !ok {
		t.Fatalf("want CorruptError from torn scan, got %v", err)
	}
	// ...and reopening repairs it: 9 whole records survive, appends resume.
	w2, err := openWAL(walDir, 11, walOpts(), nil, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w2, 10, 1, 8) // reuse seq 10 for the retried record
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir)
	if len(recs) != 10 {
		t.Fatalf("after repair+append want 10 records, got %d", len(recs))
	}
	if recs[9].Seq != 10 {
		t.Fatalf("resumed record has seq %d", recs[9].Seq)
	}
}

func TestWALCRCCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, err := openWAL(walDir, 1, walOpts(), nil, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5, 4)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(fsx.OS{}, walDir)
	// Flip one payload byte in the middle of the file.
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ScanWAL(dir, func(Record) error { return nil })
	ce, ok := err.(*CorruptError)
	if !ok {
		t.Fatalf("want CorruptError, got %v", err)
	}
	if ce.Offset == 0 {
		t.Error("corruption offset should be past the header")
	}
}

func TestWALRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	opts := walOpts()
	opts.SegmentBytes = 256 // force rotation every few records
	var stats Stats
	w, err := openWAL(walDir, 1, opts, &stats, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 40, 8)
	segs, _ := listSegments(fsx.OS{}, walDir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments after rotation, got %d", len(segs))
	}
	if stats.WALRotations.Load() == 0 {
		t.Error("rotations not counted")
	}
	recs := collect(t, dir)
	if len(recs) != 40 {
		t.Fatalf("got %d records across segments, want 40", len(recs))
	}

	// Truncating through the middle drops fully covered segments only:
	// every record past the watermark must survive.
	mid := segs[len(segs)/2].firstSeq - 1
	if err := w.truncateThrough(mid); err != nil {
		t.Fatal(err)
	}
	left, _ := listSegments(fsx.OS{}, walDir)
	if len(left) >= len(segs) {
		t.Fatalf("truncation removed nothing: %d -> %d segments", len(segs), len(left))
	}
	seen := make(map[uint64]bool)
	for _, r := range collect(t, dir) {
		seen[r.Seq] = true
	}
	for s := mid + 1; s <= 40; s++ {
		if !seen[s] {
			t.Fatalf("record seq %d (past watermark %d) lost by truncation", s, mid)
		}
	}

	// The active segment never goes away.
	if err := w.truncateThrough(1 << 60); err != nil {
		t.Fatal(err)
	}
	left, _ = listSegments(fsx.OS{}, walDir)
	if len(left) != 1 {
		t.Fatalf("want only the active segment, got %d", len(left))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALGroupCommitTicker(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts()
	opts.SyncEvery = 1000 // never hit the count threshold
	opts.SyncInterval = 5 * time.Millisecond
	var stats Stats
	w, err := openWAL(filepath.Join(dir, "wal"), 1, opts, &stats, testLogf(t))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 3, 4)
	deadline := time.Now().Add(2 * time.Second)
	for stats.WALFsyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if stats.WALFsyncs.Load() == 0 {
		t.Error("background ticker never fsynced")
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
}
