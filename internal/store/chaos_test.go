package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/fsx"
)

// Storage chaos tests: the store under injected I/O failure. The
// crash-point harness at the bottom is the centerpiece — it kills the
// store at every filesystem operation the workload issues and proves
// recovery is exact.

// engineBytes builds a small engine once and returns its Save image, so
// per-crash-point runs reload it instead of re-running the HNSW build.
func engineBytes(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	e, _ := smallEngine(t, n, seed)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadEngineBytes(t testing.TB, b []byte) *core.Engine {
	t.Helper()
	e, err := core.LoadEngine(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func chaosOpts(fs fsx.FS) Options {
	return Options{SyncEvery: 1, SyncInterval: -1, CompactRatio: -1, FS: fs}
}

// fixedVec derives a deterministic unit-ish vector from an integer so
// chaos runs are replayable without sharing an RNG across runs.
func fixedVec(i int, dim int) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32((i*31+j*7)%17) / 8.5
	}
	return v
}

// TestWALPoisonedPermanently drives the fsyncgate and ENOSPC shapes:
// the first WAL I/O failure must poison the writer for good — typed
// error, no silent retry — while searches and checkpoints keep working.
func TestWALPoisonedPermanently(t *testing.T) {
	base := engineBytes(t, 300, 41)
	cases := []struct {
		name string
		rule fsx.Rule
		is   error // additionally expected in the chain
	}{
		{"fsync-fail-after", fsx.Rule{Op: fsx.OpSync, Nth: 4, After: true, Path: "wal"}, fsx.ErrInjected},
		{"write-enospc", fsx.Rule{Op: fsx.OpWrite, Nth: 4, Err: syscall.ENOSPC, Path: "wal"}, syscall.ENOSPC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := fsx.NewFaulty(fsx.OS{}, 1, tc.rule)
			d, err := Create(dir, loadEngineBytes(t, base), chaosOpts(fs))
			if err != nil {
				t.Fatal(err)
			}
			var failErr error
			acked := 0
			for i := 0; i < 12; i++ {
				if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
					failErr = err
					break
				}
				acked++
			}
			if failErr == nil {
				t.Fatal("injected fault never surfaced")
			}
			if !errors.Is(failErr, ErrWALFailed) {
				t.Fatalf("failure not typed ErrWALFailed: %v", failErr)
			}
			if !errors.Is(failErr, tc.is) {
				t.Fatalf("cause %v missing from chain: %v", tc.is, failErr)
			}
			// Poisoned means poisoned: mutations and syncs fail with the
			// typed error, and nothing retried the failed fsync behind our
			// back (exactly one fault consumed).
			if err := d.Upsert(fixedVec(99, 8), 999999); !errors.Is(err, ErrWALFailed) {
				t.Fatalf("upsert after poison: %v", err)
			}
			if err := d.Delete(5); !errors.Is(err, ErrWALFailed) {
				t.Fatalf("delete after poison: %v", err)
			}
			if err := d.Sync(); !errors.Is(err, ErrWALFailed) {
				t.Fatalf("sync after poison: %v", err)
			}
			if fs.Injected() != 1 {
				t.Fatalf("injected %d faults, want exactly 1 (no retries)", fs.Injected())
			}
			if d.Failed() == nil {
				t.Fatal("Failed() nil on a poisoned store")
			}
			st := d.Stats()
			if !st.WALFailed || st.WALFailures != 1 || st.WALFailReason == "" {
				t.Fatalf("stats don't report the failure: %+v", st)
			}
			// Reads are unaffected...
			if _, err := d.Engine().Search(fixedVec(1, 8), 5); err != nil {
				t.Fatalf("search on poisoned store: %v", err)
			}
			// ...and checkpointing still works: it is the escape hatch that
			// makes the in-memory state durable when the log's disk dies.
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("checkpoint on poisoned store: %v", err)
			}
			d.Close()

			d2, err := Open(dir, chaosOpts(nil))
			if err != nil {
				t.Fatalf("reopen after poisoned run: %v", err)
			}
			defer d2.Close()
			// Every acked record survived; the in-flight one may have too
			// (durable in the WAL even though its ack never arrived).
			if got := d2.Stats().LastSeq; got < uint64(acked) || got > uint64(acked)+1 {
				t.Fatalf("recovered seq %d, want %d acked (+at most 1 in-flight)", got, acked)
			}
		})
	}
}

// TestSnapshotQuarantineFallback corrupts the newest snapshot on disk
// and expects Open to quarantine it (*.corrupt) and recover from the
// previous generation plus a longer WAL replay, bit-for-bit.
func TestSnapshotQuarantineFallback(t *testing.T) {
	dir := t.TempDir()
	base := engineBytes(t, 300, 43)
	d, err := Create(dir, loadEngineBytes(t, base), chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil { // generations: [seq 20, seq 0]
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([][]float32, 8)
	for i := range qs {
		qs[i] = fixedVec(1000+i, 8)
	}
	want := queryResults(t, d.Engine(), qs, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the newest snapshot.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ann"))
	sort.Strings(snaps)
	newest := snaps[len(snaps)-1]
	corruptByte(t, newest, 1000)

	d2, err := Open(dir, chaosOpts(nil))
	if err != nil {
		t.Fatalf("open with corrupt newest snapshot should fall back: %v", err)
	}
	defer d2.Close()
	st := d2.Stats()
	if st.Quarantined != 1 || st.Fallbacks != 1 {
		t.Fatalf("quarantined=%d fallbacks=%d, want 1/1", st.Quarantined, st.Fallbacks)
	}
	if st.Replayed != 25 {
		t.Fatalf("replayed %d records from the fallback watermark, want 25", st.Replayed)
	}
	if _, err := os.Stat(newest + corruptSuffix); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place: %v", err)
	}
	if got := queryResults(t, d2.Engine(), qs, 10); !sameResults(want, got) {
		t.Fatal("fallback recovery diverged from pre-crash results")
	}
	// The store recovers its redundancy: the next checkpoint writes a
	// fresh generation.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestAllGenerationsCorruptFailsLoudly: with every snapshot generation
// corrupt there is nothing safe to serve; Open must refuse.
func TestAllGenerationsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	base := engineBytes(t, 300, 47)
	d, err := Create(dir, loadEngineBytes(t, base), chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ann"))
	for _, s := range snaps {
		corruptByte(t, s, 500)
	}
	_, err = Open(dir, chaosOpts(nil))
	if err == nil {
		t.Fatal("Open succeeded with every generation corrupt")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want a *CorruptError in the chain, got %v", err)
	}
}

// TestManifestCorruptionLoud: a manifest that fails its checksum (or is
// not JSON at all) is unrecoverable metadata loss and must fail Open
// with a typed error, never limp onward.
func TestManifestCorruptionLoud(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		d, err := Create(dir, loadEngineBytes(t, engineBytes(t, 300, 53)), chaosOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Upsert(fixedVec(1, 8), 100001); err != nil {
			t.Fatal(err)
		}
		d.Close()
		return dir
	}
	t.Run("crc-mismatch", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, manifestName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Tweak a byte inside the payload, keeping the JSON valid: the
		// envelope parses, the checksum does not.
		mutated := bytes.Replace(b, []byte(`"watermark"`), []byte(`"waterMark"`), 1)
		if bytes.Equal(mutated, b) {
			t.Fatal("test setup: payload key not found")
		}
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		assertCorruptOpen(t, dir, "CRC mismatch")
	})
	t.Run("not-json", func(t *testing.T) {
		dir := build(t)
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("@@torn@@"), 0o644); err != nil {
			t.Fatal(err)
		}
		assertCorruptOpen(t, dir, "not JSON")
	})
}

func assertCorruptOpen(t *testing.T, dir, label string) {
	t.Helper()
	_, err := Open(dir, chaosOpts(nil))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: want *CorruptError, got %v", label, err)
	}
	if ce.Path != filepath.Join(dir, manifestName) {
		t.Fatalf("%s: error blames %s", label, ce.Path)
	}
}

// TestOpenSweepsStaleTemps: *.tmp files from an interrupted atomic
// rename must be removed on Open and counted.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, loadEngineBytes(t, engineBytes(t, 300, 59)), chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	stale := []string{
		filepath.Join(dir, manifestName+".tmp"),
		filepath.Join(dir, "snap-00000000000000000099.ann.tmp"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("interrupted"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := Open(dir, chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Stats().TmpSwept; got != 2 {
		t.Fatalf("TmpSwept = %d, want 2", got)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s survived Open", p)
		}
	}
}

// TestMidWALCorruptionLoud distinguishes the two CRC-failure shapes:
// bitrot in an acked record with valid records after it must refuse to
// open (truncating there would silently drop the rest of the log),
// while a genuinely torn tail — garbage suffix, nothing valid after —
// is repaired by truncation as before.
func TestMidWALCorruptionLoud(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		d, err := Create(dir, loadEngineBytes(t, engineBytes(t, 200, 61)), chaosOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := d.Upsert(fixedVec(i, 8), int64(100_000+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(fsx.OS{}, filepath.Join(dir, "wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
		}
		return dir, segs[len(segs)-1].path
	}

	t.Run("bitrot-mid-log", func(t *testing.T) {
		dir, seg := build(t)
		// Flip a byte inside the first record's payload: nine acked
		// records follow it.
		corruptByte(t, seg, walHeaderLen+8+4)
		_, err := Open(dir, chaosOpts(nil))
		if err == nil {
			t.Fatal("Open repaired mid-log bitrot by truncation, dropping acked records")
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("Open error does not carry the CorruptError: %v", err)
		}
		if !strings.Contains(err.Error(), "refusing to repair") {
			t.Fatalf("error does not explain the refusal: %v", err)
		}
	})

	t.Run("torn-tail-still-repaired", func(t *testing.T) {
		dir, seg := build(t)
		// Tear the final record: chop the last 5 bytes off the segment.
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		d, err := Open(dir, chaosOpts(nil))
		if err != nil {
			t.Fatalf("torn tail no longer repaired: %v", err)
		}
		defer d.Close()
		// The torn record (the 10th upsert) is gone; the 9 before it
		// replayed.
		if got := d.Stats().Replayed; got != 9 {
			t.Fatalf("replayed %d records after tail repair, want 9", got)
		}
	})
}

func corruptByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// --- Crash-point harness -------------------------------------------------
//
// chaosRun replays one fixed workload against a store whose filesystem
// dies at a scripted operation, then recovers with a clean FS and
// checks exactness. The workload: open an existing store (4 records
// deep), 6 upserts, 2 deletes, a checkpoint, 4 more upserts.
//
// Exactness contract: every acknowledged mutation survives recovery,
// and at most the single unacknowledged in-flight mutation may
// additionally survive (it can be durable in the WAL even though its
// ack never arrived — the fsyncgate shape). Anything else — a lost ack,
// a phantom record, a diverged graph — fails the test.

type chaosOutcome struct {
	openFailed bool
	crashed    bool
}

func chaosRun(t *testing.T, base []byte, rule *fsx.Rule) chaosOutcome {
	t.Helper()
	dir := t.TempDir()

	// Setup with a clean FS: Create + 4 acknowledged records, closed
	// cleanly. preEng stays live as the oracle for the acked state.
	preEng := loadEngineBytes(t, base)
	d0, err := Create(dir, preEng, chaosOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d0.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d0.Close(); err != nil {
		t.Fatal(err)
	}
	ackSeq := uint64(4)

	// Chaos phase: the scripted fault fires somewhere in here.
	var rules []fsx.Rule
	if rule != nil {
		rules = append(rules, *rule)
	}
	fs := fsx.NewFaulty(fsx.OS{}, 1, rules...)
	out := chaosOutcome{}
	d, err := Open(dir, chaosOpts(fs))
	if err != nil {
		out.openFailed, out.crashed = true, true
	} else {
		preEng = d.Engine()
		step := func(fn func() error) bool {
			if out.crashed {
				return false
			}
			if err := fn(); err != nil {
				out.crashed = true
				return false
			}
			return true
		}
		mut := func(fn func() error) {
			if step(fn) {
				ackSeq++
			}
		}
		for i := 4; i < 10; i++ {
			i := i
			mut(func() error { return d.Upsert(fixedVec(i, 8), int64(100000+i)) })
		}
		mut(func() error { return d.Delete(100001) })
		mut(func() error { return d.Delete(7) })
		step(d.Checkpoint)
		for i := 10; i < 14; i++ {
			i := i
			mut(func() error { return d.Upsert(fixedVec(i, 8), int64(100000+i)) })
		}
		d.Close() // may error on a dead FS; the files are closed regardless
	}

	qs := make([][]float32, 6)
	for i := range qs {
		qs[i] = fixedVec(2000+i, 8)
	}
	want := queryResults(t, preEng, qs, 5)

	// Recovery with a clean FS, as a restarted process would see it. The
	// simulated crash left the directory in some prefix of the
	// workload's I/O; recovery must always succeed from it.
	d2, err := Open(dir, chaosOpts(nil))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer d2.Close()

	// At most one unacknowledged record may have landed durably.
	var extras []Record
	err = ScanWAL(dir, func(r Record) error {
		if r.Seq > ackSeq {
			extras = append(extras, r)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning recovered WAL: %v", err)
	}
	if len(extras) > 1 {
		t.Fatalf("%d unacknowledged records survived, want at most the in-flight one", len(extras))
	}
	if got := d2.Stats().LastSeq; got != ackSeq+uint64(len(extras)) {
		t.Fatalf("recovered seq %d, want %d acked + %d in-flight", got, ackSeq, len(extras))
	}
	got := queryResults(t, d2.Engine(), qs, 5)
	if !sameResults(want, got) {
		// Fold the in-flight record into the oracle; after that the match
		// must be exact.
		for _, r := range extras {
			switch r.Type {
			case RecordUpsert:
				if err := preEng.AddAt(r.Part, r.Vec, r.ID, r.Level); err != nil {
					t.Fatalf("applying in-flight record to oracle: %v", err)
				}
			case RecordDelete:
				preEng.Delete(r.ID)
			}
		}
		want = queryResults(t, preEng, qs, 5)
		if !sameResults(want, got) {
			t.Fatalf("recovered state diverges from acked state (+%d in-flight)", len(extras))
		}
	}
	return out
}

// TestCrashPointHarness discovers every filesystem operation the chaos
// workload issues, then re-runs it once per site with a simulated
// process death there — crash-before for every op kind, crash-after
// additionally for the completed-but-unacked sites (write, sync,
// rename). Recovery after each death must be exact.
func TestCrashPointHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is slow; skipping under -short")
	}
	base := engineBytes(t, 300, 61)

	// Discovery: fault-free run counts the ops.
	counter := fsx.NewFaulty(fsx.OS{}, 1)
	if out := chaosRun(t, base, nil); out.crashed || out.openFailed {
		t.Fatal("discovery run crashed without any fault")
	}
	// Re-run under the counter to tally sites (chaosRun builds its own
	// FS when given a rule; for counting we pass the ops through one).
	discover := func() map[fsx.Op]int {
		dir := t.TempDir()
		preEng := loadEngineBytes(t, base)
		d0, err := Create(dir, preEng, chaosOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := d0.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
				t.Fatal(err)
			}
		}
		d0.Close()
		d, err := Open(dir, chaosOpts(counter))
		if err != nil {
			t.Fatal(err)
		}
		for i := 4; i < 10; i++ {
			if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Delete(100001); err != nil {
			t.Fatal(err)
		}
		if err := d.Delete(7); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 10; i < 14; i++ {
			if err := d.Upsert(fixedVec(i, 8), int64(100000+i)); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		counts := map[fsx.Op]int{}
		for op := fsx.OpOpen; op <= fsx.OpSyncDir; op++ {
			counts[op] = counter.Count(op)
		}
		return counts
	}
	counts := discover()

	afterOps := map[fsx.Op]bool{fsx.OpWrite: true, fsx.OpSync: true, fsx.OpRename: true}
	sites, crashedSomewhere := 0, 0
	var names []string
	for op, n := range counts {
		if n == 0 {
			continue
		}
		names = append(names, fmt.Sprintf("%v×%d", op, n))
		for nth := 1; nth <= n; nth++ {
			variants := []bool{false}
			if afterOps[op] {
				variants = append(variants, true)
			}
			for _, after := range variants {
				rule := fsx.Rule{Op: op, Nth: nth, After: after, Crash: true}
				out := chaosRun(t, base, &rule)
				sites++
				if out.crashed {
					crashedSomewhere++
				}
			}
		}
	}
	sort.Strings(names)
	t.Logf("crash sweep: %d sites over ops {%s}; %d observed the crash in-workload",
		sites, strings.Join(names, " "), crashedSomewhere)
	if sites < 30 {
		t.Fatalf("only %d crash sites discovered; the workload should issue far more I/O", sites)
	}
	if crashedSomewhere == 0 {
		t.Fatal("no run observed its injected crash")
	}
}
