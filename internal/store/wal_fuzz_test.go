package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// fuzzSegment frames recs into a valid in-memory WAL segment.
func fuzzSegment(recs ...Record) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, walHeaderLen)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	buf.Write(hdr)
	for _, r := range recs {
		buf.Write(encodeRecord(r))
	}
	return buf.Bytes()
}

// FuzzReadRecord throws arbitrary bytes at the WAL record scanner. The
// framing contract under fuzzing:
//
//   - never panic, never allocate unboundedly (the length sanity cap);
//   - never deliver a record whose payload fails its CRC — every record
//     handed to the callback must re-encode to the exact frame bytes at
//     its offset, CRC included;
//   - the reported end offset is a valid truncation point: rescanning
//     the prefix up to it is clean and yields the same records
//     (truncate-repair is idempotent).
func FuzzReadRecord(f *testing.F) {
	valid := fuzzSegment(
		Record{Seq: 1, Type: RecordUpsert, Part: 2, Level: 1, ID: 42, Vec: []float32{1, 2, 3, 4}},
		Record{Seq: 2, Type: RecordDelete, ID: 7},
		Record{Seq: 3, Type: RecordUpsert, Part: 0, Level: 0, ID: -9, Vec: []float32{0.5}},
		Record{Seq: 4, Type: RecordUpsertTagged, Part: 1, Level: 0, ID: 11, Vec: []float32{1, 2},
			Tags: map[string]string{"lang": "en", "bucket": "hot"}},
		Record{Seq: 5, Type: RecordUpsertTagged, Part: 0, Level: 1, ID: 12, Vec: []float32{3}},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn payload
	f.Add(valid[:walHeaderLen+4])         // torn frame header
	f.Add(valid[:walHeaderLen])           // empty segment
	f.Add([]byte("ANNW"))                 // short header
	f.Add([]byte("XXXX\x01\x00\x00\x00")) // bad magic
	crcBroken := append([]byte(nil), valid...)
	crcBroken[walHeaderLen+9] ^= 0xFF // flip a payload byte under an intact CRC
	f.Add(crcBroken)
	lenBomb := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lenBomb[walHeaderLen:], 1<<31) // implausible length
	f.Add(lenBomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		off, err := scanRecords(bufio.NewReader(bytes.NewReader(data)), "fuzz", func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("scan error is not a *CorruptError: %v", err)
			}
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("end offset %d outside data of %d bytes", off, len(data))
		}

		// Every delivered record must re-encode to the exact bytes of its
		// frame — in particular its CRC must verify.
		cursor := int64(walHeaderLen)
		for i, r := range recs {
			frame := encodeRecord(r)
			end := cursor + int64(len(frame))
			if end > int64(len(data)) || !bytes.Equal(frame, data[cursor:end]) {
				t.Fatalf("record %d does not round-trip to its frame bytes at offset %d", i, cursor)
			}
			crc := binary.LittleEndian.Uint32(frame[4:])
			if got := crc32.Checksum(frame[8:], crcTable); got != crc {
				t.Fatalf("record %d delivered with failing CRC: frame %08x, payload %08x", i, crc, got)
			}
			cursor = end
		}
		if len(recs) > 0 && cursor != off && err == nil {
			t.Fatalf("clean scan ended at %d but records cover through %d", off, cursor)
		}

		// Truncation-repair idempotence: a rescan of data[:off] is clean
		// and yields the same records.
		if err != nil && off >= walHeaderLen {
			var again []Record
			off2, err2 := scanRecords(bufio.NewReader(bytes.NewReader(data[:off])), "fuzz", func(r Record) error {
				again = append(again, r)
				return nil
			})
			if err2 != nil {
				t.Fatalf("rescan of repaired prefix still corrupt: %v", err2)
			}
			if off2 != off || len(again) != len(recs) {
				t.Fatalf("repair not idempotent: offset %d→%d, records %d→%d", off, off2, len(recs), len(again))
			}
		}
	})
}
